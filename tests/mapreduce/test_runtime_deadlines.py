"""Attempt deadlines, heartbeat staleness, and wave deadlines.

Before deadlines existed, a hung worker with speculation disabled hung
the whole job forever -- the scheduler had no reason to ever give up on
a live process.  These tests pin the three escape hatches: a hard
per-attempt ``task_timeout``, heartbeat staleness (the only path that
catches a SIGSTOPped worker, whose process is alive but whose beat has
frozen), and a whole-wave ``wave_deadline`` that fails loudly with a
stuck-task diagnosis instead of silently never returning.
"""

import time

import pytest

from repro.mapreduce import FaultInjector, LocalJobRunner, ParallelJobRunner
from repro.mapreduce.runtime import TaskScheduler, WaveDeadlineError
from repro.scidata import integer_grid
from tests.mapreduce.test_engine import make_job


@pytest.fixture
def grid():
    return integer_grid((8, 8), seed=11, low=0, high=100)


@pytest.fixture
def serial(grid):
    return LocalJobRunner().run(make_job(num_map_tasks=4, num_reducers=2), grid)


def run_parallel(grid, injector, tmp_path, **kwargs):
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("retry_backoff", 0.01)
    runner = ParallelJobRunner(workdir=str(tmp_path),
                               fault_injector=injector, **kwargs)
    result = runner.run(make_job(num_map_tasks=4, num_reducers=2), grid)
    return runner, result


class TestTaskTimeout:
    def test_hung_worker_without_speculation_completes(
            self, grid, serial, tmp_path):
        """The regression the deadline path exists for: a hang with
        speculation *disabled* used to wedge the job forever.  The hang
        sleeps far longer than the whole test is allowed to take, so
        completing at all proves the timeout kill did it."""
        injector = FaultInjector().hang("m00001", seconds=120.0)
        start = time.monotonic()
        runner, result = run_parallel(
            grid, injector, tmp_path, speculation=False, task_timeout=1.0)
        assert time.monotonic() - start < 60.0
        assert runner.last_trace.count("timeout") == 1
        assert runner.last_trace.attempts("m00001") == 2
        assert result.counters == serial.counters
        assert result.output == serial.output

    def test_hung_reduce_worker_times_out(self, grid, serial, tmp_path):
        injector = FaultInjector().hang("r00000", seconds=120.0)
        runner, result = run_parallel(
            grid, injector, tmp_path, speculation=False, task_timeout=1.0)
        assert runner.last_trace.count("timeout") == 1
        assert result.counters == serial.counters
        assert result.output == serial.output


class TestHeartbeatStaleness:
    def test_stalled_worker_is_reclaimed(self, grid, serial, tmp_path):
        """A SIGSTOPped worker is still alive and holds no deadline of
        its own making; only a stale heartbeat can out it.  (The kill
        path must escalate to SIGKILL -- SIGTERM never reaches a
        stopped process.)"""
        injector = FaultInjector().stall("m00002")
        runner, result = run_parallel(
            grid, injector, tmp_path, speculation=False,
            heartbeat_interval=0.1, heartbeat_timeout=0.6)
        assert runner.last_trace.count("timeout") == 1
        assert runner.last_trace.attempts("m00002") == 2
        assert result.counters == serial.counters
        assert result.output == serial.output


class TestWaveDeadline:
    def test_breach_raises_with_stuck_task_diagnosis(self, grid, tmp_path):
        injector = FaultInjector().hang("m00003", seconds=120.0)
        with pytest.raises(WaveDeadlineError) as excinfo:
            run_parallel(grid, injector, tmp_path, speculation=False,
                         wave_deadline=2.0)
        assert "m00003" in excinfo.value.unfinished
        # The message carries the RuntimeTrace diagnosis of what each
        # unfinished task was last seen doing.
        assert "m00003" in str(excinfo.value)
        assert "started" in str(excinfo.value)


class TestKnobValidation:
    def test_rejects_bad_deadline_knobs(self):
        with pytest.raises(ValueError, match="task_timeout"):
            TaskScheduler(task_timeout=0)
        with pytest.raises(ValueError, match="wave_deadline"):
            TaskScheduler(wave_deadline=-1)
        with pytest.raises(ValueError, match="heartbeat_interval"):
            TaskScheduler(heartbeat_interval=0)
        with pytest.raises(ValueError, match="must exceed"):
            TaskScheduler(heartbeat_interval=0.5, heartbeat_timeout=0.5)
