"""Tests for codec CPU-cost attribution (cost_categories)."""

from repro.mapreduce.codecs import cost_categories, get_codec


def test_plain_codec_reports_single_category():
    codec = get_codec("zlib")
    codec.compress(b"x" * 10000)
    cats = cost_categories(codec)
    assert set(cats) == {"codec"}
    assert cats["codec"] > 0.0


def test_null_codec_near_zero_cost():
    codec = get_codec("null")
    codec.compress(b"x" * 100)
    assert cost_categories(codec)["codec"] >= 0.0


def test_transform_codec_splits_transform_from_backend():
    codec = get_codec("stride+zlib", max_stride=20)
    data = bytes(range(16)) * 200
    out = codec.compress(data)
    assert codec.decompress(out) == data
    cats = cost_categories(codec)
    assert set(cats) == {"transform", "codec"}
    assert cats["transform"] > 0.0
    assert cats["codec"] > 0.0
    # the exact Python transform dominates the zlib backend massively
    assert cats["transform"] > cats["codec"]


def test_fastpred_codec_also_splits():
    codec = get_codec("fastpred+zlib")
    codec.compress(bytes(range(64)) * 100)
    cats = cost_categories(codec)
    assert set(cats) == {"transform", "codec"}
