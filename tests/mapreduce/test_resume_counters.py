"""Checkpointed counters equal a fresh serial run's -- every query.

Counters ride inside each task's pickled result, so a job whose tasks
are *all* adopted from a manifest re-derives its merged counters purely
from checkpoints.  For every query workload in :mod:`repro.queries`
(both the per-cell-key baseline and, where it differs most, the
aggregate mode) the reconstruction must be byte-identical to a fresh
serial run -- otherwise resumed paper measurements could silently
drift.
"""

import numpy as np
import pytest

from repro.mapreduce import LocalJobRunner, ParallelJobRunner
from repro.queries import (
    BoxSubsetQuery,
    DerivedVariableQuery,
    HistogramQuery,
    SlidingAggregateQuery,
    SlidingMeanQuery,
    SlidingMedianQuery,
)
from repro.scidata import Dataset, Variable, integer_grid


def _grid():
    return integer_grid((8, 8), seed=11, low=0, high=100)


def _two_vars():
    rng = np.random.default_rng(3)
    ds = Dataset()
    ds.add(Variable("u", rng.integers(0, 100, (8, 8)).astype(np.int32)))
    ds.add(Variable("v", rng.integers(0, 100, (8, 8)).astype(np.int32)))
    return ds


def _subset_box(ds):
    return ds["values"].extent


QUERIES = {
    "median": lambda: (g := _grid(), SlidingMedianQuery(g, "values", window=3)),
    "mean": lambda: (g := _grid(), SlidingMeanQuery(g, "values", window=3)),
    "subset": lambda: (g := _grid(),
                       BoxSubsetQuery(g, "values", _subset_box(g))),
    "histogram": lambda: (g := _grid(), HistogramQuery(g, "values", bins=8)),
    "derived": lambda: (ds := _two_vars(),
                        DerivedVariableQuery(ds, "u", "v", op="add")),
    "algebraic": lambda: (g := _grid(),
                          SlidingAggregateQuery(g, "values", op="max",
                                                window=3)),
}

# Histogram keys have no spatial structure, so only plain mode exists.
CASES = [(name, mode) for name in QUERIES
         for mode in (("plain",) if name == "histogram"
                      else ("plain", "aggregate"))]


@pytest.mark.parametrize("name,mode", CASES,
                         ids=[f"{n}-{m}" for n, m in CASES])
def test_adopted_counters_match_serial(name, mode, tmp_path):
    dataset, query = QUERIES[name]()
    kwargs = dict(num_map_tasks=3, num_reducers=2)

    serial = LocalJobRunner().run(query.build_job(mode, **kwargs), dataset)

    # Checkpoint every task, then resume into a run that executes
    # nothing: its counters exist only by reconstruction.
    first = ParallelJobRunner(max_workers=2, retry_backoff=0.01,
                              recovery_dir=str(tmp_path), keep_files=True)
    first.run(query.build_job(mode, **kwargs), dataset)

    resumed = ParallelJobRunner(max_workers=2, retry_backoff=0.01,
                                recovery_dir=str(tmp_path), resume=True)
    result = resumed.run(query.build_job(mode, **kwargs), dataset)

    assert resumed.last_trace.count("started") == 0
    assert resumed.last_adopted == resumed.last_trace.count("adopted") > 0
    assert result.counters == serial.counters, (
        f"counter drift: {serial.counters.diff(result.counters)}")
    assert result.counters.as_dict() == serial.counters.as_dict()
    assert result.output == serial.output
