"""Service building blocks: specs, registry, admission, fair sharing.

Each layer's contract in isolation; the daemon integration (including
crash recovery and the REST round-trip) lives in
``test_service_daemon.py``, and the full kill -9 soak in the R6
harness.
"""

import json
import os
import zlib

import pytest

from repro.mapreduce.engine import LocalJobRunner
from repro.mapreduce.runtime.service.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejected,
)
from repro.mapreduce.runtime.service.fairshare import DeficitScheduler
from repro.mapreduce.runtime.service.registry import JobRegistry
from repro.mapreduce.runtime.service.workloads import (
    JobSpec,
    build_injector,
    build_workload,
    estimate_workload,
)


def _spec(**overrides) -> JobSpec:
    base = dict(tenant="alice", query="histogram", shape=(8, 8),
                seed=3, num_maps=2, num_reducers=1)
    base.update(overrides)
    return JobSpec(**base)


# --------------------------------------------------------------- workloads


class TestJobSpec:
    def test_roundtrip(self):
        spec = _spec(skip_budget=4, poison=(("m00001", 3),),
                     fetch_faults=(("m00000", "r00000", "flip"),),
                     query="subset")
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_rejects_unknown_query(self):
        with pytest.raises(ValueError):
            _spec(query="word_count")

    def test_rejects_bad_tenant(self):
        for tenant in ("", "a/b", "a.b"):
            with pytest.raises(ValueError):
                _spec(tenant=tenant)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            _spec(shape=())
        with pytest.raises(ValueError):
            _spec(shape=(4, 0))

    def test_skipping_requires_range_mappable_query(self):
        # Only the subset mappers implement map_range, so a poison plan
        # with a skip budget on any other query can never engage.
        with pytest.raises(ValueError):
            _spec(query="histogram", skip_budget=4, poison=(("m00000", 1),))
        _spec(query="subset", skip_budget=4,
              poison=(("m00000", 1),))  # accepted

    def test_from_json_bad_payload(self):
        with pytest.raises(ValueError):
            JobSpec.from_json({"tenant": "a"})  # no query

    def test_build_workload_is_deterministic(self):
        for query in ("histogram", "sliding_mean", "subset"):
            spec = _spec(query=query)
            job_a, ds_a = build_workload(spec)
            job_b, ds_b = build_workload(spec)
            ra = LocalJobRunner().run(job_a, ds_a)
            rb = LocalJobRunner().run(job_b, ds_b)
            assert ra.output == rb.output
            assert ra.counters == rb.counters

    def test_injector_none_without_faults(self):
        assert build_injector(_spec()) is None

    def test_injector_carries_fault_plan(self):
        spec = _spec(query="subset", skip_budget=4,
                     poison=(("m00001", 3),),
                     fetch_faults=(("m00000", "r00000", "flip"),))
        assert build_injector(spec) is not None

    def test_estimate_positive_and_monotonic(self):
        for query in ("histogram", "sliding_mean", "subset"):
            small = estimate_workload(_spec(query=query, shape=(6, 6)))
            large = estimate_workload(_spec(query=query, shape=(24, 24)))
            assert small.input_bytes > 0 and small.shuffle_bytes > 0
            assert large.input_bytes > small.input_bytes
            assert large.shuffle_bytes >= small.shuffle_bytes


# ---------------------------------------------------------------- registry


class TestRegistry:
    def test_create_assigns_sequential_ids(self, tmp_path):
        reg = JobRegistry(str(tmp_path))
        a = reg.create(_spec())
        b = reg.create(_spec(tenant="bob"))
        assert (a.job_id, b.job_id) == ("j000000", "j000001")

    def test_spec_survives_roundtrip(self, tmp_path):
        reg = JobRegistry(str(tmp_path))
        spec = _spec(query="subset", skip_budget=4,
                     poison=(("m00001", 3),))
        record = reg.create(spec)
        assert reg.get(record.job_id).load_spec() == spec

    def test_accepted_job_defaults_to_queued(self, tmp_path):
        reg = JobRegistry(str(tmp_path))
        record = reg.create(_spec())
        os.remove(os.path.join(record.dir, "state.json"))
        assert record.state()[0] == "QUEUED"

    def test_damaged_state_reads_as_queued(self, tmp_path):
        reg = JobRegistry(str(tmp_path))
        record = reg.create(_spec())
        record.set_state("RUNNING")
        with open(os.path.join(record.dir, "state.json"), "wb") as fh:
            fh.write(b'{"crc": 1, "body": "{\\"state\\": \\"DONE\\"}"}')
        assert record.state()[0] == "QUEUED"

    def test_events_stop_at_torn_tail(self, tmp_path):
        reg = JobRegistry(str(tmp_path))
        record = reg.create(_spec())
        record.append_event("a", "one")
        record.append_event("b", "two")
        events_path = os.path.join(record.dir, "events.jsonl")
        with open(events_path, "a", encoding="utf-8") as fh:
            fh.write('{"crc": 123, "body": "{\\"kind\\": \\"forged')
        kinds = [e["kind"] for e in record.events()]
        # state event from create() + the two appended; the torn tail
        # and anything "after" it are gone.
        assert kinds[-2:] == ["a", "b"]

    def test_result_crc_rejects_damage(self, tmp_path):
        reg = JobRegistry(str(tmp_path))
        record = reg.create(_spec())
        record.save_result([("k", 1)], {"C": 2})
        loaded = record.load_result()
        assert loaded == {"output": [("k", 1)], "counters": {"C": 2}}
        with open(record.result_path, "r+b") as fh:
            fh.seek(20)
            byte = fh.read(1)
            fh.seek(20)
            fh.write(bytes([byte[0] ^ 0xFF]))
        assert record.load_result() is None

    def test_truncated_result_rejected(self, tmp_path):
        reg = JobRegistry(str(tmp_path))
        record = reg.create(_spec())
        record.save_result([("k", 1)], {})
        size = os.path.getsize(record.result_path)
        with open(record.result_path, "r+b") as fh:
            fh.truncate(size - 3)
        assert record.load_result() is None

    def test_resumable_filters_terminal_states(self, tmp_path):
        reg = JobRegistry(str(tmp_path))
        queued = reg.create(_spec())
        running = reg.create(_spec())
        done = reg.create(_spec())
        running.set_state("RUNNING")
        done.set_state("DONE")
        ids = {r.job_id for r in reg.resumable()}
        assert ids == {queued.job_id, running.job_id}

    def test_corrupt_spec_excluded_from_load_all(self, tmp_path):
        reg = JobRegistry(str(tmp_path))
        good = reg.create(_spec())
        bad = reg.create(_spec())
        spec_path = os.path.join(bad.dir, "spec.json")
        with open(spec_path, "r+b") as fh:
            fh.seek(5)
            fh.write(b"XXXX")
        assert {r.job_id for r in reg.load_all()} == {good.job_id}

    def test_ids_resume_after_restart(self, tmp_path):
        JobRegistry(str(tmp_path)).create(_spec())
        again = JobRegistry(str(tmp_path))
        assert again.create(_spec()).job_id == "j000001"

    def test_spec_envelope_is_crc_checked(self, tmp_path):
        reg = JobRegistry(str(tmp_path))
        record = reg.create(_spec())
        with open(os.path.join(record.dir, "spec.json")) as fh:
            envelope = json.load(fh)
        assert envelope["crc"] == zlib.crc32(
            envelope["body"].encode("utf-8"))


# ---------------------------------------------------------------- admission


class TestAdmission:
    def _ctl(self, **overrides) -> AdmissionController:
        base = dict(max_queued=4, max_queued_per_tenant=2,
                    max_job_seconds=10.0, max_outstanding_seconds=20.0)
        base.update(overrides)
        return AdmissionController(AdmissionConfig(**base))

    def test_admits_inside_budgets(self):
        self._ctl().admit("a", 1.0, queued_total=0, queued_tenant=0)

    def test_job_too_large_is_terminal(self):
        with pytest.raises(AdmissionRejected) as exc:
            self._ctl().admit("a", 11.0, queued_total=0, queued_tenant=0)
        assert exc.value.payload["error"] == "JOB_TOO_LARGE"
        assert exc.value.http_status == 413
        assert exc.value.payload["retry_after"] is None

    def test_global_queue_bound(self):
        with pytest.raises(AdmissionRejected) as exc:
            self._ctl().admit("a", 1.0, queued_total=4, queued_tenant=1)
        assert exc.value.payload["error"] == "OVERLOADED"
        assert exc.value.http_status == 429
        assert exc.value.payload["retry_after"] >= 1.0

    def test_tenant_queue_bound(self):
        with pytest.raises(AdmissionRejected) as exc:
            self._ctl().admit("a", 1.0, queued_total=2, queued_tenant=2)
        assert exc.value.payload["error"] == "TENANT_OVERLOADED"

    def test_outstanding_ledger(self):
        ctl = self._ctl()
        ctl.charge("j0", 15.0)
        with pytest.raises(AdmissionRejected) as exc:
            ctl.admit("a", 6.0, queued_total=0, queued_tenant=0)
        assert exc.value.payload["error"] == "OVERCOMMITTED"
        ctl.credit("j0")
        ctl.admit("a", 6.0, queued_total=0, queued_tenant=0)

    def test_credit_unknown_job_is_noop(self):
        ctl = self._ctl()
        ctl.credit("never-charged")
        assert ctl.outstanding_seconds() == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queued=0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_job_seconds=0)


# ---------------------------------------------------------------- fairshare


class TestDeficitScheduler:
    def test_fifo_within_tenant(self):
        drr = DeficitScheduler(quantum_seconds=5.0)
        for i in range(4):
            drr.push("a", f"j{i}", 1.0)
        assert [drr.pop() for _ in range(4)] == ["j0", "j1", "j2", "j3"]

    def test_idle_returns_none(self):
        assert DeficitScheduler().pop() is None

    def test_work_conserving(self):
        drr = DeficitScheduler(quantum_seconds=0.001)
        # One expensive job: pop must still return it (deficit grows
        # round by round), never None while work is queued.
        drr.push("a", "big", 100.0)
        assert drr.pop() == "big"

    def test_weighted_shares_converge(self):
        drr = DeficitScheduler(quantum_seconds=1.0)
        drr.set_weight("heavy", 3.0)
        drr.set_weight("light", 1.0)
        for i in range(200):
            drr.push("heavy", f"h{i}", 1.0)
            drr.push("light", f"l{i}", 1.0)
        first = [drr.pop() for _ in range(100)]
        heavy = sum(1 for j in first if j.startswith("h"))
        light = len(first) - heavy
        # 3:1 weights -> ~75/25 split over the window.
        assert heavy / max(light, 1) == pytest.approx(3.0, rel=0.35)

    def test_idle_tenant_cannot_hoard_credit(self):
        drr = DeficitScheduler(quantum_seconds=1.0)
        drr.push("a", "a0", 1.0)
        drr.push("b", "b0", 1.0)
        for _ in range(2):
            drr.pop()
        # 'a' sat idle through many rounds; its deficit must reset, so
        # a burst later still pays full price round by round.
        drr.push("b", "b-filler", 1.0)
        drr.pop()
        drr.push("a", "a-burst-0", 3.0)
        drr.push("b", "b1", 1.0)
        order = [drr.pop() for _ in range(2)]
        assert "b1" in order  # 'a' could not jump the whole queue

    def test_remove_cancels_queued_job(self):
        drr = DeficitScheduler()
        drr.push("a", "j0", 1.0)
        drr.push("a", "j1", 1.0)
        assert drr.remove("j0") is True
        assert drr.remove("j0") is False
        assert drr.pop() == "j1"
        assert drr.queued_total() == 0

    def test_queue_depth_queries(self):
        drr = DeficitScheduler()
        drr.push("a", "j0", 1.0)
        drr.push("b", "j1", 1.0)
        drr.push("b", "j2", 1.0)
        assert drr.queued_total() == 3
        assert drr.queued_for("b") == 2
        assert drr.queued_for("nobody") == 0

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            DeficitScheduler().set_weight("a", 0)
        with pytest.raises(ValueError):
            DeficitScheduler(quantum_seconds=0)
