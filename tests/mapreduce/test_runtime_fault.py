"""Fault-injection coverage for the parallel task runtime.

Each test breaks the runtime in one specific way and asserts two
things: the job still completes with results byte-identical to a clean
serial run, and the trace shows the scheduler took the intended
recovery path (retry, speculation, or segment repair).
"""

import glob
import os

import pytest

from repro.mapreduce import FaultInjector, LocalJobRunner, ParallelJobRunner
from repro.mapreduce.runtime import TaskFailedError
from repro.mapreduce.runtime.fault import Fault
from repro.scidata import integer_grid
from tests.mapreduce.test_engine import make_job


@pytest.fixture
def grid():
    return integer_grid((8, 8), seed=11, low=0, high=100)


@pytest.fixture
def serial(grid):
    return LocalJobRunner().run(make_job(num_map_tasks=4, num_reducers=2), grid)


def run_parallel(grid, injector, tmp_path, **runner_kwargs):
    runner_kwargs.setdefault("max_workers", 2)
    runner_kwargs.setdefault("retry_backoff", 0.01)
    runner = ParallelJobRunner(workdir=str(tmp_path), fault_injector=injector,
                               **runner_kwargs)
    result = runner.run(make_job(num_map_tasks=4, num_reducers=2), grid)
    return result


class TestKill:
    def test_killed_map_worker_is_retried(self, grid, serial, tmp_path):
        """A worker dying abruptly (no result, no traceback) is retried
        and the job completes with correct, byte-identical output."""
        result = run_parallel(grid, FaultInjector().kill("m00001"), tmp_path)
        assert result.counters == serial.counters
        assert result.output == serial.output
        assert result.trace.count("retried") == 1
        assert result.trace.attempts("m00001") == 2

    def test_killed_reduce_worker_is_retried(self, grid, serial, tmp_path):
        result = run_parallel(grid, FaultInjector().kill("r00001"), tmp_path)
        assert result.counters == serial.counters
        assert result.output == serial.output
        assert result.trace.attempts("r00001") == 2

    def test_multiple_kills_across_phases(self, grid, serial, tmp_path):
        injector = FaultInjector().kill("m00000").kill("m00002").kill("r00000")
        result = run_parallel(grid, injector, tmp_path)
        assert result.counters == serial.counters
        assert result.output == serial.output
        assert result.trace.count("retried") == 3


class TestCrash:
    def test_crashing_task_is_retried(self, grid, serial, tmp_path):
        result = run_parallel(grid, FaultInjector().crash("m00003"), tmp_path)
        assert result.counters == serial.counters
        assert result.output == serial.output
        failed = [e for e in result.trace.events if e.event == "failed"]
        assert any("injected crash" in e.detail for e in failed)

    def test_retry_budget_exhaustion_fails_the_job(self, grid, tmp_path):
        injector = (FaultInjector()
                    .crash("m00001", attempt=0)
                    .crash("m00001", attempt=1)
                    .crash("m00001", attempt=2))
        with pytest.raises(TaskFailedError, match="m00001"):
            run_parallel(grid, injector, tmp_path, max_retries=2,
                         speculation=False)

    def test_job_survives_up_to_retry_budget(self, grid, serial, tmp_path):
        injector = FaultInjector().crash("m00001", attempt=0).crash(
            "m00001", attempt=1)
        result = run_parallel(grid, injector, tmp_path, max_retries=2)
        assert result.counters == serial.counters
        assert result.trace.attempts("m00001") == 3


class TestCorruptSegment:
    def test_corrupt_map_output_repaired_via_reexecution(
            self, grid, serial, tmp_path):
        """Silent map output corruption surfaces as a reducer checksum
        failure; the producing map is re-executed in place and the
        reduce retry succeeds (Hadoop's fetch-failure protocol)."""
        result = run_parallel(grid, FaultInjector().corrupt("m00002"), tmp_path)
        assert result.counters == serial.counters
        assert result.output == serial.output
        assert result.trace.count("repaired") == 1
        failed = [e for e in result.trace.events if e.event == "failed"]
        assert any("checksum" in e.detail for e in failed)
        repaired = [e for e in result.trace.events if e.event == "repaired"]
        assert repaired[0].task_id == "m00002"


class TestSpeculation:
    def test_straggler_triggers_speculative_execution(
            self, grid, serial, tmp_path):
        """A hanging task exceeds the straggler threshold, a duplicate
        attempt launches, wins, and the loser's output is discarded."""
        injector = FaultInjector().hang("m00003", seconds=20.0)
        result = run_parallel(
            grid, injector, tmp_path, max_workers=4,
            straggler_factor=2.0, min_straggler_seconds=0.2,
            speculation_min_completed=1)
        assert result.counters == serial.counters
        assert result.output == serial.output
        assert result.trace.count("speculated") == 1
        assert result.trace.count("killed") == 1
        assert result.trace.count("discarded") >= 1
        spec_events = [e for e in result.trace.events if e.event == "speculated"]
        assert spec_events[0].task_id == "m00003"
        # the whole job finished long before the 20s hang would have
        assert result.trace.wall_clock < 10.0

    def test_no_speculation_when_disabled(self, grid, serial, tmp_path):
        injector = FaultInjector().hang("m00003", seconds=0.5)
        result = run_parallel(
            grid, injector, tmp_path, max_workers=4, speculation=False)
        assert result.trace.count("speculated") == 0
        assert result.counters == serial.counters


class TestNoLeaks:
    def test_faulty_runs_leak_no_directories(self, grid, tmp_path):
        before = set(glob.glob("/tmp/repro-mr*"))
        injector = (FaultInjector().kill("m00000").crash("r00000")
                    .corrupt("m00001"))
        runner = ParallelJobRunner(workdir=str(tmp_path),
                                   fault_injector=injector,
                                   max_workers=2, retry_backoff=0.01)
        runner.run(make_job(num_map_tasks=4, num_reducers=2), grid)
        # the caller-supplied workdir survives, but holds no debris
        assert os.listdir(tmp_path) == []
        assert set(glob.glob("/tmp/repro-mr*")) == before


class TestFaultValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Fault("explode")

    def test_duplicate_fault_rejected(self):
        injector = FaultInjector().kill("m00000")
        with pytest.raises(ValueError):
            injector.crash("m00000", attempt=0)

    def test_lookup(self):
        injector = FaultInjector().hang("m00001", seconds=2.0, attempt=1)
        assert injector.fault_for("m00001", 0) is None
        fault = injector.fault_for("m00001", 1)
        assert fault.mode == "hang" and fault.seconds == 2.0
        assert len(injector) == 1
