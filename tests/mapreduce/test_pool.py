"""WorkerPool/PoolLease: the slot accounting the job service trusts.

The pool-ownership inversion only works if the accounting is airtight:
slots charged on spawn, returned exactly once on release, per-tenant
quotas enforced under the global bound, and error paths unable to leak
or mint capacity.  These tests pin that ledger, plus the scheduler's
standalone fallback (no pool given -> private pool, old behavior).
"""

import time

import pytest

from repro.mapreduce.runtime.pool import (
    PoolLease,
    PoolSaturatedError,
    WorkerPool,
)


def _sleep_forever():
    time.sleep(60)


def _noop():
    pass


def test_available_respects_global_bound():
    pool = WorkerPool(max_workers=2)
    lease = pool.lease("a")
    assert lease.available() == 2
    p1 = lease.spawn(_sleep_forever, ())
    p2 = lease.spawn(_sleep_forever, ())
    try:
        assert lease.available() == 0
        assert pool.running() == 2
        with pytest.raises(PoolSaturatedError):
            lease.spawn(_sleep_forever, ())
        # The failed spawn must not have charged anything.
        assert pool.running() == 2
    finally:
        for p in (p1, p2):
            p.terminate()
            p.join()
        lease.close()
    assert pool.running() == 0


def test_tenant_quota_caps_below_global():
    pool = WorkerPool(max_workers=4)
    pool.set_quota("small", 1)
    small = pool.lease("small")
    big = pool.lease("big")
    p1 = small.spawn(_sleep_forever, ())
    try:
        assert small.available() == 0  # quota exhausted
        assert big.available() == 3    # global capacity remains
        with pytest.raises(PoolSaturatedError):
            small.spawn(_sleep_forever, ())
        assert pool.running_for("small") == 1
    finally:
        p1.terminate()
        p1.join()
        small.close()
    assert pool.running_for("small") == 0


def test_release_is_idempotent_per_spawn():
    pool = WorkerPool(max_workers=2)
    lease = pool.lease("t")
    p = lease.spawn(_noop, ())
    p.join()
    lease.release()
    # Extra releases must not mint phantom capacity.
    lease.release()
    lease.release()
    assert pool.running() == 0
    assert lease.available() == 2


def test_close_sweeps_leaked_slots():
    pool = WorkerPool(max_workers=3)
    lease = pool.lease("t")
    procs = [lease.spawn(_noop, ()) for _ in range(3)]
    for p in procs:
        p.join()
    assert pool.running() == 3  # never released: simulated error path
    lease.close()
    assert pool.running() == 0
    lease.close()  # second sweep is a no-op
    assert pool.running() == 0


def test_two_leases_share_the_global_budget():
    pool = WorkerPool(max_workers=2)
    a, b = pool.lease("a"), pool.lease("b")
    pa = a.spawn(_sleep_forever, ())
    pb = b.spawn(_sleep_forever, ())
    try:
        assert a.available() == 0 and b.available() == 0
        with pytest.raises(PoolSaturatedError):
            a.spawn(_sleep_forever, ())
    finally:
        for p in (pa, pb):
            p.terminate()
            p.join()
        a.close()
        b.close()
    assert pool.running() == 0


def test_quota_validation():
    pool = WorkerPool(max_workers=2)
    with pytest.raises(ValueError):
        pool.set_quota("t", 0)


def test_stats_snapshot():
    pool = WorkerPool(max_workers=2)
    pool.set_quota("t", 1)
    lease = pool.lease("t")
    p = lease.spawn(_sleep_forever, ())
    try:
        stats = pool.stats()
        assert stats["max_workers"] == 2
        assert stats["running"] == 1
        assert stats["per_tenant"] == {"t": 1}
        assert stats["quotas"] == {"t": 1}
    finally:
        p.terminate()
        p.join()
        lease.close()


def test_scheduler_without_pool_builds_private_one():
    """Standalone construction keeps the pre-service behavior."""
    from repro.mapreduce.runtime.runner import ParallelJobRunner

    runner = ParallelJobRunner(max_workers=2)
    assert runner.pool is None  # private pool is created per scheduler


def test_scheduler_with_pool_inherits_width():
    from repro.mapreduce.runtime.runner import ParallelJobRunner

    pool = WorkerPool(max_workers=3)
    runner = ParallelJobRunner(pool=pool, tenant="t")
    assert runner.pool is pool


def test_lease_is_cheap_and_unbounded_to_create():
    pool = WorkerPool(max_workers=1)
    leases = [pool.lease(f"t{i}") for i in range(50)]
    assert all(isinstance(x, PoolLease) for x in leases)
    assert pool.running() == 0
