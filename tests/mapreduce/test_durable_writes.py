"""Durable-commit behavior of result files and IFile segments.

Recovery is only as trustworthy as the files it adopts.  Two invariants
pinned here: a worker result file is either a complete pickle or absent
(``load_result`` treats anything torn as "no result", i.e. an ordinary
retry), and an atomically written IFile segment's rename target is
always a complete, readable segment -- never a truncated one.
"""

import os
import pickle

from repro.mapreduce.ifile import IFileReader, IFileWriter
from repro.mapreduce.runtime.worker import _write_result, load_result
from repro.util.fsio import atomic_write_bytes


class TestLoadResult:
    def test_missing_file_is_no_result(self, tmp_path):
        assert load_result(str(tmp_path / "absent.pkl")) is None

    def test_empty_file_is_no_result(self, tmp_path):
        path = tmp_path / "_result.pkl"
        path.write_bytes(b"")
        assert load_result(str(path)) is None

    def test_truncated_pickle_is_no_result(self, tmp_path):
        """The torn-write case: a crash mid-write (pre-durable-commit)
        leaves half a pickle.  That must read as a retry signal, not
        crash the scheduler."""
        path = tmp_path / "_result.pkl"
        blob = pickle.dumps({"status": "ok", "value": list(range(100))})
        path.write_bytes(blob[:len(blob) // 2])
        assert load_result(str(path)) is None

    def test_garbage_bytes_are_no_result(self, tmp_path):
        path = tmp_path / "_result.pkl"
        path.write_bytes(b"\x80\x05this is not a pickle")
        assert load_result(str(path)) is None

    def test_write_result_commits_durably(self, tmp_path):
        path = str(tmp_path / "_result.pkl")
        _write_result(path, {"status": "ok", "value": 42})
        assert load_result(path) == {"status": "ok", "value": 42}
        # The temp file never outlives the commit.
        assert os.listdir(tmp_path) == ["_result.pkl"]


class TestAtomicIFile:
    RECORDS = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(50)]

    def test_target_absent_until_close(self, tmp_path):
        path = str(tmp_path / "seg.ifile")
        writer = IFileWriter(path, atomic=True)
        for k, v in self.RECORDS:
            writer.append(k, v)
        assert not os.path.exists(path)  # nothing visible mid-write
        writer.close()
        assert IFileReader(path).read_all() == self.RECORDS
        # No temp droppings next to the committed segment.
        assert os.listdir(tmp_path) == ["seg.ifile"]

    def test_atomic_and_plain_bytes_identical(self, tmp_path):
        plain, atomic = str(tmp_path / "a"), str(tmp_path / "b")
        for path, is_atomic in [(plain, False), (atomic, True)]:
            writer = IFileWriter(path, atomic=is_atomic)
            for k, v in self.RECORDS:
                writer.append(k, v)
            writer.close()
        with open(plain, "rb") as f1, open(atomic, "rb") as f2:
            assert f1.read() == f2.read()


class TestAtomicWriteBytes:
    def test_overwrites_in_place(self, tmp_path):
        path = str(tmp_path / "blob")
        atomic_write_bytes(path, b"first")
        atomic_write_bytes(path, b"second")
        with open(path, "rb") as fh:
            assert fh.read() == b"second"
        assert os.listdir(tmp_path) == ["blob"]
