"""End-to-end engine tests: map, spill, combine, shuffle, merge, reduce."""

import numpy as np
import pytest

from repro.mapreduce import (
    CellKey,
    CellKeySerde,
    Combiner,
    Int32Serde,
    Job,
    LocalJobRunner,
    Mapper,
    Reducer,
)
from repro.mapreduce.metrics import C
from repro.scidata import integer_grid


class EmitCellsMapper(Mapper):
    """Emits (cell key, value) for every input cell via the fast path."""

    def map(self, split, values, ctx):
        coords = split.slab.coords()
        ctx.emit_cells(split.variable, coords, values.ravel())


class EmitCellsScalarMapper(Mapper):
    """Same output as EmitCellsMapper through the scalar emit path."""

    def map(self, split, values, ctx):
        flat = values.ravel()
        for i, coord in enumerate(split.slab):
            ctx.emit(CellKey(split.variable, coord), int(flat[i]))


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class SumCombiner(Combiner):
    def combine(self, key, values):
        return [sum(values)]


def make_job(**overrides):
    defaults = dict(
        name="test",
        mapper=EmitCellsMapper,
        reducer=SumReducer,
        key_serde=CellKeySerde(ndim=2, variable_mode="name"),
        value_serde=Int32Serde(),
        num_reducers=1,
        num_map_tasks=1,
    )
    defaults.update(overrides)
    return Job(**defaults)


@pytest.fixture
def grid():
    return integer_grid((8, 8), seed=11, low=0, high=100)


class TestBasicJob:
    def test_identity_sum_job(self, grid):
        result = LocalJobRunner().run(make_job(), grid)
        data = grid["values"].data
        assert len(result.output) == 64
        for key, value in result.output:
            assert value == data[key.coords]

    def test_scalar_and_vector_emit_agree(self, grid):
        r1 = LocalJobRunner().run(make_job(), grid)
        r2 = LocalJobRunner().run(make_job(mapper=EmitCellsScalarMapper), grid)
        assert sorted(map(repr, r1.output)) == sorted(map(repr, r2.output))
        assert (r1.counters[C.MAP_OUTPUT_MATERIALIZED_BYTES]
                == r2.counters[C.MAP_OUTPUT_MATERIALIZED_BYTES])

    def test_counters(self, grid):
        result = LocalJobRunner().run(make_job(), grid)
        c = result.counters
        assert c[C.MAP_INPUT_RECORDS] == 64
        assert c[C.MAP_OUTPUT_RECORDS] == 64
        assert c[C.REDUCE_INPUT_GROUPS] == 64
        assert c[C.REDUCE_INPUT_RECORDS] == 64
        assert c[C.REDUCE_OUTPUT_RECORDS] == 64
        assert c[C.MAP_OUTPUT_MATERIALIZED_BYTES] > 0
        assert c[C.SHUFFLE_BYTES] == c[C.MAP_OUTPUT_MATERIALIZED_BYTES]

    def test_materialized_bytes_exact(self, grid):
        """64 records x (2 frame + 23 key + 4 value) + 6 trailer."""
        job = make_job(key_serde=CellKeySerde(ndim=2, variable_mode="name"))
        result = LocalJobRunner().run(job, grid)
        key_size = 11 + 8 + 4  # "windspeed1"? no: "values" = 1+6=7 text
        # variable name "values": Text = 7 bytes; + 2 coords + slot = 19
        assert result.map_output_stats.key_bytes == 64 * 19
        assert result.map_output_stats.value_bytes == 64 * 4
        assert result.materialized_bytes == 64 * (2 + 19 + 4) + 6

    def test_multiple_reducers_partition_everything(self, grid):
        result = LocalJobRunner().run(make_job(num_reducers=4), grid)
        assert len(result.output) == 64
        assert result.num_reduce_tasks == 4
        data = grid["values"].data
        for key, value in result.output:
            assert value == data[key.coords]

    def test_multiple_map_tasks(self, grid):
        result = LocalJobRunner().run(make_job(num_map_tasks=4, num_reducers=2), grid)
        assert result.num_map_tasks == 4
        assert len(result.output) == 64

    def test_task_profiles_present(self, grid):
        result = LocalJobRunner().run(make_job(num_map_tasks=2, num_reducers=2), grid)
        kinds = [p.kind for p in result.task_profiles]
        assert kinds.count("map") == 2
        assert kinds.count("reduce") == 2
        for p in result.task_profiles:
            assert p.total_cpu >= 0.0
            if p.kind == "map":
                assert p.local_write_bytes > 0


class TestSpillsAndMerge:
    def test_tiny_buffer_forces_spills(self, grid):
        job = make_job(sort_buffer_bytes=1024)
        result = LocalJobRunner().run(job, grid)
        assert result.counters[C.SPILL_COUNT] > 1
        data = grid["values"].data
        assert len(result.output) == 64
        for key, value in result.output:
            assert value == data[key.coords]

    def test_spilled_records_counted(self, grid):
        job = make_job(sort_buffer_bytes=1024)
        result = LocalJobRunner().run(job, grid)
        assert result.counters[C.SPILLED_RECORDS] >= 64

    def test_reduce_multipass_merge(self):
        # 12 map tasks with merge_factor 2 forces on-disk merge passes.
        grid = integer_grid((12, 4), seed=3)
        job = make_job(num_map_tasks=12, merge_factor=2)
        result = LocalJobRunner().run(job, grid)
        assert result.counters[C.MERGE_PASS_BYTES] > 0
        assert len(result.output) == 48

    def test_results_invariant_to_spill_size(self, grid):
        big = LocalJobRunner().run(make_job(), grid)
        small = LocalJobRunner().run(make_job(sort_buffer_bytes=1024), grid)
        assert sorted(map(repr, big.output)) == sorted(map(repr, small.output))


class TestCombiner:
    def test_combiner_reduces_records(self):
        grid = integer_grid((1, 4), seed=5)

        class DupMapper(Mapper):
            def map(self, split, values, ctx):
                for _ in range(5):
                    for i, coord in enumerate(split.slab):
                        ctx.emit(CellKey(split.variable, coord), 1)

        with_comb = LocalJobRunner().run(
            make_job(mapper=DupMapper, combiner=SumCombiner), grid)
        without = LocalJobRunner().run(make_job(mapper=DupMapper), grid)
        assert with_comb.counters[C.COMBINE_INPUT_RECORDS] == 20
        assert with_comb.counters[C.COMBINE_OUTPUT_RECORDS] == 4
        assert with_comb.materialized_bytes < without.materialized_bytes
        # same final answer: each cell saw five 1s
        assert sorted(v for _, v in with_comb.output) == [5, 5, 5, 5]
        assert sorted(v for _, v in without.output) == [5, 5, 5, 5]


class TestCompressionInEngine:
    def test_zlib_shrinks_materialized_bytes(self, grid):
        plain = LocalJobRunner().run(make_job(), grid)
        compressed = LocalJobRunner().run(make_job(codec="zlib"), grid)
        assert compressed.materialized_bytes < plain.materialized_bytes
        assert sorted(map(repr, plain.output)) == sorted(map(repr, compressed.output))

    def test_stride_codec_end_to_end(self):
        grid = integer_grid((6, 6), seed=9)
        job = make_job(codec="stride+zlib", codec_options={"max_stride": 40})
        result = LocalJobRunner().run(job, grid)
        assert len(result.output) == 36
        data = grid["values"].data
        for key, value in result.output:
            assert value == data[key.coords]


class TestValidation:
    def test_job_validation(self):
        with pytest.raises(ValueError):
            make_job(num_reducers=0)
        with pytest.raises(ValueError):
            make_job(num_map_tasks=0)
        with pytest.raises(ValueError):
            make_job(merge_factor=1)
        with pytest.raises(ValueError):
            make_job(sort_buffer_bytes=10)

    def test_empty_splits_rejected(self, grid):
        with pytest.raises(ValueError):
            LocalJobRunner().run(make_job(), grid, splits=[])
