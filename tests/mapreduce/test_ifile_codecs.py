"""Tests for IFile framing, byte accounting, and the codec registry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce import available_codecs, get_codec
from repro.mapreduce.ifile import IFileReader, IFileWriter, TRAILER_BYTES


class TestIFileBasics:
    def test_roundtrip_memory(self):
        w = IFileWriter(None)
        records = [(b"k1", b"v1"), (b"k2", b""), (b"", b"v3")]
        for k, v in records:
            w.append(k, v)
        w.close()
        assert IFileReader(w.getvalue()).read_all() == records

    def test_roundtrip_file(self, tmp_path):
        path = tmp_path / "seg"
        w = IFileWriter(path)
        w.append(b"key", b"value")
        stats = w.close()
        assert path.stat().st_size == stats.materialized_bytes
        assert IFileReader(path).read_all() == [(b"key", b"value")]

    def test_empty_segment(self):
        w = IFileWriter(None)
        stats = w.close()
        assert stats.records == 0
        assert stats.materialized_bytes == TRAILER_BYTES
        assert IFileReader(w.getvalue()).read_all() == []

    def test_double_close_is_idempotent(self):
        w = IFileWriter(None)
        w.append(b"a", b"b")
        s1 = w.close()
        s2 = w.close()
        assert s1 is s2

    def test_append_after_close_raises(self):
        w = IFileWriter(None)
        w.close()
        with pytest.raises(RuntimeError):
            w.append(b"a", b"b")

    def test_getvalue_requires_close(self):
        w = IFileWriter(None)
        with pytest.raises(RuntimeError):
            w.getvalue()


class TestByteAccounting:
    def test_paper_intro_file_sizes(self):
        """§I: 10^6 cells -> 26,000,006 B (index) / 33,000,006 B (name).

        Verified here at 10^3 records (same per-record constants): the
        benchmark reproduces the full-size number.
        """
        n = 1000
        w = IFileWriter(None)
        for _ in range(n):
            w.append(bytes(20), bytes(4))  # index-mode cell key + float
        stats = w.close()
        assert stats.materialized_bytes == 26 * n + 6

        w = IFileWriter(None)
        for _ in range(n):
            w.append(bytes(27), bytes(4))  # name-mode ("windspeed1") key
        stats = w.close()
        assert stats.materialized_bytes == 33 * n + 6

    def test_stats_breakdown(self):
        w = IFileWriter(None)
        w.append(b"0123456789", b"abcd")
        stats = w.close()
        assert stats.records == 1
        assert stats.key_bytes == 10
        assert stats.value_bytes == 4
        assert stats.overhead_bytes == 2 + TRAILER_BYTES
        assert stats.raw_bytes == 10 + 4 + 2 + TRAILER_BYTES
        assert stats.materialized_bytes == stats.raw_bytes  # null codec

    def test_large_record_varint_overhead(self):
        w = IFileWriter(None)
        w.append(bytes(200), bytes(300))
        stats = w.close()
        # 200 needs a 2-byte varint, 300 a 3-byte varint
        assert stats.overhead_bytes == 2 + 3 + TRAILER_BYTES

    def test_stats_merge(self):
        a = IFileWriter(None)
        a.append(b"k", b"v")
        sa = a.close()
        b = IFileWriter(None)
        b.append(b"kk", b"vv")
        sb = b.close()
        sa.merge(sb)
        assert sa.records == 2
        assert sa.key_bytes == 3


class TestCompression:
    def test_zlib_roundtrip_and_shrink(self):
        codec = get_codec("zlib")
        w = IFileWriter(None, codec)
        for i in range(500):
            w.append(b"same-key-prefix-%04d" % (i % 10), b"\x00" * 16)
        stats = w.close()
        assert stats.materialized_bytes < stats.raw_bytes / 3
        records = IFileReader(w.getvalue(), get_codec("zlib")).read_all()
        assert len(records) == 500

    def test_reader_needs_matching_codec(self):
        codec = get_codec("zlib")
        w = IFileWriter(None, codec)
        w.append(b"k", b"v")
        w.close()
        with pytest.raises(Exception):
            IFileReader(w.getvalue()).read_all()  # null codec can't parse

    def test_corruption_detected(self):
        w = IFileWriter(None)
        w.append(b"key", b"value")
        w.close()
        blob = bytearray(w.getvalue())
        blob[1] ^= 0xFF
        with pytest.raises(ValueError):
            IFileReader(bytes(blob))

    def test_truncated_blob(self):
        with pytest.raises(ValueError):
            IFileReader(b"\x00\x01")


class TestCodecRegistry:
    def test_builtin_and_stride_codecs_registered(self):
        names = available_codecs()
        for expected in ["null", "zlib", "bz2", "stride+zlib", "stride+bz2",
                         "fastpred+zlib", "fastpred+bz2"]:
            assert expected in names

    def test_unknown_codec(self):
        with pytest.raises(KeyError):
            get_codec("snappy")

    @pytest.mark.parametrize("name", ["null", "zlib", "bz2", "fastpred+zlib"])
    def test_codec_roundtrip(self, name):
        codec = get_codec(name)
        data = b"hello world " * 100
        assert codec.decompress(codec.compress(data)) == data
        assert codec.cpu_seconds >= 0.0

    def test_stride_codec_roundtrip_and_timing_split(self):
        codec = get_codec("stride+zlib")
        data = bytes(range(24)) * 100
        out = codec.compress(data)
        assert codec.decompress(out) == data
        assert codec.transform_seconds > 0.0
        assert codec.backend_seconds > 0.0

    def test_codec_options(self):
        codec = get_codec("zlib", level=1)
        assert codec.level == 1
        with pytest.raises(ValueError):
            get_codec("zlib", level=0)
        with pytest.raises(ValueError):
            get_codec("bz2", level=10)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=2000), st.sampled_from(["null", "zlib", "bz2", "fastpred+zlib"]))
    def test_codec_roundtrip_property(self, data, name):
        codec = get_codec(name)
        assert codec.decompress(codec.compress(data)) == data


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.binary(max_size=40), st.binary(max_size=40)), max_size=40),
       st.sampled_from(["null", "zlib"]))
def test_ifile_roundtrip_property(records, codec_name):
    w = IFileWriter(None, get_codec(codec_name))
    for k, v in records:
        w.append(k, v)
    stats = w.close()
    assert stats.records == len(records)
    out = IFileReader(w.getvalue(), get_codec(codec_name)).read_all()
    assert out == records
