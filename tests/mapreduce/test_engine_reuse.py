"""Regression tests for runner reuse and workdir lifecycle."""

import os

from repro.mapreduce import CellKeySerde, Int32Serde, Job, LocalJobRunner
from repro.scidata import integer_grid
from tests.mapreduce.test_engine import EmitCellsMapper, SumReducer


def make_job():
    return Job(
        name="reuse",
        mapper=EmitCellsMapper,
        reducer=SumReducer,
        key_serde=CellKeySerde(ndim=2, variable_mode="name"),
        value_serde=Int32Serde(),
    )


def test_runner_is_reusable_across_jobs():
    """A runner must survive its own post-run cleanup (quickstart bug)."""
    grid = integer_grid((6, 6), seed=1)
    runner = LocalJobRunner()
    first = runner.run(make_job(), grid)
    second = runner.run(make_job(), grid)
    assert sorted(map(repr, first.output)) == sorted(map(repr, second.output))


def test_keep_files_retains_segments(tmp_path):
    grid = integer_grid((4, 4), seed=2)
    runner = LocalJobRunner(workdir=str(tmp_path), keep_files=True)
    runner.run(make_job(), grid)
    assert any(f.name.endswith("-p0") for f in tmp_path.iterdir())


def test_own_workdir_cleaned_when_empty():
    grid = integer_grid((4, 4), seed=2)
    runner = LocalJobRunner()
    workdir = runner.workdir
    runner.run(make_job(), grid)
    # either removed entirely or left empty -- never littered
    assert not os.path.isdir(workdir) or os.listdir(workdir) == []


def test_explicit_workdir_never_deleted(tmp_path):
    grid = integer_grid((4, 4), seed=2)
    runner = LocalJobRunner(workdir=str(tmp_path))
    runner.run(make_job(), grid)
    assert tmp_path.is_dir()
