"""ParallelJobRunner is a drop-in for LocalJobRunner.

The contract under test: for any job configuration, the multiprocess
runtime produces **byte-identical counters** (including the paper's
headline MAP_OUTPUT_MATERIALIZED_BYTES and SHUFFLE_BYTES) and identical
reduce output to the serial runner, because both execute the same task
functions over the same IFile/codec data path.
"""

import pytest

from repro.mapreduce import (
    CellKeySerde,
    Int32Serde,
    Job,
    LocalJobRunner,
    ParallelJobRunner,
)
from repro.mapreduce.metrics import C
from repro.mapreduce.simcluster.model import ClusterSimulator
from repro.scidata import integer_grid
from tests.mapreduce.test_engine import (
    EmitCellsMapper,
    SumCombiner,
    SumReducer,
    make_job,
)


@pytest.fixture
def grid():
    return integer_grid((8, 8), seed=11, low=0, high=100)


def assert_equivalent(grid, **job_overrides):
    serial = LocalJobRunner().run(make_job(**job_overrides), grid)
    parallel = ParallelJobRunner(max_workers=3).run(
        make_job(**job_overrides), grid)
    assert serial.counters == parallel.counters, (
        f"counter drift: {serial.counters.diff(parallel.counters)}")
    assert serial.counters.as_dict() == parallel.counters.as_dict()
    assert serial.output == parallel.output
    assert (serial.map_output_stats.materialized_bytes
            == parallel.map_output_stats.materialized_bytes)
    assert serial.map_output_stats.key_bytes == parallel.map_output_stats.key_bytes
    assert serial.num_map_tasks == parallel.num_map_tasks
    assert serial.num_reduce_tasks == parallel.num_reduce_tasks
    return serial, parallel


class TestCounterEquivalence:
    def test_single_task_job(self, grid):
        assert_equivalent(grid)

    def test_many_maps_many_reducers(self, grid):
        serial, parallel = assert_equivalent(
            grid, num_map_tasks=4, num_reducers=3)
        assert parallel.counters[C.SHUFFLE_BYTES] == \
            parallel.counters[C.MAP_OUTPUT_MATERIALIZED_BYTES]

    def test_spills(self, grid):
        serial, parallel = assert_equivalent(
            grid, num_reducers=2, sort_buffer_bytes=1024)
        assert parallel.counters[C.SPILL_COUNT] > 1

    def test_combiner(self, grid):
        serial, parallel = assert_equivalent(
            grid, num_map_tasks=2, combiner=SumCombiner)
        assert parallel.counters[C.COMBINE_INPUT_RECORDS] > 0

    def test_compression_codec(self, grid):
        assert_equivalent(grid, num_map_tasks=2, num_reducers=2, codec="zlib")

    def test_multipass_merge(self):
        grid = integer_grid((12, 4), seed=3)
        serial, parallel = assert_equivalent(
            grid, num_map_tasks=12, merge_factor=2)
        assert parallel.counters[C.MERGE_PASS_BYTES] > 0

    def test_profiles_cover_every_task(self, grid):
        result = ParallelJobRunner(max_workers=2).run(
            make_job(num_map_tasks=4, num_reducers=2), grid)
        kinds = [p.kind for p in result.task_profiles]
        assert kinds.count("map") == 4
        assert kinds.count("reduce") == 2
        for p in result.task_profiles:
            assert p.total_cpu >= 0.0
            if p.kind == "map":
                assert p.local_write_bytes > 0


class TestRuntimeTrace:
    def test_trace_attached_and_complete(self, grid):
        result = ParallelJobRunner(max_workers=2).run(
            make_job(num_map_tasks=3, num_reducers=2), grid)
        trace = result.trace
        assert trace is not None
        assert trace.count("queued") == 5
        assert trace.count("finished") == 5
        for tid in ["m00000", "m00001", "m00002", "r00000", "r00001"]:
            events = [e.event for e in trace.events_for(tid)]
            assert events[0] == "queued"
            assert "started" in events and "finished" in events
            assert trace.task_wall_clock(tid) >= 0.0
        assert trace.wall_clock > 0.0
        assert "finished" in trace.format_timeline()

    def test_trace_profiles_feed_the_cluster_simulator(self, grid):
        """A measured parallel execution re-prices onto a simulated
        cluster exactly like the serial runner's profile list."""
        result = ParallelJobRunner(max_workers=2).run(
            make_job(num_map_tasks=4, num_reducers=2), grid)
        profiles = result.trace.task_profiles()
        assert [p.task_id for p in profiles] == \
            [p.task_id for p in result.task_profiles]
        sim = ClusterSimulator()
        via_trace = sim.simulate(profiles)
        via_result = sim.simulate(result.task_profiles)
        assert via_trace.total_seconds == via_result.total_seconds
        assert len(result.trace.task_profiles(kind="map")) == 4


class TestRunnerApi:
    def test_empty_splits_rejected(self, grid):
        with pytest.raises(ValueError):
            ParallelJobRunner(max_workers=2).run(make_job(), grid, splits=[])

    def test_runner_is_reusable_across_jobs(self, grid):
        with ParallelJobRunner(max_workers=2) as runner:
            first = runner.run(make_job(num_map_tasks=2), grid)
            second = runner.run(make_job(num_map_tasks=2), grid)
            assert first.output == second.output
            assert runner.last_trace is not None

    def test_explicit_splits(self, grid):
        from repro.scidata.splits import ArraySplitter

        splits = ArraySplitter(4).split(grid)
        serial = LocalJobRunner().run(make_job(num_reducers=2), grid, splits)
        parallel = ParallelJobRunner(max_workers=2).run(
            make_job(num_reducers=2), grid, splits)
        assert serial.counters == parallel.counters
        assert serial.output == parallel.output
