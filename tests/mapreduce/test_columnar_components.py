"""Unit tests for the columnar pipeline's building blocks.

Every batched/vectorized primitive must be byte- (and object-)
equivalent to the scalar loop it replaces; these tests pin each one
independently so an equivalence failure in the full-engine A/B suite
can be localized.
"""

import numpy as np
import pytest

from repro.mapreduce.columnar import PartitionBuffer
from repro.mapreduce.ifile import IFileReader, IFileWriter
from repro.mapreduce.keys import CellKey, CellKeySerde, RangeKey, RangeKeySerde
from repro.mapreduce.partition import HashPartitioner
from repro.mapreduce.serde import (
    BytesSerde,
    Float32Serde,
    Float64Serde,
    Int32Serde,
    Int64Serde,
)
from repro.mapreduce.sort import (
    argsort_key_matrix,
    group_bounds,
    group_by_key,
    sort_records,
)
from repro.queries.sliding_mean import SumCountSerde

RNG = np.random.default_rng(42)


def as_matrix(blobs: list[bytes]) -> np.ndarray:
    width = len(blobs[0])
    return np.frombuffer(b"".join(blobs), dtype=np.uint8).reshape(-1, width)


# --------------------------------------------------------------- serde batch


FIXED_CASES = [
    (Int32Serde(), [0, 1, -1, 2**31 - 1, -(2**31), 12345]),
    (Int64Serde(), [0, 1, -1, 2**63 - 1, -(2**63), -987654321]),
    (Float32Serde(), [0.0, -1.5, 3.25, 1e30, -1e-30]),
    (Float64Serde(), [0.0, -1.5, 3.141592653589793, 1e300, -1e-300]),
]


@pytest.mark.parametrize("serde,values", FIXED_CASES,
                         ids=[type(s).__name__ for s, _ in FIXED_CASES])
def test_pack_batch_matches_scalar_writes(serde, values):
    scalar = b"".join(serde.to_bytes(v) for v in values)
    assert serde.pack_batch(values) == scalar


@pytest.mark.parametrize("serde,values", FIXED_CASES,
                         ids=[type(s).__name__ for s, _ in FIXED_CASES])
def test_read_column_matches_scalar_reads(serde, values):
    blob = b"".join(serde.to_bytes(v) for v in values)
    decoded = serde.read_column(blob, len(values))
    expected = [serde.from_bytes(serde.to_bytes(v)) for v in values]
    assert decoded == expected
    assert all(type(d) is type(e) for d, e in zip(decoded, expected))


@pytest.mark.parametrize("serde,values", FIXED_CASES,
                         ids=[type(s).__name__ for s, _ in FIXED_CASES])
def test_read_batch_matches_scalar_reads(serde, values):
    blobs = [serde.to_bytes(v) for v in values]
    assert serde.read_batch(blobs) == [serde.from_bytes(b) for b in blobs]


def test_read_column_rejects_bad_length():
    with pytest.raises(ValueError):
        Int32Serde().read_column(b"\x00" * 9, 2)


def test_pack_batch_range_checks():
    with pytest.raises(ValueError):
        Int32Serde().pack_batch([2**31])
    with pytest.raises(TypeError):
        Int32Serde().pack_batch(np.zeros((2, 2)))


def test_variable_width_serde_uses_fallback():
    s = BytesSerde()
    blobs = [s.to_bytes(b"a"), s.to_bytes(b"longer")]
    assert s.read_batch(blobs) == [b"a", b"longer"]


def test_sumcount_pack_and_read_column():
    s = SumCountSerde()
    pairs = [(0.5, 1), (-2.25, 7), (1e9, 0), (3.0, 2**32 - 1)]
    scalar = b"".join(s.to_bytes(p) for p in pairs)
    rows = np.array([[a, b] for a, b in pairs], dtype=np.float64)
    assert s.pack_batch(rows) == scalar
    assert s.read_column(scalar, len(pairs)) == [
        s.from_bytes(s.to_bytes(p)) for p in pairs
    ]
    with pytest.raises(ValueError):
        s.pack_batch(np.array([[1.0, -1.0]]))


# ----------------------------------------------------------------- key batch


@pytest.mark.parametrize("variable_mode,variable", [
    ("name", "windspeed1"), ("index", 3),
])
def test_cell_key_batch_matches_scalar(variable_mode, variable):
    serde = CellKeySerde(3, variable_mode)
    coords = RNG.integers(0, 50, size=(64, 3))
    mat, width = serde.pack_batch_keys(variable, coords)
    assert mat.shape == (64, width)
    for i, row in enumerate(coords):
        expected = serde.to_bytes(CellKey(variable, tuple(int(c) for c in row)))
        assert mat[i].tobytes() == expected


@pytest.mark.parametrize("variable_mode,variable", [
    ("name", "windspeed1"), ("index", 3),
])
def test_range_key_batch_matches_scalar(variable_mode, variable):
    serde = RangeKeySerde(variable_mode)
    starts = RNG.integers(0, 10**9, size=40)
    counts = RNG.integers(1, 10**6, size=40)
    blobs = serde.write_batch(variable, starts, counts)
    for blob, start, count in zip(blobs, starts, counts):
        expected = serde.to_bytes(RangeKey(variable, int(start), int(count)))
        assert blob == expected


def test_range_key_batch_validation():
    serde = RangeKeySerde("index")
    with pytest.raises(ValueError):
        serde.pack_batch_keys(0, np.array([-1]), np.array([1]))
    with pytest.raises(ValueError):
        serde.pack_batch_keys(0, np.array([0]), np.array([0]))


# ------------------------------------------------------------- partitioning


@pytest.mark.parametrize("num_reducers", [1, 2, 5])
def test_partition_batch_matches_scalar(num_reducers):
    part = HashPartitioner(num_reducers)
    serde = CellKeySerde(2, "index")
    mat, width = serde.pack_batch_keys(7, RNG.integers(0, 100, size=(128, 2)))
    batch = part.partition_batch(mat)
    flat = mat.tobytes()
    for i in range(mat.shape[0]):
        assert batch[i] == part.partition(flat[i * width:(i + 1) * width])


# ----------------------------------------------------------- sorting helpers


def test_argsort_key_matrix_matches_sort_records():
    serde = CellKeySerde(2, "index")
    coords = RNG.integers(0, 4, size=(200, 2))  # duplicates on purpose
    mat, width = serde.pack_batch_keys(5, coords)
    values = [i.to_bytes(4, "big") for i in range(200)]
    records = [(mat[i].tobytes(), values[i]) for i in range(200)]
    order = argsort_key_matrix(mat)
    fast = [(mat[i].tobytes(), values[i]) for i in order]
    assert fast == sort_records(records)  # stable: ties keep emission order


def test_group_bounds_matches_group_by_key():
    serde = CellKeySerde(1, "index")
    coords = np.sort(RNG.integers(0, 10, size=(60, 1)), axis=0)
    mat, _ = serde.pack_batch_keys(1, coords)
    records = [(mat[i].tobytes(), b"") for i in range(60)]
    groups = [(k, len(vs)) for k, vs in group_by_key(records)]
    bounds = group_bounds(mat)
    fast = [
        (mat[bounds[g]].tobytes(), int(bounds[g + 1] - bounds[g]))
        for g in range(len(bounds) - 1)
    ]
    assert fast == groups
    assert group_bounds(np.empty((0, 4), np.uint8)).tolist() == [0]


# ------------------------------------------------------------------- IFile


def test_append_batch_matches_append_loop(tmp_path):
    keys = RNG.integers(0, 256, size=(50, 12)).astype(np.uint8)
    values = RNG.integers(0, 256, size=(50, 4)).astype(np.uint8)

    loop = IFileWriter(None)
    for i in range(50):
        loop.append(keys[i].tobytes(), values[i].tobytes())
    loop_stats = loop.close()

    batch = IFileWriter(None)
    batch.append_batch(keys, values)
    batch_stats = batch.close()

    assert batch.getvalue() == loop.getvalue()
    assert batch_stats == loop_stats


def test_read_columnar_roundtrip():
    keys = RNG.integers(0, 256, size=(30, 8)).astype(np.uint8)
    values = RNG.integers(0, 256, size=(30, 12)).astype(np.uint8)
    writer = IFileWriter(None)
    writer.append_batch(keys, values)
    writer.close()
    reader = IFileReader(writer.getvalue())
    kmat, vmat = reader.read_columnar(8, 12)
    assert np.array_equal(kmat, keys)
    assert np.array_equal(vmat, values)
    # wrong widths are detected, not misparsed: (12, 8) has the same
    # pitch but a different frame; (7, 12) does not divide the stream
    assert reader.read_columnar(12, 8) is None
    assert reader.read_columnar(7, 12) is None


def test_read_columnar_rejects_variable_width_stream():
    writer = IFileWriter(None)
    writer.append(b"abcd", b"xy")
    writer.append(b"ab", b"wxyz")  # same pitch, different frame
    writer.close()
    reader = IFileReader(writer.getvalue())
    assert reader.read_columnar(4, 2) is None
    assert reader.read_all() == [(b"abcd", b"xy"), (b"ab", b"wxyz")]


def test_read_columnar_empty_segment():
    writer = IFileWriter(None)
    writer.close()
    kmat, vmat = IFileReader(writer.getvalue()).read_columnar(4, 2)
    assert kmat.shape == (0, 4) and vmat.shape == (0, 2)


# --------------------------------------------------------- PartitionBuffer


def test_partition_buffer_columnar_view_and_order():
    buf = PartitionBuffer()
    k1 = np.arange(8, dtype=np.uint8).reshape(2, 4)
    v1 = np.arange(4, dtype=np.uint8).reshape(2, 2)
    k2 = np.arange(100, 112, dtype=np.uint8).reshape(3, 4)
    v2 = np.arange(50, 56, dtype=np.uint8).reshape(3, 2)
    buf.append_chunk(k1, v1)
    buf.append_chunk(k2, v2)
    assert buf.records == 5
    kmat, vmat = buf.columnar_view()
    assert np.array_equal(kmat, np.vstack([k1, k2]))
    assert np.array_equal(vmat, np.vstack([v1, v2]))
    # to_records preserves emission order too
    recs = buf.to_records()
    assert recs[0] == (k1[0].tobytes(), v1[0].tobytes())
    assert recs[-1] == (k2[-1].tobytes(), v2[-1].tobytes())
    buf.clear()
    assert buf.records == 0 and buf.columnar_view() is None


def test_partition_buffer_mixed_decays_to_records():
    buf = PartitionBuffer()
    buf.append_chunk(np.zeros((1, 4), np.uint8), np.zeros((1, 2), np.uint8))
    buf.append(b"abcd", b"xy")
    assert buf.columnar_view() is None
    assert buf.to_records() == [
        (b"\x00\x00\x00\x00", b"\x00\x00"), (b"abcd", b"xy")
    ]


def test_partition_buffer_width_mismatch_decays():
    buf = PartitionBuffer()
    buf.append_chunk(np.zeros((1, 4), np.uint8), np.zeros((1, 2), np.uint8))
    buf.append_chunk(np.zeros((1, 6), np.uint8), np.zeros((1, 2), np.uint8))
    assert buf.columnar_view() is None
    assert buf.records == 2
