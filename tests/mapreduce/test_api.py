"""Unit tests for the Mapper/Reducer context layer."""

import numpy as np
import pytest

from repro.mapreduce.api import MapContext, ReduceContext
from repro.mapreduce.keys import CellKey, CellKeySerde
from repro.mapreduce.metrics import C, Counters
from repro.mapreduce.serde import (
    BytesSerde,
    Float32Serde,
    Float64Serde,
    Int32Serde,
    Int64Serde,
    TextSerde,
)


def capture_ctx(key_serde, value_serde):
    records = []
    ctx = MapContext(key_serde, value_serde,
                     lambda k, v: records.append((k, v)), Counters())
    return ctx, records


class TestEmit:
    def test_emit_serializes_both_sides(self):
        ctx, records = capture_ctx(TextSerde(), Int32Serde())
        ctx.emit("hello", 42)
        assert len(records) == 1
        kb, vb = records[0]
        assert TextSerde().from_bytes(kb) == "hello"
        assert Int32Serde().from_bytes(vb) == 42
        assert ctx.counters[C.MAP_OUTPUT_RECORDS] == 1

    def test_emit_serialized_passthrough(self):
        ctx, records = capture_ctx(BytesSerde(), BytesSerde())
        ctx.emit_serialized(b"K", b"V")
        assert records == [(b"K", b"V")]
        assert ctx.counters[C.MAP_OUTPUT_RECORDS] == 1


class TestEmitCells:
    def test_matches_scalar_emit(self):
        serde = CellKeySerde(ndim=2, variable_mode="name")
        ctx1, rec1 = capture_ctx(serde, Int32Serde())
        ctx2, rec2 = capture_ctx(serde, Int32Serde())
        coords = np.array([[0, 1], [2, 3]])
        values = np.array([10, -20], dtype=np.int32)
        ctx1.emit_cells("v", coords, values)
        for c, v in zip(coords, values):
            ctx2.emit(CellKey("v", tuple(int(x) for x in c)), int(v))
        assert rec1 == rec2

    @pytest.mark.parametrize("dtype,serde_cls", [
        (np.int32, Int32Serde), (np.int64, Int64Serde),
        (np.float32, Float32Serde), (np.float64, Float64Serde),
    ])
    def test_value_packing_per_dtype(self, dtype, serde_cls):
        serde = CellKeySerde(ndim=1, variable_mode="index")
        value_serde = serde_cls()
        ctx, records = capture_ctx(serde, value_serde)
        values = np.array([1, 2, 3], dtype=dtype)
        ctx.emit_cells(0, np.array([[0], [1], [2]]), values)
        decoded = [value_serde.from_bytes(v) for _, v in records]
        assert decoded == pytest.approx(values.tolist())

    def test_requires_cell_key_serde(self):
        ctx, _ = capture_ctx(TextSerde(), Int32Serde())
        with pytest.raises(TypeError):
            ctx.emit_cells("v", np.array([[0, 0]]), np.array([1]))

    def test_requires_fixed_width_values(self):
        ctx, _ = capture_ctx(CellKeySerde(2), BytesSerde())
        with pytest.raises(TypeError):
            ctx.emit_cells("v", np.array([[0, 0]]), np.array([1]))

    def test_length_mismatch(self):
        ctx, _ = capture_ctx(CellKeySerde(2), Int32Serde())
        with pytest.raises(ValueError):
            ctx.emit_cells("v", np.array([[0, 0]]), np.array([1, 2]))

    def test_unsupported_value_dtype(self):
        ctx, _ = capture_ctx(CellKeySerde(1), Int32Serde())
        with pytest.raises(TypeError):
            ctx.emit_cells("v", np.array([[0]]),
                           np.array(["x"], dtype=object))

    def test_empty_batch(self):
        ctx, records = capture_ctx(CellKeySerde(2), Int32Serde())
        ctx.emit_cells("v", np.zeros((0, 2), dtype=np.int64),
                       np.zeros(0, dtype=np.int32))
        assert records == []
        assert ctx.counters[C.MAP_OUTPUT_RECORDS] == 0

    def test_negative_values_roundtrip(self):
        serde = CellKeySerde(ndim=1)
        value_serde = Int32Serde()
        ctx, records = capture_ctx(serde, value_serde)
        ctx.emit_cells("v", np.array([[0]]), np.array([-7], dtype=np.int32))
        assert value_serde.from_bytes(records[0][1]) == -7


class TestReduceContext:
    def test_collects_output_and_counts(self):
        ctx = ReduceContext(Counters())
        ctx.emit("k", 1)
        ctx.emit("k2", 2)
        assert ctx.output == [("k", 1), ("k2", 2)]
        assert ctx.counters[C.REDUCE_OUTPUT_RECORDS] == 2
