"""Chunked IFile block layout: round-trip, CRC localization, salvage.

The blocked format exists so a bit-flip costs one block, not a whole
map re-run: the reader must pinpoint the damaged block
(:class:`IFileBlockCorruptError`), and :meth:`IFileReader.read_salvage`
must recover every healthy record while reporting exactly what was
lost.  Whole-footer damage stays whole-segment
(:class:`IFileCorruptError`) -- that is the repair rung's territory.
"""

import zlib

import numpy as np
import pytest

from repro.mapreduce.codecs import NullCodec, ZlibCodec
from repro.mapreduce.ifile import (
    BLOCK_MAGIC,
    BadBlock,
    IFileBlockCorruptError,
    IFileCorruptError,
    IFileReader,
    IFileWriter,
)


def sample_records(n=200, key_width=12, value_width=4, seed=3):
    """Deterministic fixed-width records, bulky enough for many blocks."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 256, size=(n, key_width), dtype=np.uint8)
    values = rng.integers(0, 256, size=(n, value_width), dtype=np.uint8)
    return [(keys[i].tobytes(), values[i].tobytes()) for i in range(n)]


def write_segment(path, records, codec=None, block_bytes=512):
    writer = IFileWriter(path, codec or NullCodec(), block_bytes=block_bytes)
    for k, v in records:
        writer.append(k, v)
    return writer.close()


class TestRoundTrip:
    @pytest.mark.parametrize("codec_factory", [NullCodec, ZlibCodec])
    def test_blocked_records_equal_plain_records(self, tmp_path, codec_factory):
        records = sample_records()
        blocked = tmp_path / "blocked"
        plain = tmp_path / "plain"
        write_segment(blocked, records, codec_factory())
        writer = IFileWriter(plain, codec_factory())
        for k, v in records:
            writer.append(k, v)
        writer.close()
        rb = IFileReader(blocked, codec_factory())
        rp = IFileReader(plain, codec_factory())
        assert rb.is_blocked and not rp.is_blocked
        assert rb.read_all() == rp.read_all() == records

    def test_magic_dispatch(self, tmp_path):
        path = tmp_path / "seg"
        write_segment(path, sample_records(20))
        assert path.read_bytes().startswith(BLOCK_MAGIC)

    def test_multiple_blocks_are_created(self, tmp_path):
        path = tmp_path / "seg"
        write_segment(path, sample_records(200), block_bytes=512)
        reader = IFileReader(path)
        assert len(reader._blocks) > 2  # ~3.6 KiB of records / 512 B blocks

    def test_empty_segment_roundtrips(self, tmp_path):
        path = tmp_path / "empty"
        write_segment(path, [])
        assert IFileReader(path).read_all() == []

    def test_append_batch_matches_per_record_append(self, tmp_path):
        records = sample_records(150)
        keys = np.frombuffer(b"".join(k for k, _ in records),
                             dtype=np.uint8).reshape(len(records), -1)
        values = np.frombuffer(b"".join(v for _, v in records),
                               dtype=np.uint8).reshape(len(records), -1)
        a, b = tmp_path / "scalar", tmp_path / "batch"
        stats_a = write_segment(a, records)
        writer = IFileWriter(b, NullCodec(), block_bytes=512)
        writer.append_batch(keys, values)
        stats_b = writer.close()
        assert a.read_bytes() == b.read_bytes()
        assert stats_a == stats_b

    def test_block_bytes_floor(self, tmp_path):
        with pytest.raises(ValueError):
            IFileWriter(tmp_path / "x", block_bytes=100)

    def test_read_columnar_declines_blocked_segments(self, tmp_path):
        path = tmp_path / "seg"
        write_segment(path, sample_records(50))
        assert IFileReader(path).read_columnar(12, 4) is None


def flip_byte(path, offset):
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestCorruptionLocalization:
    def test_bitflip_names_the_block(self, tmp_path):
        path = tmp_path / "seg"
        write_segment(path, sample_records())
        flip_byte(path, len(BLOCK_MAGIC) + 10)  # inside block 0
        with pytest.raises(IFileBlockCorruptError) as exc:
            IFileReader(path)
        assert exc.value.block_index == 0
        assert exc.value.records_lost > 0
        assert exc.value.path == str(path)

    def test_salvage_recovers_every_healthy_block(self, tmp_path):
        records = sample_records()
        path = tmp_path / "seg"
        write_segment(path, records)
        flip_byte(path, len(BLOCK_MAGIC) + 10)
        reader = IFileReader(path, verify_checksum=False)
        salvaged, bad = reader.read_salvage()
        assert len(bad) == 1 and isinstance(bad[0], BadBlock)
        assert bad[0].index == 0
        assert len(salvaged) + bad[0].records == len(records)
        # everything after the damaged block survives, in stream order
        assert salvaged == records[bad[0].records:]

    def test_salvage_reports_raw_bytes_for_quarantine(self, tmp_path):
        path = tmp_path / "seg"
        write_segment(path, sample_records())
        flip_byte(path, len(BLOCK_MAGIC) + 10)
        _, bad = IFileReader(path, verify_checksum=False).read_salvage()
        # the BadBlock carries the stored compressed bytes (CRC now wrong)
        reader = IFileReader(path, verify_checksum=False)
        _, _, comp_len, crc = reader._blocks[0]
        assert len(bad[0].raw) == comp_len
        assert zlib.crc32(bad[0].raw) != crc

    def test_footer_damage_is_whole_segment(self, tmp_path):
        path = tmp_path / "seg"
        write_segment(path, sample_records())
        flip_byte(path, len(path.read_bytes()) - 12)  # inside the footer
        with pytest.raises(IFileCorruptError) as exc:
            IFileReader(path)
        assert not isinstance(exc.value, IFileBlockCorruptError)

    def test_truncation_is_whole_segment(self, tmp_path):
        path = tmp_path / "seg"
        write_segment(path, sample_records())
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        with pytest.raises(IFileCorruptError):
            IFileReader(path)

    def test_intact_plain_segment_salvages_to_itself(self, tmp_path):
        records = sample_records(30)
        path = tmp_path / "plain"
        writer = IFileWriter(path, NullCodec())
        for k, v in records:
            writer.append(k, v)
        writer.close()
        salvaged, bad = IFileReader(path).read_salvage()
        assert salvaged == records and bad == []

    def test_compressed_block_decode_failure_is_salvageable(self, tmp_path):
        """With a real codec a flip usually breaks zlib, not just the
        CRC; salvage must treat a decode failure like a CRC failure."""
        records = sample_records()
        path = tmp_path / "seg"
        write_segment(path, records, ZlibCodec())
        flip_byte(path, len(BLOCK_MAGIC) + 10)
        salvaged, bad = IFileReader(
            path, ZlibCodec(), verify_checksum=False).read_salvage()
        assert len(bad) == 1
        assert len(salvaged) + bad[0].records == len(records)
