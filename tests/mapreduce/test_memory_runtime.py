"""Memory-safe runtime: ledger semantics, spill boundaries, OOM ladder.

Four layers of the memory model are pinned here:

* :class:`MemoryBudget` itself -- charge modes (try / wait / enforce /
  force), grant-when-alone, per-owner quotas, the fault hooks the
  ``oom`` injector arms, and the no-leak guarantee of ``rent()``;
* the spill boundary -- the scalar and columnar map paths must flush
  at exactly the same record when the running byte count crosses
  ``sort_buffer_bytes``, including one byte under, exactly on, and one
  byte over a record-aligned threshold, and the ledger ends every
  error path (a ``MemoryError`` mid-spill) at zero bytes held;
* the degrade-on-retry ladder -- an injected OOM at any ledger site
  produces byte-identical output and *fully* counter-identical results
  between the serial and parallel runners;
* a real ``RLIMIT_AS`` on forked workers (the ``rlimit`` marker,
  Linux-only) turning an otherwise-satisfiable allocation into a
  genuine kernel refusal the ladder must absorb.
"""

import sys
import threading
import time

import pytest

from repro.mapreduce.columnar import PartitionBuffer
from repro.mapreduce.engine import LocalJobRunner, run_map_task
from repro.mapreduce.metrics import C
from repro.mapreduce.runtime import (
    FaultInjector,
    ParallelJobRunner,
    ShuffleConfig,
)
from repro.mapreduce.runtime.memory import MemoryBudget, MemoryBudgetExceeded
from repro.queries import BoxSubsetQuery
from repro.scidata import Slab, integer_grid
from repro.scidata.splits import ArraySplitter


@pytest.fixture(scope="module")
def grid():
    return integer_grid((8, 8, 8), seed=41, low=0, high=900)


def make_job(grid, **overrides):
    overrides.setdefault("num_map_tasks", 2)
    overrides.setdefault("num_reducers", 2)
    query = BoxSubsetQuery(grid, "values", Slab((1, 1, 1), (6, 6, 6)))
    return query.build_job("plain", **overrides)


# ---------------------------------------------------------------- the ledger


class TestMemoryBudget:
    def test_charge_release_peak(self):
        budget = MemoryBudget(100)
        assert budget.try_charge(60, site="sort")
        assert budget.used == 60
        assert not budget.try_charge(50, site="sort")
        budget.release(60, site="sort")
        assert budget.used == 0
        assert budget.peak == 60
        assert budget.stats()["site_peaks"]["sort"] == 60

    def test_grant_when_alone_oversize(self):
        # An oversize charge with nothing else held must be admitted
        # (recorded as overdraft in the peak): any budget completes a
        # clean run, it just reports how over it went.
        budget = MemoryBudget(100)
        assert budget.try_charge(500, site="merge")
        assert budget.used == 500
        assert budget.peak == 500

    def test_enforce_raises_only_with_company(self):
        budget = MemoryBudget(100)
        with budget.rent(900, site="merge"):  # grant-when-alone
            with pytest.raises(MemoryBudgetExceeded):
                budget.charge(10, site="sort", enforce=True)
        # MemoryBudgetExceeded must be catchable as MemoryError: the
        # degrade ladder has exactly one except clause for both the
        # simulated and the genuine article.
        assert issubclass(MemoryBudgetExceeded, MemoryError)

    def test_wait_backpressure(self):
        budget = MemoryBudget(100)
        budget.charge(80, site="fetch")
        done = threading.Event()

        def waiter():
            budget.charge(40, site="fetch", wait=True)
            done.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not done.is_set()  # parked: 80 + 40 > 100
        budget.release(80, site="fetch")
        assert done.wait(2.0)
        thread.join(2.0)
        assert budget.backpressure_waits >= 1

    def test_rent_releases_on_error(self):
        budget = MemoryBudget(1000)
        with pytest.raises(RuntimeError):
            with budget.rent(400, site="sort"):
                raise RuntimeError("spill blew up")
        assert budget.used == 0

    def test_owner_quota(self):
        budget = MemoryBudget(None)
        budget.set_quota("tenant-a", 100)
        assert budget.try_charge(80, site="jobs", owner="tenant-a")
        assert not budget.try_charge(30, site="jobs", owner="tenant-a")
        assert budget.try_charge(30, site="jobs", owner="tenant-b")
        budget.release(80, site="jobs", owner="tenant-a")
        assert budget.owner_used("tenant-a") == 0

    def test_fail_next_hook(self):
        budget = MemoryBudget(1 << 20)
        budget.fail_next("sort")
        with pytest.raises(MemoryError):
            budget.charge(10, site="sort", force=True)
        # one-shot: the next charge at the site succeeds
        budget.charge(10, site="sort", force=True)
        assert budget.used == 10

    def test_kill_above_hook(self):
        budget = MemoryBudget(1 << 20)
        fired = []
        budget.kill_above(100, lambda watched: fired.append(watched),
                          site="fetch")
        budget.charge(90, site="fetch", force=True)
        assert not fired
        budget.charge(20, site="fetch", force=True)
        assert fired


# ------------------------------------------------------- the spill boundary


class TestSpillBoundary:
    def _probe_record_bytes(self, grid):
        """The uniform per-record spill-threshold cost (k + v + 8)."""
        result = LocalJobRunner().run(make_job(grid), grid)
        records = result.counters["MAP_OUTPUT_RECORDS"]
        payload = result.counters["MAP_OUTPUT_BYTES"]
        assert records > 0 and payload % records == 0
        return payload // records + 8

    @pytest.mark.parametrize("offset", [-1, 0, +1])
    def test_scalar_columnar_agree_at_threshold(self, tmp_path, grid,
                                                offset):
        """One byte under, exactly on, and one byte over a record-aligned
        threshold: both paths must flush at the same record and write
        byte-identical spills (counts, records, and final segments)."""
        rec = self._probe_record_bytes(grid)
        threshold = max(1024, (1024 // rec + 1) * rec) + offset
        results = {}
        for flag in (False, True):
            label = "columnar" if flag else "scalar"
            job = make_job(grid, sort_buffer_bytes=threshold)
            job.columnar = flag
            with LocalJobRunner(
                    workdir=str(tmp_path / f"{label}{offset}")) as runner:
                results[label] = runner.run(job, grid)
        col, sca = results["columnar"], results["scalar"]
        assert col.counters["SPILL_COUNT"] == sca.counters["SPILL_COUNT"]
        assert col.counters["SPILL_COUNT"] > 0
        assert col.counters.as_dict() == sca.counters.as_dict()
        assert col.output == sca.output

    def test_partition_buffer_nbytes(self):
        import numpy as np
        scalar, columnar = PartitionBuffer(), PartitionBuffer()
        keys = np.frombuffer(b"abcdefgh", dtype=np.uint8).reshape(2, 4)
        values = np.frombuffer(b"123456", dtype=np.uint8).reshape(2, 3)
        for k, v in zip(keys, values):
            scalar.append(k.tobytes(), v.tobytes())
        columnar.append_chunk(keys, values)
        assert scalar.nbytes == columnar.nbytes == 14
        assert scalar.records == columnar.records == 2
        assert scalar.to_records() == columnar.to_records()
        scalar.clear()
        assert scalar.nbytes == 0 and scalar.records == 0

    def test_ledger_never_leaks_on_memory_error_mid_spill(self, tmp_path,
                                                          grid):
        """A MemoryError raised *inside* a spill (the fail-next hook at
        the sort site) must not leave a byte charged on the ledger."""
        job = make_job(grid, num_map_tasks=1, sort_buffer_bytes=1024)
        split = ArraySplitter(1).split(grid)[0]
        (tmp_path / "oom").mkdir()
        (tmp_path / "clean").mkdir()
        budget = MemoryBudget(1 << 20)
        budget.fail_next("sort")
        with pytest.raises(MemoryError):
            run_map_task(job, split, grid, str(tmp_path / "oom"),
                         memory=budget)
        assert budget.used == 0
        # Same task without the hook: the sort site really does charge
        # (the faulted run died *at* the charge, so its peak stayed 0).
        clean = MemoryBudget(1 << 20)
        run_map_task(job, split, grid, str(tmp_path / "clean"),
                     memory=clean)
        assert clean.used == 0
        assert clean.peak > 0
        assert clean.stats()["site_peaks"]["sort"] > 0


# --------------------------------------------------- the degrade-on-retry


def run_pair(grid, shuffle, plan, **overrides):
    job_kwargs = dict(sort_buffer_bytes=2048)
    job_kwargs.update(overrides)
    serial = LocalJobRunner(shuffle=shuffle, fault_injector=plan()).run(
        make_job(grid, **job_kwargs), grid)
    with ParallelJobRunner(max_workers=2, speculation=False,
                           retry_backoff=0.01, shuffle=shuffle,
                           fault_injector=plan()) as runner:
        parallel = runner.run(make_job(grid, **job_kwargs), grid)
    return serial, parallel


class TestDegradeLadder:
    SHUFFLE = ShuffleConfig(memory_budget=1 << 20, max_inflight_bytes=4096,
                            max_memory_retries=2)

    @pytest.mark.parametrize("site,task", [
        ("sort", "m00001"), ("fetch", "r00000"), ("merge", "r00001"),
    ])
    def test_oom_raise_runner_identity(self, grid, site, task):
        baseline = LocalJobRunner().run(
            make_job(grid, sort_buffer_bytes=2048), grid)
        serial, parallel = run_pair(
            grid, self.SHUFFLE,
            lambda: FaultInjector().oom(task, site=site, op="raise"))
        assert serial.output == parallel.output == baseline.output
        assert serial.counters.as_dict() == parallel.counters.as_dict()
        assert serial.counters[C.MEMORY_OOM_EVENTS] == 1
        assert serial.counters[C.MEMORY_DEGRADED_ATTEMPTS] == 1

    def test_oom_kill_is_sigkill_shaped_in_parallel(self, grid):
        """A threshold kill dies ``os._exit(137)``-style in a worker and
        as an in-process MemoryError serially -- same ladder, same
        bytes, same counters."""
        baseline = LocalJobRunner().run(
            make_job(grid, sort_buffer_bytes=2048), grid)
        serial, parallel = run_pair(
            grid, self.SHUFFLE,
            lambda: FaultInjector().oom("m00001", site="sort", op="kill",
                                        nbytes=1600, sticky=True))
        assert serial.output == parallel.output == baseline.output
        assert serial.counters.as_dict() == parallel.counters.as_dict()
        assert serial.counters[C.MEMORY_OOM_EVENTS] == 1

    def test_ladder_exhaustion_fails_both_runners(self, grid):
        shuffle = ShuffleConfig(memory_budget=1 << 20,
                                max_memory_retries=1)
        plan = lambda: FaultInjector().oom("m00000", site="sort",
                                           op="raise", sticky=True)
        with pytest.raises(MemoryError):
            LocalJobRunner(shuffle=shuffle, fault_injector=plan()).run(
                make_job(grid, sort_buffer_bytes=2048), grid)
        with pytest.raises(Exception):
            with ParallelJobRunner(max_workers=2, speculation=False,
                                   retry_backoff=0.01, shuffle=shuffle,
                                   fault_injector=plan()) as runner:
                runner.run(make_job(grid, sort_buffer_bytes=2048), grid)

    def test_memory_stats_reported(self, grid):
        result = LocalJobRunner(shuffle=self.SHUFFLE).run(
            make_job(grid, sort_buffer_bytes=2048), grid)
        stats = result.memory_stats
        assert stats["budget"] == 1 << 20
        assert 0 < stats["peak_bytes"] <= 1 << 20
        assert stats["oom_events"] == 0
        assert result.counters[C.MEMORY_OOM_EVENTS] == 0


# ----------------------------------------------------------- real RLIMIT_AS


@pytest.mark.rlimit
@pytest.mark.skipif(not sys.platform.startswith("linux"),
                    reason="RLIMIT_AS enforcement is Linux-only")
class TestWorkerRlimit:
    def test_rlimit_turns_alloc_into_genuine_oom(self, grid):
        """Under a 4 GiB address-space cap, a 6 GiB allocation is refused
        by the kernel (not our simulation) and the ladder still lands on
        baseline bytes."""
        baseline = LocalJobRunner().run(
            make_job(grid, sort_buffer_bytes=2048), grid)
        shuffle = ShuffleConfig(memory_budget=1 << 20,
                                max_memory_retries=2)
        with ParallelJobRunner(
                max_workers=2, speculation=False, retry_backoff=0.01,
                shuffle=shuffle, worker_rlimit_bytes=4 << 30,
                fault_injector=FaultInjector().oom(
                    "m00000", site="sort", op="alloc", nbytes=6 << 30),
        ) as runner:
            result = runner.run(
                make_job(grid, sort_buffer_bytes=2048), grid)
        assert result.output == baseline.output
        assert result.counters[C.MEMORY_OOM_EVENTS] >= 1

    def test_generous_rlimit_changes_nothing(self, grid):
        baseline = LocalJobRunner().run(make_job(grid), grid)
        with ParallelJobRunner(max_workers=2, speculation=False,
                               retry_backoff=0.01,
                               worker_rlimit_bytes=8 << 30) as runner:
            result = runner.run(make_job(grid), grid)
        assert result.output == baseline.output
        assert result.counters.as_dict() == baseline.counters.as_dict()
