"""Record-level skipping mode: bisection, quarantine, and the ladder.

Unit coverage for :mod:`repro.mapreduce.runtime.skipping` (bisection
probe counts, quarantine side-files, eligibility), then end-to-end runs
through the serial engine and the parallel runtime proving the three
acceptance properties: a clean run with a :class:`SkipPolicy` attached
is byte-identical to one without, every skipped record lands in
quarantine (counted exactly once), and serial/parallel agree
byte-for-byte on output, counters, and quarantine contents.
"""

import dataclasses
import glob
import os

import pytest

from repro.mapreduce import FaultInjector, LocalJobRunner, ParallelJobRunner
from repro.mapreduce.codecs import NullCodec
from repro.mapreduce.ifile import (
    IFileBlockCorruptError,
    IFileCorruptError,
    IFileReader,
)
from repro.mapreduce.job import SkipPolicy
from repro.mapreduce.metrics import C, Counters
from repro.mapreduce.runtime.fault import PoisonRecordError
from repro.mapreduce.runtime.skipping import (
    QuarantineWriter,
    SkipBudgetExceededError,
    SkipUnsupportedError,
    bisect_poison_records,
    is_skip_eligible,
)
from repro.queries.subset import BoxSubsetQuery
from repro.scidata import integer_grid
from repro.scidata.slab import Slab
from tests.mapreduce.test_engine import make_job

SIDE = 12
#: flat cell index (1, 1) of the 12x12 grid: inside the query box and
#: owned by map task m00000
POISON_CELL = SIDE + 1


@pytest.fixture
def grid():
    return integer_grid((SIDE, SIDE), seed=7, low=0, high=500)


def subset_job(grid, mode="plain", **overrides):
    query = BoxSubsetQuery(grid, "values", Slab((1, 1), (SIDE - 2, SIDE - 2)))
    job = query.build_job(mode, num_map_tasks=4, num_reducers=2,
                          variable_mode="index" if mode == "aggregate" else "name")
    return dataclasses.replace(job, **overrides)


def quarantine_records(directory):
    """All records across the quarantine side-files under ``directory``."""
    records = []
    for path in sorted(glob.glob(os.path.join(directory, "*-quarantine"))):
        records.extend(IFileReader(path, NullCodec()).read_all())
    return records


class TestBisection:
    def probe_for(self, poison):
        calls = []

        def probe(lo, hi):
            calls.append((lo, hi))
            return not any(lo <= p < hi for p in poison)

        return probe, calls

    def test_single_poison_record(self):
        probe, calls = self.probe_for({5})
        assert bisect_poison_records(16, probe, budget=16) == [5]
        # Hadoop's shrinking window: O(log n) probes, not O(n)
        assert len(calls) <= 2 * 4 + 1

    def test_multiple_poison_records_sorted(self):
        probe, _ = self.probe_for({11, 3})
        assert bisect_poison_records(16, probe, budget=16) == [3, 11]

    def test_poison_at_boundaries(self):
        probe, _ = self.probe_for({0, 15})
        assert bisect_poison_records(16, probe, budget=16) == [0, 15]

    def test_budget_exceeded_raises_early(self):
        probe, _ = self.probe_for(set(range(16)))
        with pytest.raises(SkipBudgetExceededError) as exc:
            bisect_poison_records(16, probe, budget=2, task_id="m00000")
        assert exc.value.task_id == "m00000"
        assert exc.value.budget == 2

    def test_empty_range(self):
        probe, calls = self.probe_for({0})
        assert bisect_poison_records(0, probe, budget=1) == []
        assert calls == []

    def test_clean_range_is_one_probe(self):
        probe, calls = self.probe_for(set())
        assert bisect_poison_records(1024, probe, budget=1) == []
        assert len(calls) == 1


class TestEligibility:
    def test_user_exceptions_are_eligible(self):
        assert is_skip_eligible(PoisonRecordError("x"))
        assert is_skip_eligible(ValueError("bad record"))

    def test_block_local_corruption_is_eligible(self):
        assert is_skip_eligible(IFileBlockCorruptError("crc", block_index=2))

    def test_whole_segment_corruption_is_not(self):
        # that is the repair rung's job (re-run the producing mapper)
        assert not is_skip_eligible(IFileCorruptError("checksum mismatch"))

    def test_skippings_own_terminal_errors_are_not(self):
        assert not is_skip_eligible(SkipBudgetExceededError("t", 2, 1))
        assert not is_skip_eligible(SkipUnsupportedError("no map_range"))

    def test_non_exception_baseexceptions_are_not(self):
        assert not is_skip_eligible(KeyboardInterrupt())


class TestQuarantineWriter:
    def test_commit_writes_readable_ifile_and_counters(self, tmp_path):
        writer = QuarantineWriter("m00000", str(tmp_path), SkipPolicy())
        writer.add(b"key", b"value")
        writer.add_tagged("m00000/map-input/13", b"\x01\x02")
        assert writer.quarantine_bytes == len(b"key" + b"value") + \
            len(b"m00000/map-input/13") + 2
        counters = Counters()
        path = writer.commit(counters)
        assert path is not None
        assert IFileReader(path, NullCodec()).read_all() == [
            (b"key", b"value"), (b"m00000/map-input/13", b"\x01\x02")]
        assert counters.get(C.RECORDS_SKIPPED) == 2
        assert counters.get(C.QUARANTINE_RECORDS) == 2
        assert counters.get(C.QUARANTINE_BYTES) == writer.quarantine_bytes

    def test_empty_commit_writes_nothing(self, tmp_path):
        writer = QuarantineWriter("m00001", str(tmp_path), SkipPolicy())
        counters = Counters()
        assert writer.commit(counters) is None
        assert not os.path.exists(writer.path)
        assert counters.get(C.RECORDS_SKIPPED) == 0

    def test_budget_enforced_on_add(self, tmp_path):
        writer = QuarantineWriter(
            "m00002", str(tmp_path), SkipPolicy(skip_budget=1))
        writer.add(b"a", b"1")
        with pytest.raises(SkipBudgetExceededError):
            writer.add(b"b", b"2")

    def test_weighted_skip_counts(self, tmp_path):
        # a quarantined corrupt block is one record but many lost inputs
        writer = QuarantineWriter("r00000", str(tmp_path), SkipPolicy())
        writer.add_tagged("r00000/block/seg/0", b"raw", skipped=17)
        assert writer.skipped == 17

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SkipPolicy(skip_budget=0)


class TestSerialLadder:
    def test_clean_run_with_policy_is_byte_identical(self, grid, tmp_path):
        baseline = LocalJobRunner().run(subset_job(grid), grid)
        result = LocalJobRunner().run(
            subset_job(grid, skipping=SkipPolicy(
                quarantine_dir=str(tmp_path))), grid)
        assert result.output == baseline.output
        assert result.counters == baseline.counters
        assert quarantine_records(str(tmp_path)) == []

    def test_poison_record_is_skipped_and_quarantined(self, grid, tmp_path):
        baseline = LocalJobRunner().run(subset_job(grid), grid)
        qdir = str(tmp_path / "q")
        injector = FaultInjector().poison("m00000", record=POISON_CELL)
        result = LocalJobRunner(fault_injector=injector).run(
            subset_job(grid, skipping=SkipPolicy(quarantine_dir=qdir)), grid)
        assert result.counters.get(C.RECORDS_SKIPPED) == 1
        assert len(result.output) == len(baseline.output) - 1
        # the surviving records are exactly the baseline minus the cell
        lost = set(baseline.output) - set(result.output)
        assert len(lost) == 1
        (key, _), = lost
        assert key.coords == (1, 1)
        quarantined = quarantine_records(qdir)
        assert quarantined == [(f"m00000/map-input/{POISON_CELL}".encode(),
                                quarantined[0][1])]

    def test_poison_without_policy_fails_the_job(self, grid):
        injector = FaultInjector().poison("m00000", record=POISON_CELL)
        with pytest.raises(PoisonRecordError):
            LocalJobRunner(fault_injector=injector).run(subset_job(grid), grid)

    def test_corrupt_block_is_salvaged(self, grid, tmp_path):
        baseline = LocalJobRunner().run(
            subset_job(grid, ifile_block_bytes=512), grid)
        qdir = str(tmp_path / "q")
        injector = FaultInjector().corrupt("m00001", op="flip", offset_frac=0.4)
        result = LocalJobRunner(fault_injector=injector).run(
            subset_job(grid, ifile_block_bytes=512,
                       skipping=SkipPolicy(quarantine_dir=qdir)), grid)
        skipped = result.counters.get(C.RECORDS_SKIPPED)
        assert skipped >= 1
        assert len(result.output) == len(baseline.output) - skipped
        assert set(result.output) < set(baseline.output)
        assert len(quarantine_records(qdir)) >= 1

    def test_whole_segment_corruption_repairs_exactly(self, grid):
        # non-blocked segment + truncation: unsalvageable, so the ladder
        # climbs to segment repair and loses nothing
        baseline = LocalJobRunner().run(subset_job(grid), grid)
        injector = FaultInjector().corrupt("m00001", op="truncate",
                                           offset_frac=0.5)
        result = LocalJobRunner(fault_injector=injector).run(
            subset_job(grid, skipping=SkipPolicy()), grid)
        assert result.output == baseline.output
        assert result.counters.get(C.RECORDS_SKIPPED) == 0

    def test_budget_exhaustion_fails_the_job(self, grid, tmp_path):
        injector = FaultInjector().corrupt("m00001", op="flip", offset_frac=0.4)
        with pytest.raises(SkipBudgetExceededError):
            LocalJobRunner(fault_injector=injector).run(
                subset_job(grid, ifile_block_bytes=512,
                           skipping=SkipPolicy(skip_budget=1)), grid)

    def test_mapper_without_map_range_cannot_skip(self, grid8):
        # EmitCellsMapper has no map_range: skipping degrades to a plain
        # retry, and the sticky poison record fails the job
        injector = FaultInjector().poison("m00000", record=0)
        with pytest.raises(PoisonRecordError):
            LocalJobRunner(fault_injector=injector).run(
                dataclasses.replace(
                    make_job(num_map_tasks=2, num_reducers=1),
                    skipping=SkipPolicy()),
                grid8)

    def test_aggregate_mode_skips_too(self, grid, tmp_path):
        baseline = LocalJobRunner().run(subset_job(grid, mode="aggregate"), grid)
        injector = FaultInjector().poison("m00000", record=POISON_CELL)
        result = LocalJobRunner(fault_injector=injector).run(
            subset_job(grid, mode="aggregate",
                       skipping=SkipPolicy(
                           quarantine_dir=str(tmp_path))), grid)
        assert result.counters.get(C.RECORDS_SKIPPED) == 1
        assert len(result.output) == len(baseline.output) - 1


@pytest.fixture
def grid8():
    return integer_grid((8, 8), seed=11, low=0, high=100)


class TestSerialParallelParity:
    def run_both(self, grid, job_factory, injector_factory, tmp_path):
        serial_q = tmp_path / "serial-q"
        parallel_q = tmp_path / "parallel-q"
        serial = LocalJobRunner(fault_injector=injector_factory()).run(
            job_factory(str(serial_q)), grid)
        runner = ParallelJobRunner(workdir=str(tmp_path / "work"),
                                   fault_injector=injector_factory(),
                                   max_workers=2, retry_backoff=0.01)
        parallel = runner.run(job_factory(str(parallel_q)), grid)
        return serial, parallel, str(serial_q), str(parallel_q)

    def test_poison_parity(self, grid, tmp_path):
        serial, parallel, sq, pq = self.run_both(
            grid,
            lambda q: subset_job(grid, skipping=SkipPolicy(quarantine_dir=q)),
            lambda: FaultInjector().poison("m00000", record=POISON_CELL),
            tmp_path)
        assert serial.output == parallel.output
        assert serial.counters == parallel.counters
        assert quarantine_records(sq) == quarantine_records(pq)
        assert parallel.trace.count("skipping") >= 1
        assert parallel.trace.count("quarantined") >= 1

    def test_corrupt_block_parity(self, grid, tmp_path):
        serial, parallel, sq, pq = self.run_both(
            grid,
            lambda q: subset_job(grid, ifile_block_bytes=512,
                                 skipping=SkipPolicy(quarantine_dir=q)),
            lambda: FaultInjector().corrupt("m00001", op="flip",
                                            offset_frac=0.4),
            tmp_path)
        assert serial.output == parallel.output
        assert serial.counters == parallel.counters
        assert quarantine_records(sq) == quarantine_records(pq)
