"""A/B equivalence: the columnar fast path is byte-identical to scalar.

``Job.columnar`` switches the engine between the batched/columnar record
pipeline and the original record-at-a-time one.  The fast path is only
admissible because it changes *nothing* observable: for every built-in
query, in both key modes, these tests run the same job twice (columnar
on/off) and require identical counters, identical reducer output, and
byte-identical final map-output segment files -- including under the
multiprocess runner and under tiny sort buffers that force multi-spill
merges.
"""

import os

import numpy as np
import pytest

from repro.mapreduce import LocalJobRunner
from repro.mapreduce.runtime import ParallelJobRunner
from repro.queries import (
    BoxSubsetQuery,
    DerivedVariableQuery,
    HistogramQuery,
    SlidingAggregateQuery,
    SlidingMeanQuery,
    SlidingMedianQuery,
)
from repro.scidata import Dataset, Slab, Variable, integer_grid


@pytest.fixture(scope="module")
def grid():
    return integer_grid((6, 6, 6), seed=77, low=0, high=900)


@pytest.fixture(scope="module")
def pair_grid():
    rng = np.random.default_rng(78)
    ds = Dataset()
    ds.add(Variable("u", rng.integers(0, 100, (5, 5, 5)).astype(np.int32)))
    ds.add(Variable("v", rng.integers(0, 100, (5, 5, 5)).astype(np.int32)))
    return ds


def segment_bytes(workdir: str) -> dict[str, bytes]:
    """Map-output segment files of one finished run, keyed by file name.

    Walks recursively: the parallel runtime nests segments in per-run /
    per-attempt directories, but the segment *names* (``m00001-out-p0``)
    are deterministic in both backends.
    """
    out = {}
    for root, _, files in os.walk(workdir):
        for name in files:
            if "-out-p" in name:
                assert name not in out, f"duplicate segment {name}"
                with open(os.path.join(root, name), "rb") as fh:
                    out[name] = fh.read()
    return out


def run_both(tmp_path, dataset, make_job, runner_cls=LocalJobRunner):
    """Run a job columnar and scalar; return both results + segment maps."""
    results, segments = {}, {}
    for flag in (True, False):
        label = "columnar" if flag else "scalar"
        job = make_job()
        job.columnar = flag
        workdir = str(tmp_path / label)
        with runner_cls(workdir=workdir, keep_files=True) as runner:
            results[label] = runner.run(job, dataset)
            segments[label] = segment_bytes(workdir)
    return results, segments


def assert_identical(results, segments):
    col, sca = results["columnar"], results["scalar"]
    assert col.counters.as_dict() == sca.counters.as_dict()
    assert col.output == sca.output
    assert segments["columnar"].keys() == segments["scalar"].keys()
    assert segments["columnar"] == segments["scalar"]
    assert len(segments["columnar"]) > 0


QUERIES = {
    "median": lambda g: SlidingMedianQuery(g, "values", window=3),
    "mean": lambda g: SlidingMeanQuery(g, "values", window=3),
    "max": lambda g: SlidingAggregateQuery(g, "values", op="max", window=3),
    "subset": lambda g: BoxSubsetQuery(
        g, "values", Slab((1, 1, 1), (4, 4, 4))),
}


@pytest.mark.parametrize("name", sorted(QUERIES))
@pytest.mark.parametrize("mode", ["plain", "aggregate"])
def test_query_equivalence(tmp_path, grid, name, mode):
    query = QUERIES[name](grid)
    make_job = lambda: query.build_job(
        mode, num_map_tasks=3, num_reducers=2,
        # tiny buffer: forces several spills per map task, so the
        # columnar spill-merge path actually runs
        sort_buffer_bytes=4096,
    )
    results, segments = run_both(tmp_path, grid, make_job)
    assert_identical(results, segments)
    if mode == "plain":
        # the fast path must actually have records flowing through it
        assert results["columnar"].counters["SPILLED_RECORDS"] > 0


def test_histogram_equivalence(tmp_path, grid):
    query = HistogramQuery(grid, "values", bins=16)
    make_job = lambda: query.build_job(num_map_tasks=3, num_reducers=2)
    results, segments = run_both(tmp_path, grid, make_job)
    assert_identical(results, segments)


def test_derived_equivalence(tmp_path, pair_grid):
    query = DerivedVariableQuery(pair_grid, "u", "v", op="hypot")
    for mode in ("plain", "aggregate"):
        make_job = lambda: query.build_job(
            mode, num_map_tasks=2, num_reducers=2, sort_buffer_bytes=4096)
        results, segments = run_both(tmp_path / mode, pair_grid, make_job)
        assert_identical(results, segments)


def test_index_key_mode_equivalence(tmp_path, grid):
    """variable_mode='index' (the paper's 20-byte keys) is also identical."""
    query = SlidingMedianQuery(grid, "values", window=3)
    make_job = lambda: query.build_job(
        "plain", variable_mode="index", num_map_tasks=2, num_reducers=2,
        sort_buffer_bytes=4096)
    results, segments = run_both(tmp_path, grid, make_job)
    assert_identical(results, segments)


def test_multipass_merge_equivalence(tmp_path, grid):
    """merge_factor=2 forces reducer-side on-disk merge passes."""
    query = SlidingMeanQuery(grid, "values", window=3)
    make_job = lambda: query.build_job(
        "plain", use_combiner=False, num_map_tasks=4, num_reducers=1,
        sort_buffer_bytes=4096, merge_factor=2)
    results, segments = run_both(tmp_path, grid, make_job)
    assert_identical(results, segments)
    assert results["columnar"].counters["MERGE_PASS_BYTES"] > 0


def test_parallel_runner_equivalence(tmp_path, grid):
    """Columnar vs scalar under the multiprocess runtime."""
    query = SlidingMedianQuery(grid, "values", window=3)
    make_job = lambda: query.build_job(
        "plain", num_map_tasks=3, num_reducers=2, sort_buffer_bytes=4096)
    results, segments = run_both(
        tmp_path, grid, make_job,
        runner_cls=lambda **kw: ParallelJobRunner(max_workers=2, **kw))
    assert_identical(results, segments)


def test_parallel_runner_aggregate_equivalence(tmp_path, grid):
    query = SlidingMeanQuery(grid, "values", window=3)
    make_job = lambda: query.build_job(
        "aggregate", num_map_tasks=2, num_reducers=2)
    results, segments = run_both(
        tmp_path, grid, make_job,
        runner_cls=lambda **kw: ParallelJobRunner(max_workers=2, **kw))
    assert_identical(results, segments)
