"""Tests for the discrete-event cluster simulator."""

import pytest

from repro.mapreduce.metrics import TaskProfile
from repro.mapreduce.simcluster import ClusterSimulator, ClusterSpec
from repro.mapreduce.simcluster.model import _schedule


def map_profile(cpu=1.0, disk=0, task_id="m0"):
    return TaskProfile(task_id=task_id, kind="map", input_bytes=disk,
                       cpu_seconds={"map": cpu})


def reduce_profile(cpu=1.0, shuffle=0, task_id="r0"):
    return TaskProfile(task_id=task_id, kind="reduce", shuffle_bytes=shuffle,
                       cpu_seconds={"reduce": cpu})


class TestScheduling:
    def test_single_slot_serializes(self):
        assert _schedule([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_enough_slots_parallelizes(self):
        assert _schedule([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)

    def test_greedy_fill(self):
        # 4 tasks of 1s on 2 slots: 2 waves.
        assert _schedule([1.0] * 4, 2) == pytest.approx(2.0)

    def test_empty(self):
        assert _schedule([], 5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            _schedule([1.0], 0)
        with pytest.raises(ValueError):
            _schedule([-1.0], 1)


class TestCostModel:
    def test_map_duration_includes_disk(self):
        spec = ClusterSpec(disk_bandwidth=100.0, cpu_scale=1.0)
        sim = ClusterSimulator(spec)
        p = TaskProfile(task_id="m", kind="map", input_bytes=50,
                        local_write_bytes=30, local_read_bytes=20,
                        cpu_seconds={"map": 2.0})
        assert sim.map_task_duration(p) == pytest.approx(2.0 + 100 / 100.0)

    def test_reduce_duration_includes_network(self):
        spec = ClusterSpec(disk_bandwidth=100.0, network_bandwidth=50.0)
        sim = ClusterSimulator(spec)
        p = TaskProfile(task_id="r", kind="reduce", shuffle_bytes=100,
                        cpu_seconds={"reduce": 1.0})
        # 100B over net at 50B/s = 2s; 100B landing on disk at 100B/s = 1s
        assert sim.reduce_task_duration(p) == pytest.approx(1.0 + 2.0 + 1.0)

    def test_cpu_scale(self):
        fast = ClusterSimulator(ClusterSpec(cpu_scale=2.0))
        slow = ClusterSimulator(ClusterSpec(cpu_scale=1.0))
        p = map_profile(cpu=4.0)
        assert fast.map_task_duration(p) == pytest.approx(slow.map_task_duration(p) / 2)


class TestTimeline:
    def test_phases_sum(self):
        sim = ClusterSimulator(ClusterSpec(nodes=1, map_slots_per_node=1))
        tl = sim.simulate([map_profile(1.0), reduce_profile(2.0)])
        assert tl.map_seconds == pytest.approx(1.0)
        assert tl.reduce_seconds > 0.0
        assert tl.total_seconds == pytest.approx(tl.map_seconds + tl.reduce_seconds)
        assert tl.total_minutes == pytest.approx(tl.total_seconds / 60.0)

    def test_paper_slot_configuration(self):
        """5 nodes x 2 map slots = 10 map slots (the paper's setup)."""
        spec = ClusterSpec()
        assert spec.map_slots == 10
        assert spec.reduce_slots == 5
        sim = ClusterSimulator(spec)
        # 20 map tasks of 1s on 10 slots: exactly 2 waves.
        tl = sim.simulate([map_profile(1.0, task_id=f"m{i}") for i in range(20)])
        assert tl.map_seconds == pytest.approx(2.0)

    def test_more_intermediate_data_takes_longer(self):
        """Directional check backing E6/E8: shuffle bytes drive runtime."""
        sim = ClusterSimulator()
        small = sim.simulate([map_profile(), reduce_profile(shuffle=10**6)])
        big = sim.simulate([map_profile(), reduce_profile(shuffle=10**9)])
        assert big.total_seconds > small.total_seconds

    def test_cpu_cost_can_outweigh_byte_savings(self):
        """The §III-E effect: a codec that halves bytes but burns CPU loses."""
        sim = ClusterSimulator()
        baseline = sim.simulate(
            [map_profile(cpu=10.0), reduce_profile(shuffle=10**9)])
        compressed = sim.simulate(
            [map_profile(cpu=200.0), reduce_profile(shuffle=5 * 10**8)])
        assert compressed.total_seconds > baseline.total_seconds

    def test_unknown_kind_rejected(self):
        sim = ClusterSimulator()
        with pytest.raises(ValueError):
            sim.simulate([TaskProfile(task_id="x", kind="setup")])


class TestSpecValidation:
    def test_bad_values(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(map_slots_per_node=0)
        with pytest.raises(ValueError):
            ClusterSpec(disk_bandwidth=0)
        with pytest.raises(ValueError):
            ClusterSpec(cpu_scale=-1)
