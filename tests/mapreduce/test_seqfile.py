"""Tests for the SequenceFile-compatible framing (Fig 2's container)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce.seqfile import SYNC_SIZE, SequenceFileWriter, read_sequence_file


class TestWriter:
    def test_single_record_pitch_is_47_for_paper_layout(self):
        # 35-byte key + 4-byte value: the Fig 2 record pitch.
        w = SequenceFileWriter()
        w.append(b"k" * 35, b"v" * 4)
        assert len(w.getvalue()) == 47

    def test_roundtrip(self):
        w = SequenceFileWriter(sync_interval=100)
        records = [(b"key%d" % i, b"value%d" % i) for i in range(50)]
        for k, v in records:
            w.append(k, v)
        out = list(read_sequence_file(w.getvalue(), w.sync_marker))
        assert out == records

    def test_sync_markers_inserted(self):
        w = SequenceFileWriter(sync_interval=100, seed=3)
        for i in range(50):
            w.append(b"0123456789", b"abcdefghij")
        data = w.getvalue()
        # 50 records x 28 bytes = 1400 bytes; sync every ~100 bytes
        assert data.count(w.sync_marker) >= 10

    def test_sync_marker_deterministic(self):
        assert (SequenceFileWriter(seed=5).sync_marker
                == SequenceFileWriter(seed=5).sync_marker)
        assert (SequenceFileWriter(seed=5).sync_marker
                != SequenceFileWriter(seed=6).sync_marker)

    def test_validation(self):
        with pytest.raises(ValueError):
            SequenceFileWriter(sync_interval=10)

    def test_empty_file(self):
        w = SequenceFileWriter()
        assert list(read_sequence_file(w.getvalue(), w.sync_marker)) == []


class TestReader:
    def test_bad_sync_marker_detected(self):
        w = SequenceFileWriter(sync_interval=100, seed=1)
        for i in range(20):
            w.append(b"0123456789", b"abcdefghij")
        wrong = bytes(SYNC_SIZE)
        with pytest.raises(ValueError):
            list(read_sequence_file(w.getvalue(), wrong))

    def test_wrong_marker_length(self):
        with pytest.raises(ValueError):
            list(read_sequence_file(b"", b"short"))

    def test_truncated_stream(self):
        w = SequenceFileWriter()
        w.append(b"abc", b"de")
        data = w.getvalue()
        with pytest.raises(ValueError):
            list(read_sequence_file(data[:-1], w.sync_marker))
        with pytest.raises(ValueError):
            list(read_sequence_file(data[:2], w.sync_marker))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.binary(max_size=30), st.binary(max_size=30)),
                max_size=40),
       st.integers(100, 500))
def test_roundtrip_property(records, interval):
    w = SequenceFileWriter(sync_interval=interval, seed=9)
    for k, v in records:
        w.append(k, v)
    assert list(read_sequence_file(w.getvalue(), w.sync_marker)) == records
