"""Graceful termination: cancel events, SIGTERM, and resumable drains.

A terminated run must (a) raise :class:`JobCancelledError` instead of
deadlocking or leaking worker processes, (b) leave its recovery
manifest behind so ``resume=True`` finishes the job later, and (c) the
resumed output must stay byte-identical to a solo serial run -- the
repo-wide equivalence invariant survives the interruption.

The SIGTERM path needs a real process (signal handlers only bind on
the main thread), so one test drives a child interpreter and checks
its whole process group is gone afterwards.
"""

import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.mapreduce.engine import LocalJobRunner
from repro.mapreduce.runtime.recovery import MANIFEST_NAME
from repro.mapreduce.runtime.runner import ParallelJobRunner
from repro.mapreduce.runtime.scheduler import JobCancelledError
from repro.mapreduce.runtime.service import JobSpec, build_workload

_SPEC = JobSpec(tenant="t", query="sliding_mean", shape=(48, 48),
                seed=7, num_maps=4, num_reducers=2)


def _serial():
    return LocalJobRunner().run(*build_workload(_SPEC))


class TestCancelEvent:
    def test_pre_set_event_aborts_immediately(self, tmp_path):
        runner = ParallelJobRunner(workdir=str(tmp_path / "work"),
                                   max_workers=2,
                                   recovery_dir=str(tmp_path / "rec"))
        runner.cancel()
        with pytest.raises(JobCancelledError):
            runner.run(*build_workload(_SPEC))
        # The manifest survived the abort: this is the resume state.
        assert os.path.exists(os.path.join(str(tmp_path / "rec"),
                                           MANIFEST_NAME))

    def test_cancel_mid_run_then_resume_byte_identical(self, tmp_path):
        recovery = str(tmp_path / "rec")
        runner = ParallelJobRunner(workdir=str(tmp_path / "work"),
                                   max_workers=2, recovery_dir=recovery)

        # Cancel the moment the manifest lands (run start, before any
        # wave completes) -- a wall-clock timer races a warm run.
        def _cancel_when_started():
            manifest = os.path.join(recovery, MANIFEST_NAME)
            deadline = time.monotonic() + 30
            while (not os.path.exists(manifest)
                   and time.monotonic() < deadline):
                time.sleep(0.002)
            runner.cancel()

        watcher = threading.Thread(target=_cancel_when_started)
        watcher.start()
        try:
            with pytest.raises(JobCancelledError):
                runner.run(*build_workload(_SPEC))
        finally:
            watcher.join(timeout=60)

        resumed = ParallelJobRunner(workdir=str(tmp_path / "work2"),
                                    max_workers=2, recovery_dir=recovery,
                                    resume=True)
        result = resumed.run(*build_workload(_SPEC))
        base = _serial()
        assert result.output == base.output
        assert result.counters == base.counters


_CHILD = textwrap.dedent("""\
    import sys

    from repro.mapreduce.runtime.runner import ParallelJobRunner
    from repro.mapreduce.runtime.scheduler import JobCancelledError
    from repro.mapreduce.runtime.service import JobSpec, build_workload

    spec = JobSpec(tenant="t", query="sliding_mean", shape=(48, 48),
                   seed=7, num_maps=4, num_reducers=2)
    runner = ParallelJobRunner(workdir=sys.argv[1], max_workers=2,
                               recovery_dir=sys.argv[2])
    print("RUNNING", flush=True)
    try:
        runner.run(*build_workload(spec))
    except JobCancelledError:
        print("CANCELLED", flush=True)
        sys.exit(17)
    print("DONE", flush=True)
""")


class TestSigterm:
    def test_sigterm_drains_and_resume_completes(self, tmp_path):
        recovery = str(tmp_path / "rec")
        script = tmp_path / "child.py"
        script.write_text(_CHILD)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        child = subprocess.Popen(
            [sys.executable, str(script), str(tmp_path / "work"), recovery],
            stdout=subprocess.PIPE, text=True, env=env,
            start_new_session=True)
        try:
            assert child.stdout.readline().strip() == "RUNNING"
            # Wait for the manifest: the run is actually in flight.
            deadline = time.monotonic() + 30
            manifest = os.path.join(recovery, MANIFEST_NAME)
            while (not os.path.exists(manifest)
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert os.path.exists(manifest)
            child.send_signal(signal.SIGTERM)
            out, _ = child.communicate(timeout=60)
        finally:
            if child.poll() is None:  # pragma: no cover - hang safety
                child.kill()
                child.wait()

        assert child.returncode == 17, out
        assert "CANCELLED" in out

        # No leaked children: the child ran in its own session, so once
        # the whole process group is gone the workers are gone too.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                os.killpg(child.pid, 0)
            except ProcessLookupError:
                break
            time.sleep(0.05)
        else:  # pragma: no cover - leak diagnosis
            pytest.fail("process group still alive after SIGTERM drain")

        resumed = ParallelJobRunner(workdir=str(tmp_path / "work2"),
                                    max_workers=2, recovery_dir=recovery,
                                    resume=True)
        result = resumed.run(*build_workload(_SPEC))
        base = _serial()
        assert result.output == base.output
        assert result.counters == base.counters
