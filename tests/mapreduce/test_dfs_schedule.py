"""Tests for the simulated DFS and locality-aware map scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce.simcluster import (
    ClusterSpec,
    MapTaskSpec,
    SimDFS,
    schedule_maps,
)


class TestSimDFS:
    def test_write_and_block_layout(self):
        dfs = SimDFS(nodes=5, replication=3, block_size=100)
        blocks = dfs.write("input.nc", 250)
        assert [b.size for b in blocks] == [100, 100, 50]
        assert dfs.file_size("input.nc") == 250
        assert dfs.exists("input.nc")

    def test_replicas_distinct_and_bounded(self):
        dfs = SimDFS(nodes=5, replication=3, block_size=10)
        for block in dfs.write("f", 200):
            assert len(set(block.replicas)) == 3
            assert all(0 <= n < 5 for n in block.replicas)

    def test_replication_capped_at_nodes(self):
        dfs = SimDFS(nodes=2, replication=5)
        assert dfs.replication == 2

    def test_placement_deterministic(self):
        a = SimDFS(nodes=7, replication=3, block_size=10)
        b = SimDFS(nodes=7, replication=3, block_size=10)
        assert a.write("x", 100) == b.write("x", 100)

    def test_placement_roughly_balanced(self):
        dfs = SimDFS(nodes=5, replication=3, block_size=10)
        dfs.write("big", 10 * 200)
        hist = dfs.replica_histogram("big")
        total = sum(hist.values())
        assert total == 200 * 3
        for count in hist.values():
            # each node within 2x of fair share
            assert total / 5 / 2 <= count <= total / 5 * 2

    def test_empty_file_gets_one_empty_block(self):
        dfs = SimDFS(nodes=3)
        blocks = dfs.write("empty", 0)
        assert len(blocks) == 1
        assert blocks[0].size == 0

    def test_is_local(self):
        dfs = SimDFS(nodes=4, replication=2, block_size=10)
        block = dfs.write("f", 10)[0]
        for node in range(4):
            assert dfs.is_local("f", 0, node) == (node in block.replicas)
        with pytest.raises(KeyError):
            dfs.is_local("f", 9, 0)

    def test_duplicate_and_missing_files(self):
        dfs = SimDFS(nodes=3)
        dfs.write("f", 10)
        with pytest.raises(ValueError):
            dfs.write("f", 10)
        with pytest.raises(KeyError):
            dfs.blocks("missing")
        dfs.delete("f")
        assert not dfs.exists("f")

    def test_validation(self):
        with pytest.raises(ValueError):
            SimDFS(nodes=0)
        with pytest.raises(ValueError):
            SimDFS(nodes=3, replication=0)
        with pytest.raises(ValueError):
            SimDFS(nodes=3, block_size=0)
        with pytest.raises(ValueError):
            SimDFS(nodes=3).write("f", -1)


class TestScheduleMaps:
    def spec(self, **kw):
        defaults = dict(nodes=2, map_slots_per_node=1,
                        network_bandwidth=100.0)
        defaults.update(kw)
        return ClusterSpec(**defaults)

    def test_all_local_no_penalty(self):
        spec = self.spec()
        tasks = [MapTaskSpec(1.0, 1000, (0,)), MapTaskSpec(1.0, 1000, (1,))]
        result = schedule_maps(spec, tasks)
        assert result.makespan == pytest.approx(1.0)
        assert result.locality_fraction == 1.0

    def test_remote_task_pays_transfer(self):
        spec = self.spec(nodes=1)
        tasks = [MapTaskSpec(1.0, 500, (5,))]  # replica on nonexistent node
        result = schedule_maps(spec, tasks)
        assert result.makespan == pytest.approx(1.0 + 500 / 100.0)
        assert result.data_local_tasks == 0

    def test_locality_aware_beats_blind(self):
        # Two nodes; all inputs on node 0; big transfer penalty.  The
        # aware scheduler queues on node 0; the blind one spreads tasks
        # and pays transfers.
        spec = self.spec(network_bandwidth=10.0)
        tasks = [MapTaskSpec(1.0, 100, (0,)) for _ in range(4)]
        aware = schedule_maps(spec, tasks, locality_aware=True)
        blind = schedule_maps(spec, tasks, locality_aware=False)
        assert aware.locality_fraction > blind.locality_fraction
        assert aware.makespan <= blind.makespan

    def test_aware_scheduler_still_spreads_when_cheap(self):
        # Tiny inputs: transfers are cheap, so parallelism wins and the
        # aware scheduler must not serialize everything on one node.
        spec = self.spec(network_bandwidth=1e9)
        tasks = [MapTaskSpec(1.0, 10, (0,)) for _ in range(4)]
        aware = schedule_maps(spec, tasks, locality_aware=True)
        assert aware.makespan == pytest.approx(2.0, abs=1e-6)

    def test_empty_task_list(self):
        result = schedule_maps(self.spec(), [])
        assert result.makespan == 0.0
        assert result.locality_fraction == 1.0

    def test_task_validation(self):
        with pytest.raises(ValueError):
            MapTaskSpec(-1.0, 0, (0,))
        with pytest.raises(ValueError):
            MapTaskSpec(1.0, -5, (0,))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(0.1, 5.0), st.integers(0, 10**6),
                              st.integers(0, 4)), min_size=1, max_size=20))
    def test_property_makespan_bounds(self, raw):
        """Sound bounds for any greedy schedule: makespan is at least the
        longest single task and at most the fully-serialized worst case
        (every task remote, one slot)."""
        spec = ClusterSpec(nodes=5, map_slots_per_node=2,
                           network_bandwidth=1e6)
        tasks = [MapTaskSpec(d, b, (n,)) for d, b, n in raw]
        for aware in [True, False]:
            result = schedule_maps(spec, tasks, locality_aware=aware)
            assert result.makespan >= max(t.duration for t in tasks) - 1e-9
            worst = sum(t.duration + t.input_bytes / spec.network_bandwidth
                        for t in tasks)
            assert result.makespan <= worst + 1e-9
            assert 0.0 <= result.locality_fraction <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.floats(0.1, 5.0), st.integers(0, 10**5),
                              st.integers(0, 3)), min_size=1, max_size=15))
    def test_property_busy_time_conservation(self, raw):
        spec = ClusterSpec(nodes=4, map_slots_per_node=1,
                           network_bandwidth=1e5)
        tasks = [MapTaskSpec(d, b, (n,)) for d, b, n in raw]
        result = schedule_maps(spec, tasks)
        # busy time >= sum of pure durations (penalties only add)
        assert sum(result.node_busy) >= sum(t.duration for t in tasks) - 1e-9
