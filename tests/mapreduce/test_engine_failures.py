"""Failure-injection tests for the engine's data path."""

import numpy as np
import pytest

from repro.mapreduce import (
    CellKey,
    CellKeySerde,
    Int32Serde,
    Job,
    LocalJobRunner,
    Mapper,
    Reducer,
)
from repro.scidata import integer_grid
from tests.mapreduce.test_engine import EmitCellsMapper, SumReducer


def base_job(**overrides):
    defaults = dict(
        name="fail",
        mapper=EmitCellsMapper,
        reducer=SumReducer,
        key_serde=CellKeySerde(ndim=2, variable_mode="name"),
        value_serde=Int32Serde(),
    )
    defaults.update(overrides)
    return Job(**defaults)


class TestUserCodeFailures:
    def test_mapper_exception_propagates(self):
        class BoomMapper(Mapper):
            def map(self, split, values, ctx):
                raise RuntimeError("boom in map")

        grid = integer_grid((4, 4), seed=1)
        with pytest.raises(RuntimeError, match="boom in map"):
            LocalJobRunner().run(base_job(mapper=BoomMapper), grid)

    def test_reducer_exception_propagates(self):
        class BoomReducer(Reducer):
            def reduce(self, key, values, ctx):
                raise RuntimeError("boom in reduce")

        grid = integer_grid((4, 4), seed=1)
        with pytest.raises(RuntimeError, match="boom in reduce"):
            LocalJobRunner().run(base_job(reducer=BoomReducer), grid)

    def test_mapper_emitting_wrong_key_shape_fails_fast(self):
        class WrongNdimMapper(Mapper):
            def map(self, split, values, ctx):
                ctx.emit(CellKey(split.variable, (1, 2, 3)), 1)  # 3-D key

        grid = integer_grid((4, 4), seed=1)
        with pytest.raises(ValueError):
            LocalJobRunner().run(base_job(mapper=WrongNdimMapper), grid)

    def test_value_out_of_serde_range_fails_fast(self):
        class HugeValueMapper(Mapper):
            def map(self, split, values, ctx):
                ctx.emit(CellKey(split.variable, (0, 0)), 2**40)

        grid = integer_grid((4, 4), seed=1)
        with pytest.raises(ValueError):
            LocalJobRunner().run(base_job(mapper=HugeValueMapper), grid)


class TestConfigurationFailures:
    def test_unknown_codec(self):
        grid = integer_grid((4, 4), seed=1)
        with pytest.raises(KeyError):
            LocalJobRunner().run(base_job(codec="lzma"), grid)

    def test_bad_codec_options(self):
        grid = integer_grid((4, 4), seed=1)
        with pytest.raises(ValueError):
            LocalJobRunner().run(
                base_job(codec="zlib", codec_options={"level": 99}), grid)

    def test_missing_variable_in_dataset(self):
        from repro.scidata import InputSplit, Slab

        grid = integer_grid((4, 4), seed=1)
        bogus = [InputSplit(variable="ghost", slab=Slab((0, 0), (2, 2)),
                            split_id=0)]
        with pytest.raises(KeyError):
            LocalJobRunner().run(base_job(), grid, splits=bogus)

    def test_split_outside_extent(self):
        from repro.scidata import InputSplit, Slab

        grid = integer_grid((4, 4), seed=1)
        bogus = [InputSplit(variable="values", slab=Slab((3, 3), (4, 4)),
                            split_id=0)]
        with pytest.raises(ValueError):
            LocalJobRunner().run(base_job(), grid, splits=bogus)


class TestEmptyEmission:
    def test_mapper_emitting_nothing_still_completes(self):
        class SilentMapper(Mapper):
            def map(self, split, values, ctx):
                pass

        grid = integer_grid((4, 4), seed=1)
        result = LocalJobRunner().run(
            base_job(mapper=SilentMapper, num_reducers=2), grid)
        assert result.output == []
        # empty segments still materialize their trailers
        assert result.materialized_bytes > 0
