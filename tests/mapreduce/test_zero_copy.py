"""Proofs that the hot decode paths are views, not copies.

The aggregate-key payload path decodes millions of cells per reduce
group; slicing ``bytes`` out of the shuffle buffer for each block would
double the memory traffic.  These tests demonstrate zero-copy by
mutation: decode from a ``memoryview`` over a ``bytearray``, change the
underlying storage, and observe the decoded object change with it.
"""

import numpy as np
import pytest

from repro.core.aggregation.blocks import BlockSerde, ValueBlock
from repro.mapreduce.serde import BytesSerde, ValueBlockSerde


def test_value_block_serde_read_is_view():
    serde = ValueBlockSerde("<i4")
    values = np.arange(8, dtype="<i4")
    storage = bytearray(serde.to_bytes(values))
    arr, end = serde.read(memoryview(storage), 0)
    assert end == len(storage)
    assert np.array_equal(arr, values)
    # mutate the underlying storage: a copy would not see this
    storage[-4:] = (999).to_bytes(4, "little")
    assert arr[-1] == 999


def test_value_block_serde_read_from_bytes_is_view():
    serde = ValueBlockSerde("<f8")
    values = np.linspace(0, 1, 5)
    blob = serde.to_bytes(values)
    arr, _ = serde.read(blob, 0)
    # zero-copy over immutable bytes: the view is read-only
    assert arr.base is not None
    with pytest.raises(ValueError):
        arr[0] = 2.0


def test_bytes_serde_memoryview_returns_subview():
    serde = BytesSerde()
    storage = bytearray(serde.to_bytes(b"payload"))
    out, _ = serde.read(memoryview(storage), 0)
    assert isinstance(out, memoryview)
    assert out == b"payload"
    assert bytes(out) == b"payload"
    storage[1] = ord("X")  # first payload byte (after the vint length)
    assert bytes(out) == b"Xayload"
    # bytes input still yields an independent bytes object
    blob = serde.to_bytes(b"abc")
    out2, _ = serde.read(blob, 0)
    assert isinstance(out2, bytes)


def test_block_serde_dense_read_is_view():
    """The aggregate-key payload path: block values view the shuffle buffer."""
    serde = BlockSerde("int32")
    block = ValueBlock(6, np.arange(6, dtype="<i4"))
    storage = bytearray(serde.to_bytes(block))
    decoded, end = serde.read(memoryview(storage), 0)
    assert end == len(storage)
    assert np.array_equal(decoded.values, np.arange(6))
    storage[-4:] = (-7 & 0xFFFFFFFF).to_bytes(4, "little")
    assert decoded.values[-1] == -7


def test_block_serde_masked_read_is_view():
    serde = BlockSerde("int32")
    mask = np.array([True, False, True, True, False])
    block = ValueBlock(5, np.array([10, 20, 30], dtype="<i4"), mask)
    storage = bytearray(serde.to_bytes(block))
    decoded, _ = serde.read(memoryview(storage), 0)
    assert np.array_equal(decoded.values, [10, 20, 30])
    assert np.array_equal(decoded.dense_mask(), mask)
    storage[-4:] = (77).to_bytes(4, "little")
    assert decoded.values[-1] == 77


def test_block_serde_roundtrip_through_bytes_serde():
    """Composed zero-copy: BytesSerde sub-view feeds BlockSerde.read."""
    blocks = BlockSerde("float64")
    wrapper = BytesSerde()
    payload = blocks.to_bytes(ValueBlock(4, np.arange(4, dtype="<f8")))
    storage = bytearray(wrapper.to_bytes(payload))
    view, _ = wrapper.read(memoryview(storage), 0)
    decoded, _ = blocks.read(view, 0)
    assert np.array_equal(decoded.values, np.arange(4))
    # last 8 bytes of the outer storage are the last float64
    storage[-8:] = np.float64(42.0).tobytes()
    assert decoded.values[-1] == 42.0
