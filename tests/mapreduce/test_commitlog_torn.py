"""CommitLog hardening: torn, truncated, and garbage commit records.

The completion-event log is read concurrently with writers and must
survive a host that died mid-write *without* the atomic-replace
discipline (e.g. a partially synced file after power loss).  A damaged
record is simply absent from that poll -- never an exception, never a
wrong record -- and because failed reads are not cached, the map
appears as soon as a complete record lands on the same path.
"""

import os
import pickle

from repro.mapreduce.runtime.pipeline import CommitLog, CommitRecord


def _commit(log: CommitLog, map_id: str, epoch: int = 0) -> CommitRecord:
    record = CommitRecord(map_id=map_id, epoch=epoch)
    log.commit(record)
    return record


def _write_raw(directory: str, name: str, payload: bytes) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "wb") as fh:
        fh.write(payload)
    return path


class TestTornRecords:
    def test_truncated_pickle_is_skipped(self, tmp_path):
        directory = str(tmp_path / "commits")
        log = CommitLog(directory)
        _commit(log, "m00000")
        whole = pickle.dumps(CommitRecord(map_id="m00001", epoch=0))
        _write_raw(directory, "m00001.commit", whole[: len(whole) // 2])
        polled = CommitLog(directory).poll()
        assert set(polled) == {"m00000"}

    def test_empty_file_is_skipped(self, tmp_path):
        directory = str(tmp_path / "commits")
        log = CommitLog(directory)
        _commit(log, "m00000")
        _write_raw(directory, "m00001.commit", b"")
        assert set(log.poll()) == {"m00000"}

    def test_garbage_bytes_are_skipped(self, tmp_path):
        directory = str(tmp_path / "commits")
        log = CommitLog(directory)
        _commit(log, "m00000")
        _write_raw(directory, "m00001.commit", b"\x00\xffnot a pickle")
        assert set(log.poll()) == {"m00000"}

    def test_wrong_type_pickle_is_skipped(self, tmp_path):
        directory = str(tmp_path / "commits")
        log = CommitLog(directory)
        _commit(log, "m00000")
        # Valid pickle, wrong payload: as torn as unparseable bytes.
        _write_raw(directory, "m00001.commit",
                   pickle.dumps({"map_id": "m00001"}))
        assert set(log.poll()) == {"m00000"}

    def test_damaged_record_recovers_on_rewrite(self, tmp_path):
        directory = str(tmp_path / "commits")
        log = CommitLog(directory)
        _write_raw(directory, "m00000.commit", b"torn")
        assert log.poll() == {}
        # The failed read was not cached, so the atomic re-publish is
        # picked up by the very next poll.
        _commit(log, "m00000", epoch=1)
        polled = log.poll()
        assert polled["m00000"].epoch == 1

    def test_missing_directory_is_empty(self, tmp_path):
        assert CommitLog(str(tmp_path / "never-created")).poll() == {}

    def test_non_commit_files_ignored(self, tmp_path):
        directory = str(tmp_path / "commits")
        log = CommitLog(directory)
        _commit(log, "m00000")
        _write_raw(directory, "README.txt", b"not a commit")
        assert set(log.poll()) == {"m00000"}

    def test_epoch_bump_replaces_cached_record(self, tmp_path):
        directory = str(tmp_path / "commits")
        log = CommitLog(directory)
        _commit(log, "m00000", epoch=0)
        assert log.poll()["m00000"].epoch == 0
        _commit(log, "m00000", epoch=1)
        assert log.poll()["m00000"].epoch == 1

    def test_record_deleted_between_polls(self, tmp_path):
        directory = str(tmp_path / "commits")
        log = CommitLog(directory)
        _commit(log, "m00000")
        _commit(log, "m00001")
        assert len(log.poll()) == 2
        os.remove(os.path.join(directory, "m00001.commit"))
        assert set(log.poll()) == {"m00000"}
