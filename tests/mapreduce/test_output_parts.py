"""Tests for measured reducer output part files (Fig 1 step 7)."""

import os

import pytest

from repro.mapreduce import CellKeySerde, Int32Serde, Job, LocalJobRunner
from repro.mapreduce.serde import Float64Serde
from repro.scidata import integer_grid
from tests.mapreduce.test_engine import EmitCellsMapper, SumReducer


def make_job(**overrides):
    defaults = dict(
        name="parts",
        mapper=EmitCellsMapper,
        reducer=SumReducer,
        key_serde=CellKeySerde(ndim=2, variable_mode="name"),
        value_serde=Int32Serde(),
    )
    defaults.update(overrides)
    return Job(**defaults)


def test_output_bytes_measured_when_serdes_given():
    grid = integer_grid((6, 6), seed=4)
    job = make_job(
        output_key_serde=CellKeySerde(ndim=2, variable_mode="name"),
        output_value_serde=Int32Serde(),
    )
    result = LocalJobRunner().run(job, grid)
    reduce_profiles = [p for p in result.task_profiles if p.kind == "reduce"]
    # 36 records x (2 + 19 + 4) + 6-byte trailer
    assert reduce_profiles[0].output_bytes == 36 * 25 + 6


def test_fallback_heuristic_without_serdes():
    grid = integer_grid((4, 4), seed=4)
    result = LocalJobRunner().run(make_job(), grid)
    reduce_profiles = [p for p in result.task_profiles if p.kind == "reduce"]
    assert reduce_profiles[0].output_bytes > 0


def test_part_files_kept_when_requested(tmp_path):
    grid = integer_grid((4, 4), seed=4)
    job = make_job(
        output_key_serde=CellKeySerde(ndim=2, variable_mode="name"),
        output_value_serde=Int32Serde(),
    )
    runner = LocalJobRunner(workdir=str(tmp_path), keep_files=True)
    runner.run(job, grid)
    parts = [f for f in os.listdir(tmp_path) if f.endswith("-part")]
    assert parts


def test_bad_output_serde_surfaces():
    grid = integer_grid((4, 4), seed=4)
    job = make_job(
        output_key_serde=Int32Serde(),  # cannot serialize CellKey output
        output_value_serde=Float64Serde(),
    )
    with pytest.raises(Exception):
        LocalJobRunner().run(job, grid)
