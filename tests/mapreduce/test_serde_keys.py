"""Tests for serializers and key types, including paper byte layouts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce import (
    BytesSerde,
    CellKey,
    CellKeySerde,
    Float32Serde,
    Float64Serde,
    Int32Serde,
    Int64Serde,
    RangeKey,
    RangeKeySerde,
    TextSerde,
    ValueBlockSerde,
)


class TestScalarSerdes:
    @pytest.mark.parametrize("serde,values", [
        (Int32Serde(), [0, 1, -1, 2**31 - 1, -(2**31)]),
        (Int64Serde(), [0, 1, -1, 2**63 - 1, -(2**63)]),
        (Float32Serde(), [0.0, 1.5, -3.25]),
        (Float64Serde(), [0.0, 1.5, -3.25, 1e300]),
        (TextSerde(), ["", "windspeed1", "héllo"]),
        (BytesSerde(), [b"", b"abc", bytes(300)]),
    ])
    def test_roundtrip(self, serde, values):
        for v in values:
            assert serde.from_bytes(serde.to_bytes(v)) == v

    def test_int32_order_preserving(self):
        s = Int32Serde()
        values = [-(2**31), -5, -1, 0, 1, 7, 2**31 - 1]
        encoded = [s.to_bytes(v) for v in values]
        assert encoded == sorted(encoded)

    def test_int64_order_preserving(self):
        s = Int64Serde()
        values = [-(2**63), -10**12, -1, 0, 1, 10**15, 2**63 - 1]
        encoded = [s.to_bytes(v) for v in values]
        assert encoded == sorted(encoded)

    def test_int32_range_check(self):
        with pytest.raises(ValueError):
            Int32Serde().to_bytes(2**31)
        with pytest.raises(ValueError):
            Int32Serde().to_bytes(-(2**31) - 1)

    def test_sizes_match_hadoop_writables(self):
        assert len(Int32Serde().to_bytes(5)) == 4
        assert len(Int64Serde().to_bytes(5)) == 8
        assert len(Float32Serde().to_bytes(1.0)) == 4
        assert len(Float64Serde().to_bytes(1.0)) == 8
        # "windspeed1" as Text: 1 length byte + 10 chars = 11 bytes (§I)
        assert len(TextSerde().to_bytes("windspeed1")) == 11

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ValueError):
            Int32Serde().from_bytes(b"\x00" * 5)

    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
    def test_int32_order_property(self, a, b):
        s = Int32Serde()
        assert (a < b) == (s.to_bytes(a) < s.to_bytes(b))

    @given(st.text(max_size=50))
    def test_text_roundtrip_property(self, value):
        s = TextSerde()
        assert s.from_bytes(s.to_bytes(value)) == value


class TestValueBlockSerde:
    def test_roundtrip(self):
        s = ValueBlockSerde(np.int32)
        arr = np.array([1, -2, 3], dtype=np.int32)
        out = s.from_bytes(s.to_bytes(arr))
        assert (out == arr).all()
        assert out.dtype == np.dtype("<i4")

    def test_empty_block(self):
        s = ValueBlockSerde(np.float32)
        out = s.from_bytes(s.to_bytes(np.zeros(0, dtype=np.float32)))
        assert out.shape == (0,)

    def test_size_is_count_plus_payload(self):
        s = ValueBlockSerde(np.int32)
        blob = s.to_bytes(np.arange(100, dtype=np.int32))
        assert len(blob) == 1 + 400  # vint(100) + 100 * 4

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ValueBlockSerde(np.int32).to_bytes(np.zeros((2, 2), dtype=np.int32))

    def test_truncation_detected(self):
        s = ValueBlockSerde(np.int32)
        blob = s.to_bytes(np.arange(4, dtype=np.int32))
        with pytest.raises(ValueError):
            s.from_bytes(blob[:-2])


class TestCellKey:
    def test_paper_key_sizes(self):
        """§I arithmetic: name-mode key = 27 B, index-mode key = 20 B."""
        name_serde = CellKeySerde(ndim=3, variable_mode="name")
        index_serde = CellKeySerde(ndim=3, variable_mode="index")
        assert name_serde.key_size("windspeed1") == 27
        assert index_serde.key_size(0) == 20
        k = CellKey("windspeed1", (1, 2, 3))
        assert len(name_serde.to_bytes(k)) == 27
        ki = CellKey(7, (1, 2, 3))
        assert len(index_serde.to_bytes(ki)) == 20

    def test_key_value_ratio_is_675(self):
        """The paper's headline 6.75 key/value byte ratio."""
        serde = CellKeySerde(ndim=3, variable_mode="name")
        key_bytes = serde.key_size("windspeed1")
        value_bytes = 4  # one float32
        assert key_bytes / value_bytes == 6.75

    def test_roundtrip(self):
        serde = CellKeySerde(ndim=2, variable_mode="name")
        k = CellKey("v", (-1, 10), slot=3)
        assert serde.from_bytes(serde.to_bytes(k)) == k

    def test_roundtrip_index_mode(self):
        serde = CellKeySerde(ndim=3, variable_mode="index")
        k = CellKey(5, (0, 0, 99))
        assert serde.from_bytes(serde.to_bytes(k)) == k

    def test_raw_sort_matches_coordinate_order(self):
        serde = CellKeySerde(ndim=2, variable_mode="name")
        keys = [CellKey("v", (i, j)) for i in range(-2, 3) for j in range(-2, 3)]
        blobs = [serde.to_bytes(k) for k in keys]
        by_bytes = [serde.from_bytes(b) for b in sorted(blobs)]
        assert by_bytes == sorted(keys, key=lambda k: k.coords)

    def test_ndim_mismatch(self):
        serde = CellKeySerde(ndim=3)
        with pytest.raises(ValueError):
            serde.to_bytes(CellKey("v", (1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            CellKeySerde(ndim=0)
        with pytest.raises(ValueError):
            CellKeySerde(ndim=2, variable_mode="bogus")
        with pytest.raises(ValueError):
            CellKey("v", ())

    def test_write_batch_matches_scalar_path(self):
        serde = CellKeySerde(ndim=3, variable_mode="name")
        coords = np.array([[0, 0, 0], [1, -2, 3], [99, 0, 5]])
        batch = serde.write_batch("windspeed1", coords, slots=2)
        for row, blob in zip(coords, batch):
            expected = serde.to_bytes(CellKey("windspeed1", tuple(row), slot=2))
            assert blob == expected

    def test_write_batch_index_mode(self):
        serde = CellKeySerde(ndim=2, variable_mode="index")
        coords = np.array([[5, 6]])
        assert serde.write_batch(3, coords)[0] == serde.to_bytes(CellKey(3, (5, 6)))

    def test_write_batch_validation(self):
        serde = CellKeySerde(ndim=2)
        with pytest.raises(ValueError):
            serde.write_batch("v", np.zeros((2, 3)))
        with pytest.raises(ValueError):
            serde.write_batch("v", np.array([[2**31, 0]]))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
                 min_size=1, max_size=20),
        st.integers(0, 5),
    )
    def test_batch_property(self, coord_list, slot):
        serde = CellKeySerde(ndim=2, variable_mode="name")
        coords = np.array(coord_list)
        batch = serde.write_batch("var", coords, slots=slot)
        decoded = [serde.from_bytes(b) for b in batch]
        assert decoded == [CellKey("var", tuple(c), slot) for c in coord_list]


class TestRangeKey:
    def test_roundtrip(self):
        serde = RangeKeySerde("name")
        k = RangeKey("v", 100, 50)
        assert serde.from_bytes(serde.to_bytes(k)) == k

    def test_sizes(self):
        assert RangeKeySerde("name").key_size("windspeed1") == 23
        assert RangeKeySerde("index").key_size(0) == 16

    def test_overlaps(self):
        a = RangeKey("v", 0, 10)
        assert a.overlaps(RangeKey("v", 9, 5))
        assert not a.overlaps(RangeKey("v", 10, 5))
        assert not a.overlaps(RangeKey("w", 0, 10))

    def test_validation(self):
        with pytest.raises(ValueError):
            RangeKey("v", 0, 0)
        with pytest.raises(ValueError):
            RangeKey("v", -1, 5)

    def test_raw_sort_is_start_order(self):
        serde = RangeKeySerde("name")
        keys = [RangeKey("v", s, c) for s, c in [(50, 3), (0, 10), (7, 2), (7, 9)]]
        blobs = sorted(serde.to_bytes(k) for k in keys)
        decoded = [serde.from_bytes(b) for b in blobs]
        assert decoded == sorted(keys, key=lambda k: (k.start, k.count))
