"""JobService integration: execute, cancel, recover, REST round-trip.

In-process versions of the daemon's contract (the subprocess SIGKILL
soak lives in the R6 harness): a submitted spec executes on the shared
pool byte-identical to a solo serial run, cancellation hits both
queued and running jobs, and a second service over the same root
rebuilds queue + ledger from the registry alone.
"""

import threading
import time

import pytest

from repro.mapreduce.engine import LocalJobRunner
from repro.mapreduce.runtime.service import (
    AdmissionConfig,
    AdmissionRejected,
    JobService,
    JobSpec,
    ServiceConfig,
    build_workload,
)
from repro.mapreduce.runtime.service.http import (
    ServiceClient,
    ServiceEndpoint,
    ServiceUnavailableError,
)


def _spec(**overrides) -> JobSpec:
    base = dict(tenant="alice", query="histogram", shape=(6, 6),
                seed=3, num_maps=2, num_reducers=1)
    base.update(overrides)
    return JobSpec(**base)


def _config(root, **overrides) -> ServiceConfig:
    base = dict(root=str(root), max_workers=2, executors=1)
    base.update(overrides)
    return ServiceConfig(**base)


def _wait_state(service, job_id, states, timeout=60.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = service.status(job_id)["state"]
        if state in states:
            return state
        time.sleep(0.05)
    return service.status(job_id)["state"]


class TestExecution:
    def test_submit_executes_byte_identical_to_serial(self, tmp_path):
        service = JobService(_config(tmp_path))
        service.start()
        try:
            spec = _spec()
            reply = service.submit(spec)
            assert reply["state"] == "QUEUED"
            assert reply["predicted_seconds"] > 0
            assert _wait_state(service, reply["job_id"], ("DONE",)) == "DONE"
            stored = service.registry.get(reply["job_id"]).load_result()
            base = LocalJobRunner().run(*build_workload(spec))
            assert stored["output"] == base.output
            assert stored["counters"] == base.counters
        finally:
            service.shutdown()

    def test_failed_job_is_isolated(self, tmp_path):
        service = JobService(_config(tmp_path))
        service.start()
        try:
            # Poison with no skip budget fails the job; the daemon (and
            # later jobs) must be unaffected.
            bad = service.submit(_spec(query="subset", shape=(8, 8),
                                       poison=(("m00000", 1),)))
            good = service.submit(_spec(seed=9))
            assert _wait_state(service, bad["job_id"],
                               ("FAILED", "DONE")) == "FAILED"
            assert _wait_state(service, good["job_id"],
                               ("DONE", "FAILED")) == "DONE"
            # The ledger was credited back for both.
            assert service.admission.outstanding_seconds() == 0.0
        finally:
            service.shutdown()

    def test_profiles_refit_after_completion(self, tmp_path):
        service = JobService(_config(tmp_path))
        service.start()
        try:
            reply = service.submit(_spec())
            _wait_state(service, reply["job_id"], ("DONE",))
            assert service._fit_profiles  # next price() refits from these
            assert service.price(_spec(seed=11)) > 0
        finally:
            service.shutdown()


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path):
        service = JobService(_config(tmp_path))  # no executors started
        reply = service.submit(_spec())
        summary = service.cancel(reply["job_id"])
        assert summary["state"] == "CANCELLED"
        assert service.admission.outstanding_seconds() == 0.0
        assert service.scheduler.queued_total() == 0

    def test_cancel_running_job(self, tmp_path):
        service = JobService(_config(tmp_path))
        service.start()
        try:
            # Big enough to still be running when cancel lands.
            reply = service.submit(_spec(query="sliding_mean",
                                         shape=(40, 40), num_maps=4,
                                         num_reducers=2))
            job_id = reply["job_id"]
            assert _wait_state(service, job_id,
                               ("RUNNING", "DONE")) in ("RUNNING", "DONE")
            service.cancel(job_id)
            state = _wait_state(service, job_id, ("CANCELLED", "DONE"))
            # A cancel that loses the race to completion is DONE; both
            # end states must credit the ledger back.
            assert state in ("CANCELLED", "DONE")
            deadline = time.monotonic() + 10
            while (service.admission.outstanding_seconds()
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert service.admission.outstanding_seconds() == 0.0
        finally:
            service.shutdown()

    def test_cancel_unknown_job(self, tmp_path):
        service = JobService(_config(tmp_path))
        assert service.cancel("j999999") is None


class TestRecovery:
    def test_queued_jobs_survive_daemon_loss(self, tmp_path):
        first = JobService(_config(tmp_path))  # executors never started
        specs = [_spec(seed=s) for s in (3, 5)]
        ids = [first.submit(s)["job_id"] for s in specs]
        del first  # simulated crash: nothing flushed, no shutdown

        second = JobService(_config(tmp_path))
        assert second.recover() == 2
        # The ledger was rebuilt by re-pricing the specs.
        assert second.admission.outstanding_seconds() > 0
        second.start()  # re-scan is harmless: queue was already drained
        try:
            for job_id, spec in zip(ids, specs):
                assert _wait_state(second, job_id, ("DONE",)) == "DONE"
                stored = second.registry.get(job_id).load_result()
                base = LocalJobRunner().run(*build_workload(spec))
                assert stored["output"] == base.output
                assert stored["counters"] == base.counters
        finally:
            second.shutdown()

    def test_running_job_requeued_with_recovered_event(self, tmp_path):
        first = JobService(_config(tmp_path))
        job_id = first.submit(_spec())["job_id"]
        # Simulate dying mid-execution: state committed as RUNNING.
        first.registry.get(job_id).set_state("RUNNING", "executing")
        del first

        second = JobService(_config(tmp_path))
        assert second.recover() == 1
        record = second.registry.get(job_id)
        assert record.state()[0] == "QUEUED"
        assert any(e["kind"] == "recovered" for e in record.events())

    def test_terminal_jobs_not_recovered(self, tmp_path):
        first = JobService(_config(tmp_path))
        done = first.submit(_spec())["job_id"]
        cancelled = first.submit(_spec(seed=5))["job_id"]
        first.registry.get(done).set_state("DONE")
        first.cancel(cancelled)
        del first
        assert JobService(_config(tmp_path)).recover() == 0


class TestShutdownSemantics:
    def test_submit_after_shutdown_is_503(self, tmp_path):
        service = JobService(_config(tmp_path))
        service.start()
        service.shutdown()
        with pytest.raises(AdmissionRejected) as exc:
            service.submit(_spec())
        assert exc.value.payload["error"] == "SHUTTING_DOWN"
        assert exc.value.http_status == 503


class TestRest:
    @pytest.fixture()
    def served(self, tmp_path):
        service = JobService(_config(tmp_path))
        service.start()
        endpoint = ServiceEndpoint(service)
        endpoint.publish()
        thread = threading.Thread(target=endpoint.serve_forever,
                                  daemon=True)
        thread.start()
        yield service, ServiceClient(str(tmp_path))
        if not service.stopping:
            service.shutdown()
        endpoint.server.shutdown()
        thread.join(timeout=10)

    def test_full_round_trip(self, served):
        service, client = served
        assert client.health()["pool"]["max_workers"] == 2
        reply = client.submit(_spec())
        job_id = reply["job_id"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if client.status(job_id)["state"] == "DONE":
                break
            time.sleep(0.05)
        status = client.status(job_id)
        assert status["state"] == "DONE"
        assert status["has_result"] is True
        assert any(j["job_id"] == job_id
                   for j in client.jobs()["jobs"])

    def test_bad_spec_is_400(self, served):
        _, client = served
        reply = client.request("POST", "/jobs", {"tenant": "a"})
        assert reply["error"] == "BAD_REQUEST"
        assert reply["http_status"] == 400

    def test_unknown_job_is_404(self, served):
        _, client = served
        assert client.status("j424242")["error"] == "NOT_FOUND"

    def test_unknown_route_is_404(self, served):
        _, client = served
        assert client.request("GET", "/nope")["error"] == "NOT_FOUND"

    def test_rejection_surfaces_through_rest(self, tmp_path):
        config = _config(
            tmp_path,
            admission=AdmissionConfig(max_queued=4,
                                      max_queued_per_tenant=1))
        service = JobService(config)  # executors off: queue can't drain
        endpoint = ServiceEndpoint(service)
        endpoint.publish()
        thread = threading.Thread(target=endpoint.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            client = ServiceClient(str(tmp_path))
            assert "job_id" in client.submit(_spec())
            reply = client.submit(_spec(seed=9))
            assert reply["error"] == "TENANT_OVERLOADED"
            assert reply["http_status"] == 429
            assert reply["retry_after"] is not None
        finally:
            endpoint.server.shutdown()
            thread.join(timeout=10)

    def test_client_without_daemon(self, tmp_path):
        with pytest.raises(ServiceUnavailableError):
            ServiceClient(str(tmp_path)).health()


class TestMemoryAdmission:
    def test_submit_prices_memory(self, tmp_path):
        service = JobService(_config(tmp_path))  # executors off
        reply = service.submit(_spec())
        assert reply["predicted_memory_bytes"] > 0
        assert reply["predicted_memory_bytes"] \
            == service.price_memory(_spec())
        stats = service.stats()
        assert stats["outstanding_memory_bytes"] \
            == reply["predicted_memory_bytes"]

    def test_global_memory_cap_sheds_with_429(self, tmp_path):
        cap = JobService(_config(tmp_path)).price_memory(_spec())
        config = _config(
            tmp_path / "capped",
            admission=AdmissionConfig(max_outstanding_memory_bytes=cap))
        service = JobService(config)  # executors off: nothing credits
        assert "job_id" in service.submit(_spec())
        with pytest.raises(AdmissionRejected) as err:
            service.submit(_spec(seed=9))
        assert err.value.payload["error"] == "OVERCOMMITTED_MEMORY"
        assert err.value.http_status == 429
        assert err.value.payload["retry_after"] is not None
        # shedding leaves no durable record of the rejected job
        assert len(service.registry.load_all()) == 1

    def test_tenant_memory_quota(self, tmp_path):
        # Quota below one job's price: the tenant's *first* job is
        # still admitted (grant-when-alone -- a lone overdraft is
        # recorded, not refused), the second is shed, and another
        # tenant is unaffected.
        config = _config(tmp_path,
                         tenants={"alice": (1.0, 8, 1024),
                                  "bob": (1.0, 8, None)})
        service = JobService(config)  # executors off
        assert "job_id" in service.submit(_spec())
        with pytest.raises(AdmissionRejected) as err:
            service.submit(_spec(seed=9))
        assert err.value.payload["error"] == "OVERCOMMITTED_MEMORY"
        assert "job_id" in service.submit(_spec(tenant="bob"))

    def test_memory_credited_on_completion(self, tmp_path):
        service = JobService(_config(tmp_path))
        service.start()
        try:
            reply = service.submit(_spec())
            assert _wait_state(service, reply["job_id"], ("DONE",)) == "DONE"
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if service.stats()["outstanding_memory_bytes"] == 0:
                    break
                time.sleep(0.02)
            stats = service.stats()
            assert stats["outstanding_memory_bytes"] == 0
            assert stats["pool"]["memory"]["used"] == 0
        finally:
            service.shutdown()

    def test_cancel_queued_credits_memory(self, tmp_path):
        service = JobService(_config(tmp_path))  # executors off
        reply = service.submit(_spec())
        assert service.stats()["outstanding_memory_bytes"] > 0
        service.cancel(reply["job_id"])
        assert service.stats()["outstanding_memory_bytes"] == 0
        assert service.pool.memory.used == 0

    def test_recover_restores_memory_ledger(self, tmp_path):
        first = JobService(_config(tmp_path))  # executors never started
        reply = first.submit(_spec())
        second = JobService(_config(tmp_path))
        assert second.recover() == 1
        assert second.stats()["outstanding_memory_bytes"] \
            == reply["predicted_memory_bytes"]

    def test_spec_memory_knobs_round_trip(self):
        spec = _spec(memory_budget=1 << 20, max_inflight_bytes=4096)
        again = JobSpec.from_json(spec.to_json())
        assert again.memory_budget == 1 << 20
        assert again.max_inflight_bytes == 4096
        with pytest.raises(ValueError):
            _spec(memory_budget=255)
        with pytest.raises(ValueError):
            _spec(max_inflight_bytes=0)


class TestEventsSince:
    def test_incremental_read_and_torn_tail(self, tmp_path):
        import os
        service = JobService(_config(tmp_path))  # executors off
        job_id = service.submit(_spec())["job_id"]
        record = service.registry.get(job_id)
        events, offset = record.events_since(0)
        assert events  # acceptance already logged at least one event
        assert offset > 0
        # nothing new: same offset back, no events
        again, offset2 = record.events_since(offset)
        assert again == [] and offset2 == offset
        # a torn tail (a line mid-append) is not consumed...
        events_path = os.path.join(record.dir, "events.jsonl")
        with open(events_path, "a", encoding="utf-8") as fh:
            fh.write('{"crc": 1, "body": "tor')
        torn, offset3 = record.events_since(offset)
        assert torn == [] and offset3 == offset
        # ...and a later intact append past it stays pinned behind the
        # damaged line: everything before was already delivered.
        record.append_event("late", "after the tear")
        after, offset4 = record.events_since(offset)
        assert after == [] and offset4 == offset

    def test_follow_sees_terminal_state(self, tmp_path):
        service = JobService(_config(tmp_path))
        service.start()
        try:
            job_id = service.submit(_spec())["job_id"]
            assert _wait_state(service, job_id, ("DONE",)) == "DONE"
            record = service.registry.get(job_id)
            events, _ = record.events_since(0)
            kinds = [e["kind"] for e in events]
            assert "state" in kinds
            assert any("DONE" in e.get("detail", "") for e in events)
        finally:
            service.shutdown()

    def test_events_route_with_since(self, tmp_path):
        service = JobService(_config(tmp_path))
        endpoint = ServiceEndpoint(service)
        endpoint.publish()
        thread = threading.Thread(target=endpoint.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            client = ServiceClient(str(tmp_path))
            job_id = service.submit(_spec())["job_id"]
            reply = client.events(job_id)
            assert reply["events"]
            assert reply["state"] == "QUEUED"
            resumed = client.events(job_id, since=reply["offset"])
            assert resumed["events"] == []
            assert resumed["offset"] == reply["offset"]
            assert client.events("j424242")["error"] == "NOT_FOUND"
        finally:
            endpoint.server.shutdown()
            thread.join(timeout=10)
