"""Tests for the end-to-end cluster pipeline facade."""

import pytest

from repro.mapreduce.simcluster import ClusterSpec
from repro.mapreduce.simcluster.pipeline import ClusterJobRunner
from repro.queries import SlidingMedianQuery
from repro.scidata import integer_grid


@pytest.fixture(scope="module")
def grid():
    return integer_grid((16, 16), seed=8)


def build_job(grid, mode="plain", **kw):
    query = SlidingMedianQuery(grid, "values", window=3)
    return query.build_job(mode, num_map_tasks=4, num_reducers=2, **kw)


class TestClusterJobRunner:
    def test_produces_real_results_and_timeline(self, grid):
        runner = ClusterJobRunner()
        out = runner.run(build_job(grid), grid)
        assert len(out.job_result.output) == 256
        assert out.map_seconds > 0
        assert out.reduce_seconds > 0
        assert out.output_write_seconds >= 0
        assert out.total_seconds == pytest.approx(
            out.map_seconds + out.reduce_seconds + out.output_write_seconds)
        assert 0.0 <= out.data_local_fraction <= 1.0

    def test_dfs_holds_input_and_output(self, grid):
        runner = ClusterJobRunner()
        runner.run(build_job(grid), grid)
        assert runner.dfs.exists("sliding-median-plain-input")
        assert runner.dfs.exists("sliding-median-plain-output")
        assert (runner.dfs.file_size("sliding-median-plain-input")
                == grid.total_value_bytes())

    def test_rerun_same_job_name_overwrites(self, grid):
        runner = ClusterJobRunner()
        runner.run(build_job(grid), grid)
        runner.run(build_job(grid), grid)  # must not raise on re-write

    def test_aggregation_cuts_simulated_runtime(self, grid):
        """The E8 story holds through the full pipeline too."""
        runner = ClusterJobRunner()
        plain = runner.run(build_job(grid, "plain"), grid)
        agg = runner.run(build_job(grid, "aggregate"), grid)
        assert (agg.job_result.materialized_bytes
                < plain.job_result.materialized_bytes)
        # identical answers through completely different shuffles
        pm = {k.coords: v for k, v in plain.job_result.output}
        am = {k.coords: v for k, v in agg.job_result.output}
        assert pm == am

    def test_locality_awareness_helps_or_ties(self, grid):
        aware = ClusterJobRunner(locality_aware=True).run(build_job(grid), grid)
        blind = ClusterJobRunner(locality_aware=False).run(build_job(grid), grid)
        assert aware.data_local_fraction >= blind.data_local_fraction

    def test_replication_one_has_more_remote_reads(self, grid):
        spec = ClusterSpec()
        r1 = ClusterJobRunner(spec=spec, replication=1).run(build_job(grid), grid)
        r3 = ClusterJobRunner(spec=spec, replication=3).run(build_job(grid), grid)
        assert r3.data_local_fraction >= r1.data_local_fraction
        # output replication also costs network time
        assert r3.output_write_seconds >= r1.output_write_seconds
