"""Durable job recovery: manifests, fingerprints, adoption, resume.

The contract under test: a job run with ``recovery_dir`` leaves a
manifest from which a later ``resume=True`` run adopts every completed
task it can *validate* (file exists, CRC matches, fingerprint matches)
and re-runs everything else -- producing counters and output
byte-identical to an uninterrupted serial run.  Validation is
pessimistic: any doubt demotes a checkpoint to "re-run it".
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.mapreduce import LocalJobRunner, ParallelJobRunner
from repro.mapreduce.runtime.recovery import (
    MANIFEST_NAME,
    JobManifest,
    TaskRecord,
    file_crc32,
    job_fingerprint,
)
from repro.queries import BoxSubsetQuery
from repro.scidata import integer_grid
from repro.scidata.splits import ArraySplitter
from tests.mapreduce.test_engine import EmitCellsMapper, make_job


@pytest.fixture
def grid():
    return integer_grid((8, 8), seed=11, low=0, high=100)


def splits_for(job, grid):
    return ArraySplitter(job.num_map_tasks).split(grid, None)


# --------------------------------------------------------------- manifest


class TestManifest:
    def test_roundtrip(self, tmp_path):
        artifact = tmp_path / "seg"
        artifact.write_bytes(b"hello segment")
        path = str(tmp_path / MANIFEST_NAME)
        manifest = JobManifest(path, "abc123")
        manifest.record_wave("map", ["m00000", "m00001"])
        manifest.record_task(TaskRecord(
            task_id="m00000", kind="map", attempt=0,
            attempt_dir=str(tmp_path), result_path=str(artifact),
            files={str(artifact): file_crc32(str(artifact))}))

        loaded = JobManifest.load(path)
        assert loaded is not None
        assert loaded.job_hash == "abc123"
        assert loaded.waves == {"map": ["m00000", "m00001"]}
        assert loaded.tasks["m00000"].files == manifest.tasks["m00000"].files

    def test_load_rejects_missing_garbage_and_stale_schema(self, tmp_path):
        path = str(tmp_path / MANIFEST_NAME)
        assert JobManifest.load(path) is None

        with open(path, "w") as fh:
            fh.write("{not json")
        assert JobManifest.load(path) is None

        with open(path, "w") as fh:
            json.dump({"version": 999, "job_hash": "x"}, fh)
        assert JobManifest.load(path) is None

    def test_adoptable_validates_files(self, tmp_path):
        good = tmp_path / "good"
        good.write_bytes(b"intact bytes")
        bad = tmp_path / "bad"
        bad.write_bytes(b"original bytes")

        manifest = JobManifest(str(tmp_path / MANIFEST_NAME), "h")
        manifest.record_wave("map", ["m00000", "m00001", "m00002"])
        for tid, artifact in [("m00000", good), ("m00001", bad)]:
            manifest.record_task(TaskRecord(
                task_id=tid, kind="map", attempt=0,
                attempt_dir=str(tmp_path), result_path=str(artifact),
                files={str(artifact): file_crc32(str(artifact))}))
        bad.write_bytes(b"silently flipped")  # CRC mismatch
        # m00002 has no record at all; m00000 stays intact.

        adopted = manifest.adoptable("map", ["m00000", "m00001", "m00002"])
        assert set(adopted) == {"m00000"}
        # A record outside the expected id set is ignored too.
        assert manifest.adoptable("map", ["m00001", "m00002"]) == {}

    def test_record_validate_reports_missing_file(self, tmp_path):
        record = TaskRecord(
            task_id="m00000", kind="map", attempt=0,
            attempt_dir=str(tmp_path),
            result_path=str(tmp_path / "gone"),
            files={str(tmp_path / "gone"): 1234})
        problems = record.validate()
        assert problems and "missing" in problems[0]


class TestManifestCorruption:
    """``load_verified`` must explain *why* a checkpoint is unusable,
    and never raise: resume falls back to a clean restart instead."""

    def saved(self, tmp_path) -> str:
        path = str(tmp_path / MANIFEST_NAME)
        manifest = JobManifest(path, "abc123")
        manifest.record_wave("map", ["m00000"])
        return path

    def test_missing_file_is_a_clean_first_run(self, tmp_path):
        loaded, problem = JobManifest.load_verified(
            str(tmp_path / MANIFEST_NAME))
        assert loaded is None and problem is None

    def test_roundtrip_reports_no_problem(self, tmp_path):
        path = self.saved(tmp_path)
        loaded, problem = JobManifest.load_verified(path)
        assert problem is None
        assert loaded is not None and loaded.job_hash == "abc123"

    def test_truncated_envelope(self, tmp_path):
        path = self.saved(tmp_path)
        raw = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(raw[:len(raw) // 2])  # torn write / partial flush
        loaded, problem = JobManifest.load_verified(path)
        assert loaded is None
        assert problem is not None and "parse" in problem

    def test_garbage_bytes(self, tmp_path):
        path = str(tmp_path / MANIFEST_NAME)
        with open(path, "wb") as fh:
            fh.write(b"\x00\xffnot a manifest at all\x80")
        loaded, problem = JobManifest.load_verified(path)
        assert loaded is None and problem is not None

    def test_crc_mismatch_names_the_crc(self, tmp_path):
        path = self.saved(tmp_path)
        with open(path, encoding="utf-8") as fh:
            envelope = json.load(fh)
        envelope["body"] = envelope["body"].replace("abc123", "evil99")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(envelope, fh)
        loaded, problem = JobManifest.load_verified(path)
        assert loaded is None
        assert problem is not None and "CRC" in problem

    def test_pre_envelope_manifest_still_loads(self, tmp_path):
        path = str(tmp_path / MANIFEST_NAME)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"version": 1, "job_hash": "old", "waves": {},
                       "tasks": {}}, fh)
        loaded, problem = JobManifest.load_verified(path)
        assert problem is None
        assert loaded is not None and loaded.job_hash == "old"


# ------------------------------------------------------------ fingerprint


class TestFingerprint:
    def test_stable_across_constructions(self, grid):
        job1 = make_job(num_map_tasks=4, num_reducers=2)
        job2 = make_job(num_map_tasks=4, num_reducers=2)
        assert (job_fingerprint(job1, splits_for(job1, grid))
                == job_fingerprint(job2, splits_for(job2, grid)))

    def test_stable_with_shuffle_plugin_instances(self, grid):
        """Aggregate-mode jobs carry plugin *instances*; their default
        repr embeds a memory address, which must never leak into the
        fingerprint (it would veto all cross-process adoption)."""
        def build():
            query = BoxSubsetQuery(grid, "values", grid["values"].extent)
            return query.build_job("aggregate", variable_mode="index",
                                   num_map_tasks=4, num_reducers=2)

        job1, job2 = build(), build()
        assert job1.shuffle_plugin is not job2.shuffle_plugin
        assert (job_fingerprint(job1, splits_for(job1, grid))
                == job_fingerprint(job2, splits_for(job2, grid)))

    def test_config_changes_change_the_hash(self, grid):
        base = make_job(num_map_tasks=4, num_reducers=2)
        splits = splits_for(base, grid)
        fp = job_fingerprint(base, splits)
        assert fp != job_fingerprint(
            make_job(num_map_tasks=4, num_reducers=3), splits)
        assert fp != job_fingerprint(base, splits[:-1])


# ----------------------------------------------------------------- resume


def run_recovered(grid, recovery_dir, **kwargs):
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("retry_backoff", 0.01)
    runner = ParallelJobRunner(recovery_dir=str(recovery_dir), **kwargs)
    result = runner.run(make_job(num_map_tasks=4, num_reducers=2), grid)
    return runner, result


@pytest.fixture
def serial(grid):
    return LocalJobRunner().run(make_job(num_map_tasks=4, num_reducers=2), grid)


class TestResume:
    def test_full_adoption_runs_nothing(self, grid, serial, tmp_path):
        """Resuming a fully completed run adopts every task: zero
        attempts start, yet counters and output are byte-identical."""
        run_recovered(grid, tmp_path, keep_files=True)
        assert os.path.exists(tmp_path / MANIFEST_NAME)

        runner, result = run_recovered(grid, tmp_path, resume=True)
        assert runner.last_adopted == 6  # 4 maps + 2 reduces
        assert runner.last_trace.count("started") == 0
        assert runner.last_trace.count("adopted") == 6
        assert result.counters == serial.counters
        assert result.output == serial.output

    def test_completed_run_clears_its_checkpoints(self, grid, tmp_path):
        run_recovered(grid, tmp_path)
        assert not os.path.exists(tmp_path / MANIFEST_NAME)
        assert os.path.isdir(tmp_path)  # caller's directory survives

    def test_invalid_checkpoint_is_rerun(self, grid, serial, tmp_path):
        run_recovered(grid, tmp_path, keep_files=True)
        manifest = JobManifest.load(str(tmp_path / MANIFEST_NAME))
        record = manifest.tasks["m00001"]
        os.unlink(record.result_path)  # torn away between runs

        runner, result = run_recovered(grid, tmp_path, resume=True)
        assert runner.last_adopted == 5
        assert runner.last_trace.count("started") == 1
        assert result.counters == serial.counters
        assert result.output == serial.output

    def test_crc_mismatch_is_rerun(self, grid, serial, tmp_path):
        run_recovered(grid, tmp_path, keep_files=True)
        manifest = JobManifest.load(str(tmp_path / MANIFEST_NAME))
        record = manifest.tasks["m00002"]
        segment = next(p for p in record.files if p != record.result_path)
        with open(segment, "r+b") as fh:  # silent bit rot
            byte = fh.read(1)
            fh.seek(0)
            fh.write(bytes([byte[0] ^ 0xFF]))

        runner, result = run_recovered(grid, tmp_path, resume=True)
        assert runner.last_adopted == 5
        assert result.counters == serial.counters
        assert result.output == serial.output

    def test_fingerprint_mismatch_adopts_nothing(self, grid, tmp_path):
        run_recovered(grid, tmp_path, keep_files=True)

        runner = ParallelJobRunner(recovery_dir=str(tmp_path), resume=True,
                                   max_workers=2, retry_backoff=0.01)
        result = runner.run(make_job(num_map_tasks=4, num_reducers=3), grid)
        assert runner.last_adopted == 0
        assert runner.last_trace.count("started") == 7
        assert result.num_reduce_tasks == 3

    def test_fresh_run_discards_stale_checkpoints(self, grid, tmp_path):
        run_recovered(grid, tmp_path, keep_files=True)
        runner, _ = run_recovered(grid, tmp_path)  # resume NOT requested
        assert runner.last_adopted == 0

    def test_resume_requires_recovery_dir(self):
        with pytest.raises(ValueError, match="recovery_dir"):
            ParallelJobRunner(resume=True)

    def test_corrupt_manifest_falls_back_to_clean_restart(
            self, grid, serial, tmp_path):
        """A garbage checkpoint must not crash resume: the runner logs
        ``manifest_corrupt``, clears the stale attempt dirs, adopts
        nothing, and finishes byte-identically to serial."""
        run_recovered(grid, tmp_path, keep_files=True)
        stale = [d for d in os.listdir(tmp_path)
                 if os.path.isdir(tmp_path / d)]
        assert stale  # checkpointed attempt dirs exist to be cleared
        with open(tmp_path / MANIFEST_NAME, "wb") as fh:
            fh.write(b"\x00garbage, not a manifest\xff")

        runner, result = run_recovered(grid, tmp_path, resume=True)
        assert runner.last_trace.count("manifest_corrupt") == 1
        assert runner.last_adopted == 0
        assert runner.last_trace.count("adopted") == 0
        assert result.counters == serial.counters
        assert result.output == serial.output

    def test_truncated_manifest_falls_back_to_clean_restart(
            self, grid, serial, tmp_path):
        run_recovered(grid, tmp_path, keep_files=True)
        path = tmp_path / MANIFEST_NAME
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) // 2])  # torn mid-write

        runner, result = run_recovered(grid, tmp_path, resume=True)
        assert runner.last_trace.count("manifest_corrupt") == 1
        assert runner.last_adopted == 0
        assert result.counters == serial.counters
        assert result.output == serial.output


# ------------------------------------------------- mid-job scheduler kill


class SlowEmitCellsMapper(EmitCellsMapper):
    """EmitCellsMapper behind a simulated slow input fetch, so the
    parent can provably SIGKILL the scheduler with the job in flight."""

    def map(self, split, values, ctx):
        time.sleep(0.15)
        super().map(split, values, ctx)


def _run_job_child(recovery_dir: str) -> None:
    grid = integer_grid((8, 8), seed=11, low=0, high=100)
    job = make_job(mapper=SlowEmitCellsMapper, num_map_tasks=6,
                   num_reducers=2)
    ParallelJobRunner(max_workers=2, recovery_dir=recovery_dir,
                      retry_backoff=0.01).run(job, grid)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="scheduler-kill scenario needs fork")
def test_scheduler_sigkill_then_resume(grid, tmp_path):
    """SIGKILL the entire scheduler process mid-job; a fresh runner must
    adopt the checkpointed tasks and finish byte-identically."""
    job = make_job(mapper=SlowEmitCellsMapper, num_map_tasks=6,
                   num_reducers=2)
    serial = LocalJobRunner().run(job, grid)

    manifest_path = str(tmp_path / MANIFEST_NAME)
    child = multiprocessing.get_context("fork").Process(
        target=_run_job_child, args=(str(tmp_path),))
    child.start()
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline and child.is_alive():
        manifest = JobManifest.load(manifest_path)
        if manifest is not None and len(manifest) >= 1:
            break
        time.sleep(0.02)
    os.kill(child.pid, signal.SIGKILL)
    child.join()
    time.sleep(0.5)  # let orphaned workers drain their current attempt

    manifest = JobManifest.load(manifest_path)
    assert manifest is not None and len(manifest) >= 1

    runner = ParallelJobRunner(max_workers=2, recovery_dir=str(tmp_path),
                               resume=True, retry_backoff=0.01,
                               task_timeout=5.0)
    result = runner.run(job, grid)
    assert runner.last_adopted >= 1
    assert runner.last_trace.count("started") < 8  # some work was saved
    assert result.counters == serial.counters
    assert result.output == serial.output
