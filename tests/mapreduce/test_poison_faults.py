"""Fault-plan surface: poison/corrupt faults, stickiness, damage ops.

Unit coverage for the :mod:`repro.mapreduce.runtime.fault` additions
behind the poison-safe pipeline: fault validation, sticky resolution in
:meth:`FaultInjector.fault_for` (a poison record does not vanish on
retry), the three ``corrupt_file`` damage ops, the poisoned
mapper/reducer wrappers skipping mode bisects against, and the serial
runner's refusal of process-level fault modes it cannot host.
"""

import numpy as np
import pytest

from repro.mapreduce import FaultInjector, LocalJobRunner
from repro.mapreduce.api import Mapper, Reducer
from repro.mapreduce.runtime.fault import (
    Fault,
    PoisonedMapper,
    PoisonedReducer,
    PoisonRecordError,
    corrupt_file,
)
from repro.scidata import integer_grid
from tests.mapreduce.test_engine import make_job


class TestFaultValidation:
    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            Fault("meteor")

    def test_corrupt_field_validation(self):
        with pytest.raises(ValueError):
            Fault("corrupt", where="shuffle-buffer")
        with pytest.raises(ValueError):
            Fault("corrupt", op="scramble")
        with pytest.raises(ValueError):
            Fault("corrupt", offset_frac=1.5)

    def test_negative_record(self):
        with pytest.raises(ValueError):
            Fault("poison", record=-1)

    def test_sticky_defaults(self):
        # poison must survive retries by default; process faults are
        # one-shot so the retry rung can succeed
        assert Fault("poison").sticky is True
        assert Fault("kill").sticky is False
        assert Fault("corrupt").sticky is False
        assert Fault("crash", sticky=True).sticky is True


class TestFaultResolution:
    def test_exact_attempt_match_wins(self):
        injector = FaultInjector().kill("m00000", attempt=1)
        assert injector.fault_for("m00000", 0) is None
        assert injector.fault_for("m00000", 1).mode == "kill"
        assert injector.fault_for("m00001", 1) is None

    def test_one_shot_faults_do_not_reapply(self):
        injector = FaultInjector().corrupt("m00000")
        assert injector.fault_for("m00000", 0).mode == "corrupt"
        assert injector.fault_for("m00000", 1) is None

    def test_sticky_poison_survives_retries(self):
        injector = FaultInjector().poison("m00000", record=5)
        for attempt in range(4):
            fault = injector.fault_for("m00000", attempt)
            assert fault is not None and fault.record == 5

    def test_sticky_does_not_apply_before_its_anchor(self):
        injector = FaultInjector().poison("m00000", record=5, attempt=2)
        assert injector.fault_for("m00000", 1) is None
        assert injector.fault_for("m00000", 3) is not None

    def test_most_recently_anchored_sticky_wins(self):
        injector = (FaultInjector()
                    .poison("m00000", record=1, attempt=0)
                    .poison("m00000", record=2, attempt=2))
        assert injector.fault_for("m00000", 1).record == 1
        assert injector.fault_for("m00000", 5).record == 2

    def test_duplicate_plan_entries_rejected(self):
        injector = FaultInjector().kill("m00000")
        with pytest.raises(ValueError):
            injector.stall("m00000")


class TestCorruptFile:
    def write(self, tmp_path, blob):
        path = tmp_path / "seg"
        path.write_bytes(blob)
        return path

    def test_flip_changes_exactly_one_byte(self, tmp_path):
        blob = bytes(range(256))
        path = self.write(tmp_path, blob)
        corrupt_file(str(path), offset_frac=0.5, op="flip")
        after = path.read_bytes()
        assert len(after) == len(blob)
        assert sum(a != b for a, b in zip(blob, after)) == 1
        assert after[128] == blob[128] ^ 0xFF

    def test_truncate_cuts_the_file(self, tmp_path):
        path = self.write(tmp_path, bytes(100))
        corrupt_file(str(path), offset_frac=0.25, op="truncate")
        assert path.stat().st_size == 25

    def test_splice_swaps_two_windows(self, tmp_path):
        blob = bytes(range(200))
        path = self.write(tmp_path, blob)
        corrupt_file(str(path), offset_frac=0.5, op="splice")
        after = path.read_bytes()
        assert len(after) == len(blob)
        assert after != blob
        assert sorted(after) == sorted(blob)  # content moved, not changed

    def test_splice_on_identical_windows_falls_back_to_flip(self, tmp_path):
        # all-equal bytes make every splice a no-op; injected corruption
        # must still corrupt
        path = self.write(tmp_path, b"\x42" * 64)
        corrupt_file(str(path), offset_frac=0.5, op="splice")
        assert path.read_bytes() != b"\x42" * 64

    def test_empty_file_is_left_alone(self, tmp_path):
        path = self.write(tmp_path, b"")
        corrupt_file(str(path), op="flip")
        assert path.read_bytes() == b""


class _Split:
    """Minimal split stand-in for the wrapper tests."""

    split_id = 0


class _RecordingMapper(Mapper):
    """Collects the calls the poison wrapper forwards."""

    def __init__(self):
        self.calls = []

    def map(self, split, values, ctx):
        self.calls.append(("map", None))

    def map_range(self, split, values, ctx, start, stop):
        self.calls.append(("map_range", (start, stop)))


class _RecordingReducer(Reducer):
    """Collects the key groups the poison wrapper forwards."""

    def __init__(self):
        self.keys = []

    def reduce(self, key, values, ctx):
        self.keys.append(key)


class TestPoisonWrappers:
    def test_mapper_raises_before_emitting(self):
        inner = _RecordingMapper()
        wrapper = PoisonedMapper(inner, record=4)
        values = np.arange(9).reshape(3, 3)
        with pytest.raises(PoisonRecordError):
            wrapper.map(_Split(), values, ctx=None)
        assert inner.calls == []

    def test_mapper_out_of_range_record_passes_through(self):
        inner = _RecordingMapper()
        wrapper = PoisonedMapper(inner, record=100)
        wrapper.map(_Split(), np.arange(9).reshape(3, 3), ctx=None)
        assert inner.calls == [("map", None)]

    def test_map_range_raises_only_when_covering(self):
        inner = _RecordingMapper()
        wrapper = PoisonedMapper(inner, record=4)
        values = np.arange(9).reshape(3, 3)
        wrapper.map_range(_Split(), values, None, 0, 4)
        wrapper.map_range(_Split(), values, None, 5, 9)
        with pytest.raises(PoisonRecordError):
            wrapper.map_range(_Split(), values, None, 4, 5)
        assert inner.calls == [("map_range", (0, 4)), ("map_range", (5, 9))]

    def test_reducer_poisons_one_group_ordinal(self):
        inner = _RecordingReducer()
        wrapper = PoisonedReducer(inner, record=1)
        wrapper.reduce("a", [1], ctx=None)
        with pytest.raises(PoisonRecordError):
            wrapper.reduce("b", [2], ctx=None)
        wrapper.reduce("c", [3], ctx=None)
        assert inner.keys == ["a", "c"]


class TestSerialRunnerFaultSupport:
    @pytest.mark.parametrize("mode", ["kill", "crash", "hang", "stall"])
    def test_process_faults_are_rejected(self, mode):
        # the serial runner has no worker process to kill or stall;
        # silently ignoring the plan would fake robustness coverage
        grid = integer_grid((8, 8), seed=11, low=0, high=100)
        injector = FaultInjector().add(
            "m00000", Fault(mode, seconds=0.01))
        runner = LocalJobRunner(fault_injector=injector)
        with pytest.raises(ValueError, match="serial runner"):
            runner.run(make_job(num_map_tasks=2, num_reducers=1), grid)
