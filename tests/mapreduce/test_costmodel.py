"""The fitted cost model: fit, predict, validate, autotune.

Pinned here:

* the NNLS fit reproduces the simulator oracle's *phase* times on its
  own training run to within a tight band (the contract ``repro tune``
  prints), with every coefficient non-negative;
* tiny task populations (< 3 of a kind) fall back to the cluster
  spec's own per-byte charges -- the oracle's formula -- instead of an
  under-determined regression;
* predictions respond to knobs the way the scaling laws say they must
  (spills make maps dearer, more reducers never slow the reduce phase
  makespan, smaller IFile blocks inflate shuffle bytes), and nonsense
  knobs raise ``ValueError`` instead of predicting garbage;
* autotune never loses: the recommendation's predicted wall-clock is
  never above the defaults', and a tie keeps the defaults.
"""

import pytest

from repro.mapreduce import LocalJobRunner
from repro.mapreduce.metrics import C, TaskProfile
from repro.mapreduce.runtime.costmodel import (
    CostModel,
    TunedKnobs,
    WorkloadSummary,
    _lstsq,
    autotune_from_result,
)
from repro.mapreduce.simcluster.model import ClusterSimulator, ClusterSpec
from repro.scidata import integer_grid
from tests.mapreduce.test_engine import make_job


@pytest.fixture(scope="module")
def fitted():
    """One measured run (4 maps x 3 reducers) and its fitted model."""
    grid = integer_grid((16, 16), seed=7, low=0, high=50)
    job = make_job(num_map_tasks=4, num_reducers=3)
    result = LocalJobRunner().run(job, grid)
    workload = WorkloadSummary.from_result(result, job)
    model = CostModel.fit(result.task_profiles, workload)
    return result, job, workload, model


class TestFit:
    def test_phase_error_band(self, fitted):
        """The headline contract: phase times within a tight band of
        the simulator oracle on the training run."""
        result, _, _, model = fitted
        errors = model.validate(result.task_profiles)
        assert errors["mean_abs_pct_error"] < 10.0
        assert abs(errors["map_pct_error"]) < 10.0
        assert abs(errors["reduce_pct_error"]) < 10.0
        # Per-task error is a diagnostic, not the contract, but it must
        # at least be reported.
        assert errors["task_mean_abs_pct_error"] >= 0.0

    def test_coefficients_nonnegative(self, fitted):
        _, _, _, model = fitted
        assert all(c >= 0 for c in model.map_coef)
        assert all(c >= 0 for c in model.reduce_coef)

    def test_fallback_uses_spec_bandwidths(self):
        """< 3 tasks of a kind: coefficients are the oracle's own
        per-byte charges plus the population's mean CPU."""
        spec = ClusterSpec()
        profiles = [
            TaskProfile(task_id="m00000", kind="map", input_bytes=1000),
            TaskProfile(task_id="r00000", kind="reduce", shuffle_bytes=500),
        ]
        profiles[0].cpu_seconds["map"] = 0.25
        workload = WorkloadSummary(
            num_maps=1, num_reducers=1, input_bytes=1000,
            raw_map_output_bytes=800, shuffle_bytes=500, output_bytes=100,
            sort_buffer_bytes=64 << 20, merge_factor=10)
        model = CostModel.fit(profiles, workload, spec)
        per_disk = 1.0 / spec.disk_bandwidth
        assert model.map_coef == (per_disk, per_disk, 0.25)
        assert model.reduce_coef == (
            per_disk + 1.0 / spec.network_bandwidth, per_disk, 0.0)

    def test_fallback_matches_oracle_on_uniform_cpu(self):
        """With uniform CPU the fallback *is* the oracle formula."""
        spec = ClusterSpec()
        sim = ClusterSimulator(spec)
        p = TaskProfile(task_id="m00000", kind="map", input_bytes=4096,
                        local_write_bytes=2048)
        p.cpu_seconds["map"] = 0.1
        workload = WorkloadSummary(
            num_maps=1, num_reducers=1, input_bytes=4096,
            raw_map_output_bytes=2048, shuffle_bytes=2048, output_bytes=64,
            sort_buffer_bytes=64 << 20, merge_factor=10)
        model = CostModel.fit([p], workload, spec)
        a1, a2, a3 = model.map_coef
        predicted = a1 * p.input_bytes + a2 * p.local_write_bytes + a3
        assert predicted == pytest.approx(sim.map_task_duration(p))


class TestLstsq:
    def test_recovers_nonnegative_system(self):
        rows = [[1.0, 0.0, 1.0], [0.0, 1.0, 1.0],
                [1.0, 1.0, 1.0], [2.0, 1.0, 1.0]]
        truth = [0.5, 1.5, 0.25]
        y = [sum(c * f for c, f in zip(truth, r)) for r in rows]
        coef = _lstsq(rows, y)
        assert coef == pytest.approx(truth)

    def test_never_returns_negative(self):
        # A system whose unconstrained fit wants a negative slope.
        rows = [[1.0, 1.0], [2.0, 1.0], [3.0, 1.0]]
        y = [3.0, 2.0, 1.0]
        coef = _lstsq(rows, y)
        assert all(c >= 0 for c in coef)

    def test_zero_target_fits_zero(self):
        assert _lstsq([[1.0, 1.0], [2.0, 1.0]], [0.0, 0.0]) == [0.0, 0.0]


class TestPredict:
    def test_defaults_reproduce_measured_shape(self, fitted):
        result, _, workload, model = fitted
        p = model.predict()
        assert p.map_seconds > 0
        assert p.reduce_seconds > 0
        assert p.total_seconds == pytest.approx(
            p.map_seconds + p.reduce_seconds)

    def test_tiny_sort_buffer_spills_cost_more(self, fitted):
        """Forcing multi-spill maps triples the map-side local I/O, so
        the predicted map phase must not get cheaper (NNLS may fit the
        I/O coefficient to zero, so >= on the fitted model)."""
        _, _, workload, model = fitted
        default = model.predict()
        spilled = model.predict(sort_buffer_bytes=64)
        assert spilled.map_seconds >= default.map_seconds
        # With an explicit non-zero I/O coefficient the increase is
        # strict: spills write + re-read every run.
        priced = CostModel(model.spec, workload,
                           map_coef=(1e-8, 1e-8, 0.01),
                           reduce_coef=(1e-8, 1e-8, 0.01))
        assert (priced.predict(sort_buffer_bytes=64).map_task_seconds
                > priced.predict().map_task_seconds)

    def test_more_reducers_never_slow_reduce_tasks(self, fitted):
        _, _, workload, model = fitted
        one = model.predict(num_reducers=1)
        many = model.predict(num_reducers=4)
        assert many.reduce_task_seconds <= one.reduce_task_seconds

    def test_narrow_wave_stretches_map_phase(self, fitted):
        _, _, _, model = fitted
        wide = model.predict()
        narrow = model.predict(wave_size=1)
        assert narrow.map_seconds >= wide.map_seconds

    def test_small_blocks_inflate_shuffle(self, fitted):
        _, _, workload, model = fitted
        assert (model._shuffle_total(256)
                > model._shuffle_total(None)
                == float(workload.shuffle_bytes))

    @pytest.mark.parametrize("kwargs", [
        {"num_reducers": 0}, {"num_reducers": -1},
        {"sort_buffer_bytes": 0}, {"wave_size": 0},
    ])
    def test_bad_knobs_raise(self, fitted, kwargs):
        _, _, _, model = fitted
        with pytest.raises(ValueError):
            model.predict(**kwargs)


class TestAutotune:
    def test_never_loses_to_defaults(self, fitted):
        _, _, _, model = fitted
        knobs = model.autotune()
        assert knobs.predicted_seconds <= knobs.default_seconds
        assert knobs.default_seconds == pytest.approx(
            model.predict().total_seconds)

    def test_recommendation_is_reachable(self, fitted):
        """Whatever autotune recommends, predict() accepts -- and
        agrees on the predicted wall-clock."""
        _, _, _, model = fitted
        knobs = model.autotune()
        p = model.predict(
            num_reducers=knobs.num_reducers, wave_size=knobs.wave_size,
            sort_buffer_bytes=knobs.sort_buffer_bytes,
            ifile_block_bytes=knobs.ifile_block_bytes)
        assert p.total_seconds == pytest.approx(knobs.predicted_seconds)

    def test_tie_keeps_defaults(self, fitted):
        _, _, workload, model = fitted
        knobs = model.autotune()
        if not knobs.tuned:
            assert knobs.num_reducers == workload.num_reducers
            assert knobs.sort_buffer_bytes == workload.sort_buffer_bytes
            assert knobs.ifile_block_bytes == workload.ifile_block_bytes
            assert knobs.predicted_seconds == knobs.default_seconds

    def test_programmatic_hook(self, fitted):
        result, job, _, _ = fitted
        knobs = autotune_from_result(result, job)
        assert isinstance(knobs, TunedKnobs)
        assert knobs.default_seconds > 0
        assert knobs.predicted_seconds <= knobs.default_seconds


class TestWorkloadSummary:
    def test_from_result_totals(self, fitted):
        result, job, workload, _ = fitted
        assert workload.num_maps == result.num_map_tasks == 4
        assert workload.num_reducers == result.num_reduce_tasks == 3
        assert workload.input_bytes == sum(
            p.input_bytes for p in result.task_profiles if p.kind == "map")
        assert workload.raw_map_output_bytes == result.counters.get(
            C.MAP_OUTPUT_BYTES)
        assert workload.shuffle_bytes == result.counters.get(
            C.MAP_OUTPUT_MATERIALIZED_BYTES)
        assert workload.sort_buffer_bytes == job.sort_buffer_bytes
        assert workload.merge_factor == job.merge_factor
