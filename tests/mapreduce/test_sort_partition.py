"""Tests for sorting/merging and partitioners."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce.keys import RangeKey
from repro.mapreduce.partition import CurveRangePartitioner, HashPartitioner
from repro.mapreduce.sort import (
    group_by_key,
    merge_runs,
    plan_merge_passes,
    sort_records,
)


class TestSortRecords:
    def test_uniform_length_fast_path(self):
        records = [(b"bb", b"1"), (b"aa", b"2"), (b"cc", b"3"), (b"aa", b"4")]
        out = sort_records(records)
        assert [k for k, _ in out] == [b"aa", b"aa", b"bb", b"cc"]
        # stability: equal keys keep emission order
        assert [v for k, v in out if k == b"aa"] == [b"2", b"4"]

    def test_mixed_length_fallback(self):
        records = [(b"b", b"1"), (b"aaa", b"2"), (b"ab", b"3")]
        out = sort_records(records)
        assert [k for k, _ in out] == [b"aaa", b"ab", b"b"]

    def test_trivial_inputs(self):
        assert sort_records([]) == []
        assert sort_records([(b"x", b"y")]) == [(b"x", b"y")]

    def test_empty_keys(self):
        records = [(b"", b"1"), (b"", b"2")]
        assert sort_records(records) == records

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.binary(min_size=0, max_size=8),
                              st.binary(max_size=4)), max_size=60))
    def test_matches_python_sorted(self, records):
        expected = sorted(records, key=lambda r: r[0])
        got = sort_records(records)
        assert [k for k, _ in got] == [k for k, _ in expected]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from([b"aaaa", b"bbbb", b"cccc"]),
                              st.integers(0, 1000).map(lambda i: str(i).encode())),
                    max_size=40))
    def test_stability_property(self, records):
        out = sort_records(records)
        for key in {b"aaaa", b"bbbb", b"cccc"}:
            assert [v for k, v in out if k == key] == [v for k, v in records if k == key]


class TestMergeAndGroup:
    def test_merge_runs(self):
        a = [(b"a", b"1"), (b"c", b"2")]
        b = [(b"b", b"3"), (b"d", b"4")]
        merged = list(merge_runs([a, b]))
        assert [k for k, _ in merged] == [b"a", b"b", b"c", b"d"]

    def test_group_by_key(self):
        stream = [(b"a", b"1"), (b"a", b"2"), (b"b", b"3")]
        groups = list(group_by_key(stream))
        assert groups == [(b"a", [b"1", b"2"]), (b"b", [b"3"])]

    def test_group_empty(self):
        assert list(group_by_key([])) == []

    def test_merge_then_group_counts(self):
        runs = [[(b"k%02d" % (i % 5), b"x") for i in range(j, 20, 2)] for j in range(2)]
        runs = [sort_records(r) for r in runs]
        groups = list(group_by_key(merge_runs(runs)))
        assert sum(len(vs) for _, vs in groups) == 20
        assert len(groups) == 5


class TestMergePlanning:
    def test_under_factor_needs_no_passes(self):
        assert plan_merge_passes(5, 10) == []
        assert plan_merge_passes(10, 10) == []
        assert plan_merge_passes(0, 10) == []

    def test_one_extra_run(self):
        # 11 runs, factor 10: fold 2 into 1 -> 10 runs remain.
        assert plan_merge_passes(11, 10) == [2]

    def test_many_runs(self):
        passes = plan_merge_passes(100, 10)
        remaining = 100
        for take in passes:
            assert 2 <= take <= 10
            remaining -= take - 1
        assert remaining <= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_merge_passes(5, 1)
        with pytest.raises(ValueError):
            plan_merge_passes(-1, 5)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 500), st.integers(2, 20))
    def test_plan_always_reaches_factor(self, runs, factor):
        remaining = runs
        for take in plan_merge_passes(runs, factor):
            assert take >= 2
            remaining -= take - 1
        assert remaining <= factor


class TestHashPartitioner:
    def test_range_and_determinism(self):
        p = HashPartitioner(7)
        for key in [b"", b"a", b"windspeed1", bytes(100)]:
            r = p.partition(key)
            assert 0 <= r < 7
            assert p.partition(key) == r

    def test_spreads_keys(self):
        p = HashPartitioner(5)
        hits = {p.partition(b"key-%d" % i) for i in range(100)}
        assert hits == set(range(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestCurveRangePartitioner:
    def test_boundaries_cover_space(self):
        p = CurveRangePartitioner(5, 1000)
        assert p.boundaries[0] == 0
        assert p.boundaries[-1] == 1000
        assert p.reducer_for_index(0) == 0
        assert p.reducer_for_index(999) == 4

    def test_each_reducer_owns_contiguous_span(self):
        p = CurveRangePartitioner(4, 64)
        owners = [p.reducer_for_index(i) for i in range(64)]
        assert owners == sorted(owners)
        assert set(owners) == {0, 1, 2, 3}

    def test_check_range(self):
        p = CurveRangePartitioner(2, 100)  # boundary at 50
        assert p.check_range(RangeKey("v", 0, 50)) == 0
        assert p.check_range(RangeKey("v", 50, 50)) == 1
        with pytest.raises(ValueError):
            p.check_range(RangeKey("v", 40, 20))

    def test_split_points(self):
        p = CurveRangePartitioner(5, 1000)
        assert p.split_points() == [200, 400, 600, 800]
        assert CurveRangePartitioner(1, 10).split_points() == []

    def test_index_validation(self):
        p = CurveRangePartitioner(2, 10)
        with pytest.raises(ValueError):
            p.reducer_for_index(10)
        with pytest.raises(ValueError):
            p.reducer_for_index(-1)

    def test_raw_partition_unsupported(self):
        with pytest.raises(NotImplementedError):
            CurveRangePartitioner(2, 10).partition(b"xx")

    def test_validation(self):
        with pytest.raises(ValueError):
            CurveRangePartitioner(0, 10)
        with pytest.raises(ValueError):
            CurveRangePartitioner(2, 0)
