"""Spill/segment directory lifecycle: no debris on failure or teardown."""

import glob
import os

import pytest

from repro.mapreduce import LocalJobRunner, Mapper, ParallelJobRunner
from repro.scidata import integer_grid
from tests.mapreduce.test_engine import make_job


class MidSpillCrashMapper(Mapper):
    """Emits enough to spill (tiny sort buffer), then dies mid-task."""

    def map(self, split, values, ctx):
        coords = split.slab.coords()
        ctx.emit_cells(split.variable, coords, values.ravel())
        raise RuntimeError("simulated crash after spilling")


@pytest.fixture
def grid():
    return integer_grid((8, 8), seed=7, low=0, high=100)


class TestLocalRunnerCrashCleanup:
    def test_mid_map_crash_leaves_no_files_in_explicit_workdir(
            self, grid, tmp_path):
        (tmp_path / "user-file.txt").write_text("precious")
        runner = LocalJobRunner(workdir=str(tmp_path))
        job = make_job(mapper=MidSpillCrashMapper, sort_buffer_bytes=1024)
        with pytest.raises(RuntimeError, match="simulated crash"):
            runner.run(job, grid)
        # spills written before the crash are gone; user files survive
        assert os.listdir(tmp_path) == ["user-file.txt"]

    def test_mid_map_crash_removes_owned_workdir(self, grid):
        runner = LocalJobRunner()
        workdir = runner.workdir
        job = make_job(mapper=MidSpillCrashMapper, sort_buffer_bytes=1024)
        with pytest.raises(RuntimeError):
            runner.run(job, grid)
        assert not os.path.isdir(workdir) or os.listdir(workdir) == []

    def test_runner_usable_again_after_crash(self, grid):
        runner = LocalJobRunner()
        with pytest.raises(RuntimeError):
            runner.run(make_job(mapper=MidSpillCrashMapper,
                                sort_buffer_bytes=1024), grid)
        result = runner.run(make_job(), grid)
        assert len(result.output) == 64


class TestContextManagers:
    def test_local_runner_context_removes_owned_workdir(self, grid):
        with LocalJobRunner(keep_files=True) as runner:
            runner.run(make_job(), grid)
            workdir = runner.workdir
            assert os.listdir(workdir)  # keep_files left segments behind
        assert not os.path.isdir(workdir)

    def test_local_runner_context_keeps_explicit_workdir(self, grid, tmp_path):
        with LocalJobRunner(workdir=str(tmp_path)) as runner:
            runner.run(make_job(), grid)
        assert tmp_path.is_dir()

    def test_parallel_runner_context_removes_owned_workdir(self, grid):
        with ParallelJobRunner(max_workers=2, keep_files=True) as runner:
            runner.run(make_job(num_map_tasks=2), grid)
            workdir = runner.workdir
            assert os.listdir(workdir)
        assert not os.path.isdir(workdir)


class TestParallelRunnerCleanup:
    def test_successful_run_cleans_run_dir(self, grid, tmp_path):
        runner = ParallelJobRunner(workdir=str(tmp_path), max_workers=2)
        runner.run(make_job(num_map_tasks=3, num_reducers=2), grid)
        assert os.listdir(tmp_path) == []

    def test_mid_map_crash_cleans_run_dir(self, grid, tmp_path):
        from repro.mapreduce.runtime import TaskFailedError

        runner = ParallelJobRunner(workdir=str(tmp_path), max_workers=2,
                                   max_retries=1, retry_backoff=0.01)
        job = make_job(mapper=MidSpillCrashMapper, sort_buffer_bytes=1024,
                       num_map_tasks=2)
        with pytest.raises(TaskFailedError):
            runner.run(job, grid)
        assert os.listdir(tmp_path) == []

    def test_owned_workdir_removed_after_run(self, grid):
        before = set(glob.glob("/tmp/repro-mrp-*"))
        runner = ParallelJobRunner(max_workers=2)
        runner.run(make_job(num_map_tasks=2), grid)
        assert set(glob.glob("/tmp/repro-mrp-*")) == before

    def test_keep_files_retains_run_dir(self, grid, tmp_path):
        runner = ParallelJobRunner(workdir=str(tmp_path), keep_files=True,
                                   max_workers=2)
        runner.run(make_job(num_map_tasks=2), grid)
        segments = glob.glob(str(tmp_path / "run-*" / "m*" / "*-out-p0"))
        assert segments
