"""Pipelined-shuffle building blocks: config, commit log, mid-stream
epoch bumps, and fetch ordering.

Pinned here:

* the pipeline knobs round-trip through ``ShuffleConfig`` validation
  and the ``REPRO_PIPELINE`` / ``REPRO_STARVATION_THRESHOLD``
  environment variables, with malformed values surfacing as
  :class:`ConfigError` naming the variable;
* ``ShuffleFetcher.fetch_all`` returns blobs in **input order** no
  matter the segment sizes, fetch concurrency, or completion order --
  the property every merge (and therefore every output byte) rests on;
* the commit log is a crash-safe completion-event stream: atomic
  publish, stat-signature re-reads, epoch bumps visible to a polling
  reader, torn/missing records tolerated;
* a producer re-executed *after* a pipelined reducer already consumed
  it (the mid-pipeline STALE_EPOCH) is discarded and re-fetched at the
  bumped epoch, and the reduce output is byte-identical to the barrier
  path over the same final segments.
"""

import os
import pickle
import threading
import time

import numpy as np
import pytest

from repro.mapreduce.codecs import NullCodec
from repro.mapreduce.engine import run_map_task, run_reduce_task
from repro.mapreduce.ifile import IFileWriter
from repro.mapreduce.metrics import C, Counters
from repro.mapreduce.runtime.pipeline import (
    CommitLog,
    CommitRecord,
    PipelinePlan,
    aggregate_pipeline_stats,
    run_reduce_task_pipelined,
)
from repro.mapreduce.runtime.shuffle import (
    ConfigError,
    SegmentRef,
    ShuffleConfig,
    ShuffleFetcher,
    shuffle_config_from_env,
)
from repro.scidata import integer_grid
from repro.scidata.splits import ArraySplitter
from tests.mapreduce.test_engine import make_job

_ENV_VARS = ("REPRO_TRANSPORT", "REPRO_FETCH_RETRIES",
             "REPRO_FETCH_TIMEOUT", "REPRO_WIRE_CODEC",
             "REPRO_SHUFFLE_PORT_BASE", "REPRO_PIPELINE",
             "REPRO_STARVATION_THRESHOLD")


@pytest.fixture
def clean_env(monkeypatch):
    for name in _ENV_VARS:
        monkeypatch.delenv(name, raising=False)
    return monkeypatch


class TestPipelineConfig:
    def test_defaults(self):
        config = ShuffleConfig()
        assert config.pipeline is False
        assert config.starvation_threshold == 2

    @pytest.mark.parametrize("threshold", [0, -1])
    def test_starvation_threshold_range_checked(self, threshold):
        with pytest.raises(ValueError, match="starvation_threshold"):
            ShuffleConfig(starvation_threshold=threshold)

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("No", False), ("off", False),
        (" true ", True),
    ])
    def test_pipeline_env_boolean_forms(self, clean_env, raw, expected):
        clean_env.setenv("REPRO_PIPELINE", raw)
        config = shuffle_config_from_env()
        assert config is not None and config.pipeline is expected

    def test_env_round_trip(self, clean_env):
        clean_env.setenv("REPRO_PIPELINE", "1")
        clean_env.setenv("REPRO_STARVATION_THRESHOLD", "5")
        config = shuffle_config_from_env()
        assert config.pipeline is True
        assert config.starvation_threshold == 5

    def test_no_env_means_runner_default(self, clean_env):
        assert shuffle_config_from_env() is None

    @pytest.mark.parametrize("var,value", [
        ("REPRO_PIPELINE", "maybe"),
        ("REPRO_PIPELINE", "2"),
        ("REPRO_STARVATION_THRESHOLD", "soon"),
    ])
    def test_malformed_env_names_variable(self, clean_env, var, value):
        clean_env.setenv(var, value)
        with pytest.raises(ConfigError) as err:
            shuffle_config_from_env()
        assert var in str(err.value)

    def test_out_of_range_threshold_is_config_error(self, clean_env):
        clean_env.setenv("REPRO_STARVATION_THRESHOLD", "0")
        with pytest.raises(ConfigError, match="starvation_threshold"):
            shuffle_config_from_env()


class TestFetchAllOrdering:
    """Property: blobs come back in ref order, not completion order."""

    def _make_refs(self, tmp_path, rng, count):
        refs, contents = [], []
        for i in range(count):
            path = str(tmp_path / f"m{i:05d}-out-p0")
            writer = IFileWriter(path, NullCodec())
            # Wildly uneven segment sizes so completion order scrambles.
            for j in range(int(rng.integers(1, 200))):
                writer.append(f"k{i:03d}-{j:05d}".encode(),
                              bytes(int(rng.integers(1, 64))))
            stats = writer.close()
            refs.append(SegmentRef(map_id=f"m{i:05d}", path=path,
                                   stats=stats))
            with open(path, "rb") as fh:
                contents.append(fh.read())
        return refs, contents

    @pytest.mark.parametrize("transport", ["direct", "channel"])
    def test_order_is_deterministic_under_concurrency(self, tmp_path,
                                                      transport):
        rng = np.random.default_rng(401)
        for trial in range(6):
            count = int(rng.integers(1, 13))
            concurrency = int(rng.integers(1, 7))
            sub = tmp_path / f"{transport}-{trial}"
            sub.mkdir()
            refs, contents = self._make_refs(sub, rng, count)
            counters = Counters()
            fetcher = ShuffleFetcher(
                ShuffleConfig(transport=transport,
                              concurrency=concurrency, chunk_bytes=256),
                counters, "r00000")
            assert fetcher.fetch_all(refs) == contents
            assert counters[C.SHUFFLE_FETCHES] == count

    def test_empty_ref_list(self):
        fetcher = ShuffleFetcher(ShuffleConfig(), Counters(), "r00000")
        assert fetcher.fetch_all([]) == []


class TestCommitLog:
    def record(self, map_id="m00000", epoch=0):
        return CommitRecord(map_id=map_id, epoch=epoch,
                            segments={0: ("/tmp/none", None)})

    def test_publish_then_poll(self, tmp_path):
        log = CommitLog(str(tmp_path / "commits"))
        assert log.poll() == {}
        log.commit(self.record())
        log.commit(self.record(map_id="m00001"))
        records = log.poll()
        assert set(records) == {"m00000", "m00001"}
        assert records["m00000"].epoch == 0

    def test_epoch_bump_visible_to_cached_reader(self, tmp_path):
        log = CommitLog(str(tmp_path / "commits"))
        log.commit(self.record())
        reader = CommitLog(log.directory)
        assert reader.poll()["m00000"].epoch == 0
        log.commit(self.record(epoch=1))
        assert reader.poll()["m00000"].epoch == 1

    def test_torn_record_skipped(self, tmp_path):
        log = CommitLog(str(tmp_path / "commits"))
        log.commit(self.record())
        blob = pickle.dumps(self.record(map_id="m00001"))
        with open(os.path.join(log.directory, "m00001.commit"),
                  "wb") as fh:
            fh.write(blob[:len(blob) // 2])
        assert set(CommitLog(log.directory).poll()) == {"m00000"}

    def test_missing_directory_is_empty(self, tmp_path):
        assert CommitLog(str(tmp_path / "nope")).poll() == {}


class TestAggregateStats:
    def test_rollup(self):
        stats = aggregate_pipeline_stats([
            {"first_fetch_ms": 12.5, "overlapped_fetches": 2,
             "refetches": 1, "wait_seconds": 0.1},
            {"first_fetch_ms": 4.25, "overlapped_fetches": 1,
             "refetches": 0, "wait_seconds": 0.2},
        ])
        assert stats[C.REDUCE_FIRST_FETCH_MS] == 4.25
        assert stats[C.PIPELINE_OVERLAP] == 3
        assert stats["refetches"] == 1
        assert stats["wait_seconds"] == pytest.approx(0.3)
        assert stats["reduces"] == 2

    def test_empty_is_none(self):
        assert aggregate_pipeline_stats([]) is None
        assert aggregate_pipeline_stats([None, None]) is None


class TestStaleEpochMidPipeline:
    """A producer re-executed *after* its run was consumed: the reducer
    must discard the stale run, re-fetch at the bumped epoch, and still
    produce barrier-identical output."""

    def _map_outputs(self, job, grid, tmp_path, tag):
        outs = []
        for split in ArraySplitter(job.num_map_tasks).split(grid):
            workdir = str(tmp_path / f"{tag}-m{split.split_id:05d}")
            os.makedirs(workdir, exist_ok=True)
            outs.append(run_map_task(job, split, grid, workdir))
        return outs

    def test_discard_and_refetch_at_bumped_epoch(self, tmp_path):
        grid = integer_grid((8, 8), seed=13, low=0, high=100)
        job = make_job(num_map_tasks=2, num_reducers=1)
        epoch0 = self._map_outputs(job, grid, tmp_path, "e0")
        # The re-executed m00000: identical bytes by determinism, but a
        # different attempt directory (the old files are gone).
        epoch1 = self._map_outputs(job, grid, tmp_path, "e1")[0]

        barrier_dir = str(tmp_path / "barrier")
        os.makedirs(barrier_dir)
        expected = run_reduce_task(
            job, 0, [SegmentRef.from_pair(o.segments[0]) for o in epoch0],
            barrier_dir)

        commit_dir = str(tmp_path / "commits")
        log = CommitLog(commit_dir)
        log.commit(CommitRecord(map_id="m00000", epoch=0,
                                segments=epoch0[0].segments))
        plan = PipelinePlan(commit_dir=commit_dir,
                            map_ids=("m00000", "m00001"),
                            poll_interval=0.01)

        def feed():
            # Let the reducer consume m00000 at epoch 0, then re-publish
            # it at epoch 1 and finally commit the straggler m00001.
            time.sleep(0.15)
            log.commit(CommitRecord(map_id="m00000", epoch=1,
                                    segments=epoch1.segments))
            time.sleep(0.05)
            log.commit(CommitRecord(map_id="m00001", epoch=0,
                                    segments=epoch0[1].segments))

        feeder = threading.Thread(target=feed)
        feeder.start()
        reduce_dir = str(tmp_path / "pipelined")
        os.makedirs(reduce_dir)
        try:
            result = run_reduce_task_pipelined(job, 0, plan, reduce_dir)
        finally:
            feeder.join()

        assert result.output == expected.output
        # The extra fetch moves only the transfer accounting; every
        # other counter is byte-identical to the barrier path.
        volatile = {C.SHUFFLE_FETCHES, C.SHUFFLE_BYTES_TRANSFERRED}
        stable = {k: v for k, v in result.counters.as_dict().items()
                  if k not in volatile}
        assert stable == {k: v for k, v
                          in expected.counters.as_dict().items()
                          if k not in volatile}
        assert result.pipeline["refetches"] == 1
        assert result.pipeline["overlapped_fetches"] >= 1
        # Two fetches of m00000 (stale + bumped) plus one of m00001.
        assert result.counters[C.SHUFFLE_FETCHES] == 3
        # ...but shuffle bytes are charged once, from the final set.
        assert (result.counters[C.SHUFFLE_BYTES]
                == expected.counters[C.SHUFFLE_BYTES])
