"""Hostile-byte hardening for the varint / serde / key decode layers.

Every hand-rolled decoder must turn truncated, malformed, or fuzzed
input into a structured :class:`~repro.util.errors.CorruptRecordError`
subclass carrying offset context -- never a raw ``struct.error`` or
``IndexError``, and never a silently wrong value.  Since the whole
family subclasses ``ValueError``, legacy ``except ValueError`` callers
keep working; these tests pin both properties.
"""

import numpy as np
import pytest

from repro.mapreduce.keys import CellKey, CellKeySerde, RangeKey, RangeKeySerde
from repro.mapreduce.serde import (
    BytesSerde,
    Float32Serde,
    Float64Serde,
    Int32Serde,
    Int64Serde,
    TextSerde,
    ValueBlockSerde,
)
from repro.util.errors import (
    CorruptRecordError,
    MalformedRecordError,
    TruncatedRecordError,
)
from repro.util.varint import read_vlong, write_vlong


class TestVarintHardening:
    def test_read_past_end_of_empty_buffer(self):
        with pytest.raises(TruncatedRecordError) as exc:
            read_vlong(b"")
        assert exc.value.offset == 0
        assert isinstance(exc.value, ValueError)

    def test_read_at_offset_past_end(self):
        with pytest.raises(TruncatedRecordError) as exc:
            read_vlong(b"\x01\x02", 5)
        assert exc.value.offset == 5

    @pytest.mark.parametrize("value", [128, 65536, 2**31, 2**63 - 1, -(2**63)])
    def test_every_truncation_of_multibyte_varint_raises(self, value):
        buf = bytearray()
        write_vlong(value, buf)
        assert len(buf) > 1
        for cut in range(1, len(buf)):
            with pytest.raises(TruncatedRecordError) as exc:
                read_vlong(buf[:cut])
            assert exc.value.offset == 0

    def test_memoryview_input_fails_identically(self):
        buf = bytearray()
        write_vlong(65536, buf)
        with pytest.raises(TruncatedRecordError):
            read_vlong(memoryview(bytes(buf[:2])))
        # and decodes identically when intact
        assert read_vlong(memoryview(bytes(buf))) == read_vlong(bytes(buf))


class TestFixedWidthSerdes:
    @pytest.mark.parametrize("serde,sample", [
        (Int32Serde(), 42), (Int64Serde(), -7),
        (Float32Serde(), 1.5), (Float64Serde(), -2.25),
    ])
    def test_short_buffer_is_structured_not_struct_error(self, serde, sample):
        blob = serde.to_bytes(sample)
        for cut in range(len(blob)):
            with pytest.raises(TruncatedRecordError) as exc:
                serde.read(blob[:cut], 0)
            assert exc.value.offset == 0

    def test_trailing_bytes_rejected_by_from_bytes(self):
        serde = Int32Serde()
        with pytest.raises(MalformedRecordError):
            serde.from_bytes(serde.to_bytes(1) + b"\x00")


class TestTextSerde:
    def test_length_past_eof(self):
        blob = bytearray()
        write_vlong(100, blob)
        blob.extend(b"short")
        with pytest.raises(TruncatedRecordError):
            TextSerde().read(bytes(blob), 0)

    def test_negative_length_is_malformed(self):
        blob = bytearray()
        write_vlong(-5, blob)
        with pytest.raises(MalformedRecordError):
            TextSerde().read(bytes(blob), 0)

    def test_invalid_utf8_is_malformed(self):
        blob = bytearray()
        write_vlong(2, blob)
        blob.extend(b"\xff\xfe")
        with pytest.raises(MalformedRecordError) as exc:
            TextSerde().read(bytes(blob), 0)
        assert "UTF-8" in str(exc.value)

    def test_memoryview_roundtrip(self):
        blob = TextSerde().to_bytes("windspeed1")
        text, end = TextSerde().read(memoryview(blob), 0)
        assert text == "windspeed1"
        assert end == len(blob)


class TestBytesSerde:
    def test_length_past_eof(self):
        blob = bytearray()
        write_vlong(10, blob)
        blob.extend(b"abc")
        with pytest.raises(TruncatedRecordError):
            BytesSerde().read(bytes(blob), 0)
        with pytest.raises(TruncatedRecordError):
            BytesSerde().read(memoryview(bytes(blob)), 0)

    def test_negative_length_is_malformed(self):
        blob = bytearray()
        write_vlong(-1, blob)
        with pytest.raises(MalformedRecordError):
            BytesSerde().read(bytes(blob), 0)

    def test_memoryview_decode_is_zero_copy_but_equal(self):
        blob = BytesSerde().to_bytes(b"payload")
        view, _ = BytesSerde().read(memoryview(blob), 0)
        assert isinstance(view, memoryview)
        assert bytes(view) == b"payload"
        data, _ = BytesSerde().read(blob, 0)
        assert isinstance(data, bytes) and data == b"payload"


class TestValueBlockSerde:
    def test_count_past_eof(self):
        serde = ValueBlockSerde("<i4")
        blob = bytearray()
        write_vlong(1000, blob)
        blob.extend(b"\x00" * 8)
        with pytest.raises(TruncatedRecordError):
            serde.read(bytes(blob), 0)

    def test_negative_count_is_malformed(self):
        serde = ValueBlockSerde("<i4")
        blob = bytearray()
        write_vlong(-3, blob)
        with pytest.raises(MalformedRecordError):
            serde.read(bytes(blob), 0)


class TestKeySerdes:
    def test_truncated_cell_key(self):
        serde = CellKeySerde(ndim=3, variable_mode="name")
        blob = serde.to_bytes(CellKey("temp", (1, 2, 3)))
        for cut in range(len(blob)):
            with pytest.raises(TruncatedRecordError):
                serde.read(blob[:cut], 0)

    def test_truncated_range_key(self):
        serde = RangeKeySerde(variable_mode="index")
        blob = serde.to_bytes(RangeKey(0, 5, 10))
        for cut in range(len(blob)):
            with pytest.raises(TruncatedRecordError):
                serde.read(blob[:cut], 0)

    def test_invalid_range_key_fields_are_malformed(self):
        # Zero the count field: RangeKey's own validation (count >= 1)
        # must surface as a structured decode error, not a bare
        # ValueError without context.
        serde = RangeKeySerde(variable_mode="index")
        blob = bytearray(serde.to_bytes(RangeKey(0, 5, 10)))
        good_count = bytes(blob[-4:])
        for tamper in (b"\x00\x00\x00\x00", b"\x7f\xff\xff\xff"):
            if tamper == good_count:
                continue
            blob[-4:] = tamper
            with pytest.raises(CorruptRecordError):
                serde.from_bytes(bytes(blob))

    @pytest.mark.parametrize("serde", [
        CellKeySerde(ndim=2, variable_mode="name"),
        CellKeySerde(ndim=3, variable_mode="index"),
        RangeKeySerde(variable_mode="name"),
    ])
    def test_fuzzed_bytes_never_escape_the_error_family(self, serde):
        """Random buffers either decode or raise CorruptRecordError --
        no IndexError, struct.error, or unicode errors leak out."""
        rng = np.random.default_rng(2026)
        for _ in range(300):
            blob = rng.integers(0, 256, size=int(rng.integers(0, 40)),
                                dtype=np.uint8).tobytes()
            try:
                serde.from_bytes(blob)
            except CorruptRecordError:
                pass  # the structured family is the only allowed failure

    def test_bitflipped_cell_keys_never_escape_the_error_family(self):
        serde = CellKeySerde(ndim=2, variable_mode="name")
        blob = bytearray(serde.to_bytes(CellKey("values", (3, 4))))
        for i in range(len(blob)):
            for mask in (0x01, 0x80, 0xFF):
                flipped = bytearray(blob)
                flipped[i] ^= mask
                try:
                    serde.from_bytes(bytes(flipped))
                except CorruptRecordError:
                    pass
