"""Pipelined execution end to end: both runners, byte-identical output.

The tentpole contract: turning ``ShuffleConfig.pipeline`` on changes
*when* reduces run, never *what* they produce.  Pinned here:

* serial and parallel pipelined runs match the serial barrier run on
  output and **full** counters, over both transports, with and without
  a multi-pass merge (where incremental folding is disabled);
* pipelined runs actually report pipeline stats, and barrier runs
  report none (the stats live outside ``Counters`` so the identity
  holds);
* a tight worker pool (fewer slots than maps + reduces) still
  completes: maps outrank waiting reducers and preemption breaks the
  slot deadlock;
* a hung map straggler is speculated away by starved reducers with the
  hang fully overlapped, and a whole-host crash mid-pipeline recovers
  to identical output;
* ``HostHealthMonitor.take_newly_dead(only=...)`` drains selectively --
  the pipelined runner consumes its own injected crash without
  swallowing organic deaths.
"""

import pytest

from repro.mapreduce import LocalJobRunner, ParallelJobRunner
from repro.mapreduce.metrics import C
from repro.mapreduce.runtime import FaultInjector
from repro.mapreduce.runtime.hosts import (
    HostHealthMonitor,
    HostRegistry,
    host_for,
)
from repro.mapreduce.runtime.shuffle import ShuffleConfig
from repro.scidata import integer_grid
from tests.mapreduce.test_engine import make_job

#: counters that legitimately move when a fault forces extra transfers
#: or re-execution (same set the P3 experiment treats as volatile)
VOLATILE = frozenset({
    C.SHUFFLE_FETCHES, C.SHUFFLE_RETRIES, C.SHUFFLE_FAILED_FETCHES,
    C.SHUFFLE_BYTES_TRANSFERRED, C.MAPS_REEXECUTED,
    C.HOSTS_LOST, C.MAPS_REEXECUTED_HOST,
})


@pytest.fixture
def grid():
    return integer_grid((8, 8), seed=11, low=0, high=100)


def pipelined(transport="direct", **kw):
    kw.setdefault("starvation_threshold", 2)
    return ShuffleConfig(transport=transport, pipeline=True, **kw)


def stable(result):
    return {k: v for k, v in result.counters.as_dict().items()
            if k not in VOLATILE}


class TestPipelinedEquivalence:
    @pytest.mark.parametrize("transport", ["direct", "network"])
    def test_both_runners_match_barrier(self, grid, transport):
        overrides = dict(num_map_tasks=3, num_reducers=2)
        # Same-transport barrier baseline: the wire counters exist only
        # under the network transport, on or off the pipeline.
        barrier = LocalJobRunner(
            shuffle=ShuffleConfig(transport=transport)).run(
            make_job(**overrides), grid)
        serial = LocalJobRunner(shuffle=pipelined(transport)).run(
            make_job(**overrides), grid)
        parallel = ParallelJobRunner(
            max_workers=5, shuffle=pipelined(transport)).run(
            make_job(**overrides), grid)
        for result in (serial, parallel):
            assert result.output == barrier.output
            assert result.counters.as_dict() == barrier.counters.as_dict()
            assert result.pipeline_stats is not None
            assert result.pipeline_stats["reduces"] == 2
        assert barrier.pipeline_stats is None

    def test_multipass_merge_disables_folding_not_identity(self):
        """More runs than the merge factor: the pipelined path may only
        overlap fetch + decode, and the on-disk merge passes must be
        byte-identical to the barrier's."""
        grid = integer_grid((12, 4), seed=3)
        overrides = dict(num_map_tasks=12, num_reducers=2, merge_factor=2)
        barrier = LocalJobRunner().run(make_job(**overrides), grid)
        piped = ParallelJobRunner(max_workers=4, shuffle=pipelined()).run(
            make_job(**overrides), grid)
        assert piped.output == barrier.output
        assert piped.counters.as_dict() == barrier.counters.as_dict()
        assert piped.counters[C.MERGE_PASS_BYTES] > 0

    def test_tight_pool_completes_via_preemption(self, grid):
        """Fewer workers than maps: admitted reducers must not starve
        the maps they wait on (maps outrank, reducers preempt)."""
        overrides = dict(num_map_tasks=4, num_reducers=2)
        barrier = LocalJobRunner().run(make_job(**overrides), grid)
        piped = ParallelJobRunner(max_workers=2, shuffle=pipelined()).run(
            make_job(**overrides), grid)
        assert piped.output == barrier.output
        assert piped.counters.as_dict() == barrier.counters.as_dict()


class TestPipelinedFaults:
    def test_hung_straggler_speculated_and_overlapped(self, grid):
        overrides = dict(num_map_tasks=3, num_reducers=2)
        barrier = LocalJobRunner().run(make_job(**overrides), grid)
        injector = FaultInjector().hang("m00002", 5.0)
        piped = ParallelJobRunner(
            max_workers=5, shuffle=pipelined(),
            fault_injector=injector, speculation=True,
            min_straggler_seconds=0.2, retry_backoff=0.01).run(
            make_job(**overrides), grid)
        # A hang damages nothing: full-counter identity, and the healthy
        # maps' segments were fetched while the straggler hung.
        assert piped.output == barrier.output
        assert piped.counters.as_dict() == barrier.counters.as_dict()
        assert piped.pipeline_stats[C.PIPELINE_OVERLAP] > 0
        assert piped.pipeline_stats[C.REDUCE_FIRST_FETCH_MS] < 5000

    @pytest.mark.parametrize("runner_factory", [
        lambda shuffle, injector: LocalJobRunner(
            shuffle=shuffle, fault_injector=injector, max_host_reexecs=8),
        lambda shuffle, injector: ParallelJobRunner(
            max_workers=5, shuffle=shuffle, fault_injector=injector,
            retry_backoff=0.01, max_host_reexecs=8),
    ], ids=["serial", "parallel"])
    def test_host_crash_mid_pipeline_recovers(self, grid, runner_factory):
        overrides = dict(num_map_tasks=3, num_reducers=2)
        barrier = LocalJobRunner().run(make_job(**overrides), grid)
        injector = FaultInjector().host_crash(host_for("m00000", 2))
        result = runner_factory(pipelined(), injector).run(
            make_job(**overrides), grid)
        assert result.output == barrier.output
        assert stable(result) == stable(barrier)
        assert result.counters[C.HOSTS_LOST] == 1
        assert result.counters[C.MAPS_REEXECUTED_HOST] > 0


class TestTakeNewlyDead:
    def _monitor(self):
        registry = HostRegistry(2)
        monitor = HostHealthMonitor(registry,
                                    suspect_heartbeat_misses=1,
                                    dead_fetch_strikes=1)
        for host in registry.names():
            # Silent (SUSPECT) first, then a fetch strike: DEAD.
            monitor.record_missed_heartbeat(host)
            monitor.record_fetch_strike(host)
        return monitor

    def test_drain_all(self):
        monitor = self._monitor()
        assert set(monitor.take_newly_dead()) == {"host0", "host1"}
        assert monitor.take_newly_dead() == []

    def test_drain_only_leaves_rest_queued(self):
        monitor = self._monitor()
        assert monitor.take_newly_dead(only={"host1"}) == ["host1"]
        # The other death is still queued for the scheduler's sweep.
        assert monitor.take_newly_dead() == ["host0"]
