"""Counter merge algebra: the foundation of cross-process metrics.

The parallel runtime accumulates counters per task in separate
processes and folds them together in whatever order tasks finish.  That
is only sound because merging is commutative and associative -- pinned
here as a property, both abstractly (random counter sets) and on the
engine (per-task counters of a seeded job merged in shuffled order
equal the serial job total).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.mapreduce import Counters, LocalJobRunner
from repro.mapreduce.metrics import C
from repro.scidata import integer_grid
from tests.mapreduce.test_engine import make_job

counter_names = st.sampled_from(
    ["A", "B", "SHUFFLE_BYTES", "MAP_OUTPUT_RECORDS", "SPILL_COUNT",
     C.SHUFFLE_FETCHES, C.SHUFFLE_RETRIES, C.SHUFFLE_FAILED_FETCHES,
     C.SHUFFLE_BYTES_TRANSFERRED, C.MAPS_REEXECUTED])
counter_dicts = st.dictionaries(
    counter_names, st.integers(min_value=0, max_value=10**12), max_size=5)


def from_dict(values):
    c = Counters()
    for name, amount in values.items():
        c.incr(name, amount)
    return c


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(parts=st.lists(counter_dicts, max_size=6), seed=st.integers(0, 2**16))
    def test_merge_is_order_independent(self, parts, seed):
        counters = [from_dict(p) for p in parts]
        shuffled = list(counters)
        random.Random(seed).shuffle(shuffled)
        assert Counters.merged(counters) == Counters.merged(shuffled)

    @settings(max_examples=50, deadline=None)
    @given(a=counter_dicts, b=counter_dicts)
    def test_merge_adds_by_name(self, a, b):
        merged = Counters.merged([from_dict(a), from_dict(b)])
        for name in set(a) | set(b):
            assert merged[name] == a.get(name, 0) + b.get(name, 0)

    def test_zero_equals_absent(self):
        explicit = from_dict({"A": 0, "B": 3})
        implicit = from_dict({"B": 3})
        assert explicit == implicit
        assert implicit == explicit

    def test_diff_reports_only_differences(self):
        a = from_dict({"A": 1, "B": 2})
        b = from_dict({"A": 1, "B": 5, "C": 7})
        assert a.diff(b) == {"B": (2, 5), "C": (0, 7)}
        assert a.diff(a) == {}

    def test_shuffle_counters_merge_and_diff(self):
        """The SHUFFLE_* transport counters ride the same algebra: a
        faulted run's counters fold across tasks like any other, and
        diff against a clean run isolates exactly the fault-measuring
        names."""
        clean = from_dict({C.SHUFFLE_FETCHES: 6,
                           C.SHUFFLE_BYTES_TRANSFERRED: 4096})
        reduce_a = from_dict({C.SHUFFLE_FETCHES: 4, C.SHUFFLE_RETRIES: 1,
                              C.SHUFFLE_FAILED_FETCHES: 1,
                              C.SHUFFLE_BYTES_TRANSFERRED: 3000})
        reduce_b = from_dict({C.SHUFFLE_FETCHES: 3,
                              C.SHUFFLE_BYTES_TRANSFERRED: 1096})
        job_level = from_dict({C.MAPS_REEXECUTED: 1})
        faulted = Counters.merged([reduce_a, reduce_b, job_level])
        assert faulted == Counters.merged([job_level, reduce_b, reduce_a])
        assert faulted[C.SHUFFLE_FETCHES] == 7
        assert faulted[C.SHUFFLE_RETRIES] == 1
        assert clean.diff(faulted) == {
            C.SHUFFLE_FETCHES: (6, 7),
            C.SHUFFLE_RETRIES: (0, 1),
            C.SHUFFLE_FAILED_FETCHES: (0, 1),
            C.MAPS_REEXECUTED: (0, 1),
        }

    def test_eq_other_types(self):
        assert Counters() != "not counters"

    def test_unhashable(self):
        import pytest

        with pytest.raises(TypeError):
            hash(Counters())


class TestEngineCounterProperty:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16), maps=st.integers(1, 4),
           reducers=st.integers(1, 3), shuffle_seed=st.integers(0, 2**16))
    def test_shuffled_per_task_merge_equals_serial_total(
            self, seed, maps, reducers, shuffle_seed):
        """Per-task counters of a seeded job, merged in arbitrary order,
        are byte-identical to the job's serially accumulated total."""
        grid = integer_grid((6, 6), seed=seed)
        runner = LocalJobRunner()
        from repro.mapreduce.engine import run_map_task, run_reduce_task
        from repro.scidata.splits import ArraySplitter

        job = make_job(num_map_tasks=maps, num_reducers=reducers)
        serial = LocalJobRunner().run(
            make_job(num_map_tasks=maps, num_reducers=reducers), grid)

        splits = ArraySplitter(maps).split(grid)
        map_outputs = [run_map_task(job, s, grid, runner.workdir)
                       for s in splits]
        reduce_results = [
            run_reduce_task(job, part,
                            [mo.segments[part] for mo in map_outputs],
                            runner.workdir)
            for part in range(reducers)
        ]
        per_task = ([mo.counters for mo in map_outputs]
                    + [rr.counters for rr in reduce_results])
        random.Random(shuffle_seed).shuffle(per_task)
        merged = Counters.merged(per_task)
        assert merged == serial.counters
        assert merged[C.MAP_OUTPUT_MATERIALIZED_BYTES] == \
            serial.counters[C.MAP_OUTPUT_MATERIALIZED_BYTES]
        runner.close()
