"""The network shuffle: segment servers, wire codecs, live-socket faults.

The netshuffle module puts the map->reduce hop on a real loopback
socket.  Pinned here:

* round trips through every registered wire codec are byte-identical
  to the on-disk segment, with ``SHUFFLE_WIRE_BYTES`` measuring the
  compressed bytes that actually crossed (verbatim null service counts
  wire == raw);
* the protocol's rejection surface: stale epochs and draining maps are
  *transient* (retryable -- the escalation ladder's first rung), while
  unknown maps, unregistered paths, and deleted files are
  ``FileNotFoundError`` (immediate escalation, no pointless retries);
* codec negotiation degrades an unknown codec to verbatim service
  instead of failing the fetch;
* connections pool and are reused across fetches; a killed server
  refuses connections (transient) until a re-registration revives it
  on a fresh port;
* server-side wire faults (flip / drop / truncate / delay / stall)
  surface as ``TransientFetchError`` through the real socket, and the
  full fetcher heals them within its retry budget;
* the engine end to end: a serial network run is byte-identical to the
  direct transport, and the trace carries ``wire_served`` events.
"""

import errno
import os
import socket
import time
import zlib

import pytest

from repro.mapreduce.codecs import NullCodec, available_codecs
from repro.mapreduce.ifile import IFileWriter
from repro.mapreduce.metrics import C, Counters
from repro.mapreduce.runtime import FaultInjector
from repro.mapreduce.runtime.netshuffle import (
    NetworkTransport,
    ShuffleService,
)
from repro.mapreduce.runtime.shuffle import (
    SegmentRef,
    ShuffleConfig,
    ShuffleFetcher,
    TransientFetchError,
)
from repro.mapreduce.runtime.trace import RuntimeTrace
from repro.util.timing import Deadline


def write_segment(tmp_path, name="m00000-out-p0", records=200):
    path = str(tmp_path / name)
    writer = IFileWriter(path, NullCodec())
    for i in range(records):
        writer.append(f"k{i:04d}".encode(), f"v{i:04d}".encode())
    stats = writer.close()
    return path, stats


def make_ref(service, path, stats, map_id="m00000", epoch=0):
    return SegmentRef(map_id=map_id, path=path, stats=stats, epoch=epoch,
                      address=service.address_for(map_id))


def net_config(**overrides):
    base = dict(transport="network", fetch_retries=1, fetch_timeout=5.0,
                backoff=0.005, backoff_max=0.02)
    base.update(overrides)
    return ShuffleConfig(**base)


@pytest.fixture
def segment(tmp_path):
    return write_segment(tmp_path)


class TestWireRoundTrip:
    @pytest.mark.parametrize("codec", sorted(available_codecs()))
    def test_every_codec_round_trips(self, tmp_path, codec):
        path, stats = write_segment(tmp_path)
        with open(path, "rb") as fh:
            blob = fh.read()
        config = net_config(wire_codec=codec)
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path])
            counters = Counters()
            fetcher = ShuffleFetcher(config, counters, "r00000")
            [got] = fetcher.fetch_all([make_ref(service, path, stats)])
        assert got == blob
        wire = counters.get(C.SHUFFLE_WIRE_BYTES)
        raw = counters.get(C.SHUFFLE_WIRE_BYTES_UNCOMPRESSED)
        assert raw == len(blob)
        if codec == "null":
            assert wire == raw  # verbatim sendfile: no framing overhead
        else:
            assert 0 < wire < raw  # this stream compresses

    def test_small_chunk_framing(self, tmp_path):
        """Many frames per segment exercise reassembly ordering."""
        path, stats = write_segment(tmp_path, records=500)
        with open(path, "rb") as fh:
            blob = fh.read()
        config = net_config(wire_codec="zlib", chunk_bytes=256)
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path])
            transport = NetworkTransport(config)
            got = transport.fetch(make_ref(service, path, stats), 0,
                                  Deadline(None))
            transport.close()
        assert got == blob

    def test_zero_length_segment(self, tmp_path):
        """A zero-byte file round-trips (framed and verbatim)."""
        path = str(tmp_path / "m00000-out-p0")
        with open(path, "wb"):
            pass
        for codec in ("null", "zlib"):
            config = net_config(wire_codec=codec)
            with ShuffleService.from_config(config) as service:
                service.register_map_output("m00000", [path])
                transport = NetworkTransport(config)
                ref = SegmentRef(map_id="m00000", path=path, stats=None,
                                 address=service.address_for("m00000"))
                assert transport.fetch(ref, 0, Deadline(None)) == b""
                transport.close()


class TestProtocolRejections:
    def test_stale_epoch_is_transient(self, tmp_path, segment):
        path, stats = segment
        config = net_config()
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path], epoch=1)
            transport = NetworkTransport(config)
            with pytest.raises(TransientFetchError, match="stale epoch"):
                transport.fetch(make_ref(service, path, stats, epoch=0),
                                0, Deadline(None))
            transport.close()

    def test_draining_map_is_transient(self, tmp_path, segment):
        path, stats = segment
        config = net_config()
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path])
            service.invalidate("m00000")
            transport = NetworkTransport(config)
            with pytest.raises(TransientFetchError, match="draining"):
                transport.fetch(make_ref(service, path, stats), 0,
                                Deadline(None))
            transport.close()

    def test_unknown_map_escalates(self, tmp_path, segment):
        path, stats = segment
        config = net_config()
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path])
            transport = NetworkTransport(config)
            ref = SegmentRef(map_id="m99999", path=path, stats=stats,
                             address=service.address_for("m99999"))
            with pytest.raises(FileNotFoundError, match="unknown map"):
                transport.fetch(ref, 0, Deadline(None))
            transport.close()

    def test_unregistered_path_escalates(self, tmp_path, segment):
        path, stats = segment
        config = net_config()
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path])
            transport = NetworkTransport(config)
            ref = SegmentRef(map_id="m00000", path=path + ".elsewhere",
                             stats=stats,
                             address=service.address_for("m00000"))
            with pytest.raises(FileNotFoundError, match="unregistered"):
                transport.fetch(ref, 0, Deadline(None))
            transport.close()

    def test_deleted_file_escalates(self, tmp_path, segment):
        path, stats = segment
        config = net_config()
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path])
            ref = make_ref(service, path, stats)
            os.unlink(path)
            transport = NetworkTransport(config)
            with pytest.raises(FileNotFoundError, match="missing"):
                transport.fetch(ref, 0, Deadline(None))
            transport.close()

    def test_addressless_ref_is_transient(self, segment):
        path, stats = segment
        transport = NetworkTransport(net_config())
        with pytest.raises(TransientFetchError, match="no server address"):
            transport.fetch(SegmentRef(map_id="m00000", path=path,
                                       stats=stats), 0, Deadline(None))

    def test_fresh_epoch_registration_ends_drain(self, tmp_path, segment):
        path, stats = segment
        config = net_config()
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path])
            service.invalidate("m00000")
            service.register_map_output("m00000", [path], epoch=1)
            transport = NetworkTransport(config)
            got = transport.fetch(make_ref(service, path, stats, epoch=1),
                                  0, Deadline(None))
            transport.close()
        with open(path, "rb") as fh:
            assert got == fh.read()


class TestCodecNegotiation:
    def test_unknown_codec_degrades_to_verbatim(self, tmp_path, segment):
        path, stats = segment
        config = net_config(wire_codec="martian-arithmetic")
        counters = Counters()
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path])
            fetcher = ShuffleFetcher(config, counters, "r00000")
            [got] = fetcher.fetch_all([make_ref(service, path, stats)])
        with open(path, "rb") as fh:
            assert got == fh.read()
        # Negotiated down to null: served verbatim, wire == raw.
        assert (counters.get(C.SHUFFLE_WIRE_BYTES)
                == counters.get(C.SHUFFLE_WIRE_BYTES_UNCOMPRESSED)
                == len(got))


class TestPoolingAndServers:
    def test_connections_are_pooled_and_reused(self, tmp_path, segment):
        path, stats = segment
        config = net_config()
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path])
            transport = NetworkTransport(config)
            ref = make_ref(service, path, stats)
            transport.fetch(ref, 0, Deadline(None))
            pooled = {addr: list(socks)
                      for addr, socks in transport._pool.items()}
            assert sum(len(s) for s in pooled.values()) == 1
            [sock] = next(iter(pooled.values()))
            transport.fetch(ref, 0, Deadline(None))
            # Same socket object came back to the pool: it was reused.
            assert next(iter(transport._pool.values()))[0] is sock
            transport.close()
            assert transport._pool == {}

    def test_port_base_pins_server_ports(self, tmp_path, segment):
        path, stats = segment
        config = net_config(port_base=29750, num_servers=2)
        with ShuffleService.from_config(config) as service:
            ports = {server.address[1] for server in service.servers}
            assert ports == {29750, 29751}

    def test_killed_server_refuses_then_revives(self, tmp_path, segment):
        path, stats = segment
        config = net_config()
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path])
            ref = make_ref(service, path, stats)
            service.kill_server(service.server_index("m00000"))
            transport = NetworkTransport(config)
            with pytest.raises(TransientFetchError, match="cannot connect"):
                transport.fetch(ref, 0, Deadline(0.5))
            # Re-registration (what map re-execution does) revives the
            # server on a fresh port; a re-built ref fetches cleanly.
            service.register_map_output("m00000", [path], epoch=1)
            assert service.servers[service.server_index("m00000")].alive
            fresh = make_ref(service, path, stats, epoch=1)
            got = transport.fetch(fresh, 0, Deadline(None))
            transport.close()
        with open(path, "rb") as fh:
            assert got == fh.read()

    def test_server_side_concurrency_is_bounded(self, tmp_path, segment):
        path, stats = segment
        config = net_config(server_concurrency=1)
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path])
            # Two sequential fetches through a concurrency-1 server must
            # both succeed (the accept loop blocks, not errors).
            transport = NetworkTransport(config)
            ref = make_ref(service, path, stats)
            a = transport.fetch(ref, 0, Deadline(None))
            b = transport.fetch(ref, 0, Deadline(None))
            transport.close()
        assert a == b


class TestBindRetry:
    def test_bind_retries_through_transient_eaddrinuse(self, monkeypatch):
        """A revived server racing its predecessor's close must not fail
        the shuffle service over a transient EADDRINUSE."""
        from repro.mapreduce.runtime import netshuffle

        monkeypatch.setattr(netshuffle.time, "sleep", lambda s: None)
        calls = {"n": 0}
        real_create_server = netshuffle.socket.create_server

        def flaky_create_server(address, **kwargs):
            calls["n"] += 1
            if calls["n"] <= 3:
                raise OSError(errno.EADDRINUSE, "address in use")
            return real_create_server(address, **kwargs)

        monkeypatch.setattr(netshuffle.socket, "create_server",
                            flaky_create_server)
        sock = netshuffle.SegmentServer._bind("127.0.0.1", 0)
        sock.close()
        assert calls["n"] == 4  # three refusals, then the clean bind

    def test_bind_gives_up_after_budget(self, monkeypatch):
        from repro.mapreduce.runtime import netshuffle

        monkeypatch.setattr(netshuffle.time, "sleep", lambda s: None)

        def always_in_use(address, **kwargs):
            raise OSError(errno.EADDRINUSE, "address in use")

        monkeypatch.setattr(netshuffle.socket, "create_server",
                            always_in_use)
        with pytest.raises(OSError, match="bind"):
            netshuffle.SegmentServer._bind("127.0.0.1", 29799)

    def test_non_addrinuse_errors_raise_immediately(self, monkeypatch):
        from repro.mapreduce.runtime import netshuffle

        calls = {"n": 0}

        def denied(address, **kwargs):
            calls["n"] += 1
            raise OSError(errno.EACCES, "permission denied")

        monkeypatch.setattr(netshuffle.socket, "create_server", denied)
        with pytest.raises(OSError, match="permission"):
            netshuffle.SegmentServer._bind("127.0.0.1", 80)
        assert calls["n"] == 1  # no retry budget burned on a real error


class TestPartitionHook:
    def test_partitioned_server_refuses_then_heals(self, tmp_path,
                                                   segment):
        path, stats = segment
        config = net_config(fetch_retries=0)
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path])
            index = service.server_index("m00000")
            service.partition_server(index, 0.3)
            assert service.servers[index].alive  # alive, just unreachable
            transport = NetworkTransport(config)
            ref = make_ref(service, path, stats)
            with pytest.raises(TransientFetchError):
                transport.fetch(ref, 0, Deadline(1.0))
            time.sleep(0.35)  # the partition window closes on its own
            got = transport.fetch(ref, 0, Deadline(None))
            transport.close()
        with open(path, "rb") as fh:
            assert got == fh.read()


class TestPoolBounded:
    def test_pool_stays_bounded_across_a_faulty_run(self, tmp_path):
        """Repeated wire faults churn connections; the pool must not
        grow past the configured concurrency, and close() must leave
        nothing behind even with check-ins racing it."""
        paths = []
        for i in range(3):
            p, stats = write_segment(tmp_path, name=f"m{i:05d}-out-p0")
            paths.append((f"m{i:05d}", p, stats))
        inj = FaultInjector()
        for map_id, _, _ in paths:
            inj.fetch(map_id, "r00000", op="flip", attempt=0)
        config = net_config(wire_codec="zlib", concurrency=2,
                            fetch_retries=2)
        with ShuffleService.from_config(
                config, faults=inj.fetch_plan()) as service:
            for map_id, p, _ in paths:
                service.register_map_output(map_id, [p])
            for round_ in range(4):
                counters = Counters()
                fetcher = ShuffleFetcher(config, counters, "r00000")
                refs = [make_ref(service, p, stats, map_id=m)
                        for m, p, stats in paths]
                blobs = fetcher.fetch_all(refs)
                assert len(blobs) == len(paths)
            transport = NetworkTransport(config)
            ref = make_ref(service, paths[0][1], paths[0][2],
                           map_id=paths[0][0])
            for _ in range(6):
                transport.fetch(ref, 1, Deadline(None))  # attempt 1: clean
            assert transport.pool_size() <= config.concurrency
            transport.close()
            assert transport.pool_size() == 0
            # A fetch thread finishing after close() must not repopulate
            # the pool -- its socket is closed instead.
            transport._checkin(("127.0.0.1", 1), socket.socket())
            assert transport.pool_size() == 0


class TestServerSideFaults:
    @pytest.mark.parametrize("op", ["flip", "drop", "truncate", "stall"])
    def test_fault_is_transient_then_heals(self, tmp_path, segment, op):
        path, stats = segment
        inj = FaultInjector()
        inj.fetch("m00000", "r00000", op=op, attempt=0, seconds=0.05)
        config = net_config(wire_codec="zlib", fetch_timeout=2.0)
        with ShuffleService.from_config(
                config, faults=inj.fetch_plan()) as service:
            service.register_map_output("m00000", [path])
            counters = Counters()
            fetcher = ShuffleFetcher(config, counters, "r00000")
            [got] = fetcher.fetch_all([make_ref(service, path, stats)])
        with open(path, "rb") as fh:
            assert got == fh.read()
        assert counters.get(C.SHUFFLE_RETRIES) == 1

    def test_faults_target_only_their_link(self, tmp_path, segment):
        path, stats = segment
        inj = FaultInjector()
        inj.fetch("m00000", "r00001", op="flip", attempt=0)
        config = net_config(wire_codec="zlib")
        with ShuffleService.from_config(
                config, faults=inj.fetch_plan()) as service:
            service.register_map_output("m00000", [path])
            counters = Counters()
            fetcher = ShuffleFetcher(config, counters, "r00000")
            fetcher.fetch_all([make_ref(service, path, stats)])
        assert counters.get(C.SHUFFLE_RETRIES) == 0


class TestTraceEvents:
    def test_served_and_stale_events_recorded(self, tmp_path, segment):
        path, stats = segment
        config = net_config()
        trace = RuntimeTrace()
        with ShuffleService.from_config(config, trace=trace) as service:
            service.register_map_output("m00000", [path])
            transport = NetworkTransport(config)
            transport.fetch(make_ref(service, path, stats), 0,
                            Deadline(None))
            with pytest.raises(TransientFetchError):
                transport.fetch(make_ref(service, path, stats, epoch=7),
                                0, Deadline(None))
            transport.close()
        assert trace.count("wire_served") == 1
        assert trace.count("wire_stale") == 1


class TestDamageAtRest:
    def test_rewritten_segment_served_with_fresh_crc(self, tmp_path):
        """The CRC cache revalidates by stat: damage at rest is served
        as-is (matching its own CRC), so the *decode* catches it -- the
        repair rung, not the transfer-retry rung."""
        path, stats = write_segment(tmp_path)
        config = net_config()
        with ShuffleService.from_config(config) as service:
            service.register_map_output("m00000", [path])
            transport = NetworkTransport(config)
            ref = make_ref(service, path, stats)
            first = transport.fetch(ref, 0, Deadline(None))
            # Rewrite the file on disk (what segment repair does).
            with open(path, "rb") as fh:
                blob = fh.read()
            damaged = blob[: len(blob) // 2] + bytes(
                [blob[len(blob) // 2] ^ 0xFF]) + blob[len(blob) // 2 + 1:]
            with open(path, "wb") as fh:
                fh.write(damaged)
            os.utime(path, ns=(1, 1))  # force a distinct mtime_ns
            second = transport.fetch(ref, 0, Deadline(None))
            transport.close()
        assert first == blob
        assert second == damaged  # served faithfully; decode will object
        assert zlib.crc32(second) != zlib.crc32(first)
