"""The shuffle transport service: fetch, verify, retry, re-execute.

The map->reduce hop used to be an ``open()`` call; now it is a
first-class transfer through a pluggable transport.  Pinned here:

* the two transports are byte-identical on clean segments, and the
  cheap :func:`~repro.mapreduce.ifile.segment_digest` actually
  discriminates (length + trailing CRC);
* every planned wire fault (flip / drop / truncate / delay / stall)
  surfaces as a :class:`TransientFetchError` *before* any byte reaches
  the merge, and a retry against a clean attempt heals it;
* the fetcher's failure accounting: retries counted, missing files
  escalate immediately (no pointless retries of a deleted segment),
  an exhausted budget raises :class:`FetchFailedError` naming the
  producing map -- and that error is deliberately not skip-eligible;
* fetch-fault selection respects attempt anchors, stickiness, and
  epochs (a re-executed map's segments escape their predecessor's
  faults);
* end to end, a sticky epoch-0 fault drives both runners through map
  re-execution to byte-identical output, and the serial/parallel
  runners agree on the SHUFFLE_* counters.
"""

import os

import pytest

from repro.mapreduce.engine import LocalJobRunner, run_map_task
from repro.mapreduce.ifile import (
    IFileCorruptError,
    IFileWriter,
    segment_digest,
)
from repro.mapreduce.codecs import NullCodec
from repro.mapreduce.metrics import C, Counters
from repro.mapreduce.runtime import (
    FaultInjector,
    ParallelJobRunner,
    TaskFailedError,
    is_skip_eligible,
)
from repro.mapreduce.runtime.shuffle import (
    ChannelTransport,
    ConfigError,
    DirectTransport,
    FetchFailedError,
    SegmentRef,
    ShuffleConfig,
    ShuffleFetcher,
    TransientFetchError,
    select_fetch_fault,
    shuffle_config_from_env,
)
from repro.mapreduce.runtime.trace import EVENT_KINDS, RuntimeTrace
from repro.scidata import integer_grid
from repro.scidata.splits import ArraySplitter
from repro.util.timing import Deadline
from tests.mapreduce.test_engine import make_job


@pytest.fixture
def grid():
    return integer_grid((8, 8), seed=11, low=0, high=100)


@pytest.fixture
def segment(tmp_path):
    """One real IFile segment on disk, as a SegmentRef."""
    path = str(tmp_path / "m00000-out-p0")
    writer = IFileWriter(path, NullCodec())
    for i in range(200):
        writer.append(f"k{i:04d}".encode(), f"v{i:04d}".encode())
    stats = writer.close()
    return SegmentRef(map_id="m00000", path=path, stats=stats)


def fetch_plan(*faults):
    """Group planned faults by producing map id, like the injector."""
    inj = FaultInjector()
    reduce_id = faults[0]["reduce_id"]
    for inj_args in faults:
        inj.fetch(**inj_args)
    return inj.fetch_plan_for(reduce_id)


class TestSegmentDigest:
    def test_path_and_bytes_sources_agree(self, segment):
        with open(segment.path, "rb") as fh:
            blob = fh.read()
        assert segment_digest(segment.path) == segment_digest(blob)
        assert segment_digest(blob).length == len(blob)

    def test_matches_discriminates(self, segment):
        with open(segment.path, "rb") as fh:
            blob = fh.read()
        digest = segment_digest(blob)
        assert digest.matches(blob)
        assert not digest.matches(blob[:-1])          # short
        assert not digest.matches(blob + b"x")        # long
        flipped = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        assert not digest.matches(flipped)            # tail CRC damaged

    def test_too_short_raises_corrupt_not_struct_error(self, tmp_path):
        stub = tmp_path / "stub"
        stub.write_bytes(b"ab")
        with pytest.raises(IFileCorruptError) as err:
            segment_digest(str(stub))
        assert err.value.path == str(stub)
        with pytest.raises(IFileCorruptError):
            segment_digest(b"ab")

    def test_zero_length_sources_raise_corrupt(self, tmp_path):
        """Empty file and empty bytes both fail structurally: a real
        segment always carries at least its trailer."""
        empty = tmp_path / "empty"
        empty.write_bytes(b"")
        with pytest.raises(IFileCorruptError):
            segment_digest(str(empty))
        with pytest.raises(IFileCorruptError):
            segment_digest(b"")

    def test_blocked_layout_digest(self, tmp_path):
        """The chunked \\x93IFB layout digests by its trailing footer
        CRC, and path/bytes sources agree like the plain layout."""
        path = str(tmp_path / "blocked")
        writer = IFileWriter(path, NullCodec(), block_bytes=256)
        for i in range(200):
            writer.append(f"k{i:04d}".encode(), f"v{i:04d}".encode())
        writer.close()
        with open(path, "rb") as fh:
            blob = fh.read()
        assert blob.startswith(b"\x93IFB")
        digest = segment_digest(path)
        assert digest == segment_digest(blob)
        assert digest.length == len(blob)
        # The digest CRC is the footer checksum stored in the last 4
        # bytes -- O(1) to read, no decode required.
        assert digest.crc == int.from_bytes(blob[-4:], "big")
        assert digest.matches(blob)
        assert not digest.matches(blob[:-1])

    def test_truncated_footer_still_digests_but_mismatches(self, tmp_path):
        """Truncating a segment mid-footer yields a digest that cannot
        match the original bytes (transfer verification catches it)."""
        path = str(tmp_path / "blocked")
        writer = IFileWriter(path, NullCodec(), block_bytes=256)
        for i in range(64):
            writer.append(f"k{i:04d}".encode(), f"v{i:04d}".encode())
        writer.close()
        with open(path, "rb") as fh:
            blob = fh.read()
        original = segment_digest(blob)
        truncated = blob[:-3]  # mid-CRC cut
        assert not original.matches(truncated)
        assert segment_digest(truncated) != original
        # Cut below the trailer altogether: structural failure.
        with pytest.raises(IFileCorruptError):
            segment_digest(blob[:3])


class TestSegmentRef:
    def test_from_pair_adopts_legacy_tuple(self, segment):
        ref = SegmentRef.from_pair((segment.path, segment.stats))
        assert ref.map_id == "m00000"
        assert ref.path == segment.path
        assert ref.epoch == 0

    def test_from_pair_passthrough(self, segment):
        assert SegmentRef.from_pair(segment) is segment


#: every variable shuffle_config_from_env reads (cleared before each
#: from_env test so CLI-flag tests elsewhere cannot leak into these)
_CONFIG_ENV_VARS = ("REPRO_TRANSPORT", "REPRO_FETCH_RETRIES",
                    "REPRO_FETCH_TIMEOUT", "REPRO_WIRE_CODEC",
                    "REPRO_SHUFFLE_PORT_BASE", "REPRO_PIPELINE",
                    "REPRO_STARVATION_THRESHOLD",
                    "REPRO_MAX_INFLIGHT_BYTES", "REPRO_MEMORY_BUDGET",
                    "REPRO_MAX_MEMORY_RETRIES")


class TestShuffleConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShuffleConfig(transport="carrier-pigeon")
        with pytest.raises(ValueError):
            ShuffleConfig(fetch_retries=-1)
        with pytest.raises(ValueError):
            ShuffleConfig(fetch_timeout=0.0)
        with pytest.raises(ValueError):
            ShuffleConfig(concurrency=0)
        with pytest.raises(ValueError):
            ShuffleConfig(chunk_bytes=16)

    def test_from_env(self, monkeypatch):
        for name in _CONFIG_ENV_VARS:
            monkeypatch.delenv(name, raising=False)
        assert shuffle_config_from_env() is None
        monkeypatch.setenv("REPRO_TRANSPORT", "channel")
        monkeypatch.setenv("REPRO_FETCH_RETRIES", "5")
        monkeypatch.setenv("REPRO_FETCH_TIMEOUT", "1.5")
        config = shuffle_config_from_env()
        assert config.transport == "channel"
        assert config.fetch_retries == 5
        assert config.fetch_timeout == 1.5

    def test_from_env_network_round_trip(self, monkeypatch):
        for name in _CONFIG_ENV_VARS:
            monkeypatch.delenv(name, raising=False)
        monkeypatch.setenv("REPRO_TRANSPORT", "network")
        monkeypatch.setenv("REPRO_WIRE_CODEC", "fastpred+zlib")
        monkeypatch.setenv("REPRO_SHUFFLE_PORT_BASE", "28000")
        config = shuffle_config_from_env()
        assert config.transport == "network"
        assert config.wire_codec == "fastpred+zlib"
        assert config.port_base == 28000

    def test_from_env_memory_round_trip(self, monkeypatch):
        for name in _CONFIG_ENV_VARS:
            monkeypatch.delenv(name, raising=False)
        monkeypatch.setenv("REPRO_MAX_INFLIGHT_BYTES", "65536")
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1048576")
        monkeypatch.setenv("REPRO_MAX_MEMORY_RETRIES", "3")
        config = shuffle_config_from_env()
        assert config.max_inflight_bytes == 65536
        assert config.memory_budget == 1048576
        assert config.max_memory_retries == 3

    @pytest.mark.parametrize("var,value,needle", [
        ("REPRO_FETCH_RETRIES", "three", "REPRO_FETCH_RETRIES='three'"),
        ("REPRO_FETCH_RETRIES", "1.5", "REPRO_FETCH_RETRIES='1.5'"),
        ("REPRO_FETCH_TIMEOUT", "soon", "REPRO_FETCH_TIMEOUT='soon'"),
        ("REPRO_SHUFFLE_PORT_BASE", "http", "REPRO_SHUFFLE_PORT_BASE"),
        ("REPRO_WIRE_CODEC", "martian", "available codecs"),
    ])
    def test_from_env_malformed_value_names_variable(self, monkeypatch,
                                                     var, value, needle):
        """A typo'd env var reads as one sentence naming the setting,
        never a raw int()/float() traceback."""
        for name in _CONFIG_ENV_VARS:
            monkeypatch.delenv(name, raising=False)
        monkeypatch.setenv(var, value)
        with pytest.raises(ConfigError) as err:
            shuffle_config_from_env()
        assert needle in str(err.value)

    @pytest.mark.parametrize("var,value", [
        ("REPRO_TRANSPORT", "carrier-pigeon"),
        ("REPRO_FETCH_RETRIES", "-2"),
        ("REPRO_FETCH_TIMEOUT", "0"),
        ("REPRO_SHUFFLE_PORT_BASE", "80"),   # below the unprivileged range
        ("REPRO_MAX_INFLIGHT_BYTES", "0"),   # window must admit a byte
        ("REPRO_MEMORY_BUDGET", "255"),      # below one IFile block
        ("REPRO_MAX_MEMORY_RETRIES", "0"),   # ladder needs one rung
        ("REPRO_MAX_MEMORY_RETRIES", "2.5"),
    ])
    def test_from_env_out_of_range_value(self, monkeypatch, var, value):
        """Well-formed but invalid values also surface as ConfigError."""
        for name in _CONFIG_ENV_VARS:
            monkeypatch.delenv(name, raising=False)
        monkeypatch.setenv(var, value)
        with pytest.raises(ConfigError):
            shuffle_config_from_env()

    def test_config_error_is_a_value_error(self):
        # Callers that already catch ValueError keep working.
        assert issubclass(ConfigError, ValueError)


class TestFetchFaultSelection:
    def make(self, **kw):
        inj = FaultInjector()
        inj.fetch("m00000", "r00000", **kw)
        return inj.fetch_plan_for("r00000")["m00000"][0]

    def test_exact_attempt_anchor(self):
        fault = self.make(op="flip", attempt=1)
        assert select_fetch_fault([fault], 1, 0) is fault
        assert select_fetch_fault([fault], 0, 0) is None
        assert select_fetch_fault([fault], 2, 0) is None

    def test_sticky_applies_from_anchor_onward(self):
        fault = self.make(op="drop", attempt=1, sticky=True)
        assert select_fetch_fault([fault], 0, 0) is None
        assert select_fetch_fault([fault], 1, 0) is fault
        assert select_fetch_fault([fault], 7, 0) is fault

    def test_epoch_scoping(self):
        pinned = self.make(op="flip", attempt=0, sticky=True, epoch=0)
        assert select_fetch_fault([pinned], 0, 0) is pinned
        assert select_fetch_fault([pinned], 0, 1) is None  # reexec escaped
        everywhere = self.make(op="flip", attempt=0, sticky=True, epoch=None)
        assert select_fetch_fault([everywhere], 3, 2) is everywhere


class TestTransports:
    def test_transports_byte_identical(self, segment):
        deadline = Deadline(None)
        direct = DirectTransport().fetch(segment, 0, deadline)
        channel = ChannelTransport(chunk_bytes=256).fetch(
            segment, 0, deadline)
        with open(segment.path, "rb") as fh:
            assert direct == channel == fh.read()

    @pytest.mark.parametrize("op,needs_deadline", [
        ("flip", False), ("drop", False), ("truncate", False),
        ("delay", True), ("stall", True),
    ])
    def test_each_wire_fault_is_caught(self, segment, op, needs_deadline):
        plan = fetch_plan(dict(map_id="m00000", reduce_id="r00000",
                               op=op, attempt=0, seconds=0.3))
        transport = ChannelTransport(chunk_bytes=256,
                                     faults=plan)
        deadline = Deadline(0.05 if needs_deadline else None)
        with pytest.raises(TransientFetchError):
            transport.fetch(segment, 0, deadline)
        # the next attempt (no planned fault) is clean
        with open(segment.path, "rb") as fh:
            assert transport.fetch(segment, 1, Deadline(None)) == fh.read()

    def test_delay_without_deadline_is_late_but_intact(self, segment):
        plan = fetch_plan(dict(map_id="m00000", reduce_id="r00000",
                               op="delay", attempt=0, seconds=0.01))
        transport = ChannelTransport(chunk_bytes=256, faults=plan)
        with open(segment.path, "rb") as fh:
            assert transport.fetch(segment, 0, Deadline(None)) == fh.read()


class TestShuffleFetcher:
    def make_fetcher(self, plan=None, **config):
        config.setdefault("transport", "channel")
        config.setdefault("backoff", 0.0)
        counters = Counters()
        fetcher = ShuffleFetcher(ShuffleConfig(**config), counters,
                                 "r00000", plan)
        return fetcher, counters

    def test_retry_heals_and_counts(self, segment):
        plan = fetch_plan(dict(map_id="m00000", reduce_id="r00000",
                               op="flip", attempt=0))
        fetcher, counters = self.make_fetcher(plan)
        blobs = fetcher.fetch_all([segment])
        with open(segment.path, "rb") as fh:
            assert blobs == [fh.read()]
        assert counters[C.SHUFFLE_FETCHES] == 2
        assert counters[C.SHUFFLE_RETRIES] == 1
        assert counters[C.SHUFFLE_FAILED_FETCHES] == 1
        assert counters[C.SHUFFLE_BYTES_TRANSFERRED] >= len(blobs[0])

    def test_exhausted_budget_names_the_map(self, segment):
        plan = fetch_plan(dict(map_id="m00000", reduce_id="r00000",
                               op="truncate", attempt=0, sticky=True))
        fetcher, counters = self.make_fetcher(plan, fetch_retries=2)
        with pytest.raises(FetchFailedError) as err:
            fetcher.fetch_one(segment)
        assert err.value.map_id == "m00000"
        assert err.value.reduce_id == "r00000"
        assert err.value.attempts == 3
        assert counters[C.SHUFFLE_FAILED_FETCHES] == 3

    def test_missing_segment_fails_immediately(self, segment):
        os.unlink(segment.path)
        fetcher, counters = self.make_fetcher(fetch_retries=5)
        with pytest.raises(FetchFailedError) as err:
            fetcher.fetch_one(segment)
        assert err.value.attempts == 1      # no retries of a deleted file
        assert counters[C.SHUFFLE_FETCHES] == 1

    def test_concurrent_fetch_preserves_order(self, tmp_path):
        refs = []
        for i in range(8):
            path = str(tmp_path / f"m{i:05d}-out-p0")
            writer = IFileWriter(path, NullCodec())
            writer.append(f"key{i}".encode(), b"value")
            stats = writer.close()
            refs.append(SegmentRef(map_id=f"m{i:05d}", path=path,
                                   stats=stats))
        fetcher, counters = self.make_fetcher(concurrency=4)
        blobs = fetcher.fetch_all(refs)
        for ref, blob in zip(refs, blobs):
            with open(ref.path, "rb") as fh:
                assert blob == fh.read()
        assert counters[C.SHUFFLE_FETCHES] == 8

    def test_fetch_failure_is_not_skip_eligible(self):
        exc = FetchFailedError("m00000", "r00000", 4, "gone")
        assert not is_skip_eligible(exc)


class TestTruncatedValueDecode:
    def test_sum_count_pair_truncation_is_a_record_error(self):
        """A truncated sum/count pair must surface as the pipeline's
        corrupt-record vocabulary (skippable/salvageable), not a raw
        ``struct.error`` that aborts the task."""
        from repro.queries.sliding_mean import SumCountSerde
        from repro.util.errors import TruncatedRecordError

        serde = SumCountSerde()
        buf = bytearray()
        serde.write((2.5, 3), buf)
        assert serde.read(bytes(buf), 0) == ((2.5, 3), 12)
        with pytest.raises(TruncatedRecordError):
            serde.read(bytes(buf[:7]), 0)
        with pytest.raises(TruncatedRecordError):
            serde.read(bytes(buf), 5)   # tail shorter than one pair


class TestTraceRegistry:
    def test_shuffle_events_registered(self):
        assert "fetch_failure" in EVENT_KINDS
        assert "map_reexec" in EVENT_KINDS

    def test_registry_has_no_duplicates(self):
        assert len(EVENT_KINDS) == len(set(EVENT_KINDS))

    def test_unregistered_event_rejected(self):
        trace = RuntimeTrace()
        with pytest.raises(ValueError):
            trace.record("t1", 0, "map", "totally-new-event")
        with pytest.raises(ValueError):
            trace.count("totally-new-event")

    def test_registry_is_stable(self):
        """The event vocabulary is an API: simulators, benches, and the
        experiments count on these exact names.  Additions are fine;
        renames/removals break consumers and must show up here."""
        expected = {"queued", "started", "finished", "failed", "retried",
                    "speculated", "killed", "discarded", "repaired",
                    "timeout", "adopted", "skipping", "quarantined",
                    "fetch_failure", "map_reexec"}
        assert expected <= set(EVENT_KINDS)


class TestEndToEnd:
    def run_serial(self, grid, job, injector=None, **runner_kw):
        runner_kw.setdefault(
            "shuffle", ShuffleConfig(transport="channel", fetch_retries=1,
                                     backoff=0.0))
        with LocalJobRunner(fault_injector=injector, **runner_kw) as runner:
            return runner.run(job, grid)

    def run_parallel(self, grid, job, injector=None, **runner_kw):
        runner_kw.setdefault(
            "shuffle", ShuffleConfig(transport="channel", fetch_retries=1,
                                     backoff=0.0))
        with ParallelJobRunner(max_workers=2, speculation=False,
                               retry_backoff=0.01,
                               fault_injector=injector,
                               **runner_kw) as runner:
            return runner.run(job, grid)

    def sticky_epoch0(self):
        inj = FaultInjector()
        inj.fetch("m00000", "r00000", op="flip", attempt=0, sticky=True,
                  epoch=0)
        return inj

    def test_reexec_restores_output_serial(self, grid):
        job = make_job(num_map_tasks=2, num_reducers=2)
        baseline = LocalJobRunner().run(job, grid)
        result = self.run_serial(grid, job, self.sticky_epoch0())
        assert result.output == baseline.output
        assert result.counters[C.MAPS_REEXECUTED] == 1
        # the winning attempt's fetches are clean post-reexec, so the
        # baseline's non-shuffle counters survive untouched
        assert result.counters[C.SHUFFLE_BYTES] == \
            baseline.counters[C.SHUFFLE_BYTES]

    def test_reexec_restores_output_parallel_and_agrees(self, grid):
        job = make_job(num_map_tasks=2, num_reducers=2)
        baseline = LocalJobRunner().run(job, grid)
        serial = self.run_serial(grid, job, self.sticky_epoch0())
        parallel = self.run_parallel(grid, job, self.sticky_epoch0())
        assert parallel.output == baseline.output
        assert parallel.counters == serial.counters
        assert parallel.counters[C.MAPS_REEXECUTED] == 1
        assert parallel.trace.count("map_reexec") == 1
        assert parallel.trace.count("fetch_failure") >= 1

    def test_all_epochs_sticky_fails_both_runners(self, grid):
        job = make_job(num_map_tasks=2, num_reducers=1)
        inj = FaultInjector()
        inj.fetch("m00001", "r00000", op="drop", attempt=0, sticky=True,
                  epoch=None)
        with pytest.raises(FetchFailedError):
            self.run_serial(grid, job, inj, max_map_reexecs=1)
        inj2 = FaultInjector()
        inj2.fetch("m00001", "r00000", op="drop", attempt=0, sticky=True,
                   epoch=None)
        with pytest.raises(TaskFailedError):
            self.run_parallel(grid, job, inj2, max_map_reexecs=1)

    def test_missing_segment_triggers_reexec_not_failure(self, grid,
                                                         tmp_path):
        """Deleting a finished map's segment mid-shuffle is survivable:
        the fetch fails permanently, the map is re-executed, the job
        completes with baseline output (the ISSUE's acceptance case)."""
        job = make_job(num_map_tasks=2, num_reducers=1)
        baseline = LocalJobRunner().run(job, grid)
        workdir = str(tmp_path / "serial")
        runner = LocalJobRunner(
            workdir=workdir,
            shuffle=ShuffleConfig(fetch_retries=1, backoff=0.0),
            fetch_failure_threshold=1)
        splits = ArraySplitter(2).split(grid)
        map_outputs = [run_map_task(job, s, grid, workdir) for s in splits]
        os.unlink(map_outputs[1].segments[0][0])
        shuffle_state = {
            "strikes": {mo.task_id: 0 for mo in map_outputs},
            "epochs": {mo.task_id: 0 for mo in map_outputs},
            "reexecs": {mo.task_id: 0 for mo in map_outputs},
            "total_reexecs": 0,
        }
        rr = runner._run_reduce(job, 0, map_outputs, grid, splits,
                                shuffle_state)
        assert shuffle_state["total_reexecs"] == 1
        assert rr.output == baseline.output

    def test_runner_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            LocalJobRunner(fetch_failure_threshold=0)
        with pytest.raises(ValueError):
            LocalJobRunner(max_map_reexecs=-1)
