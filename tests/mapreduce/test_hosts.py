"""Host failure domains: the health state machine and its helpers.

Property-style pins on the transition rules (the thresholds are looped
over, not spot-checked):

* SUSPECT -> DEAD requires *both* kinds of evidence -- missed
  heartbeats AND fetch strikes; strikes against a heartbeating host
  never kill it (partition-vs-death rule), and silence alone never
  does either;
* blacklisting benches a host, probation reinstates it after the
  configured number of clean attempts, and a failure during probation
  re-benches it with a grown (capped) backoff;
* ``charge_host_reexec`` bounds cascade re-execution at
  ``max_host_reexecs`` completed maps per lost host;
* placement prefers the stable-hash home host and rebalances around
  unusable hosts in ring order;
* ``expand_host_partition`` rewrites a partition into deterministic,
  idempotent per-link fetch drops;
* ``provision_failover_workdir`` quarantines the primary and drops a
  deterministic, path-free side-file (the byte-identical artifact the
  R5 harness compares between runners).
"""

import errno
import json
import os

import pytest

from repro.mapreduce.runtime.fault import Fault, FaultInjector
from repro.mapreduce.runtime.hosts import (
    DISK_MARKER,
    HostHealthMonitor,
    HostLostError,
    HostRegistry,
    expand_host_partition,
    host_for,
    provision_failover_workdir,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def make_monitor(num_hosts: int = 3, **kwargs) -> tuple[HostHealthMonitor,
                                                        FakeClock]:
    clock = FakeClock()
    kwargs.setdefault("clock", clock)
    return HostHealthMonitor(HostRegistry(num_hosts), **kwargs), clock


class TestHostFor:
    def test_stable_and_in_range(self):
        for n in (1, 2, 3, 7):
            for i in range(20):
                host = host_for(f"m{i:05d}", n)
                assert host == host_for(f"m{i:05d}", n)
                assert host in HostRegistry(n).names()

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError, match="num_hosts"):
            host_for("m00000", 0)


class TestSuspectDeadRule:
    @pytest.mark.parametrize("misses", [1, 2, 4])
    @pytest.mark.parametrize("strikes", [1, 2, 4])
    def test_dead_requires_both_evidence_kinds(self, misses, strikes):
        """DEAD needs silence (SUSPECT) *and* unfetchability, in order."""
        monitor, _ = make_monitor(suspect_heartbeat_misses=misses,
                                  dead_fetch_strikes=strikes)
        # Strikes alone, however many: the host keeps heartbeating and
        # must never die (a partition looks exactly like this).
        for _ in range(strikes * 3):
            monitor.record_fetch_strike("host0")
        assert monitor.registry.get("host0").state == "ALIVE"
        # Silence alone, however long: SUSPECT at the threshold, never
        # DEAD (dead needs the fetch evidence too).
        for _ in range(misses * 3):
            monitor.record_missed_heartbeat("host1")
        assert monitor.registry.get("host1").state == "SUSPECT"
        # Both: silence to SUSPECT, then strikes to the dead threshold.
        for _ in range(misses):
            monitor.record_missed_heartbeat("host2")
        assert monitor.registry.get("host2").state == "SUSPECT"
        for _ in range(strikes):
            monitor.record_fetch_strike("host2")
        assert monitor.registry.get("host2").state == "DEAD"
        assert monitor.hosts_lost == 1
        assert monitor.take_newly_dead() == ["host2"]
        assert monitor.take_newly_dead() == []  # drained exactly once

    def test_heartbeat_clears_suspicion_but_not_strikes(self):
        monitor, _ = make_monitor(suspect_heartbeat_misses=2,
                                  dead_fetch_strikes=3)
        for _ in range(2):
            monitor.record_missed_heartbeat("host0")
        monitor.record_fetch_strike("host0")
        monitor.record_fetch_strike("host0")
        monitor.record_heartbeat("host0")
        assert monitor.registry.get("host0").state == "ALIVE"
        # The strike budget did not refresh: going silent again, one
        # more strike finishes the job.
        for _ in range(2):
            monitor.record_missed_heartbeat("host0")
        monitor.record_fetch_strike("host0")
        assert monitor.registry.get("host0").state == "DEAD"

    def test_pre_suspect_strikes_count_once_suspect(self):
        monitor, _ = make_monitor(suspect_heartbeat_misses=2,
                                  dead_fetch_strikes=2)
        monitor.record_fetch_strike("host0")
        monitor.record_missed_heartbeat("host0")
        monitor.record_missed_heartbeat("host0")
        monitor.record_fetch_strike("host0")
        assert monitor.registry.get("host0").state == "DEAD"


class TestBlacklistProbation:
    @pytest.mark.parametrize("failures", [1, 3])
    @pytest.mark.parametrize("clean", [1, 2, 3])
    def test_probation_reinstates_after_clean_attempts(self, failures,
                                                       clean):
        monitor, clock = make_monitor(
            blacklist_failures=failures, probation_clean_attempts=clean,
            reinstate_backoff=0.5, reinstate_backoff_max=4.0)
        for _ in range(failures):
            monitor.record_task_failure("host0", "boom")
        h = monitor.registry.get("host0")
        assert h.state == "BLACKLISTED"
        assert not monitor.placeable("host0")  # benched
        # Successes during the bench are ignored -- probation has not
        # started yet.
        monitor.record_task_success("host0")
        assert h.state == "BLACKLISTED"
        clock.now = h.blacklist_until + 0.01
        assert monitor.placeable("host0")  # probation work allowed
        for i in range(clean):
            assert h.state == "BLACKLISTED"
            monitor.record_task_success("host0")
        assert h.state == "ALIVE"
        assert h.task_failures == 0

    def test_probation_failure_rebenches_with_grown_backoff(self):
        monitor, clock = make_monitor(
            blacklist_failures=2, probation_clean_attempts=2,
            reinstate_backoff=0.5, reinstate_backoff_max=60.0)
        monitor.record_task_failure("host0", "a")
        monitor.record_task_failure("host0", "b")
        h = monitor.registry.get("host0")
        first_bench = h.blacklist_until - clock.now
        assert h.blacklist_count == 1
        clock.now = h.blacklist_until + 0.01
        monitor.record_task_success("host0")
        monitor.record_task_failure("host0", "relapse")
        assert h.state == "BLACKLISTED"
        assert h.blacklist_count == 2
        assert h.probation_successes == 0
        second_bench = h.blacklist_until - clock.now
        assert second_bench > first_bench  # capped-exponential growth

    def test_success_resets_failure_streak(self):
        monitor, _ = make_monitor(blacklist_failures=3)
        for _ in range(5):
            monitor.record_task_failure("host0", "flaky")
            monitor.record_task_success("host0")
        assert monitor.registry.get("host0").state == "ALIVE"


class TestReexecBudget:
    @pytest.mark.parametrize("budget", [0, 1, 3])
    def test_budget_bounds_cascade(self, budget):
        monitor, _ = make_monitor(max_host_reexecs=budget)
        monitor.declare_dead("host0", "test")
        if budget:
            monitor.charge_host_reexec("host0", budget)  # at the line: ok
        with pytest.raises(HostLostError, match="max_host_reexecs"):
            monitor.charge_host_reexec("host0", 1)
        assert monitor.maps_reexecuted_host == budget + 1

    def test_budget_is_per_host(self):
        monitor, _ = make_monitor(max_host_reexecs=2)
        monitor.charge_host_reexec("host0", 2)
        monitor.charge_host_reexec("host1", 2)  # fresh budget per host
        assert monitor.maps_reexecuted_host == 4


class TestPlacement:
    def test_home_host_wins_when_usable(self):
        monitor, _ = make_monitor(num_hosts=3)
        for i in range(12):
            task = f"m{i:05d}"
            assert monitor.place(task) == host_for(task, 3)

    def test_dead_host_rebalances_in_ring_order(self):
        monitor, _ = make_monitor(num_hosts=3)
        task = "m00000"
        home = host_for(task, 3)
        monitor.declare_dead(home, "test")
        placed = monitor.place(task)
        names = monitor.registry.names()
        assert placed == names[(names.index(home) + 1) % 3]

    def test_fully_dead_fleet_falls_back_to_home(self):
        monitor, _ = make_monitor(num_hosts=2)
        monitor.declare_dead("host0", "test")
        monitor.declare_dead("host1", "test")
        assert monitor.place("m00000") == host_for("m00000", 2)


class TestExpandHostPartition:
    def test_deterministic_and_idempotent(self):
        map_ids = [f"m{i:05d}" for i in range(4)]
        reduce_ids = ["r00000", "r00001"]
        host = host_for("m00000", 3)
        mine = [m for m in map_ids if host_for(m, 3) == host]
        a, b = FaultInjector(), FaultInjector()
        added_a = expand_host_partition(a, host, map_ids, reduce_ids, 3, 2)
        added_b = expand_host_partition(b, host, map_ids, reduce_ids, 3, 2)
        assert added_a == added_b == len(mine) * len(reduce_ids) * 2
        assert a.fetch_plan() == b.fetch_plan()
        # Re-expansion (both runners prepare the same injector) is a
        # no-op, not a double plan.
        assert expand_host_partition(a, host, map_ids, reduce_ids, 3, 2) == 0

    def test_only_links_out_of_the_host_drop(self):
        map_ids = [f"m{i:05d}" for i in range(4)]
        host = host_for("m00000", 3)
        inj = FaultInjector()
        expand_host_partition(inj, host, map_ids, ["r00000"], 3, 2)
        plan = inj.fetch_plan()
        assert plan  # the host holds at least m00000
        for key, faults in plan.items():
            map_id = key.split("->")[0]
            assert host_for(map_id, 3) == host
            assert [f.attempt for f in faults] == [0, 1]
            assert all(f.op == "drop" and f.epoch is None for f in faults)


class TestDiskFailover:
    def fault(self, op="enospc"):
        return Fault("disk_fault", op=op)

    def test_provisions_spare_and_quarantines_primary(self, tmp_path):
        primary = str(tmp_path / "work")
        os.makedirs(primary)
        spare = provision_failover_workdir(primary, "m00001", "host2",
                                           self.fault())
        assert spare == os.path.join(primary, "spare")
        assert os.path.isdir(spare)
        marker = os.path.join(primary, DISK_MARKER)
        with open(marker, encoding="utf-8") as fh:
            note = json.load(fh)
        assert note["error"] == errno.errorcode[errno.ENOSPC]
        assert note["host"] == "host2"

    @pytest.mark.parametrize("op,code", [("enospc", errno.ENOSPC),
                                         ("eio", errno.EIO)])
    def test_side_file_is_deterministic_and_path_free(self, tmp_path,
                                                      monkeypatch, op,
                                                      code):
        qdir = str(tmp_path / "quarantine")
        monkeypatch.setenv("REPRO_QUARANTINE_DIR", qdir)
        for workdir in ("a", "b"):  # different primaries, same side-file
            primary = str(tmp_path / workdir)
            os.makedirs(primary)
            provision_failover_workdir(primary, "m00001", "host2",
                                       self.fault(op))
        side = os.path.join(qdir, "m00001-disk.json")
        with open(side, encoding="utf-8") as fh:
            record = json.loads(fh.read())
        assert record == {"error": errno.errorcode[code], "host": "host2",
                          "task_id": "m00001"}

    def test_idempotent_for_rival_attempts(self, tmp_path):
        primary = str(tmp_path / "work")
        os.makedirs(primary)
        first = provision_failover_workdir(primary, "r00000", "host1",
                                           self.fault("eio"))
        second = provision_failover_workdir(primary, "r00000", "host1",
                                            self.fault("eio"))
        assert first == second
