"""Tests for the on-disk dataset container."""

import numpy as np
import pytest

from repro.mapreduce import LocalJobRunner
from repro.queries import SlidingMedianQuery
from repro.scidata import Dataset, Slab, Variable, integer_grid, windspeed_field
from repro.scidata.ncfile import MAGIC, open_dataset, save_dataset


class TestRoundtrip:
    def test_single_variable(self, tmp_path):
        ds = integer_grid((10, 12), seed=5)
        path = tmp_path / "grid.rnc"
        size = save_dataset(ds, path)
        assert path.stat().st_size == size
        loaded = open_dataset(path)
        assert loaded.names == ["values"]
        assert (loaded["values"].data == ds["values"].data).all()

    def test_multi_variable_with_attrs_and_origin(self, tmp_path):
        ds = Dataset()
        ds.add(Variable("a", np.arange(24, dtype=np.int32).reshape(2, 3, 4),
                        origin=(5, 6, 7), attrs={"units": "K", "level": 3}))
        ds.add(Variable("b", np.ones((4, 4), dtype=np.float64)))
        path = tmp_path / "multi.rnc"
        save_dataset(ds, path)
        loaded = open_dataset(path)
        assert loaded.names == ["a", "b"]
        a = loaded["a"]
        assert a.origin == (5, 6, 7)
        assert a.attrs["units"] == "K"
        assert a.attrs["level"] == 3
        assert (a.data == ds["a"].data).all()
        assert loaded["b"].data.dtype == np.dtype("<f8")

    def test_float_field(self, tmp_path):
        ds = windspeed_field((6, 6, 3), seed=2)
        path = tmp_path / "wind.rnc"
        save_dataset(ds, path)
        loaded = open_dataset(path)
        assert (loaded["windspeed1"].data == ds["windspeed1"].data).all()

    def test_slab_read_is_lazy_and_correct(self, tmp_path):
        ds = integer_grid((20, 20), seed=9)
        path = tmp_path / "lazy.rnc"
        save_dataset(ds, path)
        loaded = open_dataset(path)
        # the variable's array must be a view over the file mapping (no
        # eager copy); Variable's asarray() may strip the memmap subclass
        # but keeps the buffer
        data = loaded["values"].data
        assert not data.flags.owndata
        assert isinstance(data.base, np.memmap) or isinstance(data, np.memmap)
        slab = Slab((3, 4), (5, 6))
        assert (loaded["values"].read(slab) == ds["values"].read(slab)).all()


class TestValidation:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bogus"
        path.write_bytes(b"NOPE" + bytes(100))
        with pytest.raises(ValueError):
            open_dataset(path)

    def test_magic_constant(self):
        assert MAGIC == b"RNC1"


class TestEndToEnd:
    def test_job_runs_against_opened_file(self, tmp_path):
        """The engine must accept a file-backed dataset transparently."""
        ds = integer_grid((8, 8), seed=1)
        path = tmp_path / "input.rnc"
        save_dataset(ds, path)
        loaded = open_dataset(path)
        query = SlidingMedianQuery(loaded, "values", window=3)
        from_file = LocalJobRunner().run(
            query.build_job("plain", num_map_tasks=2), loaded)
        in_memory = LocalJobRunner().run(
            SlidingMedianQuery(ds, "values", window=3)
            .build_job("plain", num_map_tasks=2), ds)
        assert ({k.coords: v for k, v in from_file.output}
                == {k.coords: v for k, v in in_memory.output})
