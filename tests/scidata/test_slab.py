"""Unit and property tests for Slab geometry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.scidata import Slab


class TestConstruction:
    def test_basic(self):
        s = Slab((0, 0), (3, 4))
        assert s.ndim == 2
        assert s.size == 12
        assert s.end == (3, 4)

    def test_negative_corner_allowed(self):
        # §IV-C: mappers emit into (-1,-1)-(10,10).
        s = Slab((-1, -1), (12, 12))
        assert s.contains_point((-1, -1))
        assert s.contains_point((10, 10))
        assert not s.contains_point((11, 0))

    def test_validation(self):
        with pytest.raises(ValueError):
            Slab((0,), (1, 2))
        with pytest.raises(ValueError):
            Slab((), ())
        with pytest.raises(ValueError):
            Slab((0,), (-1,))

    def test_empty(self):
        s = Slab((0, 0), (0, 5))
        assert s.is_empty()
        assert s.size == 0
        assert list(s) == []


class TestGeometry:
    def test_contains(self):
        outer = Slab((0, 0), (10, 10))
        assert outer.contains(Slab((2, 2), (3, 3)))
        assert outer.contains(outer)
        assert not outer.contains(Slab((8, 8), (3, 3)))
        assert outer.contains(Slab((50, 50), (0, 0)))  # empty fits anywhere

    def test_intersect(self):
        a = Slab((0, 0), (5, 5))
        b = Slab((3, 3), (5, 5))
        inter = a.intersect(b)
        assert inter == Slab((3, 3), (2, 2))
        assert b.intersect(a) == inter

    def test_disjoint_intersect_is_none(self):
        a = Slab((0, 0), (2, 2))
        assert a.intersect(Slab((2, 0), (2, 2))) is None
        assert a.intersect(Slab((5, 5), (1, 1))) is None

    def test_paper_overlap_example(self):
        """§IV-C: neighbouring mapper outputs overlap in (-1,9)-(10,10)."""
        m1 = Slab((-1, -1), (12, 12))   # (-1,-1)-(10,10)
        m2 = Slab((-1, 9), (12, 12))    # (-1,9)-(10,20)
        inter = m1.intersect(m2)
        assert inter == Slab((-1, 9), (12, 2))  # (-1,9)-(10,10)

    def test_expand(self):
        s = Slab((0, 0), (10, 10))
        assert s.expand(1) == Slab((-1, -1), (12, 12))
        assert s.expand((1, 0)) == Slab((-1, 0), (12, 10))
        with pytest.raises(ValueError):
            s.expand(-1)
        with pytest.raises(ValueError):
            s.expand((1, 2, 3))

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            Slab((0,), (2,)).intersect(Slab((0, 0), (2, 2)))
        with pytest.raises(ValueError):
            Slab((0, 0), (2, 2)).contains_point((1,))


class TestIteration:
    def test_coords_c_order(self):
        s = Slab((1, 2), (2, 2))
        assert [tuple(c) for c in s.coords()] == [(1, 2), (1, 3), (2, 2), (2, 3)]
        assert list(s) == [(1, 2), (1, 3), (2, 2), (2, 3)]

    def test_local_index(self):
        s = Slab((1, 2), (3, 4))
        seen = [s.local_index(p) for p in s]
        assert seen == list(range(s.size))
        with pytest.raises(ValueError):
            s.local_index((0, 0))


class TestSplitting:
    def test_split(self):
        s = Slab((0, 0), (10, 4))
        left, right = s.split(0, 6)
        assert left == Slab((0, 0), (6, 4))
        assert right == Slab((6, 0), (4, 4))
        assert left.size + right.size == s.size

    def test_split_validation(self):
        s = Slab((0, 0), (10, 4))
        with pytest.raises(ValueError):
            s.split(0, 0)  # boundary cut produces empty half
        with pytest.raises(ValueError):
            s.split(0, 10)
        with pytest.raises(ValueError):
            s.split(2, 1)

    def test_grid_partition_covers_exactly(self):
        s = Slab((2, -3), (7, 5))
        parts = s.grid_partition((3, 2))
        assert len(parts) == 6
        assert sum(p.size for p in parts) == s.size
        cells = set()
        for p in parts:
            for point in p:
                assert point not in cells, "partition overlap"
                cells.add(point)
        assert cells == set(tuple(c) for c in s.coords().tolist())

    def test_grid_partition_validation(self):
        s = Slab((0, 0), (4, 4))
        with pytest.raises(ValueError):
            s.grid_partition((5, 1))  # more chunks than cells along dim
        with pytest.raises(ValueError):
            s.grid_partition((0, 1))
        with pytest.raises(ValueError):
            s.grid_partition((2,))


slab_strategy = st.integers(1, 3).flatmap(
    lambda nd: st.tuples(
        st.lists(st.integers(-8, 8), min_size=nd, max_size=nd),
        st.lists(st.integers(1, 6), min_size=nd, max_size=nd),
    ).map(lambda cs: Slab(tuple(cs[0]), tuple(cs[1])))
)


@settings(max_examples=80, deadline=None)
@given(slab_strategy, slab_strategy)
def test_intersection_properties(a, b):
    if a.ndim != b.ndim:
        return
    inter = a.intersect(b)
    if inter is None:
        # verify no shared cell
        assert not (set(a) & set(b))
    else:
        assert a.contains(inter) and b.contains(inter)
        assert set(inter) == set(a) & set(b)


@settings(max_examples=60, deadline=None)
@given(slab_strategy, st.integers(0, 3))
def test_expand_contains_original(s, halo):
    grown = s.expand(halo)
    assert grown.contains(s)
    assert grown.size >= s.size


@settings(max_examples=60, deadline=None)
@given(slab_strategy)
def test_coords_count_matches_size(s):
    arr = s.coords()
    assert arr.shape == (s.size, s.ndim)
    assert len({tuple(r) for r in arr.tolist()}) == s.size
