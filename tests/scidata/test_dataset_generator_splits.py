"""Tests for datasets, generators, and array input splits."""

import numpy as np
import pytest

from repro.scidata import (
    ArraySplitter,
    Dataset,
    Slab,
    Variable,
    integer_grid,
    walk_grid_int32_triples,
    windspeed_field,
)


class TestVariable:
    def test_read_slab(self):
        data = np.arange(24).reshape(2, 3, 4)
        v = Variable("v", data)
        out = v.read(Slab((0, 1, 2), (2, 2, 2)))
        assert (out == data[0:2, 1:3, 2:4]).all()

    def test_read_with_origin(self):
        data = np.arange(16).reshape(4, 4)
        v = Variable("v", data, origin=(10, 20))
        out = v.read(Slab((11, 21), (2, 2)))
        assert (out == data[1:3, 1:3]).all()

    def test_read_out_of_extent(self):
        v = Variable("v", np.zeros((4, 4)))
        with pytest.raises(ValueError):
            v.read(Slab((3, 3), (2, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            Variable("", np.zeros(3))
        with pytest.raises(ValueError):
            Variable("v", np.float64(3.0))
        with pytest.raises(ValueError):
            Variable("v", np.zeros((2, 2)), origin=(0,))

    def test_extent(self):
        v = Variable("v", np.zeros((3, 5)), origin=(1, 2))
        assert v.extent == Slab((1, 2), (3, 5))


class TestDataset:
    def test_add_and_lookup(self):
        ds = Dataset()
        ds.add(Variable("a", np.zeros((2, 2))))
        ds.add(Variable("b", np.zeros(3, dtype=np.int32)))
        assert "a" in ds and "b" in ds and "c" not in ds
        assert ds.names == ["a", "b"]
        assert len(ds) == 2
        assert ds.total_cells() == 7
        assert ds.total_value_bytes() == 4 * 8 + 3 * 4

    def test_duplicate_rejected(self):
        ds = Dataset()
        ds.add(Variable("a", np.zeros(2)))
        with pytest.raises(ValueError):
            ds.add(Variable("a", np.zeros(2)))

    def test_missing_lookup(self):
        with pytest.raises(KeyError):
            Dataset()["nope"]


class TestGenerators:
    def test_windspeed_shape_and_determinism(self):
        a = windspeed_field((4, 5, 6), seed=1)["windspeed1"]
        b = windspeed_field((4, 5, 6), seed=1)["windspeed1"]
        assert a.data.shape == (4, 5, 6)
        assert a.data.dtype == np.float32
        assert (a.data == b.data).all()

    def test_windspeed_smooth_vs_noise(self):
        smooth = windspeed_field((16, 16, 4), seed=1, smooth=True)["windspeed1"]
        noisy = windspeed_field((16, 16, 4), seed=1, smooth=False)["windspeed1"]
        # Smooth field has much smaller neighbour differences.
        ds = np.abs(np.diff(smooth.data, axis=0)).mean()
        dn = np.abs(np.diff(noisy.data, axis=0)).mean()
        assert ds < dn

    def test_integer_grid(self):
        ds = integer_grid((10, 10), seed=3, low=5, high=9)
        data = ds["values"].data
        assert data.dtype == np.int32
        assert data.min() >= 5 and data.max() < 9
        with pytest.raises(ValueError):
            integer_grid((10,), low=5, high=5)
        with pytest.raises(ValueError):
            integer_grid((0, 3))

    def test_walk_grid_size_matches_paper(self):
        # side=100 gives the paper's 12,000,000-byte Fig 3 input.
        assert len(walk_grid_int32_triples(10)) == 12_000
        data = walk_grid_int32_triples(3)
        triples = np.frombuffer(data, dtype="<i4").reshape(-1, 3)
        assert triples.shape == (27, 3)
        assert tuple(triples[0]) == (0, 0, 0)
        assert tuple(triples[1]) == (0, 0, 1)  # C-order walk
        assert tuple(triples[-1]) == (2, 2, 2)

    def test_walk_grid_validation(self):
        with pytest.raises(ValueError):
            walk_grid_int32_triples(0)


class TestArraySplitter:
    def test_split_count_and_coverage(self):
        ds = integer_grid((8, 8), seed=0)
        splits = ArraySplitter(4).split(ds)
        assert len(splits) == 4
        assert sum(s.cells for s in splits) == 64
        assert [s.split_id for s in splits] == [0, 1, 2, 3]
        # coverage without overlap
        cells = set()
        for s in splits:
            for p in s.slab:
                assert p not in cells
                cells.add(p)
        assert len(cells) == 64

    def test_single_split(self):
        ds = integer_grid((5, 5), seed=0)
        splits = ArraySplitter(1).split(ds)
        assert len(splits) == 1
        assert splits[0].slab == ds["values"].extent

    def test_more_splits_than_leading_dim(self):
        ds = integer_grid((2, 9), seed=0)
        splits = ArraySplitter(6).split(ds)
        assert sum(s.cells for s in splits) == 18
        assert len(splits) >= 6

    def test_multiple_variables(self):
        ds = Dataset()
        ds.add(Variable("a", np.zeros((4, 4))))
        ds.add(Variable("b", np.zeros((4, 4))))
        splits = ArraySplitter(2).split(ds)
        assert len(splits) == 4
        assert {s.variable for s in splits} == {"a", "b"}

    def test_validation(self):
        with pytest.raises(ValueError):
            ArraySplitter(0)
