"""Tests for the Peano curve (base-3 geometry, §IV-A's third candidate)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sfc import PeanoCurve, get_curve


@pytest.mark.parametrize("ndim,levels", [(1, 3), (2, 1), (2, 2), (3, 1), (3, 2)])
def test_bijection_exhaustive(ndim, levels):
    curve = PeanoCurve(ndim, levels)
    assert curve.side == 3 ** levels
    assert curve.size == 3 ** (ndim * levels)
    idx = np.arange(curve.size)
    coords = curve.decode(idx)
    assert (curve.encode(coords) == idx).all()
    # all coordinates distinct and in range
    assert len({tuple(c) for c in coords.tolist()}) == curve.size
    assert coords.min() >= 0 and coords.max() < curve.side


@pytest.mark.parametrize("ndim,levels", [(1, 4), (2, 3), (3, 2)])
def test_continuity(ndim, levels):
    """Peano's defining property: consecutive indices are grid neighbours."""
    curve = PeanoCurve(ndim, levels)
    coords = curve.decode(np.arange(curve.size))
    steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
    assert (steps == 1).all()


def test_first_column_is_serpentine():
    # Classic Peano on 3x3: up the first column (dim 1 fastest).
    curve = PeanoCurve(2, 1)
    coords = [curve.decode_point(i) for i in range(9)]
    assert coords[:3] == [(0, 0), (0, 1), (0, 2)]
    assert coords[3] == (1, 2)  # serpentine turn


def test_registered():
    curve = get_curve("peano", 2, 2)
    assert isinstance(curve, PeanoCurve)


def test_validation():
    with pytest.raises(ValueError):
        PeanoCurve(0, 2)
    with pytest.raises(ValueError):
        PeanoCurve(2, 0)
    with pytest.raises(ValueError):
        PeanoCurve(4, 10)  # exceeds int64
    curve = PeanoCurve(2, 2)
    with pytest.raises(ValueError):
        curve.encode(np.array([[9, 0]]))  # side is 9
    with pytest.raises(ValueError):
        curve.decode(np.array([curve.size]))


def test_empty_input():
    curve = PeanoCurve(2, 2)
    assert curve.encode(np.zeros((0, 2), dtype=np.int64)).shape == (0,)
    assert curve.decode(np.zeros(0, dtype=np.int64)).shape == (0, 2)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 3),
    st.integers(1, 3),
    st.integers(0, 10**6),
)
def test_roundtrip_property(ndim, levels, raw):
    curve = PeanoCurve(ndim, levels)
    idx = raw % curve.size
    assert curve.encode_point(curve.decode_point(idx)) == idx


def test_aggregation_pipeline_with_peano():
    """Peano slots into the aggregation config like any curve."""
    from repro.mapreduce import LocalJobRunner
    from repro.queries import SlidingMedianQuery
    from repro.scidata import integer_grid

    grid = integer_grid((7, 7), seed=11)
    query = SlidingMedianQuery(grid, "values", window=3)
    # side 7 needs 3^2 = 9 >= 7: 2 levels
    job = query.build_job("aggregate", agg_overrides={"curve": "peano",
                                                      "bits": 2})
    agg_result = LocalJobRunner().run(job, grid)
    plain = LocalJobRunner().run(query.build_job("plain"), grid)
    as_map = lambda r: {k.coords: v for k, v in r.output}
    assert as_map(agg_result) == as_map(plain)
