"""Unit and property tests for space-filling curves."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sfc import (
    Curve,
    HilbertCurve,
    RowMajorCurve,
    ZOrderCurve,
    available_curves,
    get_curve,
)

ALL_CURVES = [ZOrderCurve, HilbertCurve, RowMajorCurve]


@pytest.mark.parametrize("cls", ALL_CURVES)
@pytest.mark.parametrize("ndim,bits", [(1, 4), (2, 3), (3, 3), (4, 2)])
def test_bijection_exhaustive(cls, ndim, bits):
    """encode must be a bijection onto [0, size) and decode its inverse."""
    curve = cls(ndim, bits)
    axes = [np.arange(curve.side)] * ndim
    grids = np.meshgrid(*axes, indexing="ij")
    coords = np.stack([g.ravel() for g in grids], axis=1)
    idx = curve.encode(coords)
    assert idx.dtype == np.int64
    assert sorted(idx.tolist()) == list(range(curve.size))
    back = curve.decode(idx)
    assert (back == coords).all()


@pytest.mark.parametrize("cls", ALL_CURVES)
def test_scalar_helpers(cls):
    curve = cls(3, 4)
    idx = curve.encode_point((1, 2, 3))
    assert curve.decode_point(idx) == (1, 2, 3)


def test_zorder_2d_matches_bit_interleave():
    curve = ZOrderCurve(2, 2)
    # dim 0 contributes the low bit of each interleaved pair.
    assert curve.encode_point((1, 0)) == 1
    assert curve.encode_point((0, 1)) == 2
    assert curve.encode_point((1, 1)) == 3
    assert curve.encode_point((2, 0)) == 4
    assert curve.encode_point((3, 3)) == 15


def test_hilbert_adjacency():
    """Consecutive Hilbert indices must be grid neighbours (distance 1).

    This is the defining property of the Hilbert curve and is NOT true of
    Z-order, which takes long diagonal jumps between quadrants.
    """
    for ndim, bits in [(2, 4), (3, 3)]:
        curve = HilbertCurve(ndim, bits)
        coords = curve.decode(np.arange(curve.size))
        steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
        assert (steps == 1).all()


def test_zorder_is_not_adjacent_everywhere():
    curve = ZOrderCurve(2, 4)
    coords = curve.decode(np.arange(curve.size))
    steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
    assert steps.max() > 1  # sanity: Z-order jumps


def test_rowmajor_matches_numpy_ravel():
    curve = RowMajorCurve(3, 3)
    shape = (curve.side,) * 3
    coords = np.array([[1, 2, 3], [7, 0, 5]])
    expected = np.ravel_multi_index(coords.T, shape)
    assert (curve.encode(coords) == expected).all()


def test_registry():
    assert set(available_curves()) >= {"zorder", "hilbert", "rowmajor"}
    curve = get_curve("zorder", 2, 5)
    assert isinstance(curve, ZOrderCurve)
    with pytest.raises(KeyError):
        get_curve("sierpinski", 2, 5)


@pytest.mark.parametrize("cls", ALL_CURVES)
def test_input_validation(cls):
    curve = cls(2, 3)
    with pytest.raises(ValueError):
        curve.encode(np.array([[8, 0]]))  # out of range
    with pytest.raises(ValueError):
        curve.encode(np.array([[-1, 0]]))
    with pytest.raises(ValueError):
        curve.encode(np.array([[0, 0, 0]]))  # wrong ndim
    with pytest.raises(ValueError):
        curve.decode(np.array([curve.size]))


def test_constructor_validation():
    with pytest.raises(ValueError):
        ZOrderCurve(0, 3)
    with pytest.raises(ValueError):
        ZOrderCurve(2, 0)
    with pytest.raises(ValueError):
        ZOrderCurve(2, 22)
    with pytest.raises(ValueError):
        ZOrderCurve(8, 8)  # 64 bits does not fit int64


@pytest.mark.parametrize("cls", ALL_CURVES)
def test_empty_input(cls):
    curve = cls(2, 3)
    assert curve.encode(np.zeros((0, 2), dtype=np.int64)).shape == (0,)
    assert curve.decode(np.zeros(0, dtype=np.int64)).shape == (0, 2)


@settings(max_examples=50, deadline=None)
@given(
    data=st.data(),
    name=st.sampled_from(["zorder", "hilbert", "rowmajor"]),
    ndim=st.integers(min_value=1, max_value=4),
    bits=st.integers(min_value=1, max_value=8),
)
def test_roundtrip_property(data, name, ndim, bits):
    curve = get_curve(name, ndim, bits)
    npoints = data.draw(st.integers(min_value=1, max_value=64))
    coords = data.draw(
        st.lists(
            st.lists(st.integers(0, curve.side - 1), min_size=ndim, max_size=ndim),
            min_size=npoints,
            max_size=npoints,
        )
    )
    arr = np.asarray(coords, dtype=np.int64)
    back = curve.decode(curve.encode(arr))
    assert (back == arr).all()


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(["zorder", "hilbert", "rowmajor"]),
    bits=st.integers(min_value=1, max_value=6),
)
def test_distinct_points_get_distinct_indices(name, bits):
    curve = get_curve(name, 2, bits)
    n = min(curve.size, 128)
    rng = np.random.default_rng(bits)
    idx = rng.choice(curve.size, size=n, replace=False)
    coords = curve.decode(idx)
    assert len({tuple(c) for c in coords.tolist()}) == n
