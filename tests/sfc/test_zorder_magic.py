"""Property tests for the magic-number Z-order implementation.

The curve was rewritten from an ``O(bits * ndim)`` per-bit loop to
``O(ndim * log bits)`` shift/or/mask spreading passes.  The old per-bit
loop is kept here as the executable reference; the new implementation
must agree with it bit-for-bit over random coordinates for every
(ndim, bits) shape the engine admits.
"""

import numpy as np
import pytest

from repro.sfc.zorder import ZOrderCurve


def reference_encode(curve: ZOrderCurve, coords: np.ndarray) -> np.ndarray:
    """The previous per-bit double-loop implementation."""
    coords = np.asarray(coords, dtype=np.int64)
    out = np.zeros(coords.shape[0], dtype=np.int64)
    for bit in range(curve.bits):
        for dim in range(curve.ndim):
            src = (coords[:, dim] >> bit) & 1
            out |= src << (bit * curve.ndim + dim)
    return out


def reference_decode(curve: ZOrderCurve, indices: np.ndarray) -> np.ndarray:
    coords = np.zeros((indices.shape[0], curve.ndim), dtype=np.int64)
    for bit in range(curve.bits):
        for dim in range(curve.ndim):
            src = (indices >> (bit * curve.ndim + dim)) & 1
            coords[:, dim] |= src << bit
    return coords


SHAPES = [
    (1, 1), (1, 21), (2, 1), (2, 10), (2, 16), (3, 2), (3, 10), (3, 21),
    (4, 7), (5, 5), (6, 10), (7, 9), (63, 1),
]


@pytest.mark.parametrize("ndim,bits", SHAPES)
def test_encode_matches_reference(ndim, bits):
    curve = ZOrderCurve(ndim, bits)
    rng = np.random.default_rng(ndim * 100 + bits)
    coords = rng.integers(0, curve.side, size=(256, ndim))
    assert np.array_equal(curve.encode(coords), reference_encode(curve, coords))


@pytest.mark.parametrize("ndim,bits", SHAPES)
def test_decode_matches_reference(ndim, bits):
    curve = ZOrderCurve(ndim, bits)
    rng = np.random.default_rng(ndim * 200 + bits)
    indices = rng.integers(0, min(curve.size, 2**62), size=256)
    assert np.array_equal(
        curve.decode(indices), reference_decode(curve, indices))


@pytest.mark.parametrize("ndim,bits", SHAPES)
def test_roundtrip(ndim, bits):
    curve = ZOrderCurve(ndim, bits)
    rng = np.random.default_rng(ndim * 300 + bits)
    coords = rng.integers(0, curve.side, size=(256, ndim))
    assert np.array_equal(curve.decode(curve.encode(coords)), coords)


def test_boundary_coordinates():
    for ndim, bits in [(2, 10), (3, 21), (3, 1)]:
        curve = ZOrderCurve(ndim, bits)
        corners = np.array([
            [0] * ndim,
            [curve.side - 1] * ndim,
            [0] * (ndim - 1) + [curve.side - 1],
            [curve.side - 1] + [0] * (ndim - 1),
        ])
        assert np.array_equal(
            curve.encode(corners), reference_encode(curve, corners))
        assert int(curve.encode(corners)[1]) == curve.size - 1


def test_fig6_pattern_preserved():
    """2-D 4x4 numbering still matches the paper's Fig 6 'N' pattern."""
    curve = ZOrderCurve(2, 2)
    grid = np.array([[x, y] for y in range(4) for x in range(4)])
    expected = np.array([0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15])
    assert np.array_equal(curve.encode(grid), expected)
