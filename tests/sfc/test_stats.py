"""Tests for curve clustering statistics (ablation A1 support)."""

import numpy as np
import pytest

from repro.sfc import (
    HilbertCurve,
    RowMajorCurve,
    ZOrderCurve,
    box_range_count,
    clustering_report,
)


def test_full_grid_is_one_range():
    for cls in (ZOrderCurve, HilbertCurve, RowMajorCurve):
        curve = cls(2, 3)
        assert box_range_count(curve, (0, 0), (8, 8)) == 1


def test_single_cell_is_one_range():
    curve = ZOrderCurve(3, 4)
    assert box_range_count(curve, (5, 6, 7), (1, 1, 1)) == 1


def test_rowmajor_row_box():
    # A box spanning k rows with partial columns gives exactly k runs in
    # row-major order.
    curve = RowMajorCurve(2, 4)
    assert box_range_count(curve, (2, 3), (5, 4)) == 5
    # A full-width slab of k rows is contiguous: 1 run.
    assert box_range_count(curve, (2, 0), (5, 16)) == 1


def test_zorder_aligned_block_is_one_range():
    # Power-of-two blocks aligned on their own size are single Z-order runs.
    curve = ZOrderCurve(2, 4)
    assert box_range_count(curve, (4, 4), (4, 4)) == 1
    assert box_range_count(curve, (8, 0), (8, 8)) == 1


def test_hilbert_clusters_no_worse_than_zorder_on_average():
    """Moon et al.'s claim, measured: Hilbert mean run count <= Z-order's."""
    z = ZOrderCurve(2, 5)
    h = HilbertCurve(2, 5)
    rng = np.random.default_rng(42)
    boxes = []
    for _ in range(40):
        w, hgt = rng.integers(2, 9, size=2)
        x = rng.integers(0, 32 - w)
        y = rng.integers(0, 32 - hgt)
        boxes.append(((int(x), int(y)), (int(w), int(hgt))))
    z_mean = np.mean([box_range_count(z, c, s) for c, s in boxes])
    h_mean = np.mean([box_range_count(h, c, s) for c, s in boxes])
    assert h_mean <= z_mean


def test_clustering_report_shape():
    curves = [ZOrderCurve(2, 4), HilbertCurve(2, 4), RowMajorCurve(2, 4)]
    boxes = [((0, 0), (3, 3)), ((5, 5), (4, 2))]
    rows = clustering_report(curves, boxes)
    assert [r.curve_name for r in rows] == ["zorder", "hilbert", "rowmajor"]
    for row in rows:
        assert row.boxes == 2
        assert row.mean_ranges >= 1.0
        assert row.max_ranges >= 1
        assert 0.0 < row.mean_ranges_per_cell <= 1.0


def test_clustering_report_rejects_mixed_ndim():
    with pytest.raises(ValueError):
        clustering_report([ZOrderCurve(2, 4), HilbertCurve(3, 4)], [((0, 0), (2, 2))])


def test_clustering_report_rejects_oversized_box():
    with pytest.raises(ValueError):
        clustering_report([ZOrderCurve(2, 2)], [((0, 0), (8, 8))])


def test_box_range_count_validation():
    curve = ZOrderCurve(2, 4)
    with pytest.raises(ValueError):
        box_range_count(curve, (0,), (2, 2))
    with pytest.raises(ValueError):
        box_range_count(curve, (0, 0), (0, 2))


def test_empty_report():
    assert clustering_report([], []) == []
