"""Documentation hygiene: every public module/class/function is documented.

Deliverable (e) requires doc comments on every public item; this test
keeps that true as the codebase evolves.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports documented at their home
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"public items without docstrings: {missing}"


def test_public_methods_documented_on_key_apis():
    """Spot-check the surfaces a downstream user programs against."""
    from repro.mapreduce.api import MapContext, Mapper, Reducer
    from repro.mapreduce.engine import LocalJobRunner
    from repro.sfc.base import Curve

    for cls in [Mapper, Reducer, MapContext, LocalJobRunner, Curve]:
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name}"
