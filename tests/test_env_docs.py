"""The README env-var table and the source tree must agree.

README.md documents every ``REPRO_*`` knob with its default and range.
This test greps the source for every variable actually read and parses
the table, in both directions: an undocumented knob fails, and so does
a documented knob no code reads anymore (table rot).
"""

import os
import re

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
README = os.path.join(ROOT, "README.md")

#: directories whose .py files may read REPRO_* variables
_SOURCE_DIRS = ("src", "benchmarks", "tests")
_VAR = re.compile(r"REPRO_[A-Z0-9_]+")


def _source_vars() -> set[str]:
    found: set[str] = set()
    for rel in _SOURCE_DIRS:
        for dirpath, dirnames, filenames in os.walk(os.path.join(ROOT, rel)):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for name in filenames:
                if not name.endswith(".py"):
                    continue
                with open(os.path.join(dirpath, name),
                          encoding="utf-8") as fh:
                    found.update(_VAR.findall(fh.read()))
    with open(os.path.join(ROOT, "conftest.py"), encoding="utf-8") as fh:
        found.update(_VAR.findall(fh.read()))
    # Trailing-underscore matches are prefix mentions in prose
    # ("the REPRO_SERVICE_* knobs"), not variables.
    return {v for v in found if not v.endswith("_")}


def _documented_vars() -> set[str]:
    """Variables from the README table (rows whose first cell is a
    backticked REPRO_ name)."""
    documented: set[str] = set()
    with open(README, encoding="utf-8") as fh:
        for line in fh:
            match = re.match(r"\|\s*`(REPRO_[A-Z0-9_]+)`\s*\|", line)
            if match:
                documented.add(match.group(1))
    return documented


def test_table_exists_with_required_columns():
    with open(README, encoding="utf-8") as fh:
        text = fh.read()
    assert "## Environment variables" in text
    header = re.search(r"\| variable \| default \| range / values \| "
                       r"effect \|", text)
    assert header, "env table header row missing or reworded"


def test_every_source_var_is_documented():
    missing = _source_vars() - _documented_vars()
    assert not missing, (
        f"REPRO_* variables read in code but absent from the README "
        f"'Environment variables' table: {sorted(missing)}")


def test_every_documented_var_is_read_somewhere():
    stale = _documented_vars() - _source_vars()
    assert not stale, (
        f"README documents REPRO_* variables nothing reads anymore: "
        f"{sorted(stale)}")


def test_service_knobs_documented():
    """The service's own knobs (this PR's surface) are all present."""
    documented = _documented_vars()
    for var in ("REPRO_SERVICE_ROOT", "REPRO_SERVICE_WORKERS",
                "REPRO_SERVICE_EXECUTORS", "REPRO_SERVICE_MAX_QUEUE",
                "REPRO_SERVICE_TENANT_QUEUE",
                "REPRO_SERVICE_MAX_JOB_SECONDS",
                "REPRO_SERVICE_MAX_OUTSTANDING_SECONDS",
                "REPRO_SERVICE_TENANTS", "REPRO_SERVICE_QUANTUM"):
        assert var in documented, var
