"""Tests for metadata-derived stride prediction (§III)."""

import bz2

import pytest

from repro.core.stride import dominant_sequences, fixed_forward_transform
from repro.core.stride.metadata import StrideAdvice, advise_strides, record_pitch
from repro.experiments.fig2_stream import key_stream, seqfile_key_stream
from repro.mapreduce.keys import CellKeySerde


class TestRecordPitch:
    def test_ifile_pitch_matches_fig2_stream(self):
        serde = CellKeySerde(ndim=3, variable_mode="name")
        assert record_pitch(serde, "windspeed1", 4, "ifile") == 33

    def test_seqfile_pitch_is_47_for_paper_layout(self):
        serde = CellKeySerde(ndim=3, variable_mode="name", coord_width=8,
                             include_slot=False)
        assert record_pitch(serde, "windspeed1", 4, "seqfile") == 47

    def test_raw_pitch(self):
        serde = CellKeySerde(ndim=3, variable_mode="index")
        assert record_pitch(serde, 0, 4, "raw") == 24

    def test_validation(self):
        serde = CellKeySerde(ndim=2)
        with pytest.raises(ValueError):
            record_pitch(serde, "v", -1)
        with pytest.raises(ValueError):
            record_pitch(serde, "v", 4, "parquet")


class TestAdvise:
    def test_candidates_include_rollovers(self):
        serde = CellKeySerde(ndim=3, variable_mode="index")
        # pitch: vint(20)=1, vint(4)=1, 20, 4 -> 26
        advice = advise_strides(serde, 0, 4, shape=(8, 3, 2), max_stride=200)
        assert advice.record_pitch == 26
        assert 26 in advice.candidates
        assert 26 * 2 in advice.candidates      # dim -2 rollover
        assert 26 * 6 in advice.candidates      # dim -3 rollover
        assert advice.caveats == ()

    def test_rollovers_clipped_to_max_stride(self):
        serde = CellKeySerde(ndim=2, variable_mode="index")
        advice = advise_strides(serde, 0, 4, shape=(100, 100), max_stride=50)
        assert advice.candidates == (advice.record_pitch,)

    def test_seqfile_caveat(self):
        serde = CellKeySerde(ndim=3, variable_mode="name", coord_width=8,
                             include_slot=False)
        advice = advise_strides(serde, "windspeed1", 4, shape=(12, 12, 12),
                                framing="seqfile")
        assert advice.caveats
        assert "sync" in advice.caveats[0]

    def test_validation(self):
        serde = CellKeySerde(ndim=2)
        with pytest.raises(ValueError):
            advise_strides(serde, "v", 4, shape=(3,))
        with pytest.raises(ValueError):
            advise_strides(serde, "v", 4, shape=(0, 3))


class TestAdviceAgreesWithDetection:
    def test_predicted_pitch_is_detected_dominant_stride(self):
        """Metadata and measurement must agree on the record pitch."""
        serde = CellKeySerde(ndim=3, variable_mode="name")
        advice = advise_strides(serde, "windspeed1", 4, shape=(12, 12, 12))
        data = key_stream(side=12)
        reports = dominant_sequences(data, max_stride=100, top=5,
                                     min_hold_rate=0.6)
        assert any(r.stride % advice.record_pitch == 0 for r in reports)

    def test_advised_stride_compresses_like_detected(self):
        """Feeding the advice to the fixed transform must beat a wrong
        stride decisively."""
        data = key_stream(side=10)
        serde = CellKeySerde(ndim=3, variable_mode="name")
        advice = advise_strides(serde, "windspeed1", 4, shape=(10, 10, 10))
        good = len(bz2.compress(
            fixed_forward_transform(data, list(advice.candidates)), 9))
        bad = len(bz2.compress(fixed_forward_transform(data, [29]), 9))
        assert good < bad / 2

    def test_seqfile_advice_matches_fig2(self):
        serde = CellKeySerde(ndim=3, variable_mode="name", coord_width=8,
                             include_slot=False)
        advice = advise_strides(serde, "windspeed1", 4, shape=(12, 12, 12),
                                framing="seqfile")
        assert advice.record_pitch == 47
        data = seqfile_key_stream(side=12)
        reports = dominant_sequences(data, max_stride=100, top=5,
                                     min_hold_rate=0.6)
        assert {r.stride for r in reports} == {47}
