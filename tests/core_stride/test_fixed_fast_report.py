"""Tests for fixed-set transforms, the vectorized variant, and Fig 2 reports."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stride import (
    StrideConfig,
    dominant_sequences,
    fast_forward_transform,
    fast_inverse_transform,
    fixed_forward_transform,
    fixed_inverse_transform,
    forward_transform,
)
from repro.core.stride.fast import select_stride
from repro.core.stride.fixed import FixedSetDetector
from repro.scidata import walk_grid_int32_triples


class TestFixedSet:
    def test_single_stride_roundtrip(self):
        data = walk_grid_int32_triples(6)
        out = fixed_forward_transform(data, [12])
        assert fixed_inverse_transform(out, [12]) == data

    def test_right_stride_beats_wrong_stride(self):
        import zlib
        data = walk_grid_int32_triples(10)
        right = len(zlib.compress(fixed_forward_transform(data, [12]), 6))
        wrong = len(zlib.compress(fixed_forward_transform(data, [7]), 6))
        assert right < wrong

    def test_all_strides_roundtrip(self):
        data = walk_grid_int32_triples(5)
        strides = list(range(1, 30))
        out = fixed_forward_transform(data, strides)
        assert fixed_inverse_transform(out, strides) == data

    def test_fixed_set_never_changes(self):
        det = FixedSetDetector([3, 7])
        rng = np.random.default_rng(0)
        for i, x in enumerate(rng.integers(0, 256, 2048, dtype=np.uint8).tolist()):
            det.observe(i, x)
        assert det.active_strides == [3, 7]

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedSetDetector([])
        with pytest.raises(ValueError):
            FixedSetDetector([0])

    def test_duplicate_strides_deduped(self):
        det = FixedSetDetector([5, 5, 3])
        assert det.active_strides == [3, 5]


class TestFastVariant:
    def test_roundtrip_structured(self):
        data = walk_grid_int32_triples(20)
        out = fast_forward_transform(data)
        assert len(out) == len(data)
        assert fast_inverse_transform(out) == data

    def test_roundtrip_noise(self):
        rng = np.random.default_rng(5)
        data = rng.integers(0, 256, 100_000, dtype=np.uint8).tobytes()
        assert fast_inverse_transform(fast_forward_transform(data)) == data

    def test_roundtrip_odd_sizes_and_chunks(self):
        rng = np.random.default_rng(6)
        for n in [0, 1, 3, 63, 64, 65, 1000, 4097]:
            data = rng.integers(0, 256, n, dtype=np.uint8).tobytes()
            for chunk in [64, 128, 1 << 16]:
                out = fast_forward_transform(data, chunk_size=chunk)
                assert fast_inverse_transform(out, chunk_size=chunk) == data

    def test_compresses_key_stream(self):
        import zlib
        data = walk_grid_int32_triples(25)
        raw = len(zlib.compress(data, 6))
        fast = len(zlib.compress(fast_forward_transform(data), 6))
        assert fast < raw / 2

    def test_select_stride_finds_period(self):
        data = np.frombuffer(bytes(range(12)) * 500, dtype=np.uint8)
        s = select_stride(data, 100)
        assert s % 12 == 0 and s > 0

    def test_select_stride_noise_gives_identity(self):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, 4096, dtype=np.uint8)
        assert select_stride(data, 50) == 0

    def test_select_stride_empty(self):
        assert select_stride(np.zeros(0, dtype=np.uint8), 10) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            fast_forward_transform(b"abc", chunk_size=2)
        with pytest.raises(ValueError):
            fast_forward_transform(b"abc", max_stride=0)
        with pytest.raises(ValueError):
            fast_inverse_transform(b"abc", chunk_size=1)
        with pytest.raises(ValueError):
            fast_inverse_transform(b"abc", max_stride=-1)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=3000), st.sampled_from([16, 100, 257]))
    def test_roundtrip_property(self, data, chunk):
        out = fast_forward_transform(data, max_stride=20, chunk_size=chunk)
        assert fast_inverse_transform(out, max_stride=20, chunk_size=chunk) == data


class TestSequenceReport:
    def test_finds_planted_stride(self):
        data = bytes(range(10)) * 300
        reports = dominant_sequences(data, max_stride=30, top=3)
        assert reports
        assert reports[0].hold_rate == 1.0
        assert reports[0].stride % 10 == 0

    def test_reports_delta(self):
        # one changing byte advancing by 5 every 8 bytes
        chunks = [bytes([(5 * k) & 0xFF, 1, 2, 3, 4, 5, 6, 7]) for k in range(200)]
        data = b"".join(chunks)
        reports = dominant_sequences(data, max_stride=16, top=20)
        hit = [r for r in reports if r.stride == 8 and r.phase == 0]
        assert hit and hit[0].delta == 5

    def test_noise_has_no_high_rate_sequences(self):
        rng = np.random.default_rng(8)
        data = rng.integers(0, 256, 8192, dtype=np.uint8).tobytes()
        reports = dominant_sequences(data, max_stride=20, top=5, min_hold_rate=0.9)
        assert not reports

    def test_short_input(self):
        assert dominant_sequences(b"", max_stride=10) == []
        assert dominant_sequences(b"ab", max_stride=10) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            dominant_sequences(b"abcdef", top=0)

    def test_agrees_with_exact_transform(self):
        """The stride the report ranks first should be one the adaptive
        transform exploits: residuals must be mostly zero."""
        data = walk_grid_int32_triples(8)
        reports = dominant_sequences(data, max_stride=30, top=40)
        # The record stride (12, or a multiple) must rank among the
        # perfect sequences; constant-byte sequences (e.g. stride 2 over
        # all-zero high bytes) may legitimately rank alongside it.
        assert any(r.stride % 12 == 0 and r.hold_rate == 1.0 for r in reports)
        out = forward_transform(data, StrideConfig(max_stride=30))
        assert out.count(0) / len(out) > 0.8
