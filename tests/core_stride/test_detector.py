"""Tests for the adaptive detector's active-set mechanics (§III-A)."""

import numpy as np

from repro.core.stride.detector import StrideDetector
from repro.core.stride.model import StrideConfig, StrideState


def feed(det: StrideDetector, data: bytes) -> None:
    for i, x in enumerate(data):
        det.observe(i, x)


class TestActiveSet:
    def test_starts_with_full_set(self):
        det = StrideDetector(StrideConfig(max_stride=10))
        assert det.active_strides == list(range(1, 11))

    def test_noise_prunes_most_strides(self):
        rng = np.random.default_rng(0)
        det = StrideDetector(StrideConfig(max_stride=20))
        feed(det, rng.integers(0, 256, 8192, dtype=np.uint8).tobytes())
        # Random bytes cannot sustain 5/6 hit rates; nearly everything is
        # pruned (one stride may have just been re-selected).
        assert len(det.active_strides) <= 3

    def test_periodic_keeps_true_stride(self):
        period = 7
        data = bytes(range(period)) * 2000
        det = StrideDetector(StrideConfig(max_stride=20))
        feed(det, data)
        active = det.active_strides
        assert any(s % period == 0 for s in active), active

    def test_brute_force_never_prunes(self):
        rng = np.random.default_rng(1)
        det = StrideDetector(StrideConfig(max_stride=15, adaptive=False))
        feed(det, rng.integers(0, 256, 4096, dtype=np.uint8).tobytes())
        assert det.active_strides == list(range(1, 16))

    def test_pruned_stride_reactivates_after_input_change(self):
        cfg = StrideConfig(max_stride=8)
        det = StrideDetector(cfg)
        rng = np.random.default_rng(2)
        noise = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        periodic = bytes(range(4)) * 2048
        data = noise + periodic
        feed(det, data)
        # After the input turns periodic, the selection cycle must have
        # brought a multiple of 4 back into the active set.
        assert any(s % 4 == 0 for s in det.active_strides), det.active_strides

    def test_settling_time_protects_young_strides(self):
        # With an enormous settling factor nothing can ever be pruned.
        cfg = StrideConfig(max_stride=10, settle_factor=10**9)
        det = StrideDetector(cfg)
        rng = np.random.default_rng(3)
        feed(det, rng.integers(0, 256, 2048, dtype=np.uint8).tobytes())
        assert det.active_strides == list(range(1, 11))


class TestPrediction:
    def test_no_prediction_before_history(self):
        det = StrideDetector(StrideConfig(max_stride=5))
        assert det.predict(0) is None

    def test_prediction_requires_run_above_threshold(self):
        det = StrideDetector(StrideConfig(max_stride=3, run_threshold=2))
        data = bytes([1, 1, 1, 1])  # stride-1 runs: after 4 bytes run=3
        for i, x in enumerate(data):
            assert det.predict(i) is None or i >= 3
            det.observe(i, x)
        # run length for stride 1 is now 3 > 2: prediction available
        assert det.predict(len(data)) == 1

    def test_constant_stream_predicts_delta_zero(self):
        det = StrideDetector(StrideConfig(max_stride=4))
        data = bytes([9]) * 100
        for i, x in enumerate(data):
            det.observe(i, x)
        assert det.predict(100) == 9

    def test_linear_sequence_predicts_with_delta(self):
        det = StrideDetector(StrideConfig(max_stride=4))
        data = bytes([(3 * k) & 0xFF for k in range(100)])  # delta=3, stride 1
        for i, x in enumerate(data):
            det.observe(i, x)
        assert det.predict(100) == (data[-1] + 3) & 0xFF


class TestHitAccounting:
    def test_hit_rate_zero_without_attempts(self):
        st = StrideState(stride=3, position=0)
        assert st.hit_rate() == 0.0

    def test_hits_accumulate_on_periodic_stream(self):
        det = StrideDetector(StrideConfig(max_stride=4))
        feed(det, bytes([5, 6]) * 300)
        st = det.state_of(2)
        assert st is not None
        assert st.attempts > 0
        assert st.hits / st.attempts > 0.9

    def test_state_of_inactive_is_none(self):
        det = StrideDetector(StrideConfig(max_stride=5))
        rng = np.random.default_rng(4)
        feed(det, rng.integers(0, 256, 4096, dtype=np.uint8).tobytes())
        pruned = set(range(1, 6)) - set(det.active_strides)
        assert pruned
        assert det.state_of(next(iter(pruned))) is None
