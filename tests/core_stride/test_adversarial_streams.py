"""Adversarial byte streams through the stride codec stack.

The stride codecs sit directly in the shuffle read path, so they see
whatever a corrupt segment hands them: truncated zlib/bz2 streams,
bit-flipped payloads, plain garbage.  Decompression must fail with a
structured :class:`~repro.util.errors.CorruptStreamError` (a
``ValueError``) -- never a raw backend exception, never a hang, and
never silently returning a stream that differs from what was
compressed.
"""

import numpy as np
import pytest

from repro.core.stride.codec import (
    FastPredBz2Codec,
    FastPredZlibCodec,
    StrideBz2Codec,
    StrideZlibCodec,
)
from repro.util.errors import CorruptRecordError, CorruptStreamError

ALL_CODECS = [StrideZlibCodec, StrideBz2Codec, FastPredZlibCodec,
              FastPredBz2Codec]


def sample_stream(n=4096, stride=16, seed=5):
    """A strided byte stream the detector locks onto (compresses well)."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 256, size=stride, dtype=np.uint8)
    reps = np.tile(base, n // stride + 1)[:n]
    drift = (np.arange(n, dtype=np.int64) // stride).astype(np.uint8)
    return ((reps + drift) & 0xFF).astype(np.uint8).tobytes()


@pytest.fixture(params=ALL_CODECS, ids=lambda c: c.__name__)
def codec(request):
    return request.param()


class TestRoundTrip:
    def test_lossless(self, codec):
        data = sample_stream()
        assert codec.decompress(codec.compress(data)) == data

    def test_empty_stream(self, codec):
        assert codec.decompress(codec.compress(b"")) == b""


class TestAdversarialStreams:
    def test_garbage_bytes_raise_structured_error(self, codec):
        rng = np.random.default_rng(99)
        for size in (1, 7, 64, 1024):
            blob = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
            with pytest.raises(CorruptStreamError):
                codec.decompress(blob)

    def test_empty_input_raises(self, codec):
        with pytest.raises(CorruptStreamError):
            codec.decompress(b"")

    def test_every_truncation_point_raises(self, codec):
        comp = codec.compress(sample_stream(512))
        for cut in range(len(comp)):
            with pytest.raises(CorruptStreamError):
                codec.decompress(comp[:cut])

    def test_bitflips_never_decode_to_different_bytes(self, codec):
        """A flipped stream must either raise the structured error or
        (if the flip lands in a backend don't-care bit) decode to the
        original bytes -- never to silently different output."""
        data = sample_stream(1024)
        comp = bytearray(codec.compress(data))
        for i in range(0, len(comp), max(1, len(comp) // 64)):
            flipped = bytearray(comp)
            flipped[i] ^= 0x10
            try:
                out = codec.decompress(bytes(flipped))
            except CorruptStreamError:
                continue
            assert out == data

    def test_error_is_a_valueerror_with_codec_name(self, codec):
        with pytest.raises(CorruptStreamError) as exc:
            codec.decompress(b"\x00\x01\x02\x03")
        assert isinstance(exc.value, ValueError)
        assert codec.name in str(exc.value)

    def test_error_family_is_corrupt_record(self, codec):
        # reduce-side callers catch CorruptRecordError; the codec layer
        # must stay inside that family
        with pytest.raises(CorruptRecordError):
            codec.decompress(b"not a stream")
