"""Tests for the exact §III stride transform (forward + inverse)."""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stride import (
    StrideConfig,
    forward_transform,
    inverse_transform,
)
from repro.scidata import walk_grid_int32_triples


SMALL_CFG = StrideConfig(max_stride=20)


class TestRoundtrip:
    def test_empty(self):
        assert forward_transform(b"", SMALL_CFG) == b""
        assert inverse_transform(b"", SMALL_CFG) == b""

    def test_single_byte(self):
        assert inverse_transform(forward_transform(b"\x42", SMALL_CFG), SMALL_CFG) == b"\x42"

    def test_periodic_stream(self):
        data = bytes(range(16)) * 200
        out = forward_transform(data, SMALL_CFG)
        assert len(out) == len(data)
        assert inverse_transform(out, SMALL_CFG) == data

    def test_grid_walk(self):
        data = walk_grid_int32_triples(8)
        cfg = StrideConfig(max_stride=30)
        out = forward_transform(data, cfg)
        assert inverse_transform(out, cfg) == data

    def test_random_noise(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        cfg = StrideConfig(max_stride=16)
        assert inverse_transform(forward_transform(data, cfg), cfg) == data

    def test_all_zero(self):
        data = bytes(5000)
        out = forward_transform(data, SMALL_CFG)
        assert inverse_transform(out, SMALL_CFG) == data
        # zeros predict zeros: residual must be all zero too
        assert out == data

    def test_config_mismatch_breaks_roundtrip_on_structured_data(self):
        # Sanity that the config genuinely participates: decoding with a
        # different max_stride diverges (decoder makes different choices).
        data = walk_grid_int32_triples(6)
        out = forward_transform(data, StrideConfig(max_stride=30))
        wrong = inverse_transform(out, StrideConfig(max_stride=3))
        assert wrong != data


class TestCompressionBenefit:
    def test_transform_improves_gzip_on_key_stream(self):
        """The paper's core claim: residuals gzip far better than raw keys."""
        data = walk_grid_int32_triples(12)
        cfg = StrideConfig(max_stride=30)
        raw_gz = len(zlib.compress(data, 6))
        tr_gz = len(zlib.compress(forward_transform(data, cfg), 6))
        assert tr_gz < raw_gz / 3  # paper sees ~50x; require at least 3x

    def test_mostly_zero_residual_on_linear_sequence(self):
        # A pure linear sequence (delta=1, stride=4) must be almost
        # entirely predicted after warm-up.
        vals = np.arange(1000, dtype=np.uint8)
        data = b"".join(bytes([v, 0xAA, 0xBB, 0xCC]) for v in vals)
        out = forward_transform(data, StrideConfig(max_stride=8))
        tail = out[64:]
        assert tail.count(0) / len(tail) > 0.95


class TestLinearity:
    def test_output_length_always_matches(self):
        for n in [0, 1, 7, 255, 256, 257, 1000]:
            data = bytes(range(256))[:n] if n <= 256 else bytes(n)
            assert len(forward_transform(data, SMALL_CFG)) == n


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=2000))
def test_roundtrip_property(data):
    cfg = StrideConfig(max_stride=12)
    assert inverse_transform(forward_transform(data, cfg), cfg) == data


@settings(max_examples=15, deadline=None)
@given(
    st.integers(2, 10),   # period
    st.integers(1, 40),   # repeats
    st.integers(1, 15),   # max_stride
)
def test_roundtrip_periodic_property(period, repeats, max_stride):
    data = bytes(range(period)) * repeats
    cfg = StrideConfig(max_stride=max_stride)
    assert inverse_transform(forward_transform(data, cfg), cfg) == data


def test_config_validation():
    with pytest.raises(ValueError):
        StrideConfig(max_stride=0)
    with pytest.raises(ValueError):
        StrideConfig(run_threshold=-1)
    with pytest.raises(ValueError):
        StrideConfig(hit_rate_threshold=0.0)
    with pytest.raises(ValueError):
        StrideConfig(hit_rate_threshold=1.5)
    with pytest.raises(ValueError):
        StrideConfig(settle_factor=0)
    with pytest.raises(ValueError):
        StrideConfig(selection_cycle=0)
