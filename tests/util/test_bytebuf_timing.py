"""Tests for byte buffers, chunk readers, timing, and RNG helpers."""

import io

import pytest

from repro.util import ByteBuffer, ChunkReader, CostClock, Stopwatch, make_rng


class TestByteBuffer:
    def test_write_and_len(self):
        buf = ByteBuffer()
        assert len(buf) == 0
        assert buf.write(b"abc") == 3
        buf.write_byte(0xFF)
        assert len(buf) == 4
        assert buf.getvalue() == b"abc\xff"

    def test_initial_contents(self):
        buf = ByteBuffer(b"xy")
        buf.write(b"z")
        assert buf.getvalue() == b"xyz"

    def test_clear_retains_usability(self):
        buf = ByteBuffer(b"abc")
        buf.clear()
        assert len(buf) == 0
        buf.write(b"d")
        assert buf.getvalue() == b"d"

    def test_view_is_zero_copy(self):
        buf = ByteBuffer(b"abc")
        view = buf.view()
        assert bytes(view) == b"abc"
        assert view.readonly


class TestChunkReader:
    def test_bytes_source_chunking(self):
        chunks = list(ChunkReader(b"abcdefg", chunk_size=3))
        assert chunks == [b"abc", b"def", b"g"]

    def test_file_source_chunking(self):
        chunks = list(ChunkReader(io.BytesIO(b"abcdefg"), chunk_size=2))
        assert b"".join(chunks) == b"abcdefg"
        assert all(len(c) <= 2 for c in chunks)

    def test_empty_source(self):
        assert list(ChunkReader(b"", chunk_size=4)) == []
        assert list(ChunkReader(io.BytesIO(b""), chunk_size=4)) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            ChunkReader(b"abc", chunk_size=0)


class TestTiming:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw.running():
            pass
        first = sw.elapsed
        with sw.running():
            pass
        assert sw.elapsed >= first >= 0.0

    def test_stopwatch_misuse_raises(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            sw.stop()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_cost_clock_categories(self):
        clock = CostClock()
        clock.add("codec", 1.5)
        clock.add("codec", 0.5)
        clock.add("sort", 1.0)
        assert clock.get("codec") == pytest.approx(2.0)
        assert clock.total() == pytest.approx(3.0)
        assert clock.get("missing") == 0.0

    def test_cost_clock_merge(self):
        a, b = CostClock(), CostClock()
        a.add("map", 1.0)
        b.add("map", 2.0)
        b.add("reduce", 3.0)
        a.merge(b)
        assert a.as_dict() == {"map": 3.0, "reduce": 3.0}

    def test_cost_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            CostClock().add("x", -1.0)

    def test_measure_context(self):
        clock = CostClock()
        with clock.measure("work"):
            sum(range(100))
        assert clock.get("work") > 0.0


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7).integers(0, 1000, size=10)
        b = make_rng(7).integers(0, 1000, size=10)
        assert (a == b).all()

    def test_default_seed_is_deterministic(self):
        a = make_rng().integers(0, 1000, size=10)
        b = make_rng().integers(0, 1000, size=10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 2**31, size=20)
        b = make_rng(2).integers(0, 2**31, size=20)
        assert (a != b).any()
