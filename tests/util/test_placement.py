"""The shared placement hash: one definition, stable everywhere.

Host pinning and network-shuffle server spreading both place ids by
``crc32(id) % n``; these tests pin the shared helper's contract and
that both call sites actually route through it (the R4/R5 fault
matrices depend on placement never drifting between subsystems).
"""

import zlib

import pytest

from repro.mapreduce.runtime.hosts import host_for
from repro.util.placement import placement_index


def test_matches_crc32_mod():
    for key in ("m00000", "r00001", "host3", "", "uñicode"):
        for n in (1, 2, 3, 7, 64):
            assert placement_index(key, n) == \
                zlib.crc32(key.encode("utf-8")) % n


def test_stable_across_calls():
    assert placement_index("m00042", 5) == placement_index("m00042", 5)


def test_range():
    for i in range(200):
        assert 0 <= placement_index(f"t{i:05d}", 7) < 7


def test_rejects_nonpositive_buckets():
    with pytest.raises(ValueError):
        placement_index("x", 0)
    with pytest.raises(ValueError):
        placement_index("x", -3)


def test_host_for_uses_shared_hash():
    for task in ("m00000", "m00001", "r00000"):
        for hosts in (1, 2, 3, 5):
            assert host_for(task, hosts) == \
                f"host{placement_index(task, hosts)}"


def test_netshuffle_server_spread_uses_shared_hash():
    from repro.mapreduce.runtime.netshuffle import ShuffleService

    # server_index only consults num_servers, so a bare instance is
    # enough to exercise the real placement path.
    service = object.__new__(ShuffleService)
    service.num_servers = 3
    for map_id in ("m00000", "m00001", "m00002"):
        assert service.server_index(map_id) == placement_index(map_id, 3)
