"""Unit and property tests for Hadoop-compatible varints."""

import pytest
from hypothesis import given, strategies as st

from repro.util.varint import read_vlong, vint_size, write_vlong


def roundtrip(value: int) -> int:
    buf = bytearray()
    write_vlong(value, buf)
    decoded, end = read_vlong(buf)
    assert end == len(buf)
    return decoded


@pytest.mark.parametrize("value", [0, 1, -1, 127, -112, 128, -113, 255, 256,
                                   2**31 - 1, -(2**31), 2**63 - 1, -(2**63)])
def test_roundtrip_known_values(value):
    assert roundtrip(value) == value


def test_single_byte_range_is_one_byte():
    # Hadoop stores [-112, 127] in a single byte; this is what makes the
    # IFile per-record overhead exactly 2 bytes for small keys/values.
    for value in range(-112, 128):
        buf = bytearray()
        assert write_vlong(value, buf) == 1
        assert len(buf) == 1


def test_known_hadoop_encodings():
    # Values cross-checked against org.apache.hadoop.io.WritableUtils.
    cases = {
        128: bytes([0x8F, 0x80]),
        255: bytes([0x8F, 0xFF]),
        256: bytes([0x8E, 0x01, 0x00]),
        -113: bytes([0x87, 0x70]),
        65536: bytes([0x8D, 0x01, 0x00, 0x00]),
    }
    for value, expected in cases.items():
        buf = bytearray()
        write_vlong(value, buf)
        assert bytes(buf) == expected, f"encoding of {value}"


def test_vint_size_matches_encoding():
    for value in [0, 127, -112, 128, -113, 2**20, -(2**20), 2**62]:
        buf = bytearray()
        write_vlong(value, buf)
        assert vint_size(value) == len(buf)


def test_read_with_offset():
    buf = bytearray(b"\x00\x00")
    write_vlong(300, buf)
    value, end = read_vlong(buf, offset=2)
    assert value == 300
    assert end == len(buf)


def test_truncated_varint_raises():
    buf = bytearray()
    write_vlong(2**40, buf)
    with pytest.raises(ValueError):
        read_vlong(buf[:-1])
    with pytest.raises(ValueError):
        read_vlong(b"", 0)


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_roundtrip_property(value):
    assert roundtrip(value) == value


@given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1), max_size=50))
def test_concatenated_stream_roundtrips(values):
    buf = bytearray()
    for v in values:
        write_vlong(v, buf)
    out = []
    off = 0
    while off < len(buf):
        v, off = read_vlong(buf, off)
        out.append(v)
    assert out == values


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_encoding_is_prefix_free_in_stream(value):
    # Appending arbitrary bytes after a varint must not change its decode.
    buf = bytearray()
    write_vlong(value, buf)
    end_clean = len(buf)
    buf.extend(b"\xff\x00\x7f")
    decoded, end = read_vlong(buf)
    assert decoded == value
    assert end == end_clean
