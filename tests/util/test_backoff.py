"""The shared retry-backoff policy: capped, jittered, deterministic.

Every retry loop in the runtime (scheduler task retries, shuffle fetch
retries) prices its delays through :func:`repro.util.backoff.
backoff_delay`.  The properties pinned here are what make that safe to
share: delays never exceed the cap (the scheduler's old uncapped
``base * 2**failures`` turned a flaky task into minutes of sleep),
never fall below half the capped target (jitter spreads retries out
without defeating the backoff), grow monotonically until the cap, and
are pure functions of their inputs (reproducible runs).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.backoff import JITTER_FLOOR, backoff_delay

bases = st.floats(min_value=0.0, max_value=10.0,
                  allow_nan=False, allow_infinity=False)
caps = st.floats(min_value=0.0, max_value=100.0,
                 allow_nan=False, allow_infinity=False)
failure_counts = st.integers(min_value=0, max_value=200)
keys = st.text(max_size=30)


class TestBackoffProperties:
    @settings(max_examples=200, deadline=None)
    @given(base=bases, failures=failure_counts, cap=caps, key=keys)
    def test_bounded_by_cap(self, base, failures, cap, key):
        delay = backoff_delay(base, failures, cap, key=key)
        assert 0.0 <= delay <= cap

    @settings(max_examples=200, deadline=None)
    @given(base=bases, failures=failure_counts, cap=caps, key=keys)
    def test_jitter_floor(self, base, failures, cap, key):
        """Jitter shrinks a delay to at most half its capped target --
        never to (near) zero, which would defeat the backoff."""
        delay = backoff_delay(base, failures, cap, key=key)
        if failures > 0 and base > 0:
            target = min(base * 2 ** min(failures - 1, 62), cap)
            assert delay >= JITTER_FLOOR * target

    @settings(max_examples=100, deadline=None)
    @given(base=bases, failures=failure_counts, cap=caps, key=keys)
    def test_deterministic(self, base, failures, cap, key):
        assert backoff_delay(base, failures, cap, key=key) == \
            backoff_delay(base, failures, cap, key=key)

    @settings(max_examples=100, deadline=None)
    @given(base=st.floats(min_value=0.001, max_value=1.0),
           failures=st.integers(min_value=1, max_value=20), key=keys)
    def test_monotone_growth_before_cap(self, base, failures, key):
        """With no cap in the way, each extra failure at least keeps --
        in practice doubles -- the *uncapped target*; jitter may wiggle
        the sample, so compare the jitter-free envelope."""
        cap = base * 2 ** 30  # far above any target drawn here
        lo = backoff_delay(base, failures, cap, key=key)
        hi = backoff_delay(base, failures + 1, cap, key=key)
        # envelope: hi >= 0.5 * 2^f*base  and  lo <= 2^(f-1)*base
        assert hi >= JITTER_FLOOR * base * 2 ** failures
        assert lo <= base * 2 ** (failures - 1)

    def test_zero_failures_and_zero_base(self):
        assert backoff_delay(0.5, 0, 10.0) == 0.0
        assert backoff_delay(0.0, 7, 10.0) == 0.0

    def test_huge_failure_count_does_not_overflow(self):
        assert backoff_delay(0.01, 10_000, 2.0) <= 2.0

    def test_key_varies_jitter(self):
        """Different keys de-synchronize retries of the same failure
        ordinal (the thundering-herd defence)."""
        delays = {backoff_delay(1.0, 5, 1000.0, key=f"task-{i}")
                  for i in range(32)}
        assert len(delays) > 1

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            backoff_delay(-0.1, 1, 1.0)
        with pytest.raises(ValueError):
            backoff_delay(0.1, 1, -1.0)
