"""Property-based end-to-end equivalence of the two shuffle representations.

The paper's techniques are *lossless* representation changes: for any
grid, any query, any task/reducer layout, any curve, and any codec, the
aggregate-key pipeline must produce byte-for-byte the same answers as
the per-cell-key pipeline.  Hypothesis drives that statement across the
configuration space.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mapreduce import LocalJobRunner
from repro.queries import (
    BoxSubsetQuery,
    SlidingAggregateQuery,
    SlidingMedianQuery,
)
from repro.scidata import Dataset, Slab, Variable


grids = st.builds(
    lambda h, w, seed: _make_grid(h, w, seed),
    st.integers(3, 10), st.integers(3, 10), st.integers(0, 2**16),
)


def _make_grid(h, w, seed):
    rng = np.random.default_rng(seed)
    ds = Dataset()
    ds.add(Variable("values",
                    rng.integers(-1000, 1000, (h, w)).astype(np.int32)))
    return ds


def as_map(result):
    return {k.coords: v for k, v in result.output}


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    grid=grids,
    curve=st.sampled_from(["zorder", "hilbert", "rowmajor"]),
    maps=st.integers(1, 4),
    reducers=st.integers(1, 3),
    buffer_cells=st.sampled_from([16, 1 << 20]),
)
def test_sliding_median_mode_equivalence(grid, curve, maps, reducers,
                                         buffer_cells):
    query = SlidingMedianQuery(grid, "values", window=3)
    plain = LocalJobRunner().run(
        query.build_job("plain", num_map_tasks=maps, num_reducers=reducers),
        grid)
    agg = LocalJobRunner().run(
        query.build_job("aggregate", num_map_tasks=maps,
                        num_reducers=reducers,
                        agg_overrides={"curve": curve,
                                       "buffer_cells": buffer_cells}),
        grid)
    assert as_map(plain) == as_map(agg)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    grid=grids,
    op=st.sampled_from(["min", "max", "sum"]),
    maps=st.integers(1, 3),
    alignment=st.sampled_from([1, 4, 16]),
    reaggregate=st.booleans(),
)
def test_sliding_aggregate_mode_equivalence(grid, op, maps, alignment,
                                            reaggregate):
    query = SlidingAggregateQuery(grid, "values", op=op, window=3)
    plain = LocalJobRunner().run(
        query.build_job("plain", num_map_tasks=maps), grid)
    agg_job = query.build_job("aggregate", num_map_tasks=maps,
                              num_reducers=2,
                              agg_overrides={"alignment": alignment})
    agg_job.shuffle_plugin.reaggregate = reaggregate
    agg = LocalJobRunner().run(agg_job, grid)
    assert as_map(plain) == as_map(agg)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    grid=grids,
    data=st.data(),
    codec=st.sampled_from(["null", "zlib", "fastpred+zlib"]),
)
def test_subset_mode_equivalence_with_codecs(grid, data, codec):
    extent = grid["values"].extent
    h, w = extent.shape
    bh = data.draw(st.integers(1, h))
    bw = data.draw(st.integers(1, w))
    ch = data.draw(st.integers(0, h - bh))
    cw = data.draw(st.integers(0, w - bw))
    box = Slab((ch, cw), (bh, bw))
    query = BoxSubsetQuery(grid, "values", box)
    plain = LocalJobRunner().run(
        query.build_job("plain", codec=codec, num_map_tasks=2), grid)
    agg = LocalJobRunner().run(
        query.build_job("aggregate", codec=codec, num_map_tasks=2), grid)
    assert as_map(plain) == as_map(agg)
    assert len(plain.output) == box.size
