"""Cross-module integration tests: the paper's pipelines end to end."""

import numpy as np
import pytest

from repro.mapreduce import LocalJobRunner
from repro.mapreduce.metrics import C
from repro.queries import BoxSubsetQuery, SlidingMedianQuery
from repro.scidata import Slab, integer_grid, windspeed_field


class TestCodecsInsideJobs:
    """Every registered codec must run the same job to the same answer."""

    @pytest.mark.parametrize("codec", ["null", "zlib", "bz2",
                                       "fastpred+zlib", "stride+zlib"])
    def test_sliding_median_under_codec(self, codec):
        grid = integer_grid((7, 7), seed=3)
        query = SlidingMedianQuery(grid, "values", window=3)
        job = query.build_job("plain", codec=codec, num_map_tasks=2,
                              num_reducers=2)
        result = LocalJobRunner().run(job, grid)
        assert len(result.output) == 49
        baseline = LocalJobRunner().run(
            query.build_job("plain", num_map_tasks=2, num_reducers=2), grid)
        as_map = lambda r: {k.coords: v for k, v in r.output}
        assert as_map(result) == as_map(baseline)

    def test_compressing_codecs_shrink_materialized(self):
        grid = integer_grid((10, 10), seed=4)
        query = SlidingMedianQuery(grid, "values", window=3)
        sizes = {}
        for codec in ["null", "zlib", "fastpred+zlib"]:
            job = query.build_job("plain", codec=codec)
            sizes[codec] = LocalJobRunner().run(job, grid).materialized_bytes
        assert sizes["zlib"] < sizes["null"]
        assert sizes["fastpred+zlib"] < sizes["null"]


class TestAggregationPlusCodec:
    """§III and §IV compose: a codec on top of aggregate records."""

    def test_aggregate_mode_with_zlib(self):
        grid = integer_grid((8, 8), seed=5)
        query = SlidingMedianQuery(grid, "values", window=3)
        plain = LocalJobRunner().run(query.build_job("aggregate"), grid)
        zipped = LocalJobRunner().run(
            query.build_job("aggregate", codec="zlib"), grid)
        as_map = lambda r: {k.coords: v for k, v in r.output}
        assert as_map(plain) == as_map(zipped)
        assert zipped.materialized_bytes < plain.materialized_bytes


class TestFloatPipeline:
    """The windspeed1 float field flows through both modes."""

    def test_float32_sliding_median_both_modes(self):
        ds = windspeed_field((6, 6, 4), seed=9)
        query = SlidingMedianQuery(ds, "windspeed1", window=3)
        plain = LocalJobRunner().run(
            query.build_job("plain", num_map_tasks=2), ds)
        agg = LocalJobRunner().run(
            query.build_job("aggregate", num_map_tasks=2), ds)
        pm = {k.coords: v for k, v in plain.output}
        am = {k.coords: v for k, v in agg.output}
        assert set(pm) == set(am)
        for c in pm:
            assert pm[c] == pytest.approx(am[c], rel=1e-6)

    def test_float_subset(self):
        ds = windspeed_field((8, 8, 2), seed=10)
        box = Slab((1, 1, 0), (3, 3, 2))
        query = BoxSubsetQuery(ds, "windspeed1", box)
        result = LocalJobRunner().run(query.build_job("plain"), ds)
        data = ds["windspeed1"].data
        assert len(result.output) == box.size
        for key, value in result.output:
            assert value == pytest.approx(float(data[key.coords]))


class TestScaleInvariants:
    """Byte accounting identities that must hold at any size."""

    @pytest.mark.parametrize("side", [5, 9, 16])
    def test_materialized_equals_shuffle(self, side):
        grid = integer_grid((side, side), seed=side)
        query = SlidingMedianQuery(grid, "values", window=3)
        job = query.build_job("plain", num_map_tasks=2, num_reducers=3)
        res = LocalJobRunner().run(job, grid)
        assert (res.counters[C.SHUFFLE_BYTES]
                == res.counters[C.MAP_OUTPUT_MATERIALIZED_BYTES])

    @pytest.mark.parametrize("side", [6, 12])
    def test_stats_decomposition(self, side):
        grid = integer_grid((side, side), seed=side)
        query = SlidingMedianQuery(grid, "values", window=3)
        res = LocalJobRunner().run(query.build_job("plain"), grid)
        s = res.map_output_stats
        # null codec: on-disk == framed raw stream
        assert s.materialized_bytes == s.raw_bytes
        assert s.raw_bytes == s.key_bytes + s.value_bytes + s.overhead_bytes

    def test_window_emission_count(self):
        # interior cells emit window**2 values; edges fewer
        side, w = 10, 3
        grid = integer_grid((side, side), seed=0)
        query = SlidingMedianQuery(grid, "values", window=w)
        res = LocalJobRunner().run(query.build_job("plain"), grid)
        expected = sum(
            (min(i + 1, w, side - i + w // 2 - ((w // 2) - 0)) if False else 1)
            for i in range(1)
        )  # computed directly below instead
        total = 0
        half = w // 2
        for i in range(side):
            for j in range(side):
                ni = min(i + half, side - 1) - max(i - half, 0) + 1
                nj = min(j + half, side - 1) - max(j - half, 0) + 1
                total += ni * nj
        assert res.counters[C.MAP_OUTPUT_RECORDS] == total
