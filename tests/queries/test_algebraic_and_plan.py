"""Tests for algebraic window queries and the logical plan executor."""

import numpy as np
import pytest

from repro.mapreduce import LocalJobRunner
from repro.mapreduce.metrics import C
from repro.queries.plan import Binary, Source, Subset, Window, execute
from repro.queries.sliding_algebraic import SlidingAggregateQuery
from repro.scidata import Dataset, Slab, Variable, integer_grid


def numpy_window(data, window, fold):
    half = window // 2
    out = np.empty(data.shape, dtype=data.dtype if fold is not np.mean else float)
    for idx in np.ndindex(data.shape):
        slices = tuple(slice(max(0, i - half), min(n, i + half + 1))
                       for i, n in zip(idx, data.shape))
        out[idx] = fold(data[slices])
    return out


@pytest.fixture(scope="module")
def grid():
    return integer_grid((8, 8), seed=77, low=0, high=1000)


class TestSlidingAggregate:
    @pytest.mark.parametrize("op,npfold", [
        ("min", np.min), ("max", np.max), ("sum", np.sum)])
    def test_plain_matches_numpy(self, grid, op, npfold):
        query = SlidingAggregateQuery(grid, "values", op=op, window=3)
        result = LocalJobRunner().run(query.build_job("plain"), grid)
        truth = numpy_window(grid["values"].data, 3, npfold)
        assert len(result.output) == 64
        for key, value in result.output:
            assert value == truth[key.coords]

    @pytest.mark.parametrize("op", ["min", "max", "sum"])
    def test_aggregate_matches_plain(self, grid, op):
        query = SlidingAggregateQuery(grid, "values", op=op, window=3)
        plain = LocalJobRunner().run(
            query.build_job("plain", num_map_tasks=2), grid)
        agg = LocalJobRunner().run(
            query.build_job("aggregate", num_map_tasks=2, num_reducers=2), grid)
        pm = {k.coords: v for k, v in plain.output}
        am = {k.coords: v for k, v in agg.output}
        assert pm == am

    def test_combiner_used_and_harmless(self, grid):
        query = SlidingAggregateQuery(grid, "values", op="max", window=3)
        with_c = LocalJobRunner().run(
            query.build_job("plain", use_combiner=True, num_map_tasks=2), grid)
        without = LocalJobRunner().run(
            query.build_job("plain", use_combiner=False, num_map_tasks=2), grid)
        assert with_c.counters[C.COMBINE_INPUT_RECORDS] > 0
        assert with_c.materialized_bytes < without.materialized_bytes
        assert ({k.coords: v for k, v in with_c.output}
                == {k.coords: v for k, v in without.output})

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            SlidingAggregateQuery(grid, "values", op="median")
        with pytest.raises(ValueError):
            SlidingAggregateQuery(grid, "values", op="max").build_job("nope")


class TestPlanNodes:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            Window(Source("v"), op="argmax")

    def test_binary_validation(self):
        with pytest.raises(ValueError):
            Binary(Source("a"), Source("b"), op="xor")


class TestExecute:
    def test_source_passthrough_requires_known_variable(self, grid):
        with pytest.raises(KeyError):
            execute(Subset(Source("ghost"), Slab((0, 0), (2, 2))), grid)

    def test_subset_stage(self, grid):
        box = Slab((2, 2), (3, 4))
        out = execute(Subset(Source("values"), box), grid)
        assert out.extent == box
        assert (out.data == grid["values"].read(box)).all()

    @pytest.mark.parametrize("op,npfold", [
        ("median", np.median), ("mean", np.mean),
        ("min", np.min), ("max", np.max), ("sum", np.sum)])
    def test_window_stage(self, grid, op, npfold):
        out = execute(Window(Source("values"), op=op), grid)
        data = grid["values"].data
        half = 1
        for idx in [(0, 0), (3, 4), (7, 7)]:
            slices = tuple(slice(max(0, i - half), min(8, i + half + 1))
                           for i in idx)
            assert out.data[idx] == pytest.approx(npfold(data[slices]))

    def test_chained_subset_then_window(self, grid):
        box = Slab((1, 1), (5, 5))
        plan = Window(Subset(Source("values"), box), op="max")
        out = execute(plan, grid)
        assert out.extent == box
        # window applies to the *subset* extent: clipped at the box edge
        sub = grid["values"].read(box)
        assert out.data[0, 0] == sub[0:2, 0:2].max()

    def test_binary_of_two_windows(self, grid):
        plan = Binary(
            Window(Source("values"), op="max"),
            Window(Source("values"), op="min"),
            op="sub",
        )
        out = execute(plan, grid)  # windowed range = max - min
        data = grid["values"].data
        assert out.data[4, 4] == data[3:6, 3:6].max() - data[3:6, 3:6].min()
        assert (out.data >= 0).all()

    def test_binary_of_two_variables(self):
        ds = Dataset()
        rng = np.random.default_rng(0)
        ds.add(Variable("u", rng.integers(0, 9, (5, 5)).astype(np.int32)))
        ds.add(Variable("v", rng.integers(0, 9, (5, 5)).astype(np.int32)))
        out = execute(Binary(Source("u"), Source("v"), op="add"), ds)
        assert (out.data == ds["u"].data + ds["v"].data).all()

    def test_aggregate_mode_pipeline_matches_plain(self, grid):
        plan = Window(Subset(Source("values"), Slab((0, 0), (6, 6))),
                      op="median")
        plain = execute(plan, grid, mode="plain")
        agg = execute(plan, grid, mode="aggregate", num_map_tasks=2,
                      num_reducers=2)
        assert np.allclose(plain.data, agg.data)

    def test_unknown_node_type(self, grid):
        with pytest.raises(TypeError):
            execute(object(), grid)
