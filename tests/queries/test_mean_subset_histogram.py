"""Tests for the sliding-mean, subset, and histogram queries."""

import numpy as np
import pytest

from repro.mapreduce import LocalJobRunner
from repro.mapreduce.metrics import C
from repro.queries import BoxSubsetQuery, HistogramQuery, SlidingMeanQuery
from repro.queries.sliding_mean import SumCountSerde
from repro.scidata import Slab, integer_grid


def numpy_sliding_mean(data: np.ndarray, window: int) -> np.ndarray:
    half = window // 2
    out = np.empty(data.shape, dtype=float)
    for idx in np.ndindex(data.shape):
        slices = tuple(
            slice(max(0, i - half), min(n, i + half + 1))
            for i, n in zip(idx, data.shape)
        )
        out[idx] = np.mean(data[slices])
    return out


@pytest.fixture(scope="module")
def grid():
    return integer_grid((8, 8), seed=33, low=0, high=500)


class TestSumCountSerde:
    def test_roundtrip(self):
        s = SumCountSerde()
        assert s.from_bytes(s.to_bytes((3.5, 7))) == (3.5, 7)

    def test_size(self):
        assert len(SumCountSerde().to_bytes((0.0, 0))) == 12

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SumCountSerde().to_bytes((1.0, -1))


class TestSlidingMean:
    def test_plain_matches_numpy(self, grid):
        query = SlidingMeanQuery(grid, "values", window=3)
        result = LocalJobRunner().run(query.build_job("plain"), grid)
        truth = numpy_sliding_mean(grid["values"].data, 3)
        assert len(result.output) == 64
        for key, value in result.output:
            assert value == pytest.approx(truth[key.coords])

    def test_aggregate_matches_plain(self, grid):
        query = SlidingMeanQuery(grid, "values", window=3)
        plain = LocalJobRunner().run(query.build_job("plain"), grid)
        agg = LocalJobRunner().run(
            query.build_job("aggregate", num_map_tasks=2, num_reducers=2), grid)
        pm = {k.coords: v for k, v in plain.output}
        am = {k.coords: v for k, v in agg.output}
        assert set(pm) == set(am)
        for c in pm:
            assert pm[c] == pytest.approx(am[c])

    def test_combiner_shrinks_data(self, grid):
        query = SlidingMeanQuery(grid, "values", window=3)
        with_comb = LocalJobRunner().run(
            query.build_job("plain", use_combiner=True, num_map_tasks=2), grid)
        without = LocalJobRunner().run(
            query.build_job("plain", use_combiner=False, num_map_tasks=2), grid)
        assert with_comb.materialized_bytes < without.materialized_bytes
        assert with_comb.counters[C.COMBINE_INPUT_RECORDS] > 0
        # combiner must not change the answer
        wm = {k.coords: v for k, v in with_comb.output}
        wo = {k.coords: v for k, v in without.output}
        for c in wm:
            assert wm[c] == pytest.approx(wo[c])

    def test_bad_mode(self, grid):
        with pytest.raises(ValueError):
            SlidingMeanQuery(grid, "values").build_job("nope")


class TestBoxSubset:
    def test_plain_extracts_box(self, grid):
        box = Slab((2, 3), (4, 2))
        query = BoxSubsetQuery(grid, "values", box)
        result = LocalJobRunner().run(query.build_job("plain"), grid)
        data = grid["values"].data
        assert len(result.output) == 8
        for key, value in result.output:
            assert box.contains_point(key.coords)
            assert value == data[key.coords]

    def test_aggregate_matches_plain(self, grid):
        box = Slab((1, 1), (5, 5))
        query = BoxSubsetQuery(grid, "values", box)
        plain = LocalJobRunner().run(query.build_job("plain"), grid)
        agg = LocalJobRunner().run(
            query.build_job("aggregate", num_map_tasks=3, num_reducers=2), grid)
        assert ({(k.coords, v) for k, v in plain.output}
                == {(k.coords, v) for k, v in agg.output})

    def test_aggregate_shrinks_intermediate(self, grid):
        box = Slab((0, 0), (8, 8))
        query = BoxSubsetQuery(grid, "values", box)
        plain = LocalJobRunner().run(query.build_job("plain"), grid)
        agg = LocalJobRunner().run(query.build_job("aggregate"), grid)
        assert agg.materialized_bytes < plain.materialized_bytes / 2

    def test_disjoint_splits_emit_nothing(self, grid):
        box = Slab((0, 0), (2, 2))
        query = BoxSubsetQuery(grid, "values", box)
        result = LocalJobRunner().run(
            query.build_job("plain", num_map_tasks=4), grid)
        assert len(result.output) == 4

    def test_box_outside_extent_rejected(self, grid):
        with pytest.raises(ValueError):
            BoxSubsetQuery(grid, "values", Slab((5, 5), (10, 10)))


class TestHistogram:
    def test_counts_match_numpy(self, grid):
        query = HistogramQuery(grid, "values", bins=16)
        result = LocalJobRunner().run(
            query.build_job(num_map_tasks=4), grid)
        data = grid["values"].data
        truth, _ = np.histogram(data.ravel(), bins=16,
                                range=(query.lo, query.hi))
        got = dict(result.output)
        for b, count in enumerate(truth):
            assert got.get(b, 0) == count
        assert sum(got.values()) == data.size

    def test_combiner_path(self, grid):
        query = HistogramQuery(grid, "values", bins=8)
        with_comb = LocalJobRunner().run(
            query.build_job(num_map_tasks=4, use_combiner=True), grid)
        without = LocalJobRunner().run(
            query.build_job(num_map_tasks=4, use_combiner=False), grid)
        assert dict(with_comb.output) == dict(without.output)
        assert with_comb.materialized_bytes <= without.materialized_bytes

    def test_aggregate_mode_rejected(self, grid):
        with pytest.raises(ValueError):
            HistogramQuery(grid, "values").build_job("aggregate")

    def test_bins_validation(self, grid):
        with pytest.raises(ValueError):
            HistogramQuery(grid, "values", bins=0)
