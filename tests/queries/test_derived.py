"""Tests for the derived-variable (multi-variable) query."""

import numpy as np
import pytest

from repro.mapreduce import LocalJobRunner
from repro.queries import DerivedVariableQuery
from repro.scidata import Dataset, Variable, integer_grid


@pytest.fixture(scope="module")
def two_vars():
    rng = np.random.default_rng(3)
    ds = Dataset()
    ds.add(Variable("u", rng.integers(0, 100, (8, 8)).astype(np.int32)))
    ds.add(Variable("v", rng.integers(0, 100, (8, 8)).astype(np.int32)))
    return ds


class TestPlainMode:
    @pytest.mark.parametrize("op,npfunc", [
        ("add", np.add), ("sub", np.subtract), ("mul", np.multiply),
        ("max", np.maximum), ("hypot", np.hypot),
    ])
    def test_ops_match_numpy(self, two_vars, op, npfunc):
        query = DerivedVariableQuery(two_vars, "u", "v", op=op)
        result = LocalJobRunner().run(query.build_job("plain"), two_vars)
        truth = npfunc(two_vars["u"].data, two_vars["v"].data)
        assert len(result.output) == 64
        for key, value in result.output:
            assert key.variable == "derived"
            assert value == pytest.approx(truth[key.coords])

    def test_multi_mapper(self, two_vars):
        query = DerivedVariableQuery(two_vars, "u", "v", op="add")
        result = LocalJobRunner().run(
            query.build_job("plain", num_map_tasks=3, num_reducers=2), two_vars)
        truth = two_vars["u"].data + two_vars["v"].data
        assert len(result.output) == 64
        for key, value in result.output:
            assert value == truth[key.coords]


class TestAggregateMode:
    def test_matches_plain(self, two_vars):
        query = DerivedVariableQuery(two_vars, "u", "v", op="mul")
        plain = LocalJobRunner().run(query.build_job("plain"), two_vars)
        agg = LocalJobRunner().run(
            query.build_job("aggregate", num_map_tasks=2), two_vars)
        pm = {k.coords: v for k, v in plain.output}
        am = {k.coords: v for k, v in agg.output}
        assert pm == am

    def test_aggregation_shrinks_bytes(self, two_vars):
        query = DerivedVariableQuery(two_vars, "u", "v")
        plain = LocalJobRunner().run(query.build_job("plain"), two_vars)
        agg = LocalJobRunner().run(query.build_job("aggregate"), two_vars)
        assert agg.materialized_bytes < plain.materialized_bytes


class TestValidation:
    def test_unknown_variable(self, two_vars):
        with pytest.raises(KeyError):
            DerivedVariableQuery(two_vars, "u", "w")
        with pytest.raises(KeyError):
            DerivedVariableQuery(two_vars, "w", "v")

    def test_unknown_op(self, two_vars):
        with pytest.raises(ValueError):
            DerivedVariableQuery(two_vars, "u", "v", op="xor")

    def test_extent_mismatch(self):
        ds = Dataset()
        ds.add(Variable("a", np.zeros((4, 4), dtype=np.int32)))
        ds.add(Variable("b", np.zeros((5, 4), dtype=np.int32)))
        with pytest.raises(ValueError):
            DerivedVariableQuery(ds, "a", "b")

    def test_dtype_promotion(self, two_vars):
        query = DerivedVariableQuery(two_vars, "u", "v", op="hypot")
        assert query.out_dtype == np.dtype(np.float64)

    def test_bad_mode(self, two_vars):
        with pytest.raises(ValueError):
            DerivedVariableQuery(two_vars, "u", "v").build_job("bogus")
