"""Tests for the sliding-median query in both modes, against numpy truth."""

import numpy as np
import pytest

from repro.mapreduce import LocalJobRunner
from repro.mapreduce.metrics import C
from repro.queries import SlidingMedianQuery
from repro.scidata import integer_grid


def numpy_sliding_median(data: np.ndarray, window: int) -> np.ndarray:
    """Reference: median over the clipped window around each cell."""
    half = window // 2
    out = np.empty(data.shape, dtype=float)
    for idx in np.ndindex(data.shape):
        slices = tuple(
            slice(max(0, i - half), min(n, i + half + 1))
            for i, n in zip(idx, data.shape)
        )
        out[idx] = np.median(data[slices])
    return out


def run_query(grid, mode, **kwargs):
    query = SlidingMedianQuery(grid, "values", window=3)
    job = query.build_job(mode=mode, **kwargs)
    return LocalJobRunner().run(job, grid), query


@pytest.fixture(scope="module")
def grid():
    return integer_grid((9, 9), seed=21, low=0, high=1000)


class TestPlainMode:
    def test_matches_numpy(self, grid):
        result, query = run_query(grid, "plain")
        truth = numpy_sliding_median(grid["values"].data, 3)
        assert len(result.output) == query.expected_output_cells()
        for key, value in result.output:
            assert value == pytest.approx(truth[key.coords])

    def test_intermediate_blowup_is_windowish(self, grid):
        result, _ = run_query(grid, "plain")
        # 81 cells, 3x3 window clipped at edges: 625 emissions
        assert result.counters[C.MAP_OUTPUT_RECORDS] == 625

    def test_multi_mapper_multi_reducer(self, grid):
        result, query = run_query(grid, "plain", num_map_tasks=3, num_reducers=3)
        truth = numpy_sliding_median(grid["values"].data, 3)
        assert len(result.output) == query.expected_output_cells()
        for key, value in result.output:
            assert value == pytest.approx(truth[key.coords])

    def test_index_mode_keys_are_smaller(self, grid):
        by_name, _ = run_query(grid, "plain", variable_mode="name")
        by_index, _ = run_query(grid, "plain", variable_mode="index")
        assert (by_index.map_output_stats.key_bytes
                < by_name.map_output_stats.key_bytes)
        # same record count, same values
        assert (by_index.counters[C.MAP_OUTPUT_RECORDS]
                == by_name.counters[C.MAP_OUTPUT_RECORDS])


class TestAggregateMode:
    def test_matches_numpy(self, grid):
        result, query = run_query(grid, "aggregate")
        truth = numpy_sliding_median(grid["values"].data, 3)
        assert len(result.output) == query.expected_output_cells()
        for key, value in result.output:
            assert value == pytest.approx(truth[key.coords])

    def test_matches_plain_mode_exactly(self, grid):
        plain, _ = run_query(grid, "plain")
        agg, _ = run_query(grid, "aggregate")
        as_map = lambda out: {k.coords: v for k, v in out}
        assert as_map(plain.output) == as_map(agg.output)

    def test_shrinks_intermediate_data(self, grid):
        """The paper's §IV headline: aggregation shrinks materialized bytes."""
        plain, _ = run_query(grid, "plain")
        agg, _ = run_query(grid, "aggregate")
        assert agg.materialized_bytes < plain.materialized_bytes / 2

    def test_multi_mapper_multi_reducer(self, grid):
        result, query = run_query(grid, "aggregate", num_map_tasks=4,
                                  num_reducers=3)
        truth = numpy_sliding_median(grid["values"].data, 3)
        assert len(result.output) == query.expected_output_cells()
        for key, value in result.output:
            assert value == pytest.approx(truth[key.coords])

    def test_key_splits_happen_with_partitioning(self, grid):
        result, _ = run_query(grid, "aggregate", num_map_tasks=4, num_reducers=3)
        assert result.counters[C.KEY_SPLITS] > 0

    def test_hilbert_curve_also_correct(self, grid):
        result, query = run_query(
            grid, "aggregate", agg_overrides={"curve": "hilbert"})
        truth = numpy_sliding_median(grid["values"].data, 3)
        for key, value in result.output:
            assert value == pytest.approx(truth[key.coords])

    def test_alignment_mode_correct(self, grid):
        result, query = run_query(
            grid, "aggregate", num_map_tasks=3,
            agg_overrides={"alignment": 16})
        truth = numpy_sliding_median(grid["values"].data, 3)
        assert len(result.output) == query.expected_output_cells()
        for key, value in result.output:
            assert value == pytest.approx(truth[key.coords])

    def test_small_flush_buffer_correct(self, grid):
        result, query = run_query(
            grid, "aggregate", agg_overrides={"buffer_cells": 50})
        truth = numpy_sliding_median(grid["values"].data, 3)
        assert len(result.output) == query.expected_output_cells()
        for key, value in result.output:
            assert value == pytest.approx(truth[key.coords])


class TestValidation:
    def test_bad_mode(self, grid):
        with pytest.raises(ValueError):
            SlidingMedianQuery(grid, "values").build_job(mode="bogus")

    def test_even_window_rejected(self, grid):
        with pytest.raises(ValueError):
            SlidingMedianQuery(grid, "values", window=4)

    def test_unknown_variable(self, grid):
        with pytest.raises(KeyError):
            SlidingMedianQuery(grid, "nope")
