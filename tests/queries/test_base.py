"""Unit tests for shared query plumbing (window geometry, configs)."""

import numpy as np
import pytest

from repro.queries import SlidingMedianQuery, window_offsets, shifted_cells
from repro.queries.sliding_median import value_serde_for
from repro.scidata import Slab, integer_grid


class TestWindowOffsets:
    def test_3x3(self):
        offsets = window_offsets(2, 3)
        assert len(offsets) == 9
        assert (0, 0) in offsets
        assert (-1, -1) in offsets and (1, 1) in offsets

    def test_window_1_is_identity(self):
        assert window_offsets(3, 1) == [(0, 0, 0)]

    def test_5_wide_3d(self):
        assert len(window_offsets(3, 5)) == 125

    def test_even_or_negative_rejected(self):
        with pytest.raises(ValueError):
            window_offsets(2, 2)
        with pytest.raises(ValueError):
            window_offsets(2, 0)
        with pytest.raises(ValueError):
            window_offsets(2, -3)


class TestShiftedCells:
    def test_interior_shift_keeps_all(self):
        extent = Slab((0, 0), (10, 10))
        coords = np.array([[5, 5], [6, 6]])
        values = np.array([1, 2])
        out_c, out_v = shifted_cells(coords, values, (1, -1), extent)
        assert out_c.tolist() == [[6, 4], [7, 5]]
        assert out_v.tolist() == [1, 2]

    def test_boundary_clipping(self):
        extent = Slab((0, 0), (10, 10))
        coords = np.array([[0, 0], [9, 9], [5, 5]])
        values = np.array([1, 2, 3])
        out_c, out_v = shifted_cells(coords, values, (-1, 0), extent)
        # (0,0) falls off the top edge
        assert out_v.tolist() == [2, 3]

    def test_negative_extent_corner(self):
        extent = Slab((-5, -5), (10, 10))
        coords = np.array([[-5, -5]])
        values = np.array([7])
        out_c, out_v = shifted_cells(coords, values, (-1, 0), extent)
        assert out_v.size == 0  # clipped at the negative corner too

    def test_zero_offset_identity(self):
        extent = Slab((0, 0), (4, 4))
        coords = np.array([[1, 2]])
        values = np.array([9])
        out_c, out_v = shifted_cells(coords, values, (0, 0), extent)
        assert out_c.tolist() == [[1, 2]]


class TestValueSerdeFor:
    @pytest.mark.parametrize("dtype,size", [
        ("int32", 4), ("int64", 8), ("float32", 4), ("float64", 8)])
    def test_supported(self, dtype, size):
        serde = value_serde_for(np.dtype(dtype))
        assert serde.SIZE == size

    def test_unsupported(self):
        with pytest.raises(TypeError):
            value_serde_for(np.dtype("uint8"))


class TestAggregationConfigSizing:
    def test_curve_covers_grid(self):
        grid = integer_grid((100, 37), seed=1)
        query = SlidingMedianQuery(grid, "values")
        cfg = query.aggregation_config()
        assert cfg.make_curve().side >= 100
        assert cfg.ndim == 2
        assert cfg.dtype == "int32"

    def test_overrides(self):
        grid = integer_grid((8, 8), seed=1)
        query = SlidingMedianQuery(grid, "values")
        cfg = query.aggregation_config(curve="hilbert", buffer_cells=10)
        assert cfg.curve == "hilbert"
        assert cfg.buffer_cells == 10
