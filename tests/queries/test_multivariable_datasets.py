"""Regression tests: single-variable queries over multi-variable datasets.

The query-pipeline example exposed a bug where the default splitter
handed a query every variable's slabs, duplicating (or corrupting)
output.  These tests pin the fix (Job.input_variables).
"""

import numpy as np
import pytest

from repro.mapreduce import LocalJobRunner
from repro.queries import (
    BoxSubsetQuery,
    HistogramQuery,
    SlidingAggregateQuery,
    SlidingMedianQuery,
)
from repro.scidata import ArraySplitter, Dataset, Slab, Variable


@pytest.fixture(scope="module")
def multi():
    rng = np.random.default_rng(6)
    ds = Dataset()
    ds.add(Variable("a", rng.integers(0, 100, (6, 6)).astype(np.int32)))
    ds.add(Variable("b", rng.integers(500, 600, (6, 6)).astype(np.int32)))
    return ds


def test_subset_only_sees_its_variable(multi):
    box = Slab((0, 0), (6, 6))
    query = BoxSubsetQuery(multi, "a", box)
    result = LocalJobRunner().run(
        query.build_job("plain", num_map_tasks=2), multi)
    assert len(result.output) == 36  # not 72
    data = multi["a"].data
    for key, value in result.output:
        assert key.variable == "a"
        assert value == data[key.coords]
        assert value < 500  # never a value from variable b


def test_sliding_median_only_sees_its_variable(multi):
    query = SlidingMedianQuery(multi, "b", window=3)
    result = LocalJobRunner().run(
        query.build_job("plain", num_map_tasks=2), multi)
    assert len(result.output) == 36
    for key, value in result.output:
        assert value >= 500  # medians of b values only


def test_sliding_aggregate_only_sees_its_variable(multi):
    query = SlidingAggregateQuery(multi, "a", op="max")
    result = LocalJobRunner().run(query.build_job("plain"), multi)
    assert len(result.output) == 36
    assert all(v < 500 for _, v in result.output)


def test_histogram_only_counts_its_variable(multi):
    query = HistogramQuery(multi, "a", bins=4)
    result = LocalJobRunner().run(query.build_job(num_map_tasks=2), multi)
    assert sum(v for _, v in result.output) == 36


def test_aggregate_mode_multi_variable(multi):
    query = SlidingMedianQuery(multi, "a", window=3)
    plain = LocalJobRunner().run(
        query.build_job("plain", num_map_tasks=2), multi)
    agg = LocalJobRunner().run(
        query.build_job("aggregate", num_map_tasks=2), multi)
    assert ({k.coords: v for k, v in plain.output}
            == {k.coords: v for k, v in agg.output})


class TestSplitterVariableSelection:
    def test_selected_variable_only(self, multi):
        splits = ArraySplitter(2).split(multi, ["b"])
        assert len(splits) == 2
        assert all(s.variable == "b" for s in splits)

    def test_default_is_all(self, multi):
        splits = ArraySplitter(2).split(multi)
        assert {s.variable for s in splits} == {"a", "b"}

    def test_unknown_variable_rejected(self, multi):
        with pytest.raises(KeyError):
            ArraySplitter(2).split(multi, ["ghost"])
