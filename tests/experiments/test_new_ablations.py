"""Tests for the A6/A7/A8 harnesses and the E2 SequenceFile variant."""

import pytest

from repro.experiments.density import run as density_run
from repro.experiments.fig2_stream import run_seqfile
from repro.experiments.key_splitting import run as splitting_run
from repro.experiments.locality import run as locality_run


class TestKeySplitting:
    def test_stages_and_consistency(self):
        result = splitting_run(side=24, num_map_tasks=4, num_reducers=2)
        rows = {r["stage"]: r for r in result.rows}
        assert set(rows) == {"mapper_keys", "after_routing",
                             "after_overlap_split", "reduce_stream_keys",
                             "reduce_groups"}
        # without re-aggregation the reduce stream is the split stream
        assert (rows["reduce_stream_keys"]["without_reagg"]
                == rows["after_overlap_split"]["without_reagg"])
        # re-aggregation can only shrink the stream
        assert (rows["reduce_stream_keys"]["with_reagg"]
                <= rows["after_overlap_split"]["with_reagg"])


class TestLocality:
    def test_table_shape(self):
        result = locality_run(input_gb=1.0, replications=[1, 3])
        assert len(result.rows) == 4
        for row in result.rows:
            assert 0.0 <= row["data_local_pct"] <= 100.0
            assert row["map_makespan_s"] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            locality_run(input_gb=0)


class TestDensity:
    def test_dense_beats_sparse(self):
        result = density_run(side=32, densities=[1.0, 0.01])
        wins = result.column("agg_win_pct")
        assert wins[0] > wins[1]

    def test_full_density_single_range(self):
        result = density_run(side=16, densities=[1.0])
        assert result.rows[0]["ranges"] == 1


class TestSeqfileFig2:
    def test_stride_47(self):
        result = run_seqfile(side=10)
        assert set(result.column("stride")) == {47}
