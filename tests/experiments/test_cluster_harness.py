"""Tests for the cluster harness internals (parity model, config sweep)."""

import pytest

from repro.experiments.cluster_runs import (
    CONFIGS,
    GZIP_BW,
    TRANSFORM_RATIO,
    native_parity_profiles,
    run,
)
from repro.mapreduce.engine import LocalJobRunner
from repro.queries.sliding_median import SlidingMedianQuery
from repro.scidata import integer_grid


@pytest.fixture(scope="module")
def small_result():
    grid = integer_grid((12, 12), seed=3)
    query = SlidingMedianQuery(grid, "values", window=3)
    job = query.build_job("plain", codec="zlib", num_map_tasks=2,
                          num_reducers=2)
    return LocalJobRunner().run(job, grid)


class TestNativeParity:
    def test_preserves_byte_counts(self, small_result):
        parity = native_parity_profiles(small_result, "zlib")
        for orig, new in zip(small_result.task_profiles, parity):
            assert new.shuffle_bytes == orig.shuffle_bytes
            assert new.local_write_bytes == orig.local_write_bytes
            assert new.task_id == orig.task_id

    def test_zlib_gets_codec_category_only(self, small_result):
        parity = native_parity_profiles(small_result, "zlib")
        for p in parity:
            assert set(p.cpu_seconds) == {"function", "codec"}

    def test_stride_gets_transform_at_paper_ratio(self, small_result):
        parity = native_parity_profiles(small_result, "stride+zlib")
        for p in parity:
            assert set(p.cpu_seconds) == {"function", "codec", "transform"}
            if p.cpu_seconds["codec"] > 0:
                assert p.cpu_seconds["transform"] == pytest.approx(
                    TRANSFORM_RATIO * p.cpu_seconds["codec"])

    def test_null_codec_has_no_codec_cost(self, small_result):
        parity = native_parity_profiles(small_result, "null")
        for p in parity:
            assert set(p.cpu_seconds) == {"function"}

    def test_costs_scale_with_bytes(self, small_result):
        parity = native_parity_profiles(small_result, "zlib")
        maps = [p for p in parity if p.kind == "map"]
        for p in maps:
            stats = small_result.map_output_stats
            expansion = stats.raw_bytes / stats.materialized_bytes
            assert p.cpu_seconds["codec"] == pytest.approx(
                p.local_write_bytes * expansion / GZIP_BW)


class TestRunHarness:
    def test_small_run_table(self):
        result = run(side=16)
        assert len(result.rows) == len(CONFIGS)
        baseline = result.rows[0]
        assert baseline["delta_bytes_pct"] == 0.0
        # aggregation always shrinks bytes, even at toy scale
        agg = result.row_by("config", "key aggregation (E8)")
        assert agg["delta_bytes_pct"] < 0.0
