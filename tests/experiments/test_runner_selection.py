"""Runner selection: REPRO_RUNNER / REPRO_WORKERS and the CLI flags."""

import pytest

from repro.cli import main
from repro.experiments.common import make_runner
from repro.mapreduce import LocalJobRunner, ParallelJobRunner


class TestMakeRunner:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNNER", raising=False)
        assert isinstance(make_runner(), LocalJobRunner)

    def test_serial_aliases(self, monkeypatch):
        for name in ["serial", "local", "SERIAL"]:
            monkeypatch.setenv("REPRO_RUNNER", name)
            assert isinstance(make_runner(), LocalJobRunner)

    def test_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER", "parallel")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        runner = make_runner()
        assert isinstance(runner, ParallelJobRunner)
        assert runner.max_workers == 3
        runner.close()

    def test_bad_runner_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER", "quantum")
        with pytest.raises(ValueError, match="REPRO_RUNNER"):
            make_runner()

    def test_bad_worker_count_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER", "parallel")
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            make_runner()


class TestCliFlags:
    def test_runner_flag_sets_env(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_RUNNER", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setenv("REPRO_SCALE", "0.12")
        import os

        assert main(["run", "E1", "--runner", "parallel", "--workers", "2"]) == 0
        assert os.environ["REPRO_RUNNER"] == "parallel"
        assert os.environ["REPRO_WORKERS"] == "2"
        assert "E1" in capsys.readouterr().out

    def test_bad_workers_flag(self, monkeypatch):
        with pytest.raises(SystemExit):
            main(["run", "E1", "--workers", "0"])
