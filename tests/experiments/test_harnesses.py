"""Tests for the experiment harnesses (small sizes; benches run larger)."""

import numpy as np
import pytest

from repro.experiments.common import (
    ExperimentResult,
    fmt_bytes,
    get_scale,
    pct,
    scaled,
)
from repro.experiments.e1_motivation import run as e1_run
from repro.experiments.fig2_stream import hexdump, key_stream, run as e2_run
from repro.experiments.fig3_table import run as e3_run, run_stride_choice
from repro.experiments.fig4_scaling import fit_linearity, run as e4_run
from repro.experiments.fig8_aggregation import run as e7_run
from repro.experiments.figures_5_6_7 import run_fig5, run_fig6, run_fig7


class TestCommon:
    def test_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale(0.5) == 0.5
        monkeypatch.setenv("REPRO_SCALE", "1.0")
        assert get_scale(0.5) == 1.0
        assert scaled(100, 0.5) == 100
        monkeypatch.setenv("REPRO_SCALE", "abc")
        with pytest.raises(ValueError):
            get_scale(0.5)
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            get_scale(0.5)

    def test_scaled_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        assert scaled(100, 1.0, minimum=5) == 5

    def test_fmt_bytes(self):
        assert fmt_bytes(10) == "10 B"
        assert fmt_bytes(2048) == "2.00 KiB"
        assert "MiB" in fmt_bytes(5 << 20)

    def test_pct(self):
        assert pct(50, 100) == -50.0
        with pytest.raises(ValueError):
            pct(1, 0)

    def test_result_table(self):
        r = ExperimentResult("X", "title", ["a", "b"])
        r.add(a=1, b="x")
        r.note("hello")
        text = r.format_table()
        assert "X" in text and "hello" in text and "1" in text
        assert r.column("a") == [1]
        assert r.row_by("b", "x")["a"] == 1
        with pytest.raises(KeyError):
            r.column("c")
        with pytest.raises(KeyError):
            r.row_by("a", 99)
        with pytest.raises(ValueError):
            r.add(a=1)  # missing column


class TestE1:
    def test_small_grid_constants(self):
        result = e1_run(side=10)
        index_row = result.row_by("variable_as", "index")
        assert index_row["file_bytes"] == 26 * 1000 + 6
        name_row = result.row_by("variable_as", "name")
        assert name_row["file_bytes"] == 33 * 1000 + 6
        assert name_row["key_value_ratio"] == 6.75

    def test_validation(self):
        with pytest.raises(ValueError):
            e1_run(side=0)


class TestE2:
    def test_key_stream_record_pitch(self):
        data = key_stream(side=4)
        assert len(data) == 64 * 33  # 33 bytes per framed record

    def test_hexdump(self):
        lines = hexdump(b"windspeed1\x00\xff", rows=1, width=12)
        assert "windspeed1" in lines[0]
        assert "ff" in lines[0]

    def test_run_finds_pitch(self):
        result = e2_run(side=8)
        assert any(s % 33 == 0 for s in result.column("stride"))


class TestE3:
    def test_small_run_shape(self):
        result = e3_run(side=12)
        methods = result.column("method")
        assert methods[0] == "original"
        tg = result.row_by("method", "transform+gzip")["file_bytes"]
        g = result.row_by("method", "gzip")["file_bytes"]
        assert tg < g

    def test_stride_choice_rows(self):
        result = run_stride_choice(side=10)
        assert len(result.rows) == 3
        assert all(r["bz2_bytes"] > 0 for r in result.rows)


class TestE4:
    def test_fit_linearity(self):
        slope, intercept, r2 = fit_linearity(
            [10, 20, 30, 40], [1.0, 2.0, 3.0, 4.0])
        assert slope == pytest.approx(0.1)
        assert r2 == pytest.approx(1.0)
        with pytest.raises(ValueError):
            fit_linearity([1, 2], [1.0, 2.0])

    def test_small_run(self):
        result = e4_run(sides=[6, 8, 10], max_stride=20)
        assert len(result.rows) == 3
        assert result.notes

    def test_validation(self):
        with pytest.raises(ValueError):
            e4_run(sides=[6, 8, 10], repeats=0)


class TestE7:
    def test_reduction_direction(self):
        result = e7_run(side=16)
        plain = result.row_by("mode", "plain")
        agg = result.row_by("mode", "aggregate")
        assert agg["records"] < plain["records"]


class TestFigures:
    def test_fig5(self):
        counts = run_fig5().column("aggregate_keys")
        assert counts[0] != counts[1]

    def test_fig6(self):
        assert run_fig6().column("rendered") == ["1-2", "7", "9-10", "13"]

    def test_fig7(self):
        result = run_fig7()
        assert len(result.rows) == 4
