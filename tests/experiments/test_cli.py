"""Tests for the experiment CLI."""

import os

import pytest

from repro.cli import experiment_ids, main


class TestList:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in experiment_ids():
            assert exp_id in out

    def test_known_ids_present(self):
        ids = experiment_ids()
        for expected in ["E1", "E3", "E7", "A1", "A6", "A8", "F6"]:
            assert expected in ids


class TestRun:
    def test_run_fast_experiment(self, capsys):
        assert main(["run", "F6"]) == 0
        out = capsys.readouterr().out
        assert "1-2, 7, 9-10, 13" in out

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "f5"]) == 0
        assert "ambiguity" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "Z9"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_scale_flag_sets_env(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert main(["run", "F7", "--scale", "0.5"]) == 0
        assert os.environ.get("REPRO_SCALE") == "0.5"

    def test_negative_scale_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "F7", "--scale", "-1"])

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_r4_registered(self):
        assert "R4" in experiment_ids()


class TestCodecs:
    def test_codecs_lists_registry_with_cost_categories(self, capsys):
        from repro.mapreduce.codecs import available_codecs

        assert main(["codecs"]) == 0
        out = capsys.readouterr().out
        for name in available_codecs():
            assert name in out
        # Plain codecs report only generic codec cost; the §III stride
        # transforms split out their transform pass.
        lines = {ln.split()[0]: ln for ln in out.splitlines()}
        assert "cost: codec" in lines["zlib"]
        assert "cost: transform+codec" in lines["fastpred+zlib"]


class TestNetworkFlags:
    def test_network_transport_sets_env(self, monkeypatch):
        for var in ("REPRO_TRANSPORT", "REPRO_WIRE_CODEC",
                    "REPRO_SHUFFLE_PORT_BASE"):
            monkeypatch.delenv(var, raising=False)
        assert main(["run", "F7", "--transport", "network",
                     "--wire-codec", "fastpred+zlib",
                     "--shuffle-port-base", "28100"]) == 0
        assert os.environ.get("REPRO_TRANSPORT") == "network"
        assert os.environ.get("REPRO_WIRE_CODEC") == "fastpred+zlib"
        assert os.environ.get("REPRO_SHUFFLE_PORT_BASE") == "28100"

    def test_wire_codec_requires_network_transport(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        with pytest.raises(SystemExit):
            main(["run", "F7", "--wire-codec", "zlib"])
        with pytest.raises(SystemExit):
            main(["run", "F7", "--transport", "channel",
                  "--wire-codec", "zlib"])

    def test_unknown_wire_codec_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        with pytest.raises(SystemExit):
            main(["run", "F7", "--transport", "network",
                  "--wire-codec", "martian"])

    def test_port_base_range_checked(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        with pytest.raises(SystemExit):
            main(["run", "F7", "--transport", "network",
                  "--shuffle-port-base", "80"])
