"""Tests for the experiment CLI."""

import os

import pytest

from repro.cli import experiment_ids, main


class TestList:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in experiment_ids():
            assert exp_id in out

    def test_known_ids_present(self):
        ids = experiment_ids()
        for expected in ["E1", "E3", "E7", "A1", "A6", "A8", "F6"]:
            assert expected in ids


class TestRun:
    def test_run_fast_experiment(self, capsys):
        assert main(["run", "F6"]) == 0
        out = capsys.readouterr().out
        assert "1-2, 7, 9-10, 13" in out

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "f5"]) == 0
        assert "ambiguity" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "Z9"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_scale_flag_sets_env(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert main(["run", "F7", "--scale", "0.5"]) == 0
        assert os.environ.get("REPRO_SCALE") == "0.5"

    def test_negative_scale_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "F7", "--scale", "-1"])

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
