"""Tests for the experiment CLI."""

import os

import pytest

from repro.cli import experiment_ids, main


class TestList:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in experiment_ids():
            assert exp_id in out

    def test_known_ids_present(self):
        ids = experiment_ids()
        for expected in ["E1", "E3", "E7", "A1", "A6", "A8", "F6"]:
            assert expected in ids


class TestRun:
    def test_run_fast_experiment(self, capsys):
        assert main(["run", "F6"]) == 0
        out = capsys.readouterr().out
        assert "1-2, 7, 9-10, 13" in out

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "f5"]) == 0
        assert "ambiguity" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "Z9"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_scale_flag_sets_env(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert main(["run", "F7", "--scale", "0.5"]) == 0
        assert os.environ.get("REPRO_SCALE") == "0.5"

    def test_negative_scale_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "F7", "--scale", "-1"])

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_r4_registered(self):
        assert "R4" in experiment_ids()


class TestCodecs:
    def test_codecs_lists_registry_with_cost_categories(self, capsys):
        from repro.mapreduce.codecs import available_codecs

        assert main(["codecs"]) == 0
        out = capsys.readouterr().out
        for name in available_codecs():
            assert name in out
        # Plain codecs report only generic codec cost; the §III stride
        # transforms split out their transform pass.
        lines = {ln.split()[0]: ln for ln in out.splitlines()}
        assert "cost: codec" in lines["zlib"]
        assert "cost: transform+codec" in lines["fastpred+zlib"]


class TestNetworkFlags:
    def test_network_transport_sets_env(self, monkeypatch):
        for var in ("REPRO_TRANSPORT", "REPRO_WIRE_CODEC",
                    "REPRO_SHUFFLE_PORT_BASE"):
            monkeypatch.delenv(var, raising=False)
        assert main(["run", "F7", "--transport", "network",
                     "--wire-codec", "fastpred+zlib",
                     "--shuffle-port-base", "28100"]) == 0
        assert os.environ.get("REPRO_TRANSPORT") == "network"
        assert os.environ.get("REPRO_WIRE_CODEC") == "fastpred+zlib"
        assert os.environ.get("REPRO_SHUFFLE_PORT_BASE") == "28100"

    def test_wire_codec_requires_network_transport(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        with pytest.raises(SystemExit):
            main(["run", "F7", "--wire-codec", "zlib"])
        with pytest.raises(SystemExit):
            main(["run", "F7", "--transport", "channel",
                  "--wire-codec", "zlib"])

    def test_unknown_wire_codec_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        with pytest.raises(SystemExit):
            main(["run", "F7", "--transport", "network",
                  "--wire-codec", "martian"])

    def test_port_base_range_checked(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        with pytest.raises(SystemExit):
            main(["run", "F7", "--transport", "network",
                  "--shuffle-port-base", "80"])


class TestPipelineFlags:
    @pytest.fixture(autouse=True)
    def _clean(self):
        # main() writes the flags into os.environ; scrub before AND
        # after so these tests neither see nor leak pipeline state.
        names = ("REPRO_PIPELINE", "REPRO_STARVATION_THRESHOLD")
        saved = {n: os.environ.pop(n, None) for n in names}
        yield
        for n in names:
            os.environ.pop(n, None)
            if saved[n] is not None:
                os.environ[n] = saved[n]

    def test_p3_registered(self):
        assert "P3" in experiment_ids()

    def test_pipeline_flag_round_trips(self):
        assert main(["run", "F7", "--pipeline"]) == 0
        assert os.environ.get("REPRO_PIPELINE") == "1"

    def test_no_pipeline_flag_round_trips(self):
        assert main(["run", "F7", "--no-pipeline"]) == 0
        assert os.environ.get("REPRO_PIPELINE") == "0"

    def test_starvation_threshold_round_trips(self):
        assert main(["run", "F7", "--pipeline",
                     "--starvation-threshold", "3"]) == 0
        assert os.environ.get("REPRO_STARVATION_THRESHOLD") == "3"

    def test_starvation_threshold_requires_pipeline(self):
        with pytest.raises(SystemExit):
            main(["run", "F7", "--starvation-threshold", "2"])
        with pytest.raises(SystemExit):
            main(["run", "F7", "--no-pipeline",
                  "--starvation-threshold", "2"])

    def test_env_pipeline_satisfies_threshold_flag(self, monkeypatch):
        # REPRO_PIPELINE=1 already on: the threshold flag is meaningful.
        monkeypatch.setenv("REPRO_PIPELINE", "1")
        assert main(["run", "F7", "--starvation-threshold", "3"]) == 0
        assert os.environ.get("REPRO_STARVATION_THRESHOLD") == "3"

    def test_starvation_threshold_range_checked(self):
        with pytest.raises(SystemExit):
            main(["run", "F7", "--pipeline", "--starvation-threshold", "0"])


class TestTune:
    def test_tune_smoke(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert main(["tune", "--scale", "0.1",
                     "--num-maps", "4", "--num-reducers", "2"]) == 0
        out = capsys.readouterr().out
        # The recommendation table and the validated error band.
        for needle in ("num_reducers", "wave_size", "sort_buffer_bytes",
                       "predicted wall-clock", "model error"):
            assert needle in out

    @pytest.mark.parametrize("flags", [
        ["--scale", "-1"], ["--nodes", "0"],
        ["--num-maps", "0"], ["--num-reducers", "0"],
    ])
    def test_tune_flag_ranges_checked(self, flags):
        with pytest.raises(SystemExit):
            main(["tune"] + flags)
