"""Tests for the A9 (multi-variable) and A10 (levers) harnesses."""

import pytest

from repro.experiments.levers import run as levers_run
from repro.experiments.multivar import run as multivar_run, two_variable_stream


class TestMultivar:
    def test_stream_pitches(self):
        data, pitch_a, pitch_b = two_variable_stream(side=4)
        assert pitch_a == 33  # windspeed1 key stream
        assert pitch_b == 25  # t2 key stream (shorter variable name)
        assert len(data) == 64 * (33 + 25)

    def test_regimes_present_and_ordered(self):
        result = multivar_run(side=8)
        get = lambda r: result.row_by("regime", r)["gzip_bytes"]
        plain = get("no transform (gzip only)")
        first = get("first variable's metadata stride only")
        both = get("both variables' metadata strides")
        assert both < first < plain


class TestLevers:
    def test_table_shape(self):
        result = levers_run(side=16)
        queries = {r["query"] for r in result.rows}
        assert queries == {"mean (algebraic)", "median (holistic)"}
        assert len(result.rows) == 5

    def test_answers_verified_internally(self):
        # run() raises if any lever changes a query's answers; reaching
        # here is the assertion
        levers_run(side=12)
