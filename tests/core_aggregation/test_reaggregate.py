"""Tests for reducer-side re-aggregation (§IV-B future work)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import ValueBlock, split_overlaps
from repro.core.aggregation.reaggregate import concat_blocks, merge_adjacent_groups
from repro.mapreduce.keys import RangeKey


def dense(count, base=0):
    return ValueBlock(count, np.arange(base, base + count))


class TestConcatBlocks:
    def test_dense(self):
        out = concat_blocks(dense(2), dense(3, 10))
        assert out.count == 5
        assert (out.values == [0, 1, 10, 11, 12]).all()
        assert out.is_dense()

    def test_masked(self):
        a = ValueBlock(3, np.array([7]), np.array([False, True, False]))
        out = concat_blocks(a, dense(2, 50))
        assert out.count == 5
        assert (out.values == [7, 50, 51]).all()
        assert (out.dense_mask() == [0, 1, 0, 1, 1]).all()


class TestMergeAdjacentGroups:
    def test_adjacent_equal_depth_groups_fuse(self):
        pairs = [
            (RangeKey("v", 0, 5), dense(5)),
            (RangeKey("v", 0, 5), dense(5, 100)),
            (RangeKey("v", 5, 3), dense(3, 50)),
            (RangeKey("v", 5, 3), dense(3, 150)),
        ]
        out = merge_adjacent_groups(pairs)
        assert [(k.start, k.count) for k, _ in out] == [(0, 8), (0, 8)]
        assert (out[0][1].values == list(range(5)) + [50, 51, 52]).all()
        assert (out[1][1].values
                == list(range(100, 105)) + [150, 151, 152]).all()

    def test_depth_mismatch_blocks_merge(self):
        pairs = [
            (RangeKey("v", 0, 5), dense(5)),
            (RangeKey("v", 5, 3), dense(3)),
            (RangeKey("v", 5, 3), dense(3)),
        ]
        out = merge_adjacent_groups(pairs)
        assert [(k.start, k.count) for k, _ in out] == [(0, 5), (5, 3), (5, 3)]

    def test_gap_blocks_merge(self):
        pairs = [
            (RangeKey("v", 0, 5), dense(5)),
            (RangeKey("v", 6, 3), dense(3)),
        ]
        out = merge_adjacent_groups(pairs)
        assert len(out) == 2

    def test_variable_boundary_blocks_merge(self):
        pairs = [
            (RangeKey("a", 0, 5), dense(5)),
            (RangeKey("b", 5, 3), dense(3)),
        ]
        out = merge_adjacent_groups(pairs)
        assert len(out) == 2

    def test_chain_merge(self):
        pairs = [(RangeKey("v", i * 4, 4), dense(4, i * 100)) for i in range(5)]
        out = merge_adjacent_groups(pairs)
        assert len(out) == 1
        assert out[0][0] == RangeKey("v", 0, 20)

    def test_empty(self):
        assert merge_adjacent_groups([]) == []

    def test_after_overlap_split_per_cell_values_preserved(self):
        """End-to-end invariant: split then re-aggregate preserves every
        cell's value multiset."""
        pairs = [
            (RangeKey("v", 0, 10), dense(10)),
            (RangeKey("v", 5, 10), dense(10, 100)),
            (RangeKey("v", 15, 5), dense(5, 200)),
        ]

        def cell_values(ps):
            cells = {}
            for k, b in ps:
                mask = b.dense_mask()
                vi = 0
                for off in range(k.count):
                    if mask[off]:
                        cells.setdefault(k.start + off, []).append(
                            int(b.values[vi]))
                        vi += 1
            return {c: sorted(v) for c, v in cells.items()}

        split = split_overlaps(pairs)
        merged = merge_adjacent_groups(split)
        assert cell_values(merged) == cell_values(pairs)
        assert len(merged) <= len(split)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 8)),
                    min_size=1, max_size=8))
    def test_property_split_then_merge_preserves_cells(self, spans):
        pairs = [(RangeKey("v", s, c), dense(c, i * 1000))
                 for i, (s, c) in enumerate(spans)]

        def cells(ps):
            acc = []
            for k, b in ps:
                mask = b.dense_mask()
                vi = 0
                for off in range(k.count):
                    if mask[off]:
                        acc.append((k.start + off, int(b.values[vi])))
                        vi += 1
            return sorted(acc)

        split = split_overlaps(pairs)
        merged = merge_adjacent_groups(split)
        assert cells(merged) == cells(pairs)
        # groups in the merged stream remain adjacent-equal-key runs
        keys = [k for k, _ in merged]
        for i in range(1, len(keys)):
            a, b = keys[i - 1], keys[i]
            assert a == b or not a.overlaps(b)
