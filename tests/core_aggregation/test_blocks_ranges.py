"""Tests for value blocks and range coalescing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import (
    BlockSerde,
    ValueBlock,
    coalesce_indices,
    layered_runs,
)


class TestValueBlock:
    def test_dense_construction(self):
        b = ValueBlock(3, np.array([1, 2, 3]))
        assert b.is_dense()
        assert b.valid_cells == 3

    def test_masked_construction(self):
        b = ValueBlock(4, np.array([7, 9]), np.array([True, False, False, True]))
        assert not b.is_dense()
        assert b.valid_cells == 2

    def test_full_mask_canonicalizes_to_dense(self):
        b = ValueBlock(2, np.array([1, 2]), np.array([True, True]))
        assert b.is_dense()

    def test_validation(self):
        with pytest.raises(ValueError):
            ValueBlock(0, np.array([]))
        with pytest.raises(ValueError):
            ValueBlock(2, np.array([1]))  # dense count mismatch
        with pytest.raises(ValueError):
            ValueBlock(2, np.array([1]), np.array([True, True]))  # mask/values
        with pytest.raises(ValueError):
            ValueBlock(3, np.array([1]), np.array([True, False]))  # mask length

    def test_slice_dense(self):
        b = ValueBlock(5, np.arange(5))
        s = b.slice(1, 4)
        assert s.count == 3
        assert (s.values == [1, 2, 3]).all()

    def test_slice_masked(self):
        mask = np.array([True, False, True, True, False])
        b = ValueBlock(5, np.array([10, 20, 30]), mask)
        s = b.slice(1, 4)  # covers cells 1,2,3 -> valid values 20, 30
        assert s.count == 3
        assert (s.values == [20, 30]).all()
        assert (s.dense_mask() == [False, True, True]).all()

    def test_slice_validation(self):
        b = ValueBlock(3, np.arange(3))
        with pytest.raises(ValueError):
            b.slice(2, 2)
        with pytest.raises(ValueError):
            b.slice(-1, 2)
        with pytest.raises(ValueError):
            b.slice(0, 4)

    def test_expand(self):
        b = ValueBlock(2, np.array([5, 6]))
        e = b.expand(1, 2)
        assert e.count == 5
        assert (e.dense_mask() == [False, True, True, False, False]).all()
        assert (e.values == [5, 6]).all()
        assert b.expand(0, 0) is b

    def test_expand_validation(self):
        with pytest.raises(ValueError):
            ValueBlock(1, np.array([1])).expand(-1, 0)

    def test_equality(self):
        a = ValueBlock(2, np.array([1, 2]))
        b = ValueBlock(2, np.array([1, 2]))
        c = ValueBlock(2, np.array([1], dtype=np.int64), np.array([True, False]))
        assert a == b
        assert a != c
        assert a != "nope"


class TestBlockSerde:
    def test_dense_roundtrip(self):
        s = BlockSerde(np.int32)
        b = ValueBlock(4, np.array([1, -2, 3, 4], dtype=np.int32))
        assert s.from_bytes(s.to_bytes(b)) == b

    def test_masked_roundtrip(self):
        s = BlockSerde(np.int32)
        b = ValueBlock(10, np.arange(4, dtype=np.int32),
                       np.array([1, 0, 0, 1, 0, 1, 0, 0, 0, 1], dtype=bool))
        out = s.from_bytes(s.to_bytes(b))
        assert out == b

    def test_dense_wire_size(self):
        s = BlockSerde(np.int32)
        b = ValueBlock(100, np.zeros(100, dtype=np.int32))
        # flag + vint(100) + 400 value bytes: zero per-value overhead
        assert len(s.to_bytes(b)) == 1 + 1 + 400

    def test_masked_wire_size(self):
        s = BlockSerde(np.int32)
        b = ValueBlock(16, np.zeros(4, dtype=np.int32),
                       np.array([True] * 4 + [False] * 12))
        assert len(s.to_bytes(b)) == 1 + 1 + 2 + 16  # flag, vint, bitmap, values

    def test_corrupt_flag(self):
        s = BlockSerde(np.int32)
        blob = bytearray(s.to_bytes(ValueBlock(1, np.array([1], dtype=np.int32))))
        blob[0] = 9
        with pytest.raises(ValueError):
            s.from_bytes(bytes(blob))

    def test_truncation(self):
        s = BlockSerde(np.int32)
        blob = s.to_bytes(ValueBlock(2, np.array([1, 2], dtype=np.int32)))
        with pytest.raises(ValueError):
            s.from_bytes(blob[:-1])
        with pytest.raises(ValueError):
            s.from_bytes(b"")

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=40))
    def test_masked_roundtrip_property(self, mask_list):
        mask = np.array(mask_list)
        values = np.arange(int(mask.sum()), dtype=np.int32)
        if mask.sum() == 0:
            return  # block with zero valid cells is legal; check separately
        s = BlockSerde(np.int32)
        b = ValueBlock(len(mask_list), values, mask)
        assert s.from_bytes(s.to_bytes(b)) == b

    def test_all_invalid_mask(self):
        s = BlockSerde(np.int32)
        b = ValueBlock(3, np.zeros(0, dtype=np.int32), np.zeros(3, dtype=bool))
        assert s.from_bytes(s.to_bytes(b)) == b


class TestCoalesce:
    def test_fig6_example(self):
        """The paper's Fig 6: cells -> ranges '1-2, 7, 9-10, 13'."""
        runs = coalesce_indices(np.array([1, 2, 7, 9, 10, 13]))
        assert runs == [(1, 2), (7, 1), (9, 2), (13, 1)]

    def test_single_run(self):
        assert coalesce_indices(np.arange(5, 20)) == [(5, 15)]

    def test_empty(self):
        assert coalesce_indices(np.array([], dtype=np.int64)) == []

    def test_rejects_duplicates_and_unsorted(self):
        with pytest.raises(ValueError):
            coalesce_indices(np.array([1, 1, 2]))
        with pytest.raises(ValueError):
            coalesce_indices(np.array([2, 1]))
        with pytest.raises(ValueError):
            coalesce_indices(np.array([[1, 2]]))


class TestLayeredRuns:
    def test_no_duplicates_single_layer(self):
        runs = layered_runs(np.array([3, 1, 2, 7]), np.array([30, 10, 20, 70]))
        assert [(s, c) for s, c, _ in runs] == [(1, 3), (7, 1)]
        assert (runs[0][2] == [10, 20, 30]).all()
        assert (runs[1][2] == [70]).all()

    def test_duplicates_spread_into_layers(self):
        idx = np.array([0, 1, 2, 0, 1, 2])
        val = np.array([1, 2, 3, 4, 5, 6])
        runs = layered_runs(idx, val)
        assert [(s, c) for s, c, _ in runs] == [(0, 3), (0, 3)]
        assert (runs[0][2] == [1, 2, 3]).all()
        assert (runs[1][2] == [4, 5, 6]).all()

    def test_stability_within_duplicates(self):
        idx = np.array([5, 5, 5])
        val = np.array([9, 8, 7])
        runs = layered_runs(idx, val)
        assert [r[2][0] for r in runs] == [9, 8, 7]

    def test_mixed_multiplicity(self):
        idx = np.array([0, 1, 1, 3])
        val = np.array([0, 10, 11, 30])
        runs = layered_runs(idx, val)
        assert [(s, c) for s, c, _ in runs] == [(0, 2), (3, 1), (1, 1)]

    def test_empty(self):
        assert layered_runs(np.array([]), np.array([])) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            layered_runs(np.array([1, 2]), np.array([1]))
        with pytest.raises(ValueError):
            layered_runs(np.array([[1]]), np.array([1]))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=0, max_size=60))
    def test_conservation_property(self, idx_list):
        """Every (index, value) pair appears in exactly one run."""
        idx = np.array(idx_list, dtype=np.int64)
        val = np.arange(len(idx_list))
        runs = layered_runs(idx, val)
        seen = []
        for start, count, values in runs:
            assert len(values) == count
            for j, v in enumerate(values):
                seen.append((start + j, int(v)))
        assert sorted(seen) == sorted(zip(idx_list, range(len(idx_list))))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=60))
    def test_runs_are_contiguous_property(self, idx_list):
        idx = np.array(idx_list, dtype=np.int64)
        val = np.zeros(len(idx_list))
        for start, count, values in layered_runs(idx, val):
            assert count >= 1 and start >= 0
