"""Tests for key splitting, the aggregator library, and group helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import (
    AggregationConfig,
    Aggregator,
    ValueBlock,
    cells_of_group,
    split_at_boundaries,
    split_overlaps,
    stack_equal_blocks,
)
from repro.mapreduce.api import MapContext
from repro.mapreduce.keys import RangeKey
from repro.mapreduce.metrics import Counters
from repro.mapreduce.serde import BytesSerde


def dense(count, start_value=0):
    return ValueBlock(count, np.arange(start_value, start_value + count))


class TestSplitAtBoundaries:
    def test_no_split_needed(self):
        key = RangeKey("v", 10, 5)
        out = split_at_boundaries(key, dense(5), [0, 20, 40])
        assert out == [(key, dense(5))]

    def test_split_at_one_boundary(self):
        key = RangeKey("v", 10, 10)
        out = split_at_boundaries(key, dense(10), [15])
        assert [(k.start, k.count) for k, _ in out] == [(10, 5), (15, 5)]
        assert (out[0][1].values == np.arange(0, 5)).all()
        assert (out[1][1].values == np.arange(5, 10)).all()

    def test_boundary_at_edges_is_noop(self):
        key = RangeKey("v", 10, 10)
        out = split_at_boundaries(key, dense(10), [10, 20])
        assert len(out) == 1

    def test_multiple_boundaries(self):
        key = RangeKey("v", 0, 100)
        out = split_at_boundaries(key, dense(100), [25, 50, 75])
        assert [(k.start, k.count) for k, _ in out] == [
            (0, 25), (25, 25), (50, 25), (75, 25)]

    def test_block_count_mismatch(self):
        with pytest.raises(ValueError):
            split_at_boundaries(RangeKey("v", 0, 5), dense(4), [2])


class TestSplitOverlaps:
    def test_paper_fig7_overlap(self):
        """Unequal overlapping ranges are split on overlap boundaries."""
        pairs = [
            (RangeKey("v", 0, 10), dense(10)),
            (RangeKey("v", 5, 10), dense(10, 100)),
        ]
        out = split_overlaps(pairs)
        spans = [(k.start, k.count) for k, _ in out]
        assert spans == [(0, 5), (5, 5), (5, 5), (10, 5)]
        # after splitting, the two [5,10) pieces are byte-equal keys
        assert out[1][0] == out[2][0]
        # values follow their cells
        assert (out[1][1].values == np.arange(5, 10)).all()
        assert (out[2][1].values == np.arange(100, 105)).all()

    def test_disjoint_ranges_untouched(self):
        pairs = [
            (RangeKey("v", 0, 5), dense(5)),
            (RangeKey("v", 5, 5), dense(5)),
            (RangeKey("v", 20, 3), dense(3)),
        ]
        out = split_overlaps(pairs)
        assert [(k.start, k.count) for k, _ in out] == [(0, 5), (5, 5), (20, 3)]

    def test_equal_ranges_untouched(self):
        pairs = [
            (RangeKey("v", 3, 4), dense(4)),
            (RangeKey("v", 3, 4), dense(4, 50)),
        ]
        out = split_overlaps(pairs)
        assert [(k.start, k.count) for k, _ in out] == [(3, 4), (3, 4)]

    def test_nested_ranges(self):
        pairs = [
            (RangeKey("v", 0, 10), dense(10)),
            (RangeKey("v", 3, 4), dense(4, 100)),
        ]
        out = split_overlaps(pairs)
        spans = [(k.start, k.count) for k, _ in out]
        assert spans == [(0, 3), (3, 4), (3, 4), (7, 3)]

    def test_different_variables_do_not_interact(self):
        pairs = [
            (RangeKey("a", 0, 10), dense(10)),
            (RangeKey("b", 5, 10), dense(10)),
        ]
        out = split_overlaps(pairs)
        assert [(k.variable, k.start, k.count) for k, _ in out] == [
            ("a", 0, 10), ("b", 5, 10)]

    def test_empty(self):
        assert split_overlaps([]) == []

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 40), st.integers(1, 12)),
                    min_size=1, max_size=10))
    def test_property_split_conserves_cells_and_groups_align(self, spans):
        pairs = [(RangeKey("v", s, c), dense(c, i * 1000))
                 for i, (s, c) in enumerate(spans)]
        out = split_overlaps(pairs)
        # conservation: every (cell, value) survives exactly once
        def cells(ps):
            acc = []
            for k, b in ps:
                for j in range(k.count):
                    acc.append((k.start + j, int(b.values[j])))
            return sorted(acc)
        assert cells(out) == cells(pairs)
        # alignment: any two output ranges are equal or disjoint
        for i in range(len(out)):
            for j in range(i + 1, len(out)):
                a, b = out[i][0], out[j][0]
                assert a == b or not a.overlaps(b)


class _CaptureCtx(MapContext):
    """MapContext capturing serialized records for inspection."""

    def __init__(self):
        self.records = []
        super().__init__(BytesSerde(), BytesSerde(),
                         lambda k, v: self.records.append((k, v)), Counters())


def make_aggregator(**overrides):
    defaults = dict(curve="zorder", ndim=2, bits=4, dtype="int64",
                    buffer_cells=1000)
    defaults.update(overrides)
    cfg = AggregationConfig(**defaults)
    ctx = _CaptureCtx()
    return Aggregator(cfg, "v", ctx), ctx, cfg


class TestAggregator:
    def test_contiguous_block_is_one_range(self):
        agg, ctx, cfg = make_aggregator(curve="rowmajor")
        # full row in row-major order = contiguous indices
        coords = np.array([[3, j] for j in range(16)])
        agg.add(coords, np.arange(16))
        agg.close()
        assert agg.emitted_ranges == 1
        key = cfg.key_serde().from_bytes(ctx.records[0][0])
        block = cfg.block_serde().from_bytes(ctx.records[0][1])
        assert key.count == 16
        assert (block.values == np.arange(16)).all()

    def test_flush_threshold_splits_aggregation(self):
        # Same data, tiny buffer: more ranges (A2's effect).
        coords = np.array([[3, j] for j in range(16)])
        big, _, _ = make_aggregator(curve="rowmajor", buffer_cells=1000)
        big.add(coords, np.arange(16))
        big.close()
        small, _, _ = make_aggregator(curve="rowmajor", buffer_cells=4)
        for j in range(16):
            small.add(coords[j:j + 1], np.array([j]))
        small.close()
        assert small.flushes > big.flushes
        assert small.emitted_ranges > big.emitted_ranges
        assert small.emitted_cells == big.emitted_cells == 16

    def test_add_indices_path(self):
        agg, ctx, cfg = make_aggregator()
        agg.add_indices(np.array([5, 6, 7, 20]), np.array([1, 2, 3, 4]))
        agg.close()
        assert agg.emitted_ranges == 2
        keys = [cfg.key_serde().from_bytes(k) for k, _ in ctx.records]
        assert {(k.start, k.count) for k in keys} == {(5, 3), (20, 1)}

    def test_alignment_pads_with_masked_blocks(self):
        agg, ctx, cfg = make_aggregator(alignment=8)
        agg.add_indices(np.array([3, 4]), np.array([30, 40]))
        agg.close()
        key = cfg.key_serde().from_bytes(ctx.records[0][0])
        block = cfg.block_serde().from_bytes(ctx.records[0][1])
        assert key.start == 0 and key.count == 8
        assert not block.is_dense()
        assert (block.values == [30, 40]).all()
        assert (block.dense_mask() == [0, 0, 0, 1, 1, 0, 0, 0]).all()

    def test_alignment_clips_to_curve_end(self):
        agg, ctx, cfg = make_aggregator(alignment=100, bits=2)  # curve size 16
        agg.add_indices(np.array([14, 15]), np.array([1, 2]))
        agg.close()
        key = cfg.key_serde().from_bytes(ctx.records[0][0])
        assert key.start == 0 and key.count == 16

    def test_empty_add_is_noop(self):
        agg, ctx, _ = make_aggregator()
        agg.add(np.zeros((0, 2)), np.zeros(0))
        agg.close()
        assert ctx.records == []
        assert agg.flushes == 0

    def test_validation(self):
        agg, _, _ = make_aggregator()
        with pytest.raises(ValueError):
            agg.add(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError):
            agg.add(np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            agg.add_indices(np.array([1, 2]), np.array([1]))
        with pytest.raises(ValueError):
            agg.add_indices(np.array([-1]), np.array([1]))
        with pytest.raises(ValueError):
            AggregationConfig(buffer_cells=0)
        with pytest.raises(ValueError):
            AggregationConfig(alignment=0)

    def test_duplicates_become_layers(self):
        agg, ctx, cfg = make_aggregator()
        agg.add_indices(np.array([5, 5, 6, 6]), np.array([1, 2, 3, 4]))
        agg.close()
        assert agg.emitted_ranges == 2
        blocks = [cfg.block_serde().from_bytes(v) for _, v in ctx.records]
        assert sorted(tuple(b.values) for b in blocks) == [(1, 3), (2, 4)]


class TestGroupHelpers:
    def test_stack_dense(self):
        key = RangeKey("v", 0, 3)
        m = stack_equal_blocks(key, [dense(3), dense(3, 10)])
        assert m.shape == (2, 3)
        assert (m[1] == [10, 11, 12]).all()

    def test_stack_masked_returns_none(self):
        key = RangeKey("v", 0, 3)
        masked = ValueBlock(3, np.array([1]), np.array([True, False, False]))
        assert stack_equal_blocks(key, [dense(3), masked]) is None

    def test_cells_of_group_dense(self):
        key = RangeKey("v", 0, 2)
        cells = dict(cells_of_group(key, [dense(2), dense(2, 10)]))
        assert set(cells) == {0, 1}
        assert (cells[0] == [0, 10]).all()

    def test_cells_of_group_masked(self):
        key = RangeKey("v", 0, 3)
        masked = ValueBlock(3, np.array([99]), np.array([False, True, False]))
        cells = dict(cells_of_group(key, [dense(3), masked]))
        assert (cells[1] == [1, 99]).all()
        assert (cells[0] == [0]).all()
        assert (cells[2] == [2]).all()

    def test_group_validation(self):
        with pytest.raises(ValueError):
            stack_equal_blocks(RangeKey("v", 0, 3), [])
        with pytest.raises(ValueError):
            stack_equal_blocks(RangeKey("v", 0, 3), [dense(2)])
