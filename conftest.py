"""Repo-wide pytest plumbing: a hard per-test deadline.

The fault-injection and chaos suites deliberately hang, stall, and kill
worker processes; a bug in the scheduler's deadline enforcement would
otherwise wedge the whole pytest run forever (exactly the failure mode
the deadlines exist to prevent).  ``pytest-timeout`` is not a
dependency, so this is a minimal SIGALRM watchdog: every test gets
``REPRO_TEST_TIMEOUT`` seconds (default 300) of wall clock, after which
it fails with a ``TimeoutError`` instead of hanging CI.

SIGALRM only exists on POSIX and only fires in the main thread -- both
true for this suite; elsewhere the watchdog degrades to a no-op.
"""

import os
import signal
import threading

import pytest

_DEFAULT_TIMEOUT = 300.0


def _deadline_seconds() -> float:
    raw = os.environ.get("REPRO_TEST_TIMEOUT")
    if raw is None:
        return _DEFAULT_TIMEOUT
    value = float(raw)
    if value < 0:
        raise ValueError(f"REPRO_TEST_TIMEOUT must be >= 0, got {value}")
    return value  # 0 disables the watchdog


@pytest.fixture(autouse=True)
def _test_deadline(request):
    seconds = _deadline_seconds()
    if (seconds == 0 or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded REPRO_TEST_TIMEOUT={seconds:g}s "
            f"({request.node.nodeid})")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
