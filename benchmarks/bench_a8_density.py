"""A8 -- aggregation benefit versus key density (§V's dense-keys caveat).

Asserted shape: at full density aggregation wins by >70%; the win
decreases monotonically-ish with density and is gone (or negative) below
~2% density -- aggregation is a *dense-key* technique, exactly as the
paper scopes it.
"""

from repro.experiments.density import run


def test_a8_win_collapses_with_sparsity(tabulate):
    result = tabulate(run)
    wins = result.column("agg_win_pct")
    densities = result.column("density")
    assert densities[0] == 1.0
    assert wins[0] > 70.0           # dense: the Fig 8 regime
    assert wins[-1] < 10.0          # sparse: the win is gone
    assert wins[-1] < wins[0]


def test_a8_dense_case_is_single_range(tabulate):
    result = tabulate(run, side=32, densities=[1.0], filename="a8_dense")
    assert result.rows[0]["ranges"] == 1
