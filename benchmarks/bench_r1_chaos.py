"""R1 -- chaos soak: the parallel runtime under randomized faults.

Three properties pinned here.  First, **correctness under chaos**:
every randomized fault schedule (worker kills, crashes, hangs, silent
segment corruption, SIGSTOP stalls -- with speculation disabled on
roughly half the seeds) must still produce counters and reduce output
byte-identical to the serial baseline.  Second, **liveness**: hangs and
stalls are reclaimed by the ``task_timeout`` / heartbeat-staleness
deadline path, so seeds that draw them record timeout kills instead of
wedging the suite.  Third, **durable recovery**: the kill+resume
scenarios SIGKILL the whole scheduler process mid-job, then resume from
the on-disk manifest -- adoption must be non-zero and the result still
byte-identical.

Seed count is bounded by ``REPRO_CHAOS_SEEDS`` (CI pins a small value;
the default soak is 20 schedules).
"""

from repro.experiments.chaos import run


def test_r1_chaos_soak(tabulate):
    result = tabulate(run, resume_seeds=2, filename="r1")

    # Every scenario -- faulty, speculation-off, and kill+resume alike --
    # must match the serial baseline byte for byte.
    assert all(v == "identical" for v in result.column("identical"))

    # The schedules draw hangs/stalls often enough that at least one
    # seed must have exercised the deadline-kill path, and injected
    # faults must have forced retries somewhere.
    assert sum(result.column("timeouts")) >= 1
    assert sum(result.column("retried")) >= 1

    # Resume is only meaningful if the manifest actually saved work.
    resumes = [r for r in result.rows if r["scenario"] == "kill+resume"]
    assert resumes and all(r["adopted"] >= 1 for r in resumes)
