"""R7 -- memory chaos: OOM kills, rlimit pressure, byte backpressure.

Pins the memory rung of the robustness ladder.  Every byte-holding
stage rents from a per-task memory ledger, and the ledger is attacked:
simulated ``MemoryError`` raises, threshold OOM kills (a parallel
worker dies ``os._exit(137)``-style mid-task), genuine refused
allocations, and a real ``RLIMIT_AS`` on forked workers.  The
assertions are the PR's acceptance criteria:

* no scenario row reads DRIFT -- serial and parallel runners agree
  byte-for-byte on output and the *full* counter set (including the
  ``MEMORY_*`` tallies) and every completed run matches the unbudgeted
  serial baseline's bytes exactly;
* with a budget and a fetch byte-window configured but no faults, the
  run is byte-identical to the baseline on output AND counters over
  every transport x pipeline combination, and the ledger's recorded
  peak never exceeds the budget;
* an OOM at any ledger site (sort / fetch / merge) on either reduce
  path kills the attempt and the degraded retry -- halved sort buffer
  and fetch window -- lands on the baseline bytes;
* under a sticky kill threshold, a skewed fetch plan completes only
  when ``max_inflight_bytes`` holds in-flight bytes under the wire:
  with the window the job is byte-identical, without it the job fails
  the same way in both runners;
* a sticky fault outlasting ``max_memory_retries`` fails cleanly.

The matrix summary is written to ``benchmarks/results/r7.json`` every
run and to the repo-root ``BENCH_R7.json`` robustness baseline when
the grid is at least the default smoke scale.

``REPRO_R7_FUZZ`` / ``REPRO_R7_SECONDS`` bound the seeded fuzz tail
(CI's memory-chaos job runs a small slice through both runners).
"""

import json
import os
import sys

from repro.experiments.r7_memchaos import run

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
CLEAN_BUDGET = 1 << 20


def _as_json(result) -> dict:
    outcomes: dict[str, int] = {}
    for outcome in result.column("outcome"):
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
    clean = [r for r in result.rows if r["scenario"] == "clean-budgeted"]
    degraded = [r for r in result.rows if r["outcome"] == "degraded"]
    return {
        "experiment": "R7",
        "metric": "memory-chaos matrix: OOM raise/kill/alloc at "
                  "sort/fetch/merge, RLIMIT_AS workers, and byte-window "
                  "backpressure, serial vs parallel",
        "rows": len(result.rows),
        "outcomes": outcomes,
        "drift_rows": outcomes.get("DRIFT", 0),
        "clean": {
            "budget_bytes": CLEAN_BUDGET,
            "max_peak_bytes": max(r["peak_bytes"] for r in clean),
            "within_budget": all(
                0 < r["peak_bytes"] <= CLEAN_BUDGET for r in clean),
        },
        "oom_recoveries": sum(r["oom_events"] for r in degraded),
        "degraded_attempts": sum(r["degraded"] for r in degraded),
        "backpressure": {
            "with_window": result.row_by(
                "scenario", "backpressure-on")["outcome"],
            "without_window": result.row_by(
                "scenario", "backpressure-off")["outcome"],
        },
        "rlimit_rows": len([r for r in result.rows
                            if r["scenario"].startswith("rlimit-")]),
    }


def test_r7_memory_chaos(tabulate):
    result = tabulate(run, filename="r7")

    outcomes = result.column("outcome")
    assert all(v != "DRIFT" for v in outcomes)

    # Accounting on, faults off: byte-identical output AND counters on
    # every transport x pipeline path, ledger peak within the budget.
    clean = [r for r in result.rows if r["scenario"] == "clean-budgeted"]
    assert len(clean) == 6
    assert all(r["outcome"] == "identical" for r in clean)
    assert all(r["oom_events"] == 0 and r["degraded"] == 0 for r in clean)
    assert all(0 < r["peak_bytes"] <= CLEAN_BUDGET for r in clean)

    # A simulated MemoryError at each ledger site, on both reduce
    # paths, degrades exactly one attempt and lands on baseline bytes.
    raises = [r for r in result.rows
              if r["scenario"].startswith("oom-raise-")]
    assert len(raises) == 5
    for row in raises:
        assert row["outcome"] == "degraded"
        assert row["oom_events"] == 1
        assert row["degraded"] == 1

    # The threshold killer fires on attempt 0 and stays armed; the
    # halved sort buffer ducks under the wire on the retry.
    kill = result.row_by("scenario", "oom-kill-sort")
    assert kill["outcome"] == "degraded"
    assert kill["oom_events"] == 1

    # A genuinely refused allocation (1 PiB) is survived the same way.
    alloc = result.row_by("scenario", "oom-alloc-sort")
    assert alloc["outcome"] == "degraded"

    # Real RLIMIT_AS on forked workers (Linux only): a generous cap
    # changes nothing; a kernel-refused allocation still degrades.
    if sys.platform.startswith("linux"):
        assert result.row_by("scenario", "rlimit-soak")["outcome"] \
            == "identical"
        assert result.row_by("scenario", "rlimit-alloc")["outcome"] \
            == "degraded"

    # Backpressure or death: the byte window is the difference between
    # a byte-identical run and a consistent two-runner failure.
    assert result.row_by("scenario", "backpressure-on")["outcome"] \
        == "identical"
    assert result.row_by("scenario", "backpressure-off")["outcome"] \
        == "failed"

    # A sticky fault outlasting the retry budget fails cleanly.
    assert result.row_by("scenario", "bounded")["outcome"] == "failed"

    payload = _as_json(result)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "r7.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    if payload["rlimit_rows"] == 2:
        # Full matrix (rlimit rows present): refresh the committed
        # robustness baseline.
        with open(os.path.join(REPO_ROOT, "BENCH_R7.json"), "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
