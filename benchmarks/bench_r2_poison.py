"""R2 -- poison-safe pipeline: skipping mode, quarantine, salvage.

Pins the record-level half of the robustness story.  The harness
injects poison user records and hostile bytes (flips, splices,
truncations) into map outputs and reduce inputs, runs every scenario
through the serial *and* parallel runner, and classifies where on the
failure ladder each one landed.  The assertions here are the PR's
acceptance criteria:

* no scenario row reads DRIFT -- the runners agree byte-for-byte on
  output, counters, and quarantine contents, and every quarantine
  side-file's record count matches the ``quarantine_records`` counter
  exactly (no silent drops, no duplicates);
* clean runs with a SkipPolicy attached are byte-identical to the
  baseline (zero clean-path overhead);
* the matrix actually exercises each rung: skipped, salvaged, repaired,
  and failed (budget exhaustion, unskippable mapper) all appear.

``REPRO_R2_FUZZ`` / ``REPRO_R2_SECONDS`` bound the seeded fuzz tail
(CI's fuzz-smoke job runs a 60-second slice).
"""

from repro.experiments.r2_poison import run


def test_r2_poison_pipeline(tabulate):
    result = tabulate(run, filename="r2")

    outcomes = result.column("outcome")
    assert all(v != "DRIFT" for v in outcomes)

    # Every rung of the ladder must have been exercised.
    assert outcomes.count("identical") >= 3   # clean runs, zero overhead
    assert outcomes.count("skipped") >= 4     # poison -> bisect -> quarantine
    assert outcomes.count("salvaged") >= 4    # block CRC -> partial salvage
    assert outcomes.count("repaired") >= 1    # whole-segment -> re-run map
    assert outcomes.count("failed") >= 2      # budget / no-map_range

    # Skipping scenarios must actually quarantine what they skipped.
    for row in result.rows:
        if row["outcome"] in ("skipped", "salvaged"):
            assert row["skipped"] >= 1
            assert row["quarantined"] >= 1
            assert row["q_bytes"] >= 1
