"""A5 -- exact §III transform vs our vectorized block predictor.

Quantifies DESIGN.md's documented deviation: the exact per-byte
algorithm is the fidelity reference; the block predictor is the
scalable variant.  Asserted: fastpred is >=20x faster; exact compresses
at least as well.
"""

from repro.core.stride import fast_forward_transform, fast_inverse_transform
from repro.experiments.ablations import run_exact_vs_fast
from repro.scidata import walk_grid_int32_triples


def test_a5_speed_ratio_and_size(tabulate):
    result = tabulate(run_exact_vs_fast)
    exact = result.row_by("variant", "exact §III (per byte)")
    fast = result.row_by("variant", "fastpred (vectorized)")
    assert fast["time_seconds"] * 20 < exact["time_seconds"]
    assert exact["gzip_bytes"] <= fast["gzip_bytes"] * 2


def test_a5_fastpred_forward_kernel(benchmark):
    data = walk_grid_int32_triples(50)  # 1.5 MB
    out = benchmark(fast_forward_transform, data, 100)
    assert len(out) == len(data)


def test_a5_fastpred_inverse_kernel(benchmark):
    data = walk_grid_int32_triples(50)
    transformed = fast_forward_transform(data, 100)
    out = benchmark(fast_inverse_transform, transformed, 100)
    assert out == data
