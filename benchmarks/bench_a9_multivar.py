"""A9 -- multi-variable streams (§III's stride-boundary complication).

Asserted ordering: knowing both variables' metadata strides beats the
adaptive detector, which beats a single (first-variable) stride, which
beats no transform at all -- i.e. the adaptive detector recovers most of
the benefit with zero format knowledge, the paper's §III-A rationale.
"""

from repro.experiments.multivar import run, two_variable_stream


def test_a9_regime_ordering(tabulate):
    result = tabulate(run)
    get = lambda r: result.row_by("regime", r)["gzip_bytes"]
    both = get("both variables' metadata strides")
    adaptive = get("adaptive §III-A (no metadata)")
    first_only = get("first variable's metadata stride only")
    plain = get("no transform (gzip only)")
    assert both <= adaptive < first_only < plain


def test_a9_stream_kernel(benchmark):
    data, pitch_a, pitch_b = benchmark(two_variable_stream, 10)
    assert pitch_a != pitch_b
    assert len(data) > 0
