"""E3 -- Fig 3: byte-level compression of the grid-walk stream.

Paper (side=100, 12,000,000 bytes): gzip ~1.63 MB, transform+gzip
~33 KB, bzip2 ~512 KB, transform+bzip2 a few hundred bytes.  The shape
requirements asserted here: the transform improves gzip by >10x and
bzip2 by >10x, and transform+bzip2 is the smallest of all.

Default side is scaled (the exact transform is pure Python); set
REPRO_SCALE=1.0 for the paper's 12 MB input.
"""

import zlib

from repro.core.stride import StrideConfig, forward_transform
from repro.experiments.fig3_table import run
from repro.scidata import walk_grid_int32_triples


def test_e3_table_shape(tabulate):
    result = tabulate(run)
    get = lambda m: result.row_by("method", m)["file_bytes"]
    original = get("original")
    gzip_b = get("gzip")
    tgzip = get("transform+gzip")
    bz = get("bzip2")
    tbz = get("transform+bzip2")
    # paper shape: generic compressors help, the transform multiplies it
    assert gzip_b < original
    assert bz < gzip_b
    assert tgzip < gzip_b / 10
    assert tbz < bz / 10
    assert tbz == min(original, gzip_b, tgzip, bz, tbz)
    # fast variant: between plain gzip and exact-transform gzip
    fast = result.row_by("method", "fastpred+gzip (ours)")["file_bytes"]
    assert fast < gzip_b


def test_e3_exact_transform_throughput(benchmark):
    data = walk_grid_int32_triples(16)  # 49,152 bytes
    cfg = StrideConfig(max_stride=100)
    out = benchmark(forward_transform, data, cfg)
    assert len(out) == len(data)


def test_e3_gzip_baseline_throughput(benchmark):
    data = walk_grid_int32_triples(16)
    out = benchmark(zlib.compress, data, 6)
    assert len(out) < len(data)
