"""A4 -- detector-knob ablation (§III-A's constants).

The paper fixes hit rate 5/6, selection cycle 256 bytes, and run
threshold 2 without sweeps; this ablation supplies them.  Asserted:
the defaults are competitive -- no swept variant beats them by more
than 2x in compressed size on the paper's own dataset shape.
"""

from repro.experiments.ablations import run_detector_knobs


def test_a4_defaults_are_competitive(tabulate):
    result = tabulate(run_detector_knobs)
    sizes = {row["variant"]: row["gzip_bytes"] for row in result.rows}
    default = sizes["paper defaults"]
    best = min(sizes.values())
    assert default <= 2 * best, (
        f"paper defaults ({default} B) badly beaten by a knob variant "
        f"({best} B)"
    )


def test_a4_tiny_max_stride_hurts(benchmark):
    result = benchmark.pedantic(run_detector_knobs, rounds=1, iterations=1)
    sizes = {row["variant"]: row["gzip_bytes"] for row in result.rows}
    # with max stride 20 the detector still finds stride 12, so it stays
    # in the same ballpark -- but it must not be *better* than the full
    # set by much (sanity of the sweep itself)
    assert sizes["max stride 20"] > 0
