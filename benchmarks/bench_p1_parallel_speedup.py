"""P1 -- serial vs parallel runtime on the Fig 8 aggregation workload.

Two claims pinned here.  First, the parallel runner is a correct
drop-in: every row of the speedup table is byte-identical to the serial
baseline (the harness flags any drift).  Second, the scheduler buys
real concurrency: on the blocking variant (map tasks stalled on a
simulated input fetch) 4 workers beat serial by >1.5x regardless of
core count.  The same bound on the cpu-bound variant needs >=4 physical
cores, so that assertion is gated on the host -- a single-core box
cannot speed up compute by adding processes, and the table reports the
honest numbers either way.
"""

import os

from repro.experiments.parallel_speedup import run


def _speedup(result, workload: str, workers: int) -> float:
    for row in result.rows:
        if (row["workload"] == workload and row["runner"] == "parallel"
                and row["workers"] == workers):
            return float(row["speedup"].rstrip("x"))
    raise KeyError(f"no parallel row for {workload} at {workers} workers")


def test_p1_parallel_speedup(tabulate):
    result = tabulate(run, filename="p1")

    assert all(c in ("baseline", "identical")
               for c in result.column("counters"))
    assert _speedup(result, "blocking", 4) > 1.5
    if (os.cpu_count() or 1) >= 4:
        assert _speedup(result, "cpu", 4) > 1.5
