"""A11 -- sensitivity of the vectorized block predictor's knobs.

Our fastpred variant (A5) has two knobs the exact algorithm lacks: the
chunk size (stride frozen per chunk) and the candidate stride ceiling.
Asserted: compression is robust across chunk sizes well below the file
size, degrades monotonically as the chunk approaches the file size (the
first chunk has no predecessor to select a stride from, so it passes
through untransformed), and a stride ceiling below the true record
pitch destroys the benefit -- the two failure modes a user must know
about.
"""

import zlib

import pytest

from repro.core.stride import fast_forward_transform, fast_inverse_transform
from repro.scidata import walk_grid_int32_triples


@pytest.fixture(scope="module")
def data():
    return walk_grid_int32_triples(30)  # 324,000 bytes, pitch 12


def gz(blob):
    return len(zlib.compress(blob, 6))


CHUNKS = [4096, 16384, 65536, 262144]


@pytest.mark.parametrize("chunk", CHUNKS)
def test_a11_chunk_roundtrip_kernel(data, benchmark, chunk):
    out = benchmark(fast_forward_transform, data, 100, chunk)
    assert fast_inverse_transform(out, 100, chunk) == data


def test_a11_chunk_size_robustness(data, benchmark):
    sizes = benchmark.pedantic(
        lambda: {chunk: gz(fast_forward_transform(data, 100, chunk))
                 for chunk in CHUNKS},
        rounds=1, iterations=1)
    plain = gz(data)
    # every chunk size is lossless AND no worse than plain gzip
    assert all(s < plain for s in sizes.values())
    # chunks well below the file size (first-chunk identity cost
    # amortized) beat plain gzip decisively and sit within 3x of the best
    small = [sizes[c] for c in CHUNKS if c * 4 <= len(data)]
    assert all(s < plain / 3 for s in small)
    assert max(small) <= 3 * min(small)
    # degradation with chunk size is monotone: the first (identity)
    # chunk covers a growing share of the stream
    ordered = [sizes[c] for c in sorted(CHUNKS)]
    assert ordered == sorted(ordered)


def test_a11_max_stride_below_pitch_fails_soft(data, benchmark):
    ok = benchmark.pedantic(
        lambda: fast_forward_transform(data, max_stride=100),
        rounds=1, iterations=1)
    crippled = fast_forward_transform(data, max_stride=8)  # pitch is 12
    assert fast_inverse_transform(crippled, max_stride=8) == data  # lossless
    assert gz(ok) < gz(crippled)  # but compression benefit collapses
