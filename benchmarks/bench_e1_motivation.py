"""E1 -- §I motivation numbers: per-cell-key intermediate file sizes.

Paper: 10^6 cells -> 26,000,006 bytes (variable index) / 33,000,006
bytes (variable name `windspeed1`); key/value byte ratio 6.75.  This
bench runs at full paper scale (side=100) and must match exactly.
"""

import pytest

from repro.experiments.e1_motivation import PAPER, run, _build_ifile


def test_e1_table_matches_paper_exactly(tabulate):
    result = tabulate(run, side=100)
    index_row = result.row_by("variable_as", "index")
    name_row = result.row_by("variable_as", "name")
    assert index_row["file_bytes"] == PAPER["index"]["file_bytes"]
    assert name_row["file_bytes"] == PAPER["name"]["file_bytes"]
    assert name_row["key_value_ratio"] == PAPER["key_value_ratio"]


@pytest.mark.parametrize("mode", ["index", "name"])
def test_e1_serialization_throughput(benchmark, mode):
    """Time the per-cell key serialization kernel (side=40 = 64k cells)."""
    stats = benchmark(_build_ifile, 40, mode)
    assert stats.records == 40 ** 3
