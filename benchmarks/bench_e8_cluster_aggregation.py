"""E8 -- §IV-D cluster result: key aggregation's bytes/runtime win.

Paper (same cluster/query as E6): intermediate data -60.7%
(55.5 -> 21.8 GB) and runtime -28.5% (183 -> 131 min) -- aggregation
shrinks data *and* is cheap, unlike the byte-level codec.

Shape asserted: materialized bytes drop substantially, parity-model
runtime *decreases* versus baseline, and (the paper's §IV-D mechanism)
partitioning across map tasks yields less aggregation than one mapper.
"""

from repro.experiments.cluster_runs import run as cluster_run
from repro.experiments.fig8_aggregation import run as fig8_run
from repro.mapreduce.engine import LocalJobRunner
from repro.queries.sliding_median import SlidingMedianQuery
from repro.scidata import integer_grid

import bench_e6_cluster_bytelevel as e6


def test_e8_bytes_and_runtime_shape(tabulate):
    result = tabulate(e6._shared_result, filename="e6_e8_cluster")
    rows = {r["config"]: r for r in result.rows}
    agg = rows["key aggregation (E8)"]
    assert agg["delta_bytes_pct"] < -40.0  # paper: -60.7%
    assert agg["delta_runtime_parity_pct"] < 0.0  # paper: -28.5%


def test_e8_partitioning_reduces_aggregation(tabulate, report):
    """§IV-D: 'Partitioning the data set across Map tasks results in
    less aggregation.'"""
    one = fig8_run(side=40, num_map_tasks=1)
    many = tabulate(fig8_run, side=40, num_map_tasks=8,
                    filename="e8_partitioning")
    one_total = one.row_by("mode", "aggregate")["records"]
    many_total = many.row_by("mode", "aggregate")["records"]
    assert many_total > one_total


def test_e8_aggregate_job_kernel(benchmark):
    grid = integer_grid((24, 24), seed=2)
    query = SlidingMedianQuery(grid, "values", window=3)
    job = query.build_job("aggregate", num_map_tasks=2, num_reducers=2)

    def run_job():
        return LocalJobRunner().run(job, grid)

    result = benchmark.pedantic(run_job, rounds=3, iterations=1)
    assert len(result.output) == 576
