"""A7 -- input locality sweep on the simulated cluster (Fig 1 step 1).

Asserted shape: locality awareness and higher replication each raise the
data-local fraction; the aware scheduler's makespan never exceeds the
blind one's at equal replication on this workload.
"""

from repro.experiments.locality import run
from repro.mapreduce.simcluster import ClusterSpec, MapTaskSpec, SimDFS, schedule_maps


def test_a7_locality_shape(tabulate):
    result = tabulate(run)
    rows = {(r["replication"], r["scheduler"]): r for r in result.rows}
    for repl in [1, 2, 3]:
        aware = rows[(repl, "locality-aware")]
        blind = rows[(repl, "blind")]
        assert aware["data_local_pct"] > blind["data_local_pct"]
        assert aware["map_makespan_s"] <= blind["map_makespan_s"]
    # replication monotonicity under the aware scheduler
    locality = [rows[(r, "locality-aware")]["data_local_pct"] for r in [1, 2, 3]]
    assert locality == sorted(locality)


def test_a7_schedule_kernel(benchmark):
    spec = ClusterSpec()
    dfs = SimDFS(nodes=spec.nodes, replication=3, block_size=64 << 20)
    blocks = dfs.write("f", 4 << 30)
    tasks = [MapTaskSpec(b.size / spec.disk_bandwidth, b.size, b.replicas)
             for b in blocks]
    result = benchmark(schedule_maps, spec, tasks)
    assert result.total_tasks == len(tasks)
