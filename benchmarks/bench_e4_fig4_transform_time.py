"""E4 -- Fig 4: transform time versus file size.

Paper: "The time to transform the data is linear in the file size."
Asserted here as R^2 >= 0.98 on a least-squares linear fit across a
ladder of grid sizes.
"""

from repro.core.stride import StrideConfig, forward_transform
from repro.experiments.fig4_scaling import fit_linearity, run
from repro.scidata import walk_grid_int32_triples


def test_e4_linearity(tabulate):
    # best-of-3 timing: long benchmark sessions see CPU frequency drift,
    # which bends single-shot measurements without touching the min
    result = tabulate(run, repeats=3)
    sizes = result.column("file_bytes")
    times = result.column("time_seconds")
    _slope, _intercept, r2 = fit_linearity(sizes, times)
    assert r2 >= 0.97, f"transform time not linear in size (R^2={r2:.4f})"


def test_e4_transform_kernel(benchmark):
    data = walk_grid_int32_triples(20)
    cfg = StrideConfig(max_stride=60)
    benchmark(forward_transform, data, cfg)
