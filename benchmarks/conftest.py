"""Shared benchmark fixtures.

Every bench regenerates one paper artifact via its harness in
:mod:`repro.experiments`, prints the paper-vs-measured table, and saves
it under ``benchmarks/results/`` so output survives pytest capture.
"""

import os

import pytest


@pytest.fixture
def report():
    """Print an ExperimentResult table and persist it to results/."""
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)

    def _report(result, filename: str | None = None):
        table = result.format_table()
        print("\n" + table)
        name = filename or result.experiment.replace("/", "_").lower()
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "a") as fh:
            fh.write(table + "\n\n")
        return result

    return _report


@pytest.fixture
def tabulate(benchmark, report):
    """Run an experiment harness once under the benchmark fixture.

    Table-regenerating tests must participate in ``--benchmark-only``
    runs (the harness IS the benchmark), so they time a single run via
    ``benchmark.pedantic`` and then print/persist the resulting table.
    """

    def _tabulate(fn, *args, filename: str | None = None, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(*args, **kwargs), rounds=1, iterations=1)
        return report(result, filename)

    return _tabulate
