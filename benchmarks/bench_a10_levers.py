"""A10 -- combiners vs key aggregation as intermediate-data levers.

Asserted shape: both levers shrink the algebraic query's materialized
bytes versus no lever; aggregation also shrinks the holistic query,
where no combiner exists -- the structural reason §IV is not redundant
with Hadoop's built-in combiner mechanism.
"""

from repro.experiments.levers import run


def _kib(text: str) -> float:
    value, unit = text.split()
    return float(value.replace(",", "")) * {
        "B": 1 / 1024, "KiB": 1, "MiB": 1024, "GiB": 1 << 20}[unit]


def test_a10_both_levers_work_where_applicable(tabulate):
    result = tabulate(run)
    rows = {(r["query"], r["lever"]): _kib(r["materialized"])
            for r in result.rows}
    mean_none = rows[("mean (algebraic)", "none")]
    assert rows[("mean (algebraic)", "combiner")] < mean_none
    assert rows[("mean (algebraic)", "aggregation")] < mean_none
    median_none = rows[("median (holistic)", "none")]
    assert rows[("median (holistic)", "aggregation")] < median_none


def test_a10_no_combiner_row_for_median(tabulate):
    result = tabulate(run, side=20, filename="a10_small")
    levers = {r["lever"] for r in result.rows if "median" in r["query"]}
    assert levers == {"none", "aggregation"}
