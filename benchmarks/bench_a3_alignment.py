"""A3 -- alignment-padding ablation (§IV-C).

Paper: expanding keys to an alignment raises the chance that
overlapping keys are equal (fewer reducer-side splits) but "adds
complexity [and] storage overhead", and "no alignment is large enough
to completely eliminate overlap" for sliding windows.  Asserted: splits
are non-increasing with alignment but never reach zero; storage grows.
"""

from repro.experiments.ablations import run_alignment


def test_a3_alignment_trades_splits_for_space(tabulate):
    result = tabulate(run_alignment)
    splits = result.column("reduce_key_splits")
    # more alignment, fewer (or equal) overlap splits
    assert splits[-1] <= splits[0]
    # the paper's caveat: sliding windows always straddle boundaries
    assert all(s > 0 for s in splits)


def test_a3_unaligned_has_most_splits(benchmark):
    result = benchmark.pedantic(
        lambda: run_alignment(alignments=[1, 64]), rounds=1, iterations=1)
    splits = result.column("reduce_key_splits")
    assert splits[1] <= splits[0]
