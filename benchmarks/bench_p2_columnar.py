"""P2 -- columnar fast path vs the scalar record pipeline.

Three claims pinned here.  First, the columnar path is a correct
drop-in: every scalar/columnar pair in the table has identical map
counters (full byte-identity is proven in
``tests/mapreduce/test_columnar_equivalence.py``).  Second, it is the
promised perf win: map-phase throughput (records/sec through
map + sort + spill) on the sliding-window workload must beat the scalar
path by >= 5x at the Fig 8 grid size (>= 2x at smoke scale, where fixed
per-task costs weigh more).  Third, it is never a loss: on the E7
aggregation workload -- which stays on the per-record path by design --
the columnar flag must not slow the job down (a noise margin on a
best-of-3 timing, since the two runs execute identical code).

The measured numbers are written to ``benchmarks/results/p2.json``
every run, and to the repo-root ``BENCH_P2.json`` perf-trajectory
baseline when run at paper scale (REPRO_SCALE=1.0, side >= 100).
"""

import json
import os

from repro.experiments.common import scaled
from repro.experiments.p2_columnar import run

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
WINDOW = 3
NUM_MAP_TASKS = 4
REPEATS = 3


def _rows(result, workload: str) -> dict[str, dict]:
    return {r["path"]: r for r in result.rows if r["workload"] == workload}


def _as_json(result, side: int) -> dict:
    workloads = {}
    for name in dict.fromkeys(result.column("workload")):
        rows = _rows(result, name)
        workloads[name] = {
            "map_records": rows["scalar"]["map_records"],
            "scalar": {
                "seconds": rows["scalar"]["seconds"],
                "records_per_s": rows["scalar"]["records_per_s"],
            },
            "columnar": {
                "seconds": rows["columnar"]["seconds"],
                "records_per_s": rows["columnar"]["records_per_s"],
            },
            "speedup": float(rows["columnar"]["speedup"].rstrip("x")),
            "counters_identical": all(
                r["counters"] == "identical" for r in rows.values()),
        }
    return {
        "experiment": "P2",
        "metric": "map-phase throughput (run_map_task: map+sort+spill), "
                  "best of %d" % REPEATS,
        "side": side,
        "window": WINDOW,
        "num_map_tasks": NUM_MAP_TASKS,
        "workloads": workloads,
    }


def test_p2_columnar_throughput(tabulate):
    side = scaled(100, default_scale=0.3)
    result = tabulate(run, side=side, window=WINDOW,
                      num_map_tasks=NUM_MAP_TASKS, repeats=REPEATS,
                      filename="p2")

    # drop-in: identical map counters on every workload
    assert all(c == "identical" for c in result.column("counters"))

    # the win: sliding-window map throughput (the acceptance bar is 5x
    # at the Fig 8 grid size; smoke grids carry more fixed overhead)
    sliding = _rows(result, "sliding-median")
    floor = 5.0 if side >= 100 else 2.0
    assert float(sliding["columnar"]["speedup"].rstrip("x")) >= floor
    subset = _rows(result, "e7-subset-plain")
    assert float(subset["columnar"]["speedup"].rstrip("x")) > 1.0

    # never a loss: the E7 aggregation workload must not get slower
    # (both rows run the identical per-record plugin path; the margin
    # only absorbs timer noise on a best-of-N measurement)
    agg = _rows(result, "e7-subset-aggregate")
    assert agg["columnar"]["seconds"] <= agg["scalar"]["seconds"] * 1.25

    payload = _as_json(result, side)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "p2.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    if side >= 100:
        # paper scale: refresh the committed perf-trajectory baseline
        with open(os.path.join(REPO_ROOT, "BENCH_P2.json"), "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
