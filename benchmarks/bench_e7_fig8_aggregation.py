"""E7 -- Fig 8: key aggregation's effect on total intermediate data size.

Paper (10^6-cell int32 grid, ideal single-mapper case): values 3.81 MB
stay, keys collapse to 5.84 KB, total reduction up to 84.5%.

Shape asserted: reduction within a few points of 84.5% (it is exactly
84.5% at default scale -- the decomposition is scale-stable), values
unchanged within rounding, keys shrink by >99%.
"""

import numpy as np

from repro.core.aggregation import AggregationConfig, Aggregator
from repro.experiments.fig8_aggregation import run
from repro.mapreduce.api import MapContext
from repro.mapreduce.metrics import Counters
from repro.mapreduce.serde import BytesSerde
from repro.scidata import Slab


def test_e7_reduction_matches_paper(tabulate):
    result = tabulate(run)
    note = result.notes[0]
    reduction = float(note.split("reduction: ")[1].split("%")[0])
    assert 80.0 <= reduction <= 88.0  # paper: up to 84.5%


def test_e7_keys_collapse(benchmark):
    result = benchmark.pedantic(lambda: run(side=50), rounds=1, iterations=1)
    plain = result.row_by("mode", "plain")
    agg = result.row_by("mode", "aggregate")
    # records: one per cell -> a handful of ranges
    assert agg["records"] < plain["records"] / 100


def test_e7_aggregation_kernel(benchmark):
    """Time the aggregation buffer flush on a 64k-cell slab."""
    cfg = AggregationConfig(curve="zorder", ndim=3, bits=6, dtype="int32",
                            buffer_cells=1 << 22)
    slab = Slab((0, 0, 0), (40, 40, 40))
    coords = slab.coords()
    values = np.arange(coords.shape[0], dtype=np.int32)
    sink_count = [0]

    def run_once():
        ctx = MapContext(BytesSerde(), BytesSerde(),
                         lambda k, v: sink_count.__setitem__(0, sink_count[0] + 1),
                         Counters())
        agg = Aggregator(cfg, 0, ctx)
        agg.add(coords, values)
        agg.close()
        return agg

    agg = benchmark(run_once)
    assert agg.emitted_cells == coords.shape[0]
