"""A6 -- key-splitting inflation and reducer-side re-aggregation.

Answers the two questions §IV-B leaves open: how much key splitting
inflates the aggregate-key count, and whether further aggregation
(implemented per the paper's proposal) is worth it.  Asserted:
splitting inflates the key count; re-aggregation reduces the reducer's
key stream without changing any result (the harness itself verifies
output equality).
"""

from repro.experiments.key_splitting import run


def test_a6_splitting_inflates_and_reagg_recovers(tabulate):
    result = tabulate(run)
    rows = {r["stage"]: r for r in result.rows}
    assert (rows["after_overlap_split"]["without_reagg"]
            > rows["mapper_keys"]["without_reagg"])
    assert (rows["reduce_stream_keys"]["with_reagg"]
            < rows["after_overlap_split"]["with_reagg"])
    assert (rows["reduce_groups"]["with_reagg"]
            <= rows["reduce_groups"]["without_reagg"])


def test_a6_routing_split_contributes(tabulate):
    result = tabulate(run, side=32, num_map_tasks=4, num_reducers=4,
                      filename="a6_small")
    rows = {r["stage"]: r for r in result.rows}
    assert (rows["after_routing"]["without_reagg"]
            >= rows["mapper_keys"]["without_reagg"])
