"""A1 -- curve-choice ablation (§IV-A, Moon et al.).

Paper claim: the Hilbert curve clusters better than Z-order (fewer
ranges per query box) but has more overhead.  Both halves asserted.
"""

import numpy as np

from repro.experiments.ablations import run_curve_choice
from repro.sfc import HilbertCurve, ZOrderCurve


def test_a1_hilbert_clusters_better_but_costs_more(tabulate):
    result = tabulate(run_curve_choice)
    z = result.row_by("curve", "zorder")
    h = result.row_by("curve", "hilbert")
    assert h["mean_ranges"] <= z["mean_ranges"]          # better clustering
    assert h["encode_us_per_point"] > z["encode_us_per_point"]  # more overhead


def test_a1_zorder_encode_kernel(benchmark):
    curve = ZOrderCurve(3, 10)
    pts = np.random.default_rng(0).integers(0, curve.side, size=(50000, 3))
    benchmark(curve.encode, pts)


def test_a1_hilbert_encode_kernel(benchmark):
    curve = HilbertCurve(3, 10)
    pts = np.random.default_rng(0).integers(0, curve.side, size=(50000, 3))
    benchmark(curve.encode, pts)
