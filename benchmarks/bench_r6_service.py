"""R6 -- multi-tenant job service: crash-safe daemon under chaos.

Pins the service rung of the robustness ladder.  A real ``repro
serve`` daemon (its own process, so the SIGKILL is real) accepts jobs
from three tenants -- one of them carrying injected poison records and
shuffle fetch faults -- is killed mid-flight, restarted over the same
root, and must finish everything it accepted.  The assertions here are
the PR's acceptance criteria:

* no scenario row reads DRIFT;
* the daemon-kill row reads ``recovered``: every job accepted before
  the SIGKILL reaches DONE after the restart, with committed output
  *and* counters byte-identical to a solo serial run of the same spec
  -- including the poisoned/skipping job and the fetch-fault job;
* every admission budget sheds with its own structured error and the
  right HTTP status: per-tenant queue bound (``TENANT_OVERLOADED``
  429, retry hint set), global queue bound (``OVERLOADED`` 429), and
  the job-size cap (``JOB_TOO_LARGE`` 413, no retry hint -- waiting
  will not help);
* the cancel round-trip lands a queued job in ``CANCELLED`` and an
  unknown id answers ``NOT_FOUND`` instead of raising.

``REPRO_R6_SECONDS`` bounds the soak (CI's service-chaos job runs the
default slice).
"""

from repro.experiments.r6_service import run


def test_r6_service_chaos(tabulate):
    result = tabulate(run, filename="r6")

    outcomes = result.column("outcome")
    assert all(v != "DRIFT" for v in outcomes)

    # Every accepted job survived the SIGKILL byte-identically.
    chaos = [r for r in result.rows if r["scenario"] == "chaos"]
    assert len(chaos) == 6
    assert all(r["state"] == "DONE" for r in chaos)
    assert all(r["outcome"] == "identical" for r in chaos)
    assert {r["tenant"] for r in chaos} == {"alice", "bob", "carol"}

    assert result.row_by("scenario", "daemon-kill")["outcome"] == "recovered"

    # Structured shedding at each budget.
    tenant_shed = result.row_by("scenario", "shed-tenant")
    assert tenant_shed["outcome"] == "shed"
    assert "TENANT_OVERLOADED" in tenant_shed["detail"]
    global_shed = result.row_by("scenario", "shed-global")
    assert global_shed["outcome"] == "shed"
    assert "OVERLOADED" in global_shed["detail"]
    cap = result.row_by("scenario", "shed-job-cap")
    assert cap["outcome"] == "shed"
    assert "JOB_TOO_LARGE" in cap["detail"]

    # Cancel smoke: queued -> CANCELLED, unknown id -> NOT_FOUND.
    cancels = [r for r in result.rows if r["scenario"] == "cancel"]
    assert any(r["state"] == "CANCELLED" for r in cancels)
    assert all(r["outcome"] in ("cancelled", "shed") for r in cancels)
