"""P3 -- pipelined shuffle: overlap map, fetch, and reduce-side merge.

Two tests pin the PR's claims.  The matrix test is the identity story:
pipelined execution (reducers admitted alongside late maps, fetching
each producer's segments as it commits) must be byte-identical to the
barrier on every query x transport, through a hung straggler rescued
by starvation-triggered speculation, and through a whole-host crash
mid-pipeline that forces already-fetched runs to be discarded and
refetched at the bumped epoch.

The wall-clock test is the perf story, run under the conditions
pipelining exists for: shuffle transfers that take real time (an
injected per-link wire latency, fetched serially -- a congested
network) plus one hung map, speculation off in both modes.  The
barrier pays map phase, hang, and every transfer end to end; the
pipeline hides the transfers inside the map phase and the hang.
Pipelined wall-clock must not exceed the barrier's on either
transport, and must beat it by >= 1.2x at paper scale.

The measured numbers are written to ``benchmarks/results/p3.json``
every run, and to the repo-root ``BENCH_P3.json`` perf-trajectory
baseline when run at paper scale (REPRO_SCALE=1.0, side >= 200).
"""

import json
import os

from repro.experiments.common import scaled
from repro.experiments.p3_pipeline import run, run_bench

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
NUM_MAP_TASKS = 8
NUM_REDUCERS = 2
STRAGGLER_SECONDS = 3.0
LINK_DELAY_SECONDS = 0.3
REPEATS = 3


def test_p3_pipeline_matrix(tabulate):
    result = tabulate(run, filename="p3")

    outcomes = result.column("outcome")
    assert all(v not in ("DRIFT", "failed") for v in outcomes)

    # Clean equivalence: every query x transport, full-counter identity.
    clean = [r for r in result.rows if r["scenario"] == "clean"]
    assert len(clean) == 6
    assert all(r["outcome"] == "identical" for r in clean)

    # The off switch changes nothing but wall-clock shape.
    barrier = [r for r in result.rows if r["scenario"] == "barrier"]
    assert barrier and all(r["outcome"] == "identical" for r in barrier)

    # A hung straggler is speculated away by starved reducers, with
    # real measured overlap and full-counter identity (a hang damages
    # nothing, so not even the fetch counters may move).
    stragglers = [r for r in result.rows if r["scenario"] == "straggler"]
    assert len(stragglers) == 2
    assert all(r["outcome"] == "identical" for r in stragglers)
    assert all(r["overlap"] > 0 for r in stragglers)

    # Whole-host loss mid-pipeline: discard + refetch at the bumped
    # epoch, identical output, host accounting intact.
    crashes = [r for r in result.rows if r["scenario"] == "host-crash"]
    assert len(crashes) == 2
    assert all(r["outcome"] == "recovered" for r in crashes)


def _as_json(result, side: int) -> dict:
    rows = {(r["transport"], r["mode"]): r for r in result.rows}
    transports = {}
    for transport in ("direct", "network"):
        barrier = rows[(transport, "barrier")]
        pipelined = rows[(transport, "pipelined")]
        transports[transport] = {
            "barrier_seconds": barrier["seconds"],
            "pipelined_seconds": pipelined["seconds"],
            "speedup": round(barrier["seconds"] / pipelined["seconds"], 3),
            "overlapped_fetches": pipelined["overlap"],
            "first_fetch_ms": pipelined["first_fetch_ms"],
            "bytes_identical": all(
                r["outcome"] == "identical" for r in (barrier, pipelined)),
        }
    return {
        "experiment": "P3",
        "metric": "end-to-end wall-clock, one map hung "
                  f"{STRAGGLER_SECONDS}s, every map->reduce link delayed "
                  f"{LINK_DELAY_SECONDS}s (fetch concurrency 1), "
                  f"speculation off, best of {REPEATS} interleaved",
        "side": side,
        "num_map_tasks": NUM_MAP_TASKS,
        "num_reducers": NUM_REDUCERS,
        "straggler_seconds": STRAGGLER_SECONDS,
        "link_delay_seconds": LINK_DELAY_SECONDS,
        "transports": transports,
    }


def test_p3_pipeline_wallclock(tabulate):
    side = scaled(200, default_scale=0.2, minimum=40)
    result = tabulate(
        run_bench, side=side, num_map_tasks=NUM_MAP_TASKS,
        num_reducers=NUM_REDUCERS, straggler_seconds=STRAGGLER_SECONDS,
        link_delay_seconds=LINK_DELAY_SECONDS,
        repeats=REPEATS, filename="p3_bench")

    # Identity first: the pipeline may only move wall-clock.
    assert all(r["outcome"] == "identical" for r in result.rows)
    rows = {(r["transport"], r["mode"]): r for r in result.rows}

    # The pipelined rows really overlapped (fetches completed while a
    # producer was still outstanding) and started fetching well before
    # the straggler resolved.
    for transport in ("direct", "network"):
        pipelined = rows[(transport, "pipelined")]
        assert pipelined["overlap"] > 0
        assert pipelined["first_fetch_ms"] is not None
        assert pipelined["first_fetch_ms"] < STRAGGLER_SECONDS * 1000

    # The perf claim: pipelined <= barrier on both transports (the
    # hidden transfer latency is sleep-shaped, so the signal survives
    # CPU noise even on smoke grids), and a real >= 1.2x win at paper
    # scale where the full link matrix is in play.
    for transport in ("direct", "network"):
        barrier = rows[(transport, "barrier")]["seconds"]
        pipelined = rows[(transport, "pipelined")]["seconds"]
        assert pipelined <= barrier
        if side >= 200:
            assert barrier / pipelined >= 1.2

    payload = _as_json(result, side)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "p3.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    if side >= 200:
        # paper scale: refresh the committed perf-trajectory baseline
        with open(os.path.join(REPO_ROOT, "BENCH_P3.json"), "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
