"""E9 -- Figs 5/6/7: the illustrative mechanics, regenerated and checked."""

import numpy as np

from repro.core.aggregation import ValueBlock, split_overlaps
from repro.experiments.figures_5_6_7 import run_fig5, run_fig6, run_fig7
from repro.mapreduce.keys import RangeKey


def test_fig5_ambiguity(tabulate):
    result = tabulate(run_fig5)
    counts = result.column("aggregate_keys")
    assert counts[0] != counts[1], "grouping choice must change key count"


def test_fig6_matches_paper_example(tabulate):
    result = tabulate(run_fig6)
    assert result.column("rendered") == ["1-2", "7", "9-10", "13"]


def test_fig7_overlap_split(tabulate):
    result = tabulate(run_fig7)
    counts = result.column("count")
    starts = result.column("start")
    assert len(counts) == 4
    # the overlap strip appears twice with identical extent
    assert starts.count(100) == 2


def test_fig7_split_kernel(benchmark):
    pairs = [
        (RangeKey("v", i * 50, 120),
         ValueBlock(120, np.arange(120)))
        for i in range(20)
    ]
    out = benchmark(split_overlaps, list(pairs))
    assert len(out) >= len(pairs)
