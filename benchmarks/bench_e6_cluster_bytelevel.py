"""E6 -- §III-E cluster result: the byte-level codec's bytes/runtime trade.

Paper (5 nodes, 10 map slots, 5 reducers, sliding median): intermediate
data -77.8% (55.5 -> 12.3 GB) but total runtime +106% (183 -> 377 min),
because the transform costs ~2.9x gzip.

Shape asserted: materialized bytes drop by >60%, and under the
native-parity runtime model (transform CPU = 2.9x gzip, the paper's own
ratio) simulated runtime *increases* versus the uncompressed baseline.
"""

from repro.experiments.cluster_runs import run
from repro.mapreduce.engine import LocalJobRunner
from repro.queries.sliding_median import SlidingMedianQuery
from repro.scidata import integer_grid

_RESULT_CACHE = {}


def _shared_result():
    """E6 and E8 share one (expensive) three-config run."""
    if "r" not in _RESULT_CACHE:
        _RESULT_CACHE["r"] = run()
    return _RESULT_CACHE["r"]


def test_e6_bytes_and_runtime_shape(tabulate):
    result = tabulate(_shared_result, filename="e6_e8_cluster")
    rows = {r["config"]: r for r in result.rows}
    bytelevel = rows["byte-level codec (E6, stride+zlib)"]
    assert bytelevel["delta_bytes_pct"] < -60.0  # paper: -77.8%
    assert bytelevel["delta_runtime_parity_pct"] > 25.0  # paper: +106%


def test_e6_map_task_kernel(benchmark):
    """Time one plain-mode sliding-median map+shuffle at small scale."""
    grid = integer_grid((24, 24), seed=2)
    query = SlidingMedianQuery(grid, "values", window=3)
    job = query.build_job("plain", num_map_tasks=2, num_reducers=2)

    def run_job():
        return LocalJobRunner().run(job, grid)

    result = benchmark.pedantic(run_job, rounds=3, iterations=1)
    assert len(result.output) == 576
