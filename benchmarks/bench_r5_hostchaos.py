"""R5 -- host failure domains: crashes, partitions, disk failover.

Pins the host-level rung of the robustness ladder.  Tasks and segment
servers are spread over simulated hosts by a stable hash, and whole
hosts are failed under the job: killed at the shuffle barrier,
partitioned off the network, or given a failing workdir disk.  The
assertions here are the PR's acceptance criteria:

* no scenario row reads DRIFT -- serial and parallel runners agree
  byte-for-byte on output, counters, and quarantine side-files, and
  every successful run matches the serial/direct baseline exactly;
* with health monitoring always on, the clean path retries nothing,
  loses nothing, and fails nothing over;
* a whole-host crash re-executes exactly the completed maps homed on
  the dead host (``HOSTS_LOST`` / ``MAPS_REEXECUTED_HOST`` nonzero)
  with intact output, on every transport;
* a network partition heals through the per-link retry ladder without
  the host ever being declared dead: retries nonzero, hosts_lost zero;
* a disk fault fails every task homed on the host over to its spare
  volume (``DISK_FAILOVERS`` nonzero) with deterministic quarantine
  side-files, identical between runners;
* a zero ``max_host_reexecs`` budget turns a host crash into a clean,
  consistent job failure instead of a re-execution cascade.

``REPRO_R5_FUZZ`` / ``REPRO_R5_SECONDS`` bound the seeded fuzz tail
(CI's host-chaos job runs a small slice through both runners).
"""

from repro.experiments.r5_hostchaos import run


def test_r5_host_chaos(tabulate):
    result = tabulate(run, filename="r5")

    outcomes = result.column("outcome")
    assert all(v != "DRIFT" for v in outcomes)

    # Monitoring on, faults off: nothing retried, lost, or failed over.
    clean = [r for r in result.rows if r["scenario"] == "clean-monitored"]
    assert len(clean) >= 3
    assert all(r["outcome"] == "identical" for r in clean)
    assert all(r["retries"] == 0 and r["hosts_lost"] == 0
               and r["failovers"] == 0 for r in clean)

    # A host crash re-executes its maps on every transport.
    crashes = [r for r in result.rows if r["scenario"] == "host-crash"]
    assert len(crashes) == 3
    for row in crashes:
        assert row["outcome"] == "reexecuted"
        assert row["hosts_lost"] >= 1
        assert row["host_reexecs"] >= 1

    # A partition heals in-attempt; the host is never declared dead.
    partitions = [r for r in result.rows
                  if r["scenario"] == "host-partition"]
    assert len(partitions) == 3
    for row in partitions:
        assert row["outcome"] == "identical"
        assert row["retries"] > 0
        assert row["hosts_lost"] == 0

    # Disk faults fail over with deterministic quarantine side-files.
    disks = [r for r in result.rows if r["scenario"] == "disk-fault"]
    assert len(disks) == 3
    for row in disks:
        assert row["outcome"] == "identical"
        assert row["failovers"] > 0
        assert row["quarantine"] > 0

    # Compound chaos still lands on the re-execution rung.
    assert result.row_by("scenario", "compound")["outcome"] == "reexecuted"

    # A zero budget fails the job the same way in both runners.
    assert result.row_by("scenario", "bounded")["outcome"] == "failed"
