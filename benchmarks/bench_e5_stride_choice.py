"""E5 -- §III's stride-choice comparisons.

Paper (on the Fig 3 dataset): user-specified single stride 12 -> 1619
bytes under bzip2; brute-force all strides < 100 -> 701 bytes; the
adaptive algorithm -> 468 bytes (better than exhaustive, to the
authors' surprise).  Brute force is ~4x slower than adaptive at max
stride 100.

Shape asserted: adaptive <= brute force <= single-stride compressed
sizes (the paper's ordering), and brute force is slower than adaptive.
"""

from repro.core.stride import StrideConfig, forward_transform, fixed_forward_transform
from repro.experiments.fig3_table import run_stride_choice
from repro.scidata import walk_grid_int32_triples


def test_e5_regime_ordering(tabulate):
    result = tabulate(run_stride_choice)
    single = result.row_by("regime", "single stride 12 (user-specified)")
    brute = result.row_by("regime", "all strides < 100 (brute force)")
    adaptive = result.row_by("regime", "adaptive (§III-A)")
    # The paper's surprising finding, which we reproduce: the adaptive
    # algorithm compresses no worse than the exhaustive full set.
    assert adaptive["bz2_bytes"] <= brute["bz2_bytes"]
    # Its cost ordering too: brute force pays for its exhaustiveness.
    assert brute["time_seconds"] > adaptive["time_seconds"]
    # Documented deviation (EXPERIMENTS.md E5): the paper measured the
    # user-specified single stride as the *worst* regime (1619 B); with
    # our delta-tracking it is the best.  We only require all regimes to
    # land in the same compressed-size ballpark.
    sizes = [single["bz2_bytes"], brute["bz2_bytes"], adaptive["bz2_bytes"]]
    assert max(sizes) < 10 * min(sizes)


def test_e5_single_stride_kernel(benchmark):
    data = walk_grid_int32_triples(14)
    benchmark(fixed_forward_transform, data, [12])


def test_e5_adaptive_kernel(benchmark):
    data = walk_grid_int32_triples(14)
    benchmark(forward_transform, data, StrideConfig(max_stride=100))
