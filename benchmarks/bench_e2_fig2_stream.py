"""E2 -- Fig 2: the serialized key stream and its dominant sequences.

Paper: the `windspeed1` key stream is almost-identical byte runs; the
figure highlights a detected sequence (delta=0x0a, s=47, phi=34 in the
paper's SequenceFile framing).  Our IFile framing pitches records at 33
bytes; the detector must find that pitch (or a multiple) with perfect
hold rate, including a delta=0x01 sequence at the advancing coordinate
byte.
"""

from repro.core.stride import dominant_sequences
from repro.experiments.fig2_stream import key_stream, run, run_seqfile


def test_e2_seqfile_framing_reproduces_stride_47(tabulate):
    """With the paper's own container (SequenceFile + LongWritable
    coordinates) the detector reports exactly the figure's s=47."""
    result = tabulate(run_seqfile, filename="e2_seqfile")
    assert set(result.column("stride")) == {47}


def test_e2_report(tabulate):
    result = tabulate(run, side=12)
    strides = result.column("stride")
    # the record pitch (33 bytes) or a multiple must dominate
    assert any(s % 33 == 0 for s in strides)
    assert all(rate > 0.6 for rate in result.column("hold_rate"))


def test_e2_advancing_byte_has_nonzero_delta(benchmark):
    data = key_stream(side=12)
    reports = benchmark.pedantic(
        lambda: dominant_sequences(data, max_stride=100, top=200,
                                   min_hold_rate=0.6),
        rounds=1, iterations=1)
    deltas = {r.delta for r in reports if r.stride % 33 == 0}
    assert 0x01 in deltas  # the fastest-varying coordinate byte

def test_e2_detection_throughput(benchmark):
    data = key_stream(side=12)
    reports = benchmark(dominant_sequences, data, 100, 5, 0.6)
    assert reports
