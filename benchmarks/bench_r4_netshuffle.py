"""R4 -- network shuffle: segment servers and on-the-wire compression.

Pins the network half of the shuffle robustness story.  Map outputs
are served over real loopback TCP by per-worker segment servers, wire
faults are injected server-side against the live socket, and segment
bytes are optionally compressed on the wire with the paper's §III
stride codec.  The assertions here are the PR's acceptance criteria:

* no scenario row reads DRIFT -- serial and parallel runners agree
  byte-for-byte on output and counters (wire counters included), and
  every successful run matches the serial/direct baseline exactly;
* the stride-predictor wire codec measurably shrinks the wire:
  ``SHUFFLE_WIRE_BYTES`` under ``fastpred+zlib`` is strictly below the
  NullCodec's (which must equal the raw segment bytes -- verbatim
  sendfile serving costs nothing);
* every wire fault (flip / drop / truncate / delay / stall) against a
  live socket is healed with identical output;
* a sticky epoch-0 fault escalates to map re-execution through the
  graceful drain (``MAPS_REEXECUTED`` nonzero, output intact);
* killing a segment server mid-job escalates the same way, and the
  re-registration revives the server -- the job still completes
  identically.

``REPRO_R4_FUZZ`` / ``REPRO_R4_SECONDS`` bound the seeded fuzz tail
(CI's network-chaos job runs a small slice through both runners).
"""

from repro.experiments.r4_netshuffle import run


def test_r4_network_shuffle(tabulate):
    result = tabulate(run, filename="r4")

    outcomes = result.column("outcome")
    assert all(v != "DRIFT" for v in outcomes)

    # The wire-codec sweep: null serves verbatim (wire == raw), the
    # stride codec compresses the same bytes strictly smaller.
    codec_rows = {r["codec"]: r for r in result.rows
                  if r["scenario"] == "wire-codec"}
    assert codec_rows["null"]["wire_bytes"] == codec_rows["null"]["raw_bytes"]
    assert (codec_rows["fastpred+zlib"]["wire_bytes"]
            < codec_rows["null"]["wire_bytes"])
    assert all(r["outcome"] == "identical" for r in codec_rows.values())

    # Clean equivalence over the network: every query, zero retries.
    clean = [r for r in result.rows if r["scenario"] == "clean-network"]
    assert len(clean) >= 3
    assert all(r["outcome"] == "identical" for r in clean)
    assert all(r["retries"] == 0 for r in clean)

    # Every wire fault against the live socket heals.
    for op in ("flip", "drop", "truncate", "delay", "stall"):
        row = result.row_by("scenario", f"wire-{op}")
        assert row["outcome"] == "identical"

    # Epoch escalation and server loss both land on the re-execution
    # rung with intact output.
    assert result.row_by("scenario", "reexec-map")["outcome"] == "reexecuted"
    assert result.row_by("scenario", "server-loss")["outcome"] == "reexecuted"
