"""R3 -- shuffle transport: fetch retries and map re-execution.

Pins the transfer-level half of the robustness story.  The harness
fetches every map segment through the fault-injectable channel
transport, damages the stream in flight (flips, drops, truncations,
delays, stalls), and escalates permanently unfetchable segments into
re-execution of the completed source map.  The assertions here are the
PR's acceptance criteria:

* no scenario row reads DRIFT -- serial and parallel runners agree
  byte-for-byte on output and counters, and every successful run
  matches the serial/direct baseline exactly;
* the clean matrix covers all queries x both runners x both transports
  with *full* counter equality (the channel clean path costs nothing);
* transient wire damage is absorbed by retries (``SHUFFLE_RETRIES``
  nonzero, output identical);
* at least one scenario escalates to map re-execution
  (``MAPS_REEXECUTED`` nonzero) and still produces identical output;
* a fault no re-execution can out-run fails the job in *both* runners
  (bounded escalation, never a hang or a silent wrong answer).

``REPRO_R3_FUZZ`` / ``REPRO_R3_SECONDS`` bound the seeded fuzz tail
(CI's shuffle-chaos job runs a small slice through both runners).
"""

from repro.experiments.r3_shuffle import run


def test_r3_shuffle_transport(tabulate):
    result = tabulate(run, filename="r3")

    outcomes = result.column("outcome")
    assert all(v != "DRIFT" for v in outcomes)

    # Clean equivalence: every query over both transports, no damage.
    clean = [r for r in result.rows if r["scenario"].startswith("clean-")]
    assert len(clean) >= 6
    assert all(r["outcome"] == "identical" for r in clean)
    assert all(r["retries"] == 0 for r in clean)

    # Transient wire damage must be absorbed by retries.
    retried = [r for r in result.rows
               if r["outcome"] == "identical" and r["retries"] > 0]
    assert len(retried) >= 4

    # The escalation rung: a completed map re-executed, output intact.
    assert any(r["outcome"] == "reexecuted" and r["reexecs"] >= 1
               for r in result.rows)

    # Bounded escalation: the hopeless case fails (in both runners --
    # disagreement would read DRIFT).
    assert any(r["outcome"] == "failed" for r in result.rows)
