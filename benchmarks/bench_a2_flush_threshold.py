"""A2 -- flush-threshold ablation (§IV-A).

Paper: bounded aggregation buffers mean "keys generated after a flush
cannot be aggregated with keys generated before a flush, but the effect
should be minimal."  Asserted: shrinking the buffer by three orders of
magnitude costs < 25% extra materialized bytes.
"""

from repro.experiments.ablations import run_flush_threshold


def _kib(text: str) -> float:
    value, unit = text.split()
    value = float(value.replace(",", ""))
    return value * {"B": 1 / 1024, "KiB": 1, "MiB": 1024, "GiB": 1 << 20}[unit]


def test_a2_effect_is_minimal(tabulate):
    result = tabulate(run_flush_threshold)
    sizes = [_kib(row["materialized"]) for row in result.rows]
    smallest_buffer, largest_buffer = sizes[0], sizes[-1]
    assert smallest_buffer <= largest_buffer * 1.25
    # monotone-ish: bigger buffers never aggregate worse
    assert sizes[-1] == min(sizes)


def test_a2_records_decrease_with_buffer(benchmark):
    result = benchmark.pedantic(run_flush_threshold, rounds=1, iterations=1)
    records = result.column("map_output_records")
    assert records[-1] <= records[0]
