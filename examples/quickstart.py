#!/usr/bin/env python3
"""Quickstart: run one MapReduce job and see what key compression buys.

Builds a small synthetic integer grid, runs the paper's sliding-median
query twice -- once with Hadoop-style per-cell keys, once with §IV key
aggregation -- and prints the intermediate-data counters the paper
reports ("Map output materialized bytes").

Run:  python examples/quickstart.py
"""

from repro.experiments.common import fmt_bytes
from repro.mapreduce import LocalJobRunner
from repro.mapreduce.metrics import C
from repro.queries import SlidingMedianQuery
from repro.scidata import integer_grid


def main() -> None:
    # 1. A synthetic scientific dataset: a 48x48 grid of int32 samples.
    grid = integer_grid((48, 48), seed=42)
    print(f"input: {grid.total_cells():,} cells, "
          f"{fmt_bytes(grid.total_value_bytes())} of values")

    # 2. The paper's query: median over a sliding 3x3 window (holistic,
    #    so every window member crosses the shuffle).
    query = SlidingMedianQuery(grid, "values", window=3)

    # 3. Run it both ways on the same engine.
    runner = LocalJobRunner()
    results = {}
    for mode in ["plain", "aggregate"]:
        job = query.build_job(mode, num_map_tasks=4, num_reducers=2)
        results[mode] = runner.run(job, grid)
        res = results[mode]
        print(f"\n--- {mode} mode ---")
        print(f"  map output records:        "
              f"{res.counters[C.MAP_OUTPUT_RECORDS]:,}")
        print(f"  map output materialized:   "
              f"{fmt_bytes(res.materialized_bytes)}")
        print(f"  key bytes / value bytes:   "
              f"{fmt_bytes(res.map_output_stats.key_bytes)} / "
              f"{fmt_bytes(res.map_output_stats.value_bytes)}")
        print(f"  output cells:              {len(res.output):,}")

    # 4. Same answers, smaller shuffle.
    plain = {k.coords: v for k, v in results["plain"].output}
    agg = {k.coords: v for k, v in results["aggregate"].output}
    assert plain == agg, "modes must agree"
    saved = 1 - results["aggregate"].materialized_bytes / \
        results["plain"].materialized_bytes
    print(f"\nidentical results; aggregation cut intermediate data by "
          f"{saved:.1%} (paper §IV-D measures 60.7% on its cluster)")


if __name__ == "__main__":
    main()
