#!/usr/bin/env python3
"""Key aggregation mechanics, step by step (paper §IV, Figs 5-8).

Walks through the aggregation data path at human scale:

1. number grid cells along a space-filling curve (Fig 6),
2. coalesce contiguous indices into aggregate range keys,
3. split a range at reducer partition boundaries (routing, §IV-B),
4. split overlapping ranges from two mappers at overlap boundaries
   (Fig 7), and
5. compare curves (Z-order vs Hilbert vs row-major) on clustering.

Run:  python examples/key_aggregation_demo.py
"""

import numpy as np

from repro.core.aggregation import (
    ValueBlock,
    coalesce_indices,
    split_at_boundaries,
    split_overlaps,
)
from repro.mapreduce.keys import RangeKey
from repro.mapreduce.partition import CurveRangePartitioner
from repro.sfc import ZOrderCurve, get_curve
from repro.sfc.stats import box_range_count


def main() -> None:
    # 1. Fig 6: a 4x4 grid numbered by the Z-order curve.
    curve = ZOrderCurve(2, 2)
    print("Z-order numbering of a 4x4 grid:")
    grid = np.zeros((4, 4), dtype=int)
    for idx in range(16):
        x, y = curve.decode_point(idx)
        grid[x][y] = idx
    for row in grid:
        print("   " + " ".join(f"{v:2d}" for v in row))

    # 2. Mark the paper's cells and collapse to ranges.
    marked = curve.decode(np.array([1, 2, 7, 9, 10, 13]))
    indices = np.sort(curve.encode(marked))
    runs = coalesce_indices(indices)
    rendered = ", ".join(
        str(s) if c == 1 else f"{s}-{s + c - 1}" for s, c in runs)
    print(f"\nmarked cells collapse to ranges: {rendered}"
          f"   (paper Fig 6: '1-2, 7, 9-10, 13')")

    # 3. Routing split: a range straddling two reducers' spans.
    part = CurveRangePartitioner(num_reducers=2, curve_size=curve.size)
    key = RangeKey("v", 5, 6)  # spans the boundary at index 8
    block = ValueBlock(6, np.arange(6))
    pieces = split_at_boundaries(key, block, part.split_points())
    print(f"\nrouting: {key} splits at boundary {part.split_points()} into:")
    for pkey, pblock in pieces:
        print(f"   reducer {part.check_range(pkey)} <- {pkey} "
              f"values={pblock.values.tolist()}")

    # 4. Fig 7: overlap splitting of two mappers' halo outputs.
    a = RangeKey("v", 0, 10)
    b = RangeKey("v", 6, 10)
    pairs = [
        (a, ValueBlock(10, np.arange(10))),
        (b, ValueBlock(10, np.arange(10) + 100)),
    ]
    print(f"\noverlapping mapper outputs {a} and {b} split into:")
    for pkey, _ in split_overlaps(pairs):
        print(f"   {pkey}")

    # 5. Curve quality: ranges needed to cover a query box.
    print("\nranges covering an 11x7 box at (3, 5) on a 64x64 grid:")
    for name in ["zorder", "hilbert", "rowmajor"]:
        c = get_curve(name, 2, 6)
        print(f"   {name:<9} {box_range_count(c, (3, 5), (11, 7)):3d} ranges")
    print("\n(Hilbert clusters best -- Moon et al., cited in §IV-A -- "
          "but costs more per encode)")


if __name__ == "__main__":
    main()
