#!/usr/bin/env python3
"""Write your own MapReduce job against the public API.

Implements a query the library does not ship -- per-row minimum of a
variable -- from raw Mapper/Reducer classes, demonstrating the level of
the API a downstream user programs against: serdes, jobs, counters, and
(optionally) intermediate compression via the §III codec.

Run:  python examples/custom_query.py
"""

import numpy as np

from repro.experiments.common import fmt_bytes
from repro.mapreduce import (
    Int32Serde,
    Job,
    LocalJobRunner,
    Mapper,
    Reducer,
)


class RowMinMapper(Mapper):
    """Emit (row index, min of the split's values in that row)."""

    def map(self, split, values, ctx):
        row0 = split.slab.corner[0]
        for i, row in enumerate(values):
            ctx.emit(row0 + i, int(row.min()))


class MinReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, min(values))


def main() -> None:
    from repro.scidata import integer_grid

    grid = integer_grid((64, 64), seed=7)
    job = Job(
        name="row-min",
        mapper=RowMinMapper,
        reducer=MinReducer,
        key_serde=Int32Serde(),
        value_serde=Int32Serde(),
        num_map_tasks=4,
        num_reducers=2,
        codec="stride+zlib",  # the paper's §III codec, one line to enable
    )
    result = LocalJobRunner().run(job, grid)

    # verify against numpy
    truth = grid["values"].data.min(axis=1)
    got = dict(result.output)
    assert all(got[r] == truth[r] for r in range(64))

    print(f"row-min over a 64x64 grid: {len(result.output)} rows")
    print(f"map output materialized: {fmt_bytes(result.materialized_bytes)} "
          f"(codec: {job.codec})")
    print("verified against numpy: OK")


if __name__ == "__main__":
    main()
