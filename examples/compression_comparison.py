#!/usr/bin/env python3
"""Byte-level compression walkthrough (paper §III).

Shows the whole §III pipeline on a serialized key stream:

1. build the stream a mapper would write (framed `windspeed1` cell keys),
2. look at why generic compressors struggle (Fig 2's shifting bytes),
3. apply the adaptive stride transform and compare gzip/bzip2 sizes
   (Fig 3's table), and
4. verify losslessness by inverting the transform.

Run:  python examples/compression_comparison.py
"""

import bz2
import zlib

from repro.core.stride import (
    StrideConfig,
    dominant_sequences,
    forward_transform,
    inverse_transform,
)
from repro.experiments.fig2_stream import hexdump, key_stream
from repro.experiments.common import fmt_bytes


def main() -> None:
    # 1. A mapper's serialized intermediate stream: ~4.6k framed records.
    data = key_stream(side=16, variable="windspeed1")
    print(f"serialized key stream: {fmt_bytes(len(data))}")
    print("\nfirst bytes (cf. the paper's Fig 2):")
    for line in hexdump(data, rows=4):
        print("  " + line)

    # 2. The structure a generic compressor cannot exploit directly:
    #    near-identical records whose changing bytes advance linearly.
    print("\nstrongest linear sequences (stride, phase, delta):")
    for seq in dominant_sequences(data, max_stride=100, top=3):
        print(f"  s={seq.stride:<3} phi={seq.phase:<3} "
              f"delta=0x{seq.delta:02x}  hold rate {seq.hold_rate:.2f}")

    # 3. Transform, then compress (the Fig 3 comparison).
    cfg = StrideConfig(max_stride=100)
    transformed = forward_transform(data, cfg)
    rows = [
        ("gzip", zlib.compress(data, 6)),
        ("transform+gzip", zlib.compress(transformed, 6)),
        ("bzip2", bz2.compress(data, 9)),
        ("transform+bzip2", bz2.compress(transformed, 9)),
    ]
    print(f"\n{'method':<18}{'bytes':>12}{'of original':>14}")
    print(f"{'original':<18}{len(data):>12,}{'100.0%':>14}")
    for name, blob in rows:
        print(f"{name:<18}{len(blob):>12,}{len(blob) / len(data):>13.2%}")

    # 4. Lossless: the inverse transform reconstructs the exact stream.
    assert inverse_transform(transformed, cfg) == data
    print("\ninverse transform verified: byte-identical reconstruction")


if __name__ == "__main__":
    main()
