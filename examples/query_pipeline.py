#!/usr/bin/env python3
"""Multi-stage array query pipeline (SciHadoop-style query processing).

Builds a logical plan -- subset a region of two wind-component fields,
compute their magnitude, then smooth it with a sliding mean -- and
executes it as a chain of MapReduce jobs, once with per-cell keys and
once with §IV key aggregation applied at *every* stage of the pipeline.

Run:  python examples/query_pipeline.py
"""

import numpy as np

from repro.queries import Binary, Source, Subset, Window, execute
from repro.scidata import Dataset, Slab, Variable, windspeed_field


def main() -> None:
    # Two wind components on the same grid.
    ds = Dataset()
    u = windspeed_field((32, 32, 4), name="u_wind", seed=1)["u_wind"]
    v = windspeed_field((32, 32, 4), name="v_wind", seed=2)["v_wind"]
    ds.add(u)
    ds.add(v)

    region = Slab((4, 4, 0), (20, 20, 4))
    plan = Window(
        Binary(
            Subset(Source("u_wind"), region),
            Subset(Source("v_wind"), region),
            op="hypot",                      # wind magnitude
        ),
        op="mean", width=3,                  # spatial smoothing
    )
    print("plan: mean3(hypot(u[region], v[region]))")
    print(f"region: {region} ({region.size:,} cells)\n")

    for mode in ["plain", "aggregate"]:
        out = execute(plan, ds, mode=mode)
        print(f"{mode:>9} mode: result extent {out.extent}, "
              f"mean magnitude {float(out.data.mean()):.3f} m/s")

    # cross-check one interior cell against a manual 3^3 window mean
    mag = np.hypot(u.read(region), v.read(region))
    result = execute(plan, ds, mode="plain")
    li, lj, lk = 6, 6, 2  # region-local coordinates
    local = mag[li - 1:li + 2, lj - 1:lj + 2, lk - 1:lk + 2]
    expected = float(local.mean())
    got = float(result.data[li, lj, lk])
    assert abs(expected - got) < 1e-4, (expected, got)
    print(f"\nspot check at region-local {(li, lj, lk)}: pipeline "
          f"{got:.5f} == numpy {expected:.5f}")


if __name__ == "__main__":
    main()
