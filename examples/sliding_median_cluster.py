#!/usr/bin/env python3
"""Reproduce the paper's cluster experiment end to end (§III-E / §IV-D).

Runs the sliding-median query through the engine under the three
configurations the paper compares -- uncompressed baseline, the §III
byte-level codec, and §IV key aggregation -- on the paper's cluster
layout (5 nodes, 10 map slots, 5 reducers), then prices the measured
task profiles through the cluster simulator.

This is the long-form version of benchmarks/bench_e6*/bench_e8*; run it
directly to see the full table:

    python examples/sliding_median_cluster.py [side]
"""

import sys

from repro.experiments.cluster_runs import PAPER, run


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    print(f"running three sliding-median configurations on a "
          f"{side}x{side} grid (this executes six real map/reduce "
          f"phases; the exact stride codec is pure Python, so be "
          f"patient at larger sides)...\n")
    result = run(side=side)
    print(result.format_table())
    print("\npaper reference points:")
    print(f"  byte-level codec: {PAPER['bytelevel_reduction_pct']}% fewer "
          f"bytes, {PAPER['bytelevel_runtime_delta_pct']:+.0f}% runtime")
    print(f"  key aggregation:  {PAPER['aggregation_reduction_pct']}% fewer "
          f"bytes, {PAPER['aggregation_runtime_delta_pct']:+.1f}% runtime")


if __name__ == "__main__":
    main()
