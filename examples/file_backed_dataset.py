#!/usr/bin/env python3
"""File-backed datasets and metadata-advised compression.

SciHadoop reads NetCDF files; this example saves a synthetic dataset to
the repository's NetCDF-like container, reopens it with lazy
memory-mapped slab reads, runs a query against the file-backed data, and
uses the metadata stride advisor (§III's "derive it from metadata"
alternative) to pre-compute the codec's stride from the file's schema.

Run:  python examples/file_backed_dataset.py
"""

import tempfile
import zlib
from pathlib import Path

from repro.core.stride import advise_strides, fixed_forward_transform
from repro.experiments.fig2_stream import key_stream
from repro.mapreduce import CellKeySerde, LocalJobRunner
from repro.queries import BoxSubsetQuery
from repro.scidata import Slab, open_dataset, save_dataset, windspeed_field


def main() -> None:
    # 1. Save a windspeed field to disk and reopen it lazily.
    ds = windspeed_field((24, 24, 8), seed=11)
    path = Path(tempfile.mkdtemp()) / "windspeed.rnc"
    nbytes = save_dataset(ds, path)
    print(f"saved {path.name}: {nbytes:,} bytes")
    loaded = open_dataset(path)
    var = loaded["windspeed1"]
    print(f"reopened lazily: {var.name} {var.data.shape} "
          f"{var.data.dtype} (memory-mapped)")

    # 2. Query the file-backed data: extract a sub-box through MapReduce.
    box = Slab((4, 4, 0), (8, 8, 8))
    query = BoxSubsetQuery(loaded, "windspeed1", box)
    result = LocalJobRunner().run(
        query.build_job("plain", num_map_tasks=2), loaded)
    print(f"subset query returned {len(result.output):,} cells "
          f"({result.materialized_bytes:,} intermediate bytes)")

    # 3. Metadata-advised stride: from the variable's schema alone,
    #    predict the codec stride -- no byte-stream inspection needed.
    serde = CellKeySerde(ndim=3, variable_mode="name")
    advice = advise_strides(serde, "windspeed1", 4, shape=(12, 12, 12))
    print(f"\nmetadata advises record pitch {advice.record_pitch} bytes, "
          f"candidate strides {advice.candidates}")
    stream = key_stream(side=12)
    advised = fixed_forward_transform(stream, advice.candidates)
    print(f"key stream: gzip {len(zlib.compress(stream, 6)):,} B  ->  "
          f"advised-stride transform + gzip "
          f"{len(zlib.compress(advised, 6)):,} B")


if __name__ == "__main__":
    main()
