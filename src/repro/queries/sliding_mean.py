"""Sliding-window mean: the algebraic counterpart of the median query.

Unlike the median, a mean is partially reducible, so the plain mode can
run a combiner ((sum, count) pairs fold associatively) -- the paper's
data-flow step 3.  Included because it separates two effects the median
conflates: combiners shrink intermediate data by partial reduction,
key aggregation shrinks it by representation.  The ablation benches
compare both levers.
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

from repro.core.aggregation import (
    AggregationConfig,
    AggregateShufflePlugin,
    cells_of_group,
)
from repro.mapreduce.api import Combiner, Mapper, Reducer
from repro.mapreduce.job import Job
from repro.mapreduce.keys import CellKey, CellKeySerde
from repro.mapreduce.serde import Serde
from repro.queries.base import GridQuery, shifted_cells, window_offsets
from repro.util.errors import TruncatedRecordError
from repro.queries.sliding_median import AggregateWindowMapper
from repro.scidata.dataset import Dataset
from repro.scidata.slab import Slab

__all__ = ["SlidingMeanQuery", "SumCountSerde"]

_PAIR = struct.Struct(">dI")


class SumCountSerde(Serde):
    """(sum: float64, count: uint32) partial-aggregate pairs (12 bytes)."""

    SIZE = 12
    _COLUMN = np.dtype([("total", ">f8"), ("count", ">u4")])

    def write(self, obj, out: bytearray) -> None:
        total, count = obj
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        out.extend(_PAIR.pack(float(total), int(count)))

    def read(self, buf, offset: int):
        try:
            total, count = _PAIR.unpack_from(buf, offset)
        except struct.error as exc:
            raise TruncatedRecordError(
                f"truncated {self.SIZE}-byte sum/count pair",
                offset=offset) from exc
        return (total, count), offset + self.SIZE

    def pack_batch(self, values) -> bytes:
        """Vectorized column pack of an ``(n, 2)`` [total, count] array."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"expected (n, 2) [total, count] rows, got {arr.shape}")
        counts = arr[:, 1]
        if counts.size and (counts.min() < 0 or counts.max() >= (1 << 32)):
            raise ValueError("count out of uint32 range")
        col = np.empty(arr.shape[0], dtype=self._COLUMN)
        col["total"] = arr[:, 0]
        col["count"] = counts.astype(np.uint32)
        return col.tobytes()

    def read_column(self, buf, count: int) -> list:
        nbytes = memoryview(buf).nbytes
        if nbytes != count * self.SIZE:
            raise ValueError(
                f"packed column is {nbytes} bytes, expected {count}x{self.SIZE}"
            )
        col = np.frombuffer(buf, dtype=self._COLUMN, count=count)
        return list(zip(col["total"].tolist(), col["count"].tolist()))


class PlainMeanMapper(Mapper):
    """Emit (cell key, (value, 1)) for every covering window."""

    def __init__(self, var_ref: str | int, extent: Slab,
                 offsets: Sequence[tuple[int, ...]]) -> None:
        self.var_ref = var_ref
        self.extent = extent
        self.offsets = offsets

    def map(self, split, values, ctx):
        coords = split.slab.coords()
        flat = values.ravel()
        for offset in self.offsets:
            shifted, kept = shifted_cells(coords, flat, offset, self.extent)
            if shifted.shape[0]:
                pairs = np.empty((kept.shape[0], 2), dtype=np.float64)
                pairs[:, 0] = kept
                pairs[:, 1] = 1
                ctx.emit_cells(self.var_ref, shifted, pairs)


class SumCountCombiner(Combiner):
    """Fold (sum, count) pairs -- the algebraic partial reduce."""

    def combine(self, key, values):
        total = sum(v[0] for v in values)
        count = sum(v[1] for v in values)
        return [(total, count)]


class PlainMeanReducer(Reducer):
    """Final mean from folded (sum, count) pairs."""

    def reduce(self, key, values, ctx):
        total = sum(v[0] for v in values)
        count = sum(v[1] for v in values)
        ctx.emit(key, total / count)


class AggregateMeanReducer(Reducer):
    """Mean per cell over the blocks of one range group."""

    def __init__(self, config: AggregationConfig, origin: tuple[int, ...]) -> None:
        self.config = config
        self.curve = config.make_curve()
        self.origin = np.asarray(origin, dtype=np.int64)

    def reduce(self, key, blocks, ctx):
        coords = self.curve.decode(np.arange(key.start, key.end)) + self.origin
        for off, cell_values in cells_of_group(key, blocks):
            ctx.emit(
                CellKey(key.variable, tuple(int(c) for c in coords[off])),
                float(np.mean(cell_values)),
            )


class SlidingMeanQuery(GridQuery):
    """Builder for plain (+combiner) and aggregate sliding-mean jobs."""

    def __init__(self, dataset: Dataset, variable: str, window: int = 3) -> None:
        super().__init__(dataset, variable)
        self.window = window
        self.offsets = window_offsets(self.extent.ndim, window)

    def expected_output_cells(self) -> int:
        return self.extent.size

    def build_job(self, mode: str = "plain", variable_mode: str = "name",
                  use_combiner: bool = True,
                  agg_overrides: dict | None = None, reaggregate: bool = False,
                  **job_overrides) -> Job:
        var_ref: str | int
        if variable_mode == "name":
            var_ref = self.variable
        else:
            var_ref = self.dataset.names.index(self.variable)
        defaults = dict(name=f"sliding-mean-{mode}", num_reducers=1,
                        num_map_tasks=1,
                        input_variables=(self.variable,))
        defaults.update(job_overrides)

        if mode == "plain":
            extent, offsets = self.extent, self.offsets
            return Job(
                mapper=lambda: PlainMeanMapper(var_ref, extent, offsets),
                reducer=PlainMeanReducer,
                combiner=SumCountCombiner if use_combiner else None,
                key_serde=CellKeySerde(self.extent.ndim, variable_mode),
                value_serde=SumCountSerde(),
                **defaults,
            )
        if mode == "aggregate":
            config = self.aggregation_config(
                variable_mode=variable_mode, **(agg_overrides or {}))
            extent, offsets = self.extent, self.offsets
            origin = self.extent.corner
            return Job(
                mapper=lambda: AggregateWindowMapper(var_ref, extent, offsets, config),
                reducer=lambda: AggregateMeanReducer(config, origin),
                key_serde=config.key_serde(),
                value_serde=config.block_serde(),
                shuffle_plugin=AggregateShufflePlugin(config, reaggregate=reaggregate),
                **defaults,
            )
        raise ValueError(f"mode must be 'plain' or 'aggregate', got {mode!r}")
