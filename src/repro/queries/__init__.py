"""Query workloads over gridded data.

The paper's running example is the holistic sliding-window median
(§IV-C): each mapper re-emits every input value under the keys of all
window positions that cover it, and reducers take a median per cell --
an intermediate-data blow-up of window-size x, which is why intermediate
key compression matters.  Each query here is implemented twice:

* **plain** -- per-cell :class:`~repro.mapreduce.keys.CellKey` records,
  Hadoop's native representation (the paper's baseline);
* **aggregate** -- through the §IV aggregation library
  (:mod:`repro.core.aggregation`).

Both modes of one query produce identical results (integration tests
assert this), differing only in intermediate representation -- exactly
the paper's experimental contrast.
"""

from repro.queries.base import window_offsets, shifted_cells, GridQuery
from repro.queries.sliding_median import SlidingMedianQuery
from repro.queries.sliding_mean import SlidingMeanQuery
from repro.queries.subset import BoxSubsetQuery
from repro.queries.histogram import HistogramQuery
from repro.queries.derived import DerivedVariableQuery
from repro.queries.sliding_algebraic import SlidingAggregateQuery
from repro.queries.plan import Binary, Source, Subset, Window, execute

__all__ = [
    "window_offsets",
    "shifted_cells",
    "GridQuery",
    "SlidingMedianQuery",
    "SlidingMeanQuery",
    "BoxSubsetQuery",
    "HistogramQuery",
    "DerivedVariableQuery",
    "SlidingAggregateQuery",
    "Source",
    "Subset",
    "Window",
    "Binary",
    "execute",
]
