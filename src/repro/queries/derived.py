"""Derived-variable query: ``out = f(a, b)`` cell-wise over two variables.

§III raises multi-variable output as a complication for stride
detection: "If multiple variables are output, this would require
determining where one ends and another begins in the byte stream,
because they may have different stride lengths."  This query produces
exactly such a stream -- each mapper emits per-cell records for a
*derived* variable computed from two input variables over the same
slab -- and is also a realistic SciHadoop workload in its own right
(e.g. wind speed magnitude from u/v components).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.aggregation import (
    AggregationConfig,
    AggregateShufflePlugin,
    Aggregator,
)
from repro.mapreduce.api import Mapper
from repro.mapreduce.job import Job
from repro.mapreduce.keys import CellKeySerde
from repro.queries.base import GridQuery
from repro.queries.sliding_median import value_serde_for
from repro.queries.subset import AggregateSubsetReducer, IdentityReducer
from repro.scidata.dataset import Dataset

__all__ = ["DerivedVariableQuery", "BINARY_OPS"]

#: name -> vectorized binary operator
BINARY_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
    "hypot": np.hypot,
}


class PlainDerivedMapper(Mapper):
    """Read the split's slab from BOTH variables and emit f(a, b)."""

    wants_dataset = True

    def __init__(self, primary: str, out_name: str, other: str, op, dtype) -> None:
        self.primary = primary
        self.out_name = out_name
        self.other = other
        self.op = op
        self.dtype = np.dtype(dtype)

    def map(self, split, values, ctx):
        if split.variable != self.primary:
            return  # the splitter also splits variable b; skip its slabs
        b = self.dataset[self.other].read(split.slab)
        derived = self.op(values, b).astype(self.dtype)
        ctx.emit_cells(self.out_name, split.slab.coords(), derived.ravel())


class AggregateDerivedMapper(Mapper):
    """Same computation, emitted through the aggregation library."""

    wants_dataset = True

    def __init__(self, primary: str, out_name: str, other: str, op, dtype,
                 origin, config: AggregationConfig) -> None:
        self.primary = primary
        self.out_name = out_name
        self.other = other
        self.op = op
        self.dtype = np.dtype(dtype)
        self.origin = np.asarray(origin, dtype=np.int64)
        self.config = config
        self._agg: Aggregator | None = None

    def map(self, split, values, ctx):
        if split.variable != self.primary:
            return  # the splitter also splits variable b; skip its slabs
        self._agg = Aggregator(self.config, self.out_name, ctx)
        b = self.dataset[self.other].read(split.slab)
        derived = self.op(values, b).astype(self.dtype)
        self._agg.add(split.slab.coords() - self.origin, derived.ravel())

    def cleanup(self, ctx):
        if self._agg is not None:
            self._agg.close()


class DerivedVariableQuery(GridQuery):
    """Compute ``out = op(a, b)`` per cell; emit it as a new variable.

    Both input variables must share an extent (validated up front, as
    SciHadoop validates query shapes).
    """

    def __init__(self, dataset: Dataset, a: str, b: str, op: str = "add",
                 out_name: str = "derived") -> None:
        super().__init__(dataset, a)
        if b not in dataset:
            raise KeyError(f"dataset has no variable {b!r}")
        if op not in BINARY_OPS:
            raise ValueError(f"op must be one of {sorted(BINARY_OPS)}, got {op!r}")
        if dataset[a].extent != dataset[b].extent:
            raise ValueError(
                f"variable extents differ: {dataset[a].extent} vs "
                f"{dataset[b].extent}"
            )
        self.a = a
        self.b = b
        self.op_name = op
        self.op = BINARY_OPS[op]
        self.out_name = out_name
        # result dtype from a zero-size probe (numpy promotion rules)
        probe = self.op(
            np.zeros(0, dtype=dataset[a].data.dtype),
            np.zeros(0, dtype=dataset[b].data.dtype),
        )
        self.out_dtype = probe.dtype

    def expected_output_cells(self) -> int:
        return self.extent.size

    def build_job(self, mode: str = "plain", agg_overrides: dict | None = None,
                  **job_overrides) -> Job:
        defaults = dict(name=f"derived-{self.op_name}-{mode}",
                        num_reducers=1, num_map_tasks=1,
                        input_variables=(self.a,))
        defaults.update(job_overrides)
        primary, out_name, other, op, dtype = (
            self.a, self.out_name, self.b, self.op, self.out_dtype)

        if mode == "plain":
            return Job(
                mapper=lambda: PlainDerivedMapper(primary, out_name, other,
                                                  op, dtype),
                reducer=IdentityReducer,
                key_serde=CellKeySerde(self.extent.ndim, "name"),
                value_serde=value_serde_for(dtype),
                **defaults,
            )
        if mode == "aggregate":
            config = self.aggregation_config(
                dtype=str(dtype), **(agg_overrides or {}))
            origin = self.extent.corner
            return Job(
                mapper=lambda: AggregateDerivedMapper(
                    primary, out_name, other, op, dtype, origin, config),
                reducer=lambda: AggregateSubsetReducer(config, origin),
                key_serde=config.key_serde(),
                value_serde=config.block_serde(),
                shuffle_plugin=AggregateShufflePlugin(config),
                **defaults,
            )
        raise ValueError(f"mode must be 'plain' or 'aggregate', got {mode!r}")
