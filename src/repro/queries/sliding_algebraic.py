"""Generic algebraic sliding-window aggregates (min / max / sum).

The median (holistic) and mean (algebraic with a (sum, count) carrier)
have dedicated modules; this one covers the remaining common window
aggregates, whose partial results fold with the same operator --
so the plain mode's combiner is simply the operator itself applied
map-side, Hadoop's textbook combiner case.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.aggregation import (
    AggregationConfig,
    AggregateShufflePlugin,
    cells_of_group,
)
from repro.mapreduce.api import Combiner, Reducer
from repro.mapreduce.job import Job
from repro.mapreduce.keys import CellKey, CellKeySerde
from repro.queries.base import GridQuery, window_offsets
from repro.queries.sliding_median import (
    AggregateWindowMapper,
    PlainWindowMapper,
    value_serde_for,
)
from repro.scidata.dataset import Dataset

__all__ = ["SlidingAggregateQuery", "WINDOW_OPS"]

#: op name -> (python fold over a list, numpy fold over an axis)
WINDOW_OPS: dict[str, tuple[Callable, Callable]] = {
    "min": (min, np.min),
    "max": (max, np.max),
    "sum": (sum, np.sum),
}


class FoldCombiner(Combiner):
    """Map-side partial fold with the reduce operator itself."""

    def __init__(self, fold: Callable) -> None:
        self.fold = fold

    def combine(self, key, values):
        return [self.fold(values)]


class FoldReducer(Reducer):
    """Final fold of all window values with the operator."""

    def __init__(self, fold: Callable) -> None:
        self.fold = fold

    def reduce(self, key, values, ctx):
        ctx.emit(key, self.fold(values))


class AggregateFoldReducer(Reducer):
    """Per-cell fold over the blocks of one range group."""

    def __init__(self, npfold: Callable, config: AggregationConfig,
                 origin: tuple[int, ...]) -> None:
        self.npfold = npfold
        self.config = config
        self.curve = config.make_curve()
        self.origin = np.asarray(origin, dtype=np.int64)

    def reduce(self, key, blocks, ctx):
        coords = self.curve.decode(np.arange(key.start, key.end)) + self.origin
        for off, cell_values in cells_of_group(key, blocks):
            value = self.npfold(cell_values)
            ctx.emit(
                CellKey(key.variable, tuple(int(c) for c in coords[off])),
                value.item() if hasattr(value, "item") else value,
            )


class SlidingAggregateQuery(GridQuery):
    """Builder for min/max/sum sliding-window jobs in both modes."""

    def __init__(self, dataset: Dataset, variable: str, op: str = "max",
                 window: int = 3) -> None:
        super().__init__(dataset, variable)
        if op not in WINDOW_OPS:
            raise ValueError(f"op must be one of {sorted(WINDOW_OPS)}, got {op!r}")
        self.op = op
        self.fold, self.npfold = WINDOW_OPS[op]
        self.window = window
        self.offsets = window_offsets(self.extent.ndim, window)

    def expected_output_cells(self) -> int:
        return self.extent.size

    def build_job(self, mode: str = "plain", use_combiner: bool = True,
                  agg_overrides: dict | None = None, **job_overrides) -> Job:
        dtype = self.dataset[self.variable].data.dtype
        defaults = dict(name=f"sliding-{self.op}-{mode}", num_reducers=1,
                        num_map_tasks=1,
                        input_variables=(self.variable,))
        defaults.update(job_overrides)
        var_ref = self.variable
        extent, offsets = self.extent, self.offsets
        fold, npfold = self.fold, self.npfold

        if mode == "plain":
            return Job(
                mapper=lambda: PlainWindowMapper(var_ref, extent, offsets),
                reducer=lambda: FoldReducer(fold),
                combiner=(lambda: FoldCombiner(fold)) if use_combiner else None,
                key_serde=CellKeySerde(self.extent.ndim, "name"),
                value_serde=value_serde_for(dtype),
                **defaults,
            )
        if mode == "aggregate":
            config = self.aggregation_config(**(agg_overrides or {}))
            origin = self.extent.corner
            return Job(
                mapper=lambda: AggregateWindowMapper(var_ref, extent, offsets,
                                                     config),
                reducer=lambda: AggregateFoldReducer(npfold, config, origin),
                key_serde=config.key_serde(),
                value_serde=config.block_serde(),
                shuffle_plugin=AggregateShufflePlugin(config),
                **defaults,
            )
        raise ValueError(f"mode must be 'plain' or 'aggregate', got {mode!r}")
