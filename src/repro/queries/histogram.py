"""Global value histogram: a non-grid-keyed control workload.

Keys are value *bins*, not coordinates, so key aggregation does not apply
-- there is no spatial structure to exploit.  Included as the control in
ablation benches: it shows the paper's techniques are grid-specific, and
exercises the combiner path (bin counts fold associatively).
"""

from __future__ import annotations

import numpy as np

from repro.mapreduce.api import Combiner, Mapper, Reducer
from repro.mapreduce.job import Job
from repro.mapreduce.serde import Int32Serde, Int64Serde
from repro.queries.base import GridQuery
from repro.scidata.dataset import Dataset

__all__ = ["HistogramQuery"]


class HistogramMapper(Mapper):
    """Emit (bin, count) for the split's values, pre-binned with numpy."""

    def __init__(self, lo: float, hi: float, bins: int) -> None:
        self.lo = lo
        self.hi = hi
        self.bins = bins

    def map(self, split, values, ctx):
        counts, _ = np.histogram(
            values.ravel(), bins=self.bins, range=(self.lo, self.hi))
        occupied = np.flatnonzero(counts)
        if occupied.size == 0:
            return
        keys = np.frombuffer(
            ctx.key_serde.pack_batch(occupied), dtype=np.uint8
        ).reshape(occupied.size, -1)
        vals = np.frombuffer(
            ctx.value_serde.pack_batch(counts[occupied]), dtype=np.uint8
        ).reshape(occupied.size, -1)
        ctx.emit_batch(keys, vals)


class CountCombiner(Combiner):
    """Map-side partial sum of bin counts."""

    def combine(self, key, values):
        return [sum(values)]


class CountReducer(Reducer):
    """Final sum of bin counts."""

    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class HistogramQuery(GridQuery):
    """Builder for the histogram job (plain mode only)."""

    def __init__(self, dataset: Dataset, variable: str, bins: int = 32) -> None:
        super().__init__(dataset, variable)
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.bins = bins
        data = dataset[variable].data
        self.lo = float(data.min())
        self.hi = float(data.max()) + 1e-9

    def expected_output_cells(self) -> int:
        return self.bins  # upper bound: empty bins are not emitted

    def build_job(self, mode: str = "plain", use_combiner: bool = True,
                  **job_overrides) -> Job:
        if mode != "plain":
            raise ValueError(
                "histogram keys have no spatial structure; only plain mode exists"
            )
        defaults = dict(name="histogram", num_reducers=1, num_map_tasks=1,
                        input_variables=(self.variable,))
        defaults.update(job_overrides)
        lo, hi, bins = self.lo, self.hi, self.bins
        return Job(
            mapper=lambda: HistogramMapper(lo, hi, bins),
            reducer=CountReducer,
            combiner=CountCombiner if use_combiner else None,
            key_serde=Int32Serde(),
            value_serde=Int64Serde(),
            **defaults,
        )
