"""Composable logical query plans executed as MapReduce job chains.

SciHadoop's contribution was "array-based query processing in Hadoop";
this module provides the query-processing surface on top of the
reproduction's job builders.  A plan is a small tree of logical nodes:

* :class:`Source` -- a dataset variable;
* :class:`Subset` -- restrict to a box;
* :class:`Window` -- sliding-window aggregate (``median``, ``mean``,
  ``min``, ``max``, ``sum``); holistic vs algebraic is decided here
  (algebraic ops get combiners in plain mode);
* :class:`Binary` -- cell-wise combination of two plans.

``execute`` runs the tree bottom-up, materializing each stage's output
as a new in-memory variable and feeding it to the next job -- a
multi-job pipeline exactly like chained MapReduce queries, so the
intermediate-key techniques under test apply at *every* stage (pass
``mode="aggregate"`` and the whole pipeline shuffles range keys).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mapreduce.engine import LocalJobRunner
from repro.queries.derived import BINARY_OPS, DerivedVariableQuery
from repro.queries.sliding_algebraic import WINDOW_OPS, SlidingAggregateQuery
from repro.queries.sliding_mean import SlidingMeanQuery
from repro.queries.sliding_median import SlidingMedianQuery
from repro.queries.subset import BoxSubsetQuery
from repro.scidata.dataset import Dataset, Variable
from repro.scidata.slab import Slab

__all__ = ["Source", "Subset", "Window", "Binary", "execute"]


@dataclass(frozen=True)
class Source:
    """A variable of the input dataset."""

    variable: str


@dataclass(frozen=True)
class Subset:
    """Restrict the child's cells to an axis-aligned box."""

    child: "PlanNode"
    box: Slab


@dataclass(frozen=True)
class Window:
    """Sliding-window aggregate over the child."""

    child: "PlanNode"
    op: str = "median"
    width: int = 3

    def __post_init__(self) -> None:
        known = {"median", "mean"} | set(WINDOW_OPS)
        if self.op not in known:
            raise ValueError(f"window op must be one of {sorted(known)}, "
                             f"got {self.op!r}")


@dataclass(frozen=True)
class Binary:
    """Cell-wise ``op(left, right)`` (both children must share extents)."""

    left: "PlanNode"
    right: "PlanNode"
    op: str = "add"

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"binary op must be one of "
                             f"{sorted(BINARY_OPS)}, got {self.op!r}")


PlanNode = Source | Subset | Window | Binary


def _materialize(output, name: str, dtype) -> Variable:
    """Turn a job's (CellKey, value) output into an in-memory variable."""
    if not output:
        raise ValueError(f"stage {name!r} produced no cells")
    coords = np.array([k.coords for k, _ in output], dtype=np.int64)
    values = np.array([v for _, v in output])
    corner = coords.min(axis=0)
    shape = coords.max(axis=0) - corner + 1
    grid = np.zeros(tuple(int(s) for s in shape), dtype=dtype)
    idx = tuple((coords - corner).T)
    grid[idx] = values.astype(dtype)
    if len(output) != grid.size:
        raise ValueError(
            f"stage {name!r} output is not a dense box "
            f"({len(output)} cells for shape {tuple(shape)})"
        )
    return Variable(name, grid, origin=tuple(int(c) for c in corner))


def execute(
    plan: PlanNode,
    dataset: Dataset,
    mode: str = "plain",
    runner: LocalJobRunner | None = None,
    **job_overrides,
) -> Variable:
    """Run the plan; returns the materialized result variable.

    Every non-source node executes as one MapReduce job through
    ``runner`` with the requested intermediate-key ``mode``.
    """
    runner = runner or LocalJobRunner()
    counter = [0]

    def stage_name(prefix: str) -> str:
        counter[0] += 1
        return f"{prefix}_{counter[0]}"

    def recurse(node: PlanNode) -> tuple[Dataset, str]:
        if isinstance(node, Source):
            if node.variable not in dataset:
                raise KeyError(f"dataset has no variable {node.variable!r}")
            return dataset, node.variable
        if isinstance(node, Subset):
            ds, var = recurse(node.child)
            query = BoxSubsetQuery(ds, var, node.box)
            result = runner.run(query.build_job(mode, **job_overrides), ds)
            out = _materialize(result.output, stage_name("subset"),
                               ds[var].data.dtype)
            new = Dataset()
            new.add(out)
            return new, out.name
        if isinstance(node, Window):
            ds, var = recurse(node.child)
            if node.op == "median":
                query = SlidingMedianQuery(ds, var, window=node.width)
                out_dtype = np.float64
            elif node.op == "mean":
                query = SlidingMeanQuery(ds, var, window=node.width)
                out_dtype = np.float64
            else:
                query = SlidingAggregateQuery(ds, var, op=node.op,
                                              window=node.width)
                out_dtype = ds[var].data.dtype
            result = runner.run(query.build_job(mode, **job_overrides), ds)
            out = _materialize(result.output, stage_name(f"window_{node.op}"),
                               out_dtype)
            new = Dataset()
            new.add(out)
            return new, out.name
        if isinstance(node, Binary):
            lds, lvar = recurse(node.left)
            rds, rvar = recurse(node.right)
            merged = Dataset()
            lv, rv = lds[lvar], rds[rvar]
            if lvar == rvar:
                # same name from two branches: rename to disambiguate
                rv = Variable(rvar + "_rhs", rv.data, rv.origin, rv.attrs)
            merged.add(lv)
            merged.add(rv)
            query = DerivedVariableQuery(
                merged, lv.name, rv.name, op=node.op,
                out_name=stage_name(f"binary_{node.op}"))
            result = runner.run(query.build_job(mode, **job_overrides), merged)
            out = _materialize(result.output, query.out_name, query.out_dtype)
            new = Dataset()
            new.add(out)
            return new, out.name
        raise TypeError(f"unknown plan node {type(node).__name__}")

    final_ds, final_var = recurse(plan)
    return final_ds[final_var]
