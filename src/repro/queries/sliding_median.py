"""The sliding-window median query (§IV-C's running example).

Holistic (a median cannot be partially reduced), so every window member
must reach the reducer: intermediate data is window-size times the
input, making this the paper's stress test for key compression.  §III-E
and §IV-D both run exactly this query.

``mode="plain"`` emits one per-cell :class:`CellKey` record per (cell,
covering window); ``mode="aggregate"`` routes the same emissions through
the §IV aggregation library.  Both reduce to identical (cell, median)
outputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.aggregation import (
    AggregationConfig,
    Aggregator,
    AggregateShufflePlugin,
    stack_equal_blocks,
    cells_of_group,
)
from repro.mapreduce.api import Mapper, Reducer
from repro.mapreduce.job import Job
from repro.mapreduce.keys import CellKey, CellKeySerde
from repro.mapreduce.serde import (
    Float32Serde,
    Float64Serde,
    Int32Serde,
    Int64Serde,
    Serde,
)
from repro.queries.base import GridQuery, shifted_cells, window_offsets
from repro.scidata.dataset import Dataset
from repro.scidata.slab import Slab

__all__ = ["SlidingMedianQuery"]


def value_serde_for(dtype: np.dtype) -> Serde:
    """The fixed-width serde matching a grid dtype."""
    dtype = np.dtype(dtype)
    table = {
        np.dtype(np.int32): Int32Serde,
        np.dtype(np.int64): Int64Serde,
        np.dtype(np.float32): Float32Serde,
        np.dtype(np.float64): Float64Serde,
    }
    try:
        return table[dtype]()
    except KeyError:
        raise TypeError(f"no value serde for dtype {dtype}") from None


class PlainWindowMapper(Mapper):
    """Emit each value under every window key covering it (per-cell keys)."""

    def __init__(self, var_ref: str | int, extent: Slab,
                 offsets: Sequence[tuple[int, ...]]) -> None:
        self.var_ref = var_ref
        self.extent = extent
        self.offsets = offsets

    def map(self, split, values, ctx):
        coords = split.slab.coords()
        flat = values.ravel()
        for offset in self.offsets:
            shifted, kept = shifted_cells(coords, flat, offset, self.extent)
            if shifted.shape[0]:
                ctx.emit_cells(self.var_ref, shifted, kept)


class PlainMedianReducer(Reducer):
    """Median of all values per cell key."""

    def reduce(self, key, values, ctx):
        ctx.emit(key, float(np.median(np.asarray(values))))


class AggregateWindowMapper(Mapper):
    """Same emissions, buffered through the §IV aggregation library."""

    def __init__(self, var_ref: str | int, extent: Slab,
                 offsets: Sequence[tuple[int, ...]],
                 config: AggregationConfig) -> None:
        self.var_ref = var_ref
        self.extent = extent
        self.offsets = offsets
        self.config = config
        self._agg: Aggregator | None = None
        self._origin = np.asarray(extent.corner, dtype=np.int64)

    def map(self, split, values, ctx):
        self._agg = Aggregator(self.config, self.var_ref, ctx)
        coords = split.slab.coords()
        flat = values.ravel()
        for offset in self.offsets:
            shifted, kept = shifted_cells(coords, flat, offset, self.extent)
            if shifted.shape[0]:
                self._agg.add(shifted - self._origin, kept)

    def cleanup(self, ctx):
        if self._agg is not None:
            self._agg.close()


class AggregateMedianReducer(Reducer):
    """Per-cell median over the stacked blocks of one range group."""

    def __init__(self, config: AggregationConfig, origin: tuple[int, ...]) -> None:
        self.config = config
        self.curve = config.make_curve()
        self.origin = np.asarray(origin, dtype=np.int64)

    def reduce(self, key, blocks, ctx):
        coords = self.curve.decode(np.arange(key.start, key.end)) + self.origin
        matrix = stack_equal_blocks(key, blocks)
        if matrix is not None:
            medians = np.median(matrix, axis=0)
            for off in range(key.count):
                ctx.emit(
                    CellKey(key.variable, tuple(int(c) for c in coords[off])),
                    float(medians[off]),
                )
            return
        for off, cell_values in cells_of_group(key, blocks):
            ctx.emit(
                CellKey(key.variable, tuple(int(c) for c in coords[off])),
                float(np.median(cell_values)),
            )


class SlidingMedianQuery(GridQuery):
    """Builder for plain/aggregate sliding-median jobs."""

    def __init__(self, dataset: Dataset, variable: str, window: int = 3) -> None:
        super().__init__(dataset, variable)
        self.window = window
        self.offsets = window_offsets(self.extent.ndim, window)

    def expected_output_cells(self) -> int:
        return self.extent.size

    def build_job(self, mode: str = "plain", variable_mode: str = "name",
                  agg_overrides: dict | None = None, reaggregate: bool = False,
                  **job_overrides) -> Job:
        dtype = self.dataset[self.variable].data.dtype
        var_ref: str | int
        if variable_mode == "name":
            var_ref = self.variable
        else:
            var_ref = self.dataset.names.index(self.variable)
        defaults = dict(name=f"sliding-median-{mode}", num_reducers=1,
                        num_map_tasks=1,
                        input_variables=(self.variable,))
        defaults.update(job_overrides)

        if mode == "plain":
            extent, offsets = self.extent, self.offsets
            return Job(
                mapper=lambda: PlainWindowMapper(var_ref, extent, offsets),
                reducer=PlainMedianReducer,
                key_serde=CellKeySerde(self.extent.ndim, variable_mode),
                value_serde=value_serde_for(dtype),
                **defaults,
            )
        if mode == "aggregate":
            config = self.aggregation_config(
                variable_mode=variable_mode, **(agg_overrides or {}))
            extent, offsets = self.extent, self.offsets
            origin = self.extent.corner
            return Job(
                mapper=lambda: AggregateWindowMapper(var_ref, extent, offsets, config),
                reducer=lambda: AggregateMedianReducer(config, origin),
                key_serde=config.key_serde(),
                value_serde=config.block_serde(),
                shuffle_plugin=AggregateShufflePlugin(config, reaggregate=reaggregate),
                **defaults,
            )
        raise ValueError(f"mode must be 'plain' or 'aggregate', got {mode!r}")
