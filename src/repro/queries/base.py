"""Shared query plumbing: window geometry and job assembly.

The sliding-window pattern of §IV-C, generalized: "mappers take a value
with key (x, y) and output the value for keys (x, y), (x+1, y),
(x+1, y+1), etc." -- i.e. the value of a cell is emitted under every key
whose window covers the cell.  Emissions falling outside the variable's
extent are dropped (the window is clipped at the grid edge), keeping
coordinates valid for the space-filling curve and giving both plain and
aggregate modes identical semantics.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod

import numpy as np

from repro.core.aggregation import AggregationConfig
from repro.mapreduce.job import Job
from repro.scidata.dataset import Dataset
from repro.scidata.slab import Slab

__all__ = ["window_offsets", "shifted_cells", "GridQuery"]


def window_offsets(ndim: int, window: int) -> list[tuple[int, ...]]:
    """All offsets of a centered ``window**ndim`` stencil.

    ``window`` must be odd so the stencil is centered (the paper's
    example is 3x3).
    """
    if window < 1 or window % 2 == 0:
        raise ValueError(f"window must be odd and >= 1, got {window}")
    half = window // 2
    return list(itertools.product(range(-half, half + 1), repeat=ndim))


def shifted_cells(
    coords: np.ndarray,
    values: np.ndarray,
    offset: tuple[int, ...],
    extent: Slab,
) -> tuple[np.ndarray, np.ndarray]:
    """Shift cell coordinates by ``offset`` and clip to ``extent``.

    Returns the surviving (shifted coords, values).  A cell's value
    shifted by ``offset`` lands under the key of the window *centered*
    there.
    """
    shifted = coords + np.asarray(offset, dtype=np.int64)
    keep = np.ones(shifted.shape[0], dtype=bool)
    for d in range(shifted.shape[1]):
        lo = extent.corner[d]
        hi = lo + extent.shape[d]
        keep &= (shifted[:, d] >= lo) & (shifted[:, d] < hi)
    return shifted[keep], values[keep]


class GridQuery(ABC):
    """A query that can be built in plain or aggregate mode.

    Subclasses supply the mode-specific mappers/reducers; this base owns
    the common job-assembly surface so benchmarks can swap queries
    freely.
    """

    def __init__(self, dataset: Dataset, variable: str) -> None:
        if variable not in dataset:
            raise KeyError(f"dataset has no variable {variable!r}")
        self.dataset = dataset
        self.variable = variable
        self.extent = dataset[variable].extent

    def aggregation_config(self, **overrides) -> AggregationConfig:
        """Aggregation settings sized to this query's grid."""
        ndim = self.extent.ndim
        side = max(self.extent.shape)
        bits = max(1, (side - 1).bit_length())
        defaults = dict(
            curve="zorder",
            ndim=ndim,
            bits=bits,
            dtype=str(self.dataset[self.variable].data.dtype),
        )
        defaults.update(overrides)
        return AggregationConfig(**defaults)

    @abstractmethod
    def build_job(self, mode: str = "plain", **job_overrides) -> Job:
        """Assemble the :class:`~repro.mapreduce.job.Job` for one mode."""

    @abstractmethod
    def expected_output_cells(self) -> int:
        """How many output records a correct run must produce."""
