"""Box-subset selection: extract a sub-slab of a variable.

The simplest SciHadoop-style array query (SciHadoop's original paper
evaluates exactly such subsetting).  One value per selected cell flows
through the shuffle, so the key/value overhead ratio is at its worst --
this is the workload behind the paper's introduction arithmetic (450% /
625% overhead for per-cell keys) and behind Fig 8's ideal-case
aggregation numbers.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import (
    AggregationConfig,
    AggregateShufflePlugin,
    Aggregator,
    cells_of_group,
)
from repro.mapreduce.api import Mapper, Reducer
from repro.mapreduce.job import Job
from repro.mapreduce.keys import CellKey, CellKeySerde
from repro.queries.base import GridQuery
from repro.queries.sliding_median import value_serde_for
from repro.scidata.dataset import Dataset
from repro.scidata.slab import Slab

__all__ = ["BoxSubsetQuery"]


def _range_selection(split, box: Slab, start: int, stop: int):
    """In-box cells among the split's flat records ``[start, stop)``.

    Returns ``(flat_indices, coords)`` of the selected cells -- the
    record-range counterpart of ``split.slab.intersect(box).coords()``.
    Flat indices are row-major over the split's slab, so walking ranges
    in order visits the box cells in exactly the order one whole-split
    ``map`` call emits them (lexicographic coordinate order).
    """
    flat = np.arange(start, stop, dtype=np.int64)
    coords = np.stack(np.unravel_index(flat, split.slab.shape), axis=1)
    coords = coords + np.asarray(split.slab.corner, dtype=np.int64)
    lo = np.asarray(box.corner, dtype=np.int64)
    hi = lo + np.asarray(box.shape, dtype=np.int64)
    mask = np.all((coords >= lo) & (coords < hi), axis=1)
    return flat[mask], coords[mask]


class PlainSubsetMapper(Mapper):
    """Emit the cells of the split that fall inside the query box."""

    def __init__(self, var_ref: str | int, box: Slab) -> None:
        self.var_ref = var_ref
        self.box = box

    def map(self, split, values, ctx):
        selected = split.slab.intersect(self.box)
        if selected is None:
            return
        local = Slab(
            tuple(c - o for c, o in zip(selected.corner, split.slab.corner)),
            selected.shape,
        )
        idx = tuple(slice(c, c + s) for c, s in zip(local.corner, local.shape))
        ctx.emit_cells(self.var_ref, selected.coords(), values[idx].ravel())

    def map_range(self, split, values, ctx, start, stop):
        """Record-range form of :meth:`map` (skipping-mode support)."""
        flat, coords = _range_selection(split, self.box, start, stop)
        if flat.size == 0:
            return
        ctx.emit_cells(self.var_ref, coords, values.reshape(-1)[flat])


class IdentityReducer(Reducer):
    """Pass every value through (selection queries do not aggregate)."""

    def reduce(self, key, values, ctx):
        for v in values:
            ctx.emit(key, v)


class AggregateSubsetMapper(Mapper):
    """Selection through the aggregation library (range-key output)."""

    def __init__(self, var_ref: str | int, box: Slab, origin: tuple[int, ...],
                 config: AggregationConfig) -> None:
        self.var_ref = var_ref
        self.box = box
        self.origin = np.asarray(origin, dtype=np.int64)
        self.config = config
        self._agg: Aggregator | None = None

    def map(self, split, values, ctx):
        self._agg = Aggregator(self.config, self.var_ref, ctx)
        selected = split.slab.intersect(self.box)
        if selected is None:
            return
        local = Slab(
            tuple(c - o for c, o in zip(selected.corner, split.slab.corner)),
            selected.shape,
        )
        idx = tuple(slice(c, c + s) for c, s in zip(local.corner, local.shape))
        self._agg.add(selected.coords() - self.origin, values[idx].ravel())

    def map_range(self, split, values, ctx, start, stop):
        """Record-range form of :meth:`map` (skipping-mode support).

        The aggregator is created lazily on the first range and closed
        by :meth:`cleanup` as usual; partial ranges accumulate into the
        same buffer one whole-split :meth:`map` call fills.
        """
        if self._agg is None:
            self._agg = Aggregator(self.config, self.var_ref, ctx)
        flat, coords = _range_selection(split, self.box, start, stop)
        if flat.size == 0:
            return
        self._agg.add(coords - self.origin, values.reshape(-1)[flat])

    def cleanup(self, ctx):
        if self._agg is not None:
            self._agg.close()


class AggregateSubsetReducer(Reducer):
    """Expand range groups back into per-cell selection output."""

    def __init__(self, config: AggregationConfig, origin: tuple[int, ...]) -> None:
        self.config = config
        self.curve = config.make_curve()
        self.origin = np.asarray(origin, dtype=np.int64)

    def reduce(self, key, blocks, ctx):
        coords = self.curve.decode(np.arange(key.start, key.end)) + self.origin
        for off, cell_values in cells_of_group(key, blocks):
            for v in cell_values:
                ctx.emit(
                    CellKey(key.variable, tuple(int(c) for c in coords[off])),
                    v.item() if hasattr(v, "item") else v,
                )


class BoxSubsetQuery(GridQuery):
    """Builder for plain/aggregate subset-selection jobs."""

    def __init__(self, dataset: Dataset, variable: str, box: Slab) -> None:
        super().__init__(dataset, variable)
        if not self.extent.contains(box):
            raise ValueError(f"query box {box} outside variable extent {self.extent}")
        self.box = box

    def expected_output_cells(self) -> int:
        return self.box.size

    def build_job(self, mode: str = "plain", variable_mode: str = "name",
                  agg_overrides: dict | None = None, reaggregate: bool = False,
                  **job_overrides) -> Job:
        dtype = self.dataset[self.variable].data.dtype
        var_ref: str | int
        if variable_mode == "name":
            var_ref = self.variable
        else:
            var_ref = self.dataset.names.index(self.variable)
        defaults = dict(name=f"subset-{mode}", num_reducers=1, num_map_tasks=1,
                        input_variables=(self.variable,))
        defaults.update(job_overrides)

        if mode == "plain":
            box = self.box
            return Job(
                mapper=lambda: PlainSubsetMapper(var_ref, box),
                reducer=IdentityReducer,
                key_serde=CellKeySerde(self.extent.ndim, variable_mode),
                value_serde=value_serde_for(dtype),
                **defaults,
            )
        if mode == "aggregate":
            config = self.aggregation_config(
                variable_mode=variable_mode, **(agg_overrides or {}))
            box, origin = self.box, self.extent.corner
            return Job(
                mapper=lambda: AggregateSubsetMapper(var_ref, box, origin, config),
                reducer=lambda: AggregateSubsetReducer(config, origin),
                key_serde=config.key_serde(),
                value_serde=config.block_serde(),
                shuffle_plugin=AggregateShufflePlugin(config, reaggregate=reaggregate),
                **defaults,
            )
        raise ValueError(f"mode must be 'plain' or 'aggregate', got {mode!r}")
