"""repro -- reproduction of "Compressing Intermediate Keys between
Mappers and Reducers in SciHadoop" (Crume, Buck, Maltzahn, Brandt;
SC Companion / PDSW 2012).

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.util` -- varints, buffers, timing, deterministic RNG;
* :mod:`repro.sfc` -- space-filling curves (Z-order, Hilbert, Peano,
  row-major) and clustering statistics;
* :mod:`repro.scidata` -- slabs, datasets, synthetic fields, array
  input splits;
* :mod:`repro.mapreduce` -- the Hadoop-like engine (serdes, IFile and
  SequenceFile formats, codecs, partitioners, spills, merge sort,
  counters) and the cluster simulator (:mod:`repro.mapreduce.simcluster`);
* :mod:`repro.core.stride` -- the paper's §III byte-level transform;
* :mod:`repro.core.aggregation` -- the paper's §IV key aggregation;
* :mod:`repro.queries` -- grid queries in per-cell and aggregate modes,
  plus a composable logical-plan executor;
* :mod:`repro.experiments` -- one harness per paper table/figure,
  runnable via ``python -m repro``.
"""

__version__ = "1.0.0"
