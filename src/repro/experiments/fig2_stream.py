"""E2 -- Fig 2: the encoded key stream and its dominant linear sequence.

Fig 2 hexdumps a serialized ``windspeed1`` key stream and highlights one
detected sequence (delta=0x0a, s=47, phi=34 in the paper's SequenceFile
framing).  Our framing differs (IFile, no sync markers), so the dominant
stride differs too -- for a 3-D name-mode cell key stream it is the
33-byte record pitch (27-byte key + 4-byte value + 2 framing bytes) --
but the *phenomenon* is identical: one byte position advancing linearly
per record, everything else constant.
"""

from __future__ import annotations

from repro.core.stride import dominant_sequences
from repro.experiments.common import ExperimentResult
from repro.mapreduce.keys import CellKeySerde
from repro.mapreduce.seqfile import SequenceFileWriter
from repro.scidata.slab import Slab
from repro.util.varint import write_vlong

__all__ = ["run", "run_seqfile", "key_stream", "seqfile_key_stream", "hexdump"]


def key_stream(side: int = 12, variable: str = "windspeed1") -> bytes:
    """Serialized framed records for a C-order walk of a side^3 grid.

    Mirrors what the mapper's output stream looks like on disk: per
    record an IFile frame (key length, value length), the cell key, and
    a 4-byte value.
    """
    serde = CellKeySerde(ndim=3, variable_mode="name")
    slab = Slab((0, 0, 0), (side, side, side))
    out = bytearray()
    value = b"\x00\x00\x80\x3f"
    for kb in serde.write_batch(variable, slab.coords()):
        write_vlong(len(kb), out)
        write_vlong(len(value), out)
        out.extend(kb)
        out.extend(value)
    return bytes(out)


def seqfile_key_stream(side: int = 12, variable: str = "windspeed1") -> bytes:
    """The paper-exact Fig 2 framing: SequenceFile records, int64 coords.

    Record pitch = 4 (record len) + 4 (key len) + 35 (Text 'windspeed1' +
    3 x int64) + 4 (float value) = **47 bytes**, matching the stride the
    paper's figure highlights.
    """
    serde = CellKeySerde(ndim=3, variable_mode="name", coord_width=8,
                         include_slot=False)
    slab = Slab((0, 0, 0), (side, side, side))
    writer = SequenceFileWriter(sync_interval=2000, seed=0)
    value = b"\x00\x00\x80\x3f"
    for kb in serde.write_batch(variable, slab.coords()):
        writer.append(kb, value)
    return writer.getvalue()


def run_seqfile(side: int = 12, top: int = 6) -> ExperimentResult:
    """Fig 2 with the paper's own framing: the 47-byte stride appears."""
    data = seqfile_key_stream(side)
    reports = dominant_sequences(data, max_stride=100, top=top,
                                 min_hold_rate=0.6)
    result = ExperimentResult(
        experiment="E2/seqfile",
        title="dominant sequences under SequenceFile framing (Fig 2, exact)",
        columns=["stride", "phase", "delta_hex", "max_run", "hold_rate"],
    )
    for r in reports:
        result.add(
            stride=r.stride,
            phase=r.phase,
            delta_hex=f"0x{r.delta:02x}",
            max_run=r.max_run,
            hold_rate=round(r.hold_rate, 4),
        )
    result.note("record pitch 4+4+35+4 = 47 bytes; the paper's detector "
                "reports s=47 on this framing")
    return result


def hexdump(data: bytes, rows: int = 6, width: int = 16) -> list[str]:
    """Fig 2-style hex rows with printable-ASCII gutter."""
    lines = []
    for r in range(rows):
        chunk = data[r * width:(r + 1) * width]
        if not chunk:
            break
        hexes = " ".join(f"{b:02x}" for b in chunk)
        text = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"{hexes:<{width * 3}}  {text}")
    return lines


def run(side: int = 12, top: int = 5) -> ExperimentResult:
    """Regenerate Fig 2: stream excerpt plus detected sequences."""
    data = key_stream(side)
    reports = dominant_sequences(data, max_stride=100, top=top,
                                 min_hold_rate=0.6)
    result = ExperimentResult(
        experiment="E2",
        title="dominant linear sequences in the serialized key stream (Fig 2)",
        columns=["stride", "phase", "delta_hex", "max_run", "hold_rate"],
    )
    for r in reports:
        result.add(
            stride=r.stride,
            phase=r.phase,
            delta_hex=f"0x{r.delta:02x}",
            max_run=r.max_run,
            hold_rate=round(r.hold_rate, 4),
        )
    for line in hexdump(data):
        result.note(line)
    result.note(
        "paper highlights delta=0x0a, s=47, phi=34 in its SequenceFile "
        "framing; our IFile framing pitches records at 33 bytes instead"
    )
    return result
