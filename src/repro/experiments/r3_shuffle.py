"""R3 -- shuffle transport service: fetch retries and map re-execution.

Not a paper figure: this is the transfer-level robustness analogue of
R1 (process faults) and R2 (data faults).  The map->reduce hop is the
link the paper compresses and the phase Hadoop treats as its most
fragile; this harness makes the hop actually fail and checks the
runtime's answer never changes the answer:

* **clean equivalence** -- every query runs through the serial and
  parallel runner over both transports (``direct`` file reads and the
  CRC-framed ``channel``); all eight combinations must be
  byte-identical to the serial/direct baseline, counters included;
* **transient transfer faults** -- in-flight bit flips, dropped
  connections, silent truncations, delays, and stalls (against a fetch
  deadline) are retried with capped jittered backoff; output stays
  identical while ``SHUFFLE_RETRIES`` / ``SHUFFLE_FAILED_FETCHES``
  record the damage;
* **map re-execution** -- a segment that stays unfetchable for a whole
  reduce attempt (a *sticky* fault pinned to fetch epoch 0) escalates
  past retries: the fetch failure is charged to the producing map,
  which is re-executed, waiting reducers are re-pointed at the fresh
  epoch, and the job completes identically with ``MAPS_REEXECUTED``
  nonzero -- Hadoop's "too many fetch failures" protocol, in both
  runners;
* **bounded escalation** -- a fault sticky across *all* epochs can
  never be out-run; both runners must fail the job (after
  ``max_map_reexecs``) rather than loop, and they must agree.

A seeded fuzz tail draws random (query, op, link, anchor) combinations
on top of the deterministic matrix; ``REPRO_R3_FUZZ`` bounds the seed
count and ``REPRO_R3_SECONDS`` the wall clock.  The bench
(``benchmarks/bench_r3_shuffle.py``) asserts no row ever reads DRIFT.
"""

from __future__ import annotations

import os
import time

from repro.experiments.common import ExperimentResult, scaled
from repro.mapreduce.engine import LocalJobRunner
from repro.mapreduce.metrics import C
from repro.mapreduce.runtime import (
    FaultInjector,
    ParallelJobRunner,
    ShuffleConfig,
)
from repro.queries.histogram import HistogramQuery
from repro.queries.subset import BoxSubsetQuery
from repro.scidata.generator import integer_grid
from repro.scidata.slab import Slab
from repro.util.rng import make_rng

__all__ = ["run"]

#: queries the matrix and the fuzz tail draw from
_QUERIES = ("subset-plain", "subset-agg", "histogram")
#: wire damage ops the fuzz tail draws from
_FUZZ_OPS = ("flip", "drop", "truncate", "delay", "stall")
#: counters that legitimately differ between a faulted run and the
#: baseline (they *measure* the faults); everything else must match
_VOLATILE = frozenset({
    C.SHUFFLE_FETCHES,
    C.SHUFFLE_RETRIES,
    C.SHUFFLE_FAILED_FETCHES,
    C.SHUFFLE_BYTES_TRANSFERRED,
    C.MAPS_REEXECUTED,
})


def _build(grid, query: str, side: int, num_map_tasks: int,
           num_reducers: int):
    """One query job over the harness grid."""
    var = grid.names[0]
    if query == "subset-plain":
        box = Slab((1, 1), (side - 2, side - 2))
        return BoxSubsetQuery(grid, var, box).build_job(
            "plain", num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    if query == "subset-agg":
        box = Slab((1, 1), (side - 2, side - 2))
        return BoxSubsetQuery(grid, var, box).build_job(
            "aggregate", variable_mode="index",
            num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    if query == "histogram":
        return HistogramQuery(grid, var, bins=16).build_job(
            "plain", num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    raise ValueError(f"unknown query {query!r}")


class _RunOutcome:
    """One runner's result-or-error for a scenario."""

    def __init__(self, result, error: BaseException | None) -> None:
        self.result = result
        self.error = error

    def counter(self, name: str) -> int:
        return self.result.counters.get(name) if self.result else 0


def _run_one(runner_name: str, grid, job, shuffle: ShuffleConfig | None,
             injector: FaultInjector | None) -> _RunOutcome:
    kwargs: dict = {"shuffle": shuffle, "fault_injector": injector}
    if runner_name == "serial":
        runner = LocalJobRunner(**kwargs)
    else:
        runner = ParallelJobRunner(
            max_workers=2, speculation=False, retry_backoff=0.01,
            **kwargs)
    try:
        with runner:
            return _RunOutcome(runner.run(job, grid), None)
    except Exception as exc:
        return _RunOutcome(None, exc)


def _stable_counters(result) -> dict[str, int]:
    """Counters minus the fault-measuring ones (and zero entries)."""
    return {k: v for k, v in result.counters.as_dict().items()
            if k not in _VOLATILE and v}


def _classify(serial: _RunOutcome, parallel: _RunOutcome,
              baseline) -> str:
    """Where the scenario landed: identical / reexecuted / failed / DRIFT.

    The runners must agree with *each other* unconditionally; a
    successful run must additionally match the clean baseline's output
    and non-shuffle counters exactly.
    """
    if (serial.error is None) != (parallel.error is None):
        return "DRIFT"
    if serial.error is not None:
        return "failed"
    if serial.result.output != parallel.result.output:
        return "DRIFT"
    if serial.result.counters != parallel.result.counters:
        return "DRIFT"
    if serial.result.output != baseline.output:
        return "DRIFT"
    if _stable_counters(serial.result) != _stable_counters(baseline):
        return "DRIFT"
    if serial.counter(C.MAPS_REEXECUTED) > 0:
        return "reexecuted"
    return "identical"


def run(num_fuzz: int | None = None,
        seconds: float | None = None) -> ExperimentResult:
    """Execute the R3 matrix; returns the scenario table."""
    side = scaled(24, 1.0, minimum=12)
    num_map_tasks, num_reducers = 3, 2
    grid = integer_grid((side, side), seed=11)

    if num_fuzz is None:
        num_fuzz = int(os.environ.get("REPRO_R3_FUZZ", "4"))
    if seconds is None:
        seconds = float(os.environ.get("REPRO_R3_SECONDS", "120"))
    t0 = time.monotonic()

    result = ExperimentResult(
        experiment="R3",
        title="Shuffle transport: fetch retries, failure accounting, "
              "and map re-execution",
        columns=["scenario", "query", "fault", "retries", "reexecs",
                 "outcome"],
    )

    #: fast-failing channel config for fault scenarios: a tight fetch
    #: deadline (delays/stalls resolve quickly) and a small retry budget
    faulty = ShuffleConfig(transport="channel", fetch_retries=1,
                           fetch_timeout=0.2, backoff=0.005,
                           backoff_max=0.02)

    baselines = {}
    for query in _QUERIES:
        job = _build(grid, query, side, num_map_tasks, num_reducers)
        baselines[query] = LocalJobRunner().run(job, grid)

    # -- clean equivalence: queries x runners x transports ----------------
    for query in _QUERIES:
        for transport in ("direct", "channel"):
            job = _build(grid, query, side, num_map_tasks, num_reducers)
            shuffle = ShuffleConfig(transport=transport)
            serial = _run_one("serial", grid, job, shuffle, None)
            parallel = _run_one("parallel", grid, job, shuffle, None)
            outcome = _classify(serial, parallel, baselines[query])
            # The clean path must also match on the shuffle counters
            # themselves: both transports move each segment exactly once.
            if (outcome == "identical"
                    and serial.result.counters != baselines[query].counters):
                outcome = "DRIFT"
            result.add(scenario=f"clean-{transport}", query=query,
                       fault="none",
                       retries=serial.counter(C.SHUFFLE_RETRIES),
                       reexecs=serial.counter(C.MAPS_REEXECUTED),
                       outcome=outcome)

    def fault_scenario(scenario: str, query: str, fault_label: str,
                       plan) -> None:
        job = _build(grid, query, side, num_map_tasks, num_reducers)
        serial = _run_one("serial", grid, job, faulty, plan())
        parallel = _run_one("parallel", grid, job, faulty, plan())
        result.add(scenario=scenario, query=query, fault=fault_label,
                   retries=serial.counter(C.SHUFFLE_RETRIES),
                   reexecs=serial.counter(C.MAPS_REEXECUTED),
                   outcome=_classify(serial, parallel, baselines[query]))

    # -- transient wire damage: one bad fetch attempt, retry heals -------
    for op in ("flip", "drop", "truncate", "delay", "stall"):
        def plan(op=op):
            inj = FaultInjector()
            inj.fetch("m00001", "r00000", op=op, attempt=0, seconds=0.5)
            return inj
        fault_scenario(f"wire-{op}", "subset-plain",
                       f"{op} m00001->r00000#0", plan)

    # -- sticky epoch-0 fault: retries exhaust, the map is re-executed ---
    def reexec_plan():
        inj = FaultInjector()
        inj.fetch("m00000", "r00000", op="flip", attempt=0, sticky=True,
                  epoch=0)
        return inj
    fault_scenario("reexec-map", "subset-plain",
                   "sticky flip m00000->r00000 (epoch 0)", reexec_plan)

    # -- fault sticky across every epoch: the job must fail, agreed -----
    def doomed_plan():
        inj = FaultInjector()
        inj.fetch("m00000", "r00001", op="drop", attempt=0, sticky=True,
                  epoch=None)
        return inj
    fault_scenario("unfetchable", "subset-plain",
                   "sticky drop m00000->r00001 (all epochs)", doomed_plan)

    # -- seeded fuzz tail ------------------------------------------------
    rng = make_rng(3000)
    ran = 0
    for seed in range(num_fuzz):
        if time.monotonic() - t0 > seconds:
            break
        query = _QUERIES[rng.integers(0, len(_QUERIES))]
        op = _FUZZ_OPS[rng.integers(0, len(_FUZZ_OPS))]
        map_id = f"m{rng.integers(0, num_map_tasks):05d}"
        reduce_id = f"r{rng.integers(0, num_reducers):05d}"
        sticky = bool(rng.integers(0, 5) == 0)  # 20%: escalates to reexec
        attempt = int(rng.integers(0, 2))

        def fuzz_plan(op=op, map_id=map_id, reduce_id=reduce_id,
                      sticky=sticky, attempt=attempt):
            inj = FaultInjector()
            inj.fetch(map_id, reduce_id, op=op, attempt=attempt,
                      sticky=sticky, seconds=0.5, epoch=0)
            return inj
        sticky_note = " sticky" if sticky else ""
        fault_scenario(f"fuzz-{seed}", query,
                       f"{op}{sticky_note} {map_id}->{reduce_id}#{attempt}",
                       fuzz_plan)
        ran += 1

    result.note(f"grid {side}x{side}, {num_map_tasks} maps x "
                f"{num_reducers} reducers; fuzz tail ran {ran}/{num_fuzz} "
                f"seeds in {time.monotonic() - t0:.1f}s")
    result.note("outcome=identical: byte-identical output and non-shuffle "
                "counters vs the serial/direct baseline, runners agreeing "
                "on everything including SHUFFLE_* counters")
    return result
