"""P2 -- columnar vs scalar throughput through the record pipeline.

Not a paper figure: this sizes the repo's own columnar fast path
(:mod:`repro.mapreduce.columnar`, ``Job.columnar``) against the
record-at-a-time reference path it replaces.  The paper's argument is
that per-record overheads dominate dense scientific shuffles; this
harness quantifies our engine's version of that overhead by timing the
map phase only (``run_map_task`` = map + sort + spill + map-side merge,
the "records/sec through map+spill" number) with the flag on and off.

Three workloads:

``sliding-median``
    The paper's sliding-window pattern in plain per-cell-key mode: every
    cell emits ``window**ndim`` records, so at the Fig 8 grid size
    (side=100, window=3) the map phase pushes 27M records.  This is the
    workload the columnar path exists for.

``e7-subset-plain``
    The Fig 8 full-box subset query with per-cell keys -- one record per
    cell, the E7 experiment's "plain" bar.

``e7-subset-aggregate``
    The same query under key aggregation (§IV).  The aggregate shuffle
    plugin routes records itself, so the engine intentionally keeps it
    on the per-record path; columnar and scalar times should match.
    This row is the regression guard: the fast path must never make the
    aggregation workload slower.

Every scalar/columnar pair is checked for identical map counters -- the
speedup table is only meaningful because the two paths are
interchangeable (the full byte-identity proof lives in
``tests/mapreduce/test_columnar_equivalence.py``).
"""

from __future__ import annotations

import shutil
import tempfile
import time

from repro.experiments.common import ExperimentResult, scaled
from repro.mapreduce.engine import run_map_task
from repro.mapreduce.metrics import C, Counters
from repro.queries.sliding_median import SlidingMedianQuery
from repro.queries.subset import BoxSubsetQuery
from repro.scidata.generator import integer_grid
from repro.scidata.splits import ArraySplitter

__all__ = ["run", "measure_map_phase"]


def measure_map_phase(job, dataset, repeats: int = 1):
    """Best-of-``repeats`` wall time of all map tasks of ``job``.

    Runs ``run_map_task`` over every input split into a throwaway
    workdir -- map, sort, combine, spill, and map-side merge, but no
    shuffle or reduce.  Returns ``(seconds, counters)`` where counters
    are the merged map counters (asserted stable across repeats).
    """
    variables = (list(job.input_variables)
                 if job.input_variables is not None else None)
    splits = ArraySplitter(job.num_map_tasks).split(dataset, variables)
    best = float("inf")
    counters: Counters | None = None
    for _ in range(repeats):
        workdir = tempfile.mkdtemp(prefix="p2-map-")
        try:
            merged = Counters()
            start = time.perf_counter()
            for split in splits:
                mo = run_map_task(job, split, dataset, workdir)
                merged.merge(mo.counters)
            best = min(best, time.perf_counter() - start)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        if counters is None:
            counters = merged
        elif counters != merged:
            raise AssertionError("map counters drifted between repeats")
    return best, counters


def run(side: int | None = None, window: int = 3, num_map_tasks: int = 4,
        repeats: int = 2) -> ExperimentResult:
    """Time the map phase scalar vs columnar on three workloads.

    ``side=100`` is the Fig 8 grid (10^6 cells; the sliding workload
    then moves 27M records); the default is scaled down
    (REPRO_SCALE=1.0 restores it).
    """
    if side is None:
        side = scaled(100, default_scale=0.3)
    grid = integer_grid((side, side, side), seed=1234)
    sliding = SlidingMedianQuery(grid, "values", window=window)
    subset = BoxSubsetQuery(grid, "values", grid["values"].extent)

    # One spill per map task (a well-sized io.sort.mb): the comparison
    # then isolates the record pipeline itself rather than spill count.
    buffer_bytes = 256 << 20
    workloads = [
        ("sliding-median", lambda: sliding.build_job(
            "plain", variable_mode="index", num_map_tasks=num_map_tasks,
            sort_buffer_bytes=buffer_bytes)),
        ("e7-subset-plain", lambda: subset.build_job(
            "plain", variable_mode="index", num_map_tasks=num_map_tasks,
            sort_buffer_bytes=buffer_bytes)),
        ("e7-subset-aggregate", lambda: subset.build_job(
            "aggregate", variable_mode="index",
            num_map_tasks=num_map_tasks)),
    ]

    result = ExperimentResult(
        experiment="P2",
        title=f"scalar vs columnar map-phase throughput, {side}^3 grid "
              f"({num_map_tasks} map tasks, best of {repeats})",
        columns=["workload", "path", "map_records", "seconds",
                 "records_per_s", "speedup", "counters"],
    )
    for name, make_job in workloads:
        timings: dict[str, float] = {}
        counters: dict[str, Counters] = {}
        for path in ("scalar", "columnar"):
            job = make_job()
            job.columnar = path == "columnar"
            timings[path], counters[path] = measure_map_phase(
                job, grid, repeats)
        identical = counters["scalar"] == counters["columnar"]
        for path in ("scalar", "columnar"):
            records = counters[path][C.MAP_OUTPUT_RECORDS]
            secs = timings[path]
            result.add(
                workload=name,
                path=path,
                map_records=records,
                seconds=round(secs, 3),
                records_per_s=int(records / secs) if secs > 0 else 0,
                speedup=(f"{timings['scalar'] / secs:.2f}x"
                         if path == "columnar" else "1.00x"),
                counters="identical" if identical else "DRIFT",
            )
    result.note("seconds = map phase only (run_map_task: map + sort + "
                "spill + map-side merge); shuffle/reduce excluded")
    result.note(f"sliding workload: window={window} -> each cell emits "
                f"{window ** 3} per-cell records")
    result.note("e7-subset-aggregate routes through the shuffle plugin, "
                "which stays on the per-record path by design -- its two "
                "rows should tie")
    result.note("counters: scalar and columnar map counters compared per "
                "workload (byte-identity proof lives in the equivalence "
                "test suite)")
    return result
