"""A8 -- aggregation benefit versus key density (the sparse-data caveat).

Related work (§V, on Goldstein et al.): "Our work currently focuses on
dense keys, but adapting their work may be useful for sparse data."
This ablation quantifies the caveat: a filter query emits only the cells
above a value threshold, so sweeping the threshold sweeps the surviving
key density.  Dense survivors coalesce into long curve ranges; sparse
survivors fragment into near-singleton ranges whose RangeKey (16-23
bytes) costs *more* than a per-cell key -- aggregation's win must
shrink, vanish, and eventually invert as density falls.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, fmt_bytes, scaled
from repro.experiments.common import make_runner
from repro.mapreduce.job import Job
from repro.mapreduce.keys import CellKeySerde
from repro.mapreduce.api import Mapper
from repro.core.aggregation import AggregateShufflePlugin, Aggregator
from repro.queries.subset import AggregateSubsetReducer, IdentityReducer
from repro.queries.sliding_median import value_serde_for
from repro.scidata.generator import integer_grid

__all__ = ["run", "ThresholdFilterMapperPlain", "ThresholdFilterMapperAgg"]


class ThresholdFilterMapperPlain(Mapper):
    """Emit (cell, value) for cells with value >= threshold."""

    def __init__(self, var_ref, threshold: int) -> None:
        self.var_ref = var_ref
        self.threshold = threshold

    def map(self, split, values, ctx):
        flat = values.ravel()
        keep = flat >= self.threshold
        coords = split.slab.coords()[keep]
        if coords.shape[0]:
            ctx.emit_cells(self.var_ref, coords, flat[keep])


class ThresholdFilterMapperAgg(Mapper):
    """Same filter through the aggregation library."""

    def __init__(self, var_ref, threshold: int, origin, config) -> None:
        self.var_ref = var_ref
        self.threshold = threshold
        self.origin = np.asarray(origin, dtype=np.int64)
        self.config = config
        self._agg = None

    def map(self, split, values, ctx):
        self._agg = Aggregator(self.config, self.var_ref, ctx)
        flat = values.ravel()
        keep = flat >= self.threshold
        coords = split.slab.coords()[keep]
        if coords.shape[0]:
            self._agg.add(coords - self.origin, flat[keep])

    def cleanup(self, ctx):
        if self._agg is not None:
            self._agg.close()


def run(side: int | None = None,
        densities: list[float] | None = None) -> ExperimentResult:
    """Sweep surviving-key density; report both modes' materialized bytes."""
    if side is None:
        side = scaled(96, default_scale=1.0)
    densities = densities or [1.0, 0.5, 0.1, 0.02, 0.005]
    value_max = 1 << 20
    grid = integer_grid((side, side), seed=55, low=0, high=value_max)
    extent = grid["values"].extent
    from repro.queries.subset import BoxSubsetQuery

    query = BoxSubsetQuery(grid, "values", extent)  # reuse config helpers

    result = ExperimentResult(
        experiment="A8",
        title=f"aggregation vs key density ({side}x{side} filter query)",
        columns=["density", "plain_bytes", "aggregate_bytes",
                 "agg_win_pct", "ranges"],
    )
    dtype = grid["values"].data.dtype
    for density in densities:
        threshold = int(value_max * (1.0 - density))
        plain_job = Job(
            name="filter-plain",
            mapper=lambda: ThresholdFilterMapperPlain("values", threshold),
            reducer=IdentityReducer,
            key_serde=CellKeySerde(2, "name"),
            value_serde=value_serde_for(dtype),
        )
        plain = make_runner().run(plain_job, grid)

        config = query.aggregation_config()
        agg_job = Job(
            name="filter-agg",
            mapper=lambda: ThresholdFilterMapperAgg(
                "values", threshold, extent.corner, config),
            reducer=lambda: AggregateSubsetReducer(config, extent.corner),
            key_serde=config.key_serde(),
            value_serde=config.block_serde(),
            shuffle_plugin=AggregateShufflePlugin(config),
        )
        agg = make_runner().run(agg_job, grid)

        if len(plain.output) != len(agg.output):
            raise AssertionError("filter modes disagree on output size")

        pb = plain.materialized_bytes
        ab = agg.materialized_bytes
        result.add(
            density=density,
            plain_bytes=fmt_bytes(pb),
            aggregate_bytes=fmt_bytes(ab),
            agg_win_pct=round(100.0 * (1.0 - ab / pb), 1) if pb else 0.0,
            ranges=agg.map_output_stats.records,
        )
    result.note("dense keys: aggregation wins big; sparse keys fragment "
                "into near-singleton ranges and the win collapses "
                "(the §V caveat about Goldstein et al.)")
    return result
