"""R1 -- chaos soak: randomized fault schedules vs the serial runner.

Not a paper figure: this is the robustness analogue of P1.  Each seed
derives a random :class:`~repro.mapreduce.runtime.fault.FaultInjector`
plan -- worker kills, mid-task crashes, hangs (with speculation
randomly disabled, so completion rides on the ``task_timeout`` deadline
path), silent segment corruption, and SIGSTOP stalls (caught only by
heartbeat staleness) -- and runs the same aggregation job through the
parallel runtime under that schedule.  Every run must produce reduce
output and merged counters **byte-identical** to the serial
:class:`~repro.mapreduce.engine.LocalJobRunner` baseline.

On top of the per-seed schedules, ``resume_seeds`` scenarios exercise
the durable-recovery path end to end: the whole scheduler process is
SIGKILLed mid-job (the cluster-master loss case), then a fresh runner
resumes from the on-disk job manifest, adopting the completed tasks it
can validate and re-running the rest -- again to byte-identical output.

The table reports, per scenario, the fault plan, how many attempts ran,
how many retries / deadline kills / adoptions the trace recorded, and
whether counters and output matched.  The chaos bench
(``benchmarks/bench_r1_chaos.py``) asserts the "identical" column is
unanimous.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import tempfile
import time

from repro.experiments.common import ExperimentResult, scaled
from repro.mapreduce.engine import LocalJobRunner
from repro.mapreduce.runtime import FaultInjector, ParallelJobRunner
from repro.mapreduce.runtime.recovery import MANIFEST_NAME, JobManifest
from repro.queries.subset import BoxSubsetQuery
from repro.scidata.generator import integer_grid
from repro.util.rng import make_rng
from repro.util.timing import wait_until

__all__ = ["run", "random_fault_plan"]

#: fault modes a random schedule may draw (corrupt is maps-only)
_CHAOS_MODES = ("kill", "crash", "hang", "corrupt", "stall")

#: per-attempt deadline for chaos runs; hangs outlive it on purpose
_TASK_TIMEOUT = 2.0
#: staleness bound that catches SIGSTOPped (stalled) workers
_HEARTBEAT_TIMEOUT = 1.0


def _make_job(side: int, num_map_tasks: int, num_reducers: int):
    grid = integer_grid((side, side), seed=7, low=0, high=500)
    query = BoxSubsetQuery(grid, "values", grid["values"].extent)
    job = query.build_job("aggregate", variable_mode="index",
                          num_map_tasks=num_map_tasks,
                          num_reducers=num_reducers)
    return grid, job


class _SlowMapperFactory:
    """Module-level mapper factory wrapping maps in a fetch delay.

    A named class (not a local lambda) so the job *fingerprint* is
    identical whether the job is built in the to-be-killed child or in
    the resuming parent -- locals' qualnames would differ and veto
    adoption.
    """

    def __init__(self, inner_factory, delay: float) -> None:
        self.inner_factory = inner_factory
        self.delay = delay

    def __call__(self):
        from repro.experiments.parallel_speedup import SlowFetchMapper

        return SlowFetchMapper(self.inner_factory(), self.delay)


def _make_slow_job(side: int, num_map_tasks: int, num_reducers: int,
                   map_delay: float):
    import dataclasses

    grid, job = _make_job(side, num_map_tasks, num_reducers)
    if map_delay > 0:
        job = dataclasses.replace(
            job, mapper=_SlowMapperFactory(job.mapper, map_delay))
    return grid, job


def random_fault_plan(rng, map_ids: list[str], reduce_ids: list[str],
                      max_faults: int = 4) -> FaultInjector:
    """Derive one deterministic, seed-reproducible fault schedule.

    Draws 1..``max_faults`` faults over distinct (task, attempt) slots.
    First attempts are the usual victims; occasionally the *retry* is
    hit too (attempt 1), which a ``max_retries`` budget of 3 survives.
    Hangs sleep far longer than ``task_timeout`` so they only complete
    via the deadline-kill path; stalls freeze the worker so only
    heartbeat staleness can reclaim the slot.
    """
    injector = FaultInjector()
    all_ids = list(map_ids) + list(reduce_ids)
    n_faults = int(rng.integers(1, max_faults + 1))
    victims = rng.choice(len(all_ids), size=min(n_faults, len(all_ids)),
                         replace=False)
    for idx in victims:
        task_id = all_ids[int(idx)]
        mode = _CHAOS_MODES[int(rng.integers(0, len(_CHAOS_MODES)))]
        if mode == "corrupt" and task_id not in map_ids:
            mode = "crash"  # corruption is a map-output fault
        attempt = 0
        if mode == "hang":
            injector.hang(task_id, seconds=30.0, attempt=attempt)
        elif mode == "kill":
            injector.kill(task_id, attempt=attempt)
        elif mode == "crash":
            injector.crash(task_id, attempt=attempt)
        elif mode == "corrupt":
            injector.corrupt(task_id, attempt=attempt)
        else:
            injector.stall(task_id, attempt=attempt)
        # Sometimes break the retry as well (different mode, attempt 1).
        if rng.random() < 0.2:
            retry_mode = ("kill", "crash")[int(rng.integers(0, 2))]
            getattr(injector, retry_mode)(task_id, attempt=1)
    return injector


def _format_plan(injector: FaultInjector) -> str:
    rows = sorted(injector._plan.items())
    return " ".join(f"{tid}.{att}:{f.mode}" for (tid, att), f in rows)


def _run_job_child(recovery_dir: str, side: int, num_map_tasks: int,
                   num_reducers: int, map_delay: float) -> None:
    """Child-process body for the mid-job scheduler-kill scenario.

    Re-derives the job from first principles (nothing is shared with
    the parent but the recovery directory -- exactly the real resume
    situation) and slows maps down so the parent can kill us with the
    job provably in flight.
    """
    grid, job = _make_slow_job(side, num_map_tasks, num_reducers, map_delay)
    ParallelJobRunner(max_workers=2, recovery_dir=recovery_dir,
                      retry_backoff=0.01).run(job, grid)


def _kill_resume_scenario(seed: int, side: int, num_map_tasks: int,
                          num_reducers: int, baseline) -> dict:
    """SIGKILL the scheduler mid-job, then resume from the manifest."""
    recovery_dir = tempfile.mkdtemp(prefix="repro-chaos-rec-")
    manifest_path = os.path.join(recovery_dir, MANIFEST_NAME)
    map_delay = 0.15
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else None)
    child = ctx.Process(
        target=_run_job_child,
        args=(recovery_dir, side, num_map_tasks, num_reducers, map_delay))
    child.start()
    # Kill once the manifest proves at least one task checkpointed --
    # mid-job by construction, never before the first durable record.
    def checkpointed_or_dead() -> bool:
        if not child.is_alive():
            return True
        manifest = JobManifest.load(manifest_path)
        return manifest is not None and len(manifest) >= 1

    wait_until(checkpointed_or_dead, timeout=60.0, interval=0.02)
    os.kill(child.pid, signal.SIGKILL)
    child.join()
    time.sleep(0.5)  # let orphaned workers drain their current attempt
    manifest = JobManifest.load(manifest_path)
    checkpointed = len(manifest) if manifest is not None else 0

    grid, job = _make_slow_job(side, num_map_tasks, num_reducers, map_delay)
    try:
        runner = ParallelJobRunner(
            max_workers=2, recovery_dir=recovery_dir, resume=True,
            retry_backoff=0.01, task_timeout=_TASK_TIMEOUT)
        result = runner.run(job, grid)
        trace = runner.last_trace
        identical = (result.counters == baseline.counters
                     and result.output == baseline.output)
        return {
            "scenario": "kill+resume",
            "seed": seed,
            "plan": f"SIGKILL scheduler @ {checkpointed} checkpointed",
            "attempts": trace.count("started"),
            "retried": trace.count("retried"),
            "timeouts": trace.count("timeout"),
            "adopted": runner.last_adopted,
            "identical": "identical" if identical else "DRIFT",
        }
    finally:
        shutil.rmtree(recovery_dir, ignore_errors=True)


def run(num_seeds: int | None = None, resume_seeds: int = 3,
        side: int | None = None, num_map_tasks: int = 6,
        num_reducers: int = 2) -> ExperimentResult:
    """Soak the parallel runtime under randomized fault schedules.

    ``num_seeds`` random schedules (default 20, or ``REPRO_CHAOS_SEEDS``)
    plus ``resume_seeds`` mid-job scheduler-kill + resume scenarios.
    """
    if num_seeds is None:
        num_seeds = int(os.environ.get("REPRO_CHAOS_SEEDS", "20"))
    if side is None:
        side = scaled(12, default_scale=1.0)

    grid, job = _make_job(side, num_map_tasks, num_reducers)
    with LocalJobRunner() as serial:
        baseline = serial.run(job, grid)

    map_ids = [f"m{i:05d}" for i in range(num_map_tasks)]
    reduce_ids = [f"r{i:05d}" for i in range(num_reducers)]

    result = ExperimentResult(
        experiment="R1",
        title=f"chaos soak, {side}^2 aggregate subset "
              f"({num_map_tasks} maps, {num_reducers} reducers), "
              f"{num_seeds} fault schedules + {resume_seeds} kill+resume",
        columns=["scenario", "seed", "plan", "attempts", "retried",
                 "timeouts", "adopted", "identical"],
    )

    for seed in range(num_seeds):
        rng = make_rng(seed)
        injector = random_fault_plan(rng, map_ids, reduce_ids)
        speculation = bool(rng.random() < 0.5)
        runner = ParallelJobRunner(
            max_workers=2, max_retries=3, retry_backoff=0.01,
            fault_injector=injector, speculation=speculation,
            task_timeout=_TASK_TIMEOUT,
            heartbeat_timeout=_HEARTBEAT_TIMEOUT)
        with runner:
            job_result = runner.run(job, grid)
        trace = runner.last_trace
        identical = (job_result.counters == baseline.counters
                     and job_result.output == baseline.output)
        result.add(
            scenario="faults" if speculation else "faults/no-spec",
            seed=seed,
            plan=_format_plan(injector),
            attempts=trace.count("started"),
            retried=trace.count("retried"),
            timeouts=trace.count("timeout"),
            adopted=0,
            identical="identical" if identical else "DRIFT",
        )

    for seed in range(resume_seeds):
        result.add(**_kill_resume_scenario(
            seed, side, num_map_tasks, num_reducers, baseline))

    n_drift = sum(1 for v in result.column("identical") if v != "identical")
    result.note(f"{num_seeds} randomized schedules + {resume_seeds} "
                f"scheduler kill+resume scenarios; {n_drift} drifted "
                f"from the serial baseline (must be 0)")
    result.note(f"task_timeout={_TASK_TIMEOUT}s reclaims hung workers "
                f"(speculation is disabled on ~half the seeds, so "
                f"completion there rides on the deadline path alone); "
                f"heartbeat_timeout={_HEARTBEAT_TIMEOUT}s reclaims "
                f"SIGSTOPped ones")
    result.note("kill+resume: the scheduler process is SIGKILLed after "
                "the first durable checkpoint; a fresh runner adopts "
                "validated manifest records and re-runs the rest")
    return result
