"""P1 -- parallel runtime speedup on the Fig 8 aggregation workload.

Not a paper figure: this sizes the repo's own multiprocess task runtime
(:mod:`repro.mapreduce.runtime`) against the serial reference runner on
the Fig 8 aggregate-subset job.  Two variants of the same job:

``cpu``
    The job as-is.  Map tasks are compute-bound (curve encoding, sort,
    IFile writes), so parallel speedup is capped by physical cores --
    on a single-core host the parallel runner only adds process
    overhead, and the table says so rather than pretending otherwise.

``blocking``
    The same job behind a simulated slow input fetch (each map task
    sleeps ``fetch_delay`` seconds before mapping, standing in for a
    cold HDFS/object-store read).  Overlapping blocked tasks needs only
    scheduler concurrency, not cores, so this isolates what the runtime
    itself buys: near-linear speedup in the worker count even on one
    core.

Every run is checked for byte-identical counters and output against the
serial baseline -- the speedup table is only meaningful because the
backends are interchangeable.
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro.experiments.common import ExperimentResult, make_runner, scaled
from repro.mapreduce.api import Mapper
from repro.mapreduce.engine import LocalJobRunner
from repro.mapreduce.runtime import ParallelJobRunner
from repro.queries.subset import BoxSubsetQuery
from repro.scidata.generator import integer_grid

__all__ = ["run", "SlowFetchMapper"]


class SlowFetchMapper(Mapper):
    """Delegating mapper that simulates a slow input fetch.

    Sleeps before handing the split to the wrapped mapper -- the
    MapReduce analogue of a map task stalled on a cold storage read.
    """

    def __init__(self, inner: Mapper, delay: float) -> None:
        self.inner = inner
        self.delay = delay

    def setup(self, split):
        self.inner.setup(split)

    def map(self, split, values, ctx):
        time.sleep(self.delay)
        self.inner.map(split, values, ctx)

    def cleanup(self, ctx):
        self.inner.cleanup(ctx)


def _timed(runner, job, grid):
    start = time.perf_counter()
    result = runner.run(job, grid)
    return result, time.perf_counter() - start


def run(side: int | None = None, worker_counts: tuple[int, ...] = (1, 2, 4, 8),
        num_map_tasks: int = 8, num_reducers: int = 2,
        fetch_delay: float = 0.5) -> ExperimentResult:
    """Time serial vs parallel execution of the Fig 8 aggregation job."""
    if side is None:
        side = scaled(100, default_scale=0.28)
    grid = integer_grid((side, side, side), seed=1234)
    query = BoxSubsetQuery(grid, "values", grid["values"].extent)
    job = query.build_job("aggregate", variable_mode="index",
                          num_map_tasks=num_map_tasks,
                          num_reducers=num_reducers)
    inner_factory = job.mapper
    slow_job = dataclasses.replace(
        job, name=job.name + "-slowfetch",
        mapper=lambda: SlowFetchMapper(inner_factory(), fetch_delay))

    result = ExperimentResult(
        experiment="P1",
        title=f"serial vs parallel runtime, {side}^3 aggregate subset "
              f"({num_map_tasks} maps, {num_reducers} reducers)",
        columns=["workload", "runner", "workers", "seconds", "speedup",
                 "counters"],
    )
    for workload, the_job in [("cpu", job), ("blocking", slow_job)]:
        with LocalJobRunner() as serial_runner:
            baseline, serial_s = _timed(serial_runner, the_job, grid)
        result.add(workload=workload, runner="serial", workers=1,
                   seconds=f"{serial_s:.2f}", speedup="1.00x",
                   counters="baseline")
        for workers in worker_counts:
            with ParallelJobRunner(max_workers=workers) as runner:
                res, par_s = _timed(runner, the_job, grid)
            identical = (res.counters == baseline.counters
                         and res.output == baseline.output)
            result.add(workload=workload, runner="parallel", workers=workers,
                       seconds=f"{par_s:.2f}",
                       speedup=f"{serial_s / par_s:.2f}x",
                       counters="identical" if identical else "DRIFT")
    result.note(f"host has {os.cpu_count()} CPU core(s); cpu-workload "
                f"speedup is bounded by that, blocking-workload speedup "
                f"is bounded only by worker count")
    result.note(f"blocking = same job with a {fetch_delay:.2f}s simulated "
                f"input fetch per map task")
    result.note("counters: every parallel run is byte-identical to the "
                "serial baseline (or flagged DRIFT)")
    return result
