"""Shared experiment plumbing: scaling, result tables, formatting."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = ["get_scale", "scaled", "make_runner", "ExperimentResult",
           "fmt_bytes", "pct"]


def get_scale(default: float = 1.0) -> float:
    """The ``REPRO_SCALE`` factor (1.0 = paper scale).

    Invalid or non-positive values raise rather than silently running the
    wrong experiment size.
    """
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a float, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {value}")
    return value


def scaled(paper_value: int, default_scale: float, minimum: int = 1) -> int:
    """A linear dimension scaled from its paper value by REPRO_SCALE."""
    return max(minimum, round(paper_value * get_scale(default_scale)))


def make_runner(**runner_kwargs):
    """The execution backend every harness runs its jobs through.

    Selected by ``REPRO_RUNNER`` (``serial``/``local`` -> in-process
    loop, ``parallel`` -> multiprocess runtime; the CLI's ``--runner``
    flag sets it) with worker count from ``REPRO_WORKERS``.  The
    parallel runtime additionally honours ``REPRO_TASK_TIMEOUT`` (hard
    per-attempt deadline, seconds), ``REPRO_RECOVERY_DIR`` (durable
    checkpoint manifests there), and ``REPRO_RESUME`` (adopt a prior
    interrupted run's completed tasks) -- the CLI's ``--task-timeout``,
    ``--recovery-dir``, and ``--resume`` flags.  Both backends honour
    the shuffle-transport knobs ``REPRO_TRANSPORT`` /
    ``REPRO_FETCH_RETRIES`` / ``REPRO_FETCH_TIMEOUT`` (the CLI's
    ``--transport`` / ``--fetch-retries`` / ``--fetch-timeout``), plus
    the host-failure-domain knobs ``REPRO_NUM_HOSTS`` /
    ``REPRO_MAX_HOST_REEXECS`` (the CLI's ``--num-hosts`` /
    ``--max-host-reexecs``), and the memory knobs
    ``REPRO_MEMORY_BUDGET`` / ``REPRO_MAX_INFLIGHT_BYTES`` /
    ``REPRO_MAX_MEMORY_RETRIES`` (which travel inside the shuffle
    config); the parallel runtime additionally honours
    ``REPRO_WORKER_RLIMIT_BYTES`` (a real ``RLIMIT_AS`` cap applied to
    forked workers).  Both backends produce byte-identical counters,
    so paper measurements are runner-independent -- only wall-clock
    changes.
    """
    from repro.mapreduce.runtime.shuffle import shuffle_config_from_env

    shuffle = shuffle_config_from_env()
    if shuffle is not None:
        runner_kwargs.setdefault("shuffle", shuffle)
    raw_hosts = os.environ.get("REPRO_NUM_HOSTS")
    if raw_hosts is not None:
        num_hosts = int(raw_hosts)
        if num_hosts < 1:
            raise ValueError(f"REPRO_NUM_HOSTS must be >= 1, got {num_hosts}")
        runner_kwargs.setdefault("num_hosts", num_hosts)
    raw_reexecs = os.environ.get("REPRO_MAX_HOST_REEXECS")
    if raw_reexecs is not None:
        max_host_reexecs = int(raw_reexecs)
        if max_host_reexecs < 0:
            raise ValueError(f"REPRO_MAX_HOST_REEXECS must be >= 0, "
                             f"got {max_host_reexecs}")
        runner_kwargs.setdefault("max_host_reexecs", max_host_reexecs)
    name = os.environ.get("REPRO_RUNNER", "serial").lower()
    if name in ("serial", "local"):
        from repro.mapreduce.engine import LocalJobRunner

        return LocalJobRunner(**runner_kwargs)
    if name == "parallel":
        from repro.mapreduce.runtime import ParallelJobRunner

        raw_workers = os.environ.get("REPRO_WORKERS")
        if raw_workers is not None:
            workers = int(raw_workers)
            if workers < 1:
                raise ValueError(
                    f"REPRO_WORKERS must be >= 1, got {workers}")
            runner_kwargs.setdefault("max_workers", workers)
        raw_timeout = os.environ.get("REPRO_TASK_TIMEOUT")
        if raw_timeout is not None:
            timeout = float(raw_timeout)
            if timeout <= 0:
                raise ValueError(
                    f"REPRO_TASK_TIMEOUT must be > 0, got {timeout}")
            runner_kwargs.setdefault("task_timeout", timeout)
        raw_rlimit = os.environ.get("REPRO_WORKER_RLIMIT_BYTES")
        if raw_rlimit is not None:
            rlimit_bytes = int(raw_rlimit)
            if rlimit_bytes < 1:
                raise ValueError(
                    f"REPRO_WORKER_RLIMIT_BYTES must be >= 1, "
                    f"got {rlimit_bytes}")
            runner_kwargs.setdefault("worker_rlimit_bytes", rlimit_bytes)
        recovery_dir = os.environ.get("REPRO_RECOVERY_DIR")
        if recovery_dir:
            runner_kwargs.setdefault("recovery_dir", recovery_dir)
            resume = os.environ.get("REPRO_RESUME", "").lower()
            runner_kwargs.setdefault(
                "resume", resume in ("1", "true", "yes", "on"))
        elif os.environ.get("REPRO_RESUME"):
            raise ValueError(
                "REPRO_RESUME requires REPRO_RECOVERY_DIR (the directory "
                "holding the job manifest to resume from)")
        return ParallelJobRunner(**runner_kwargs)
    raise ValueError(
        f"REPRO_RUNNER must be 'serial' or 'parallel', got {name!r}")


def fmt_bytes(n: int | float) -> str:
    """Human-readable byte count (binary units above 1 KiB)."""
    n = float(n)
    for unit in ["B", "KiB", "MiB", "GiB", "TiB"]:
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:,.0f} {unit}" if unit == "B" else f"{n:,.2f} {unit}"
        n /= 1024


def pct(new: float, old: float) -> float:
    """Percentage change from ``old`` to ``new`` (negative = reduction)."""
    if old == 0:
        raise ValueError("cannot compute percentage change from zero")
    return 100.0 * (new - old) / old


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure plus provenance notes."""

    experiment: str
    title: str
    columns: Sequence[str]
    rows: list[Mapping[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        missing = set(self.columns) - set(row)
        if missing:
            raise ValueError(f"row missing columns {sorted(missing)}")
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r}; have {list(self.columns)}")
        return [row[name] for row in self.rows]

    def row_by(self, column: str, value: Any) -> Mapping[str, Any]:
        """The first row whose ``column`` equals ``value``."""
        for row in self.rows:
            if row.get(column) == value:
                return row
        raise KeyError(f"no row with {column}={value!r}")

    def format_table(self) -> str:
        """Render as an aligned ASCII table (what the benches print)."""
        cols = list(self.columns)
        cells = [[str(row[c]) for c in cols] for row in self.rows]
        widths = [
            max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
            for i, c in enumerate(cols)
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
