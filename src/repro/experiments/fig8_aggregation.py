"""E7 -- Fig 8: key aggregation's effect on total intermediate data size.

The paper's ideal case: a grid of 10^6 int32 values flows through the
shuffle once.  Per-cell keys (index mode, 20 bytes) plus IFile framing
cost ~22 bytes per 4-byte value; aggregation collapses the keys of the
whole grid into a handful of range keys, leaving values (3.81 MB)
essentially alone -- "up to 84.5% reduction in the size of the
intermediate data".

This harness runs a full-box subset query through the real engine in
both modes with a single map task (the ideal case) and reports the
values / keys / file-overhead decomposition of the materialized map
output, i.e. the Fig 8 bars.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, fmt_bytes, make_runner, scaled

from repro.queries.subset import BoxSubsetQuery
from repro.scidata.generator import integer_grid

__all__ = ["run", "PAPER"]

PAPER = {
    "values_mb": 3.81,
    "compressed_keys": "5.84 KB",
    "reduction_pct": 84.5,
}


def run(side: int | None = None, num_map_tasks: int = 1,
        num_reducers: int = 1, curve: str = "zorder") -> ExperimentResult:
    """Regenerate Fig 8 for a ``side**3`` int32 grid.

    ``side=100`` is the 10^6-cell case matching the paper's 3.81 MB of
    values; the default is scaled down (REPRO_SCALE=1.0 restores it).
    """
    if side is None:
        side = scaled(100, default_scale=0.6)
    grid = integer_grid((side, side, side), seed=1234)
    query = BoxSubsetQuery(grid, "values", grid["values"].extent)

    result = ExperimentResult(
        experiment="E7",
        title=f"key aggregation vs per-cell keys, {side}^3 int32 grid (Fig 8)",
        columns=["mode", "values", "keys", "file_overhead", "total",
                 "records"],
    )
    totals: dict[str, int] = {}
    for mode in ["plain", "aggregate"]:
        job = query.build_job(
            mode,
            variable_mode="index",
            num_map_tasks=num_map_tasks,
            num_reducers=num_reducers,
            agg_overrides={"curve": curve} if mode == "aggregate" else None,
        )
        res = make_runner().run(job, grid)
        stats = res.map_output_stats
        totals[mode] = stats.materialized_bytes
        result.add(
            mode=mode,
            values=fmt_bytes(stats.value_bytes),
            keys=fmt_bytes(stats.key_bytes),
            file_overhead=fmt_bytes(stats.overhead_bytes),
            total=fmt_bytes(stats.materialized_bytes),
            records=stats.records,
        )
        if len(res.output) != query.expected_output_cells():
            raise AssertionError(
                f"{mode} mode produced {len(res.output)} cells, "
                f"expected {query.expected_output_cells()}"
            )
    reduction = 100.0 * (1.0 - totals["aggregate"] / totals["plain"])
    result.note(f"measured reduction: {reduction:.1f}% "
                f"(paper ideal case: up to 84.5%)")
    result.note(f"num_map_tasks={num_map_tasks}: partitioning across map "
                f"tasks reduces aggregation (§IV-D)")
    return result
