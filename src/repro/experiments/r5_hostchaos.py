"""R5 -- host failure domains: crashes, partitions, disk failover.

Not a paper figure: this is the robustness ladder's host-level rung.
Every task (and, with the network transport, every segment server) is
pinned to a simulated host by a stable hash
(:func:`repro.mapreduce.runtime.hosts.host_for`), and whole hosts are
then failed under the job.  Pinned here:

* **clean equivalence under monitoring** -- health tracking is always
  on now; queries x transports x runners with zero faults must stay
  byte-identical to the serial/direct baseline with zero retries (the
  monitor itself costs nothing on the clean path);
* **whole-host crash** -- a host dies at the shuffle barrier taking
  its segment server and the only copies of its maps' segments; every
  completed map homed there is re-executed (``HOSTS_LOST`` /
  ``MAPS_REEXECUTED_HOST``) and the output never changes;
* **network partition** -- every shuffle link out of a host drops its
  first fetch attempts while the host keeps heartbeating; the health
  monitor must *not* declare it dead (partition-vs-death rule) and the
  per-link retry ladder heals it with retry counts that are pure
  functions of the plan;
* **disk-fault failover** -- a host's workdir starts raising
  ENOSPC/EIO; tasks homed there fail over to a spare volume, the bad
  directory is quarantined, and deterministic side-files land under
  ``$REPRO_QUARANTINE_DIR`` -- byte-identical between runners;
* **bounded re-execution** -- with ``max_host_reexecs=0`` a host crash
  must fail the job identically in both runners instead of cascading.

``REPRO_R5_FUZZ`` bounds the fuzz-tail seed count and
``REPRO_R5_SECONDS`` the wall clock.  The bench
(``benchmarks/bench_r5_hostchaos.py``) asserts no row reads DRIFT.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.experiments.common import ExperimentResult, scaled
from repro.mapreduce.engine import LocalJobRunner
from repro.mapreduce.metrics import C
from repro.mapreduce.runtime import (
    FaultInjector,
    ParallelJobRunner,
    ShuffleConfig,
    host_for,
)
from repro.queries.histogram import HistogramQuery
from repro.queries.subset import BoxSubsetQuery
from repro.scidata.generator import integer_grid
from repro.scidata.slab import Slab
from repro.util.rng import make_rng

__all__ = ["run"]

#: queries the matrix and the fuzz tail draw from
_QUERIES = ("subset-plain", "subset-agg", "histogram")
#: shuffle transports the host faults are exercised over
_TRANSPORTS = ("direct", "channel", "network")
#: host-level fault kinds the fuzz tail draws from
_HOST_FAULTS = ("host_crash", "host_partition", "disk_fault")
#: counters that legitimately differ between a faulted run and the
#: baseline (they *measure* the faults / the wire); the rest must match
_VOLATILE = frozenset({
    C.SHUFFLE_FETCHES,
    C.SHUFFLE_RETRIES,
    C.SHUFFLE_FAILED_FETCHES,
    C.SHUFFLE_BYTES_TRANSFERRED,
    C.SHUFFLE_WIRE_BYTES,
    C.SHUFFLE_WIRE_BYTES_UNCOMPRESSED,
    C.MAPS_REEXECUTED,
    C.HOSTS_LOST,
    C.MAPS_REEXECUTED_HOST,
    C.DISK_FAILOVERS,
})


def _build(grid, query: str, side: int, num_map_tasks: int,
           num_reducers: int):
    """One query job over the harness grid."""
    var = grid.names[0]
    if query == "subset-plain":
        box = Slab((1, 1), (side - 2, side - 2))
        return BoxSubsetQuery(grid, var, box).build_job(
            "plain", num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    if query == "subset-agg":
        box = Slab((1, 1), (side - 2, side - 2))
        return BoxSubsetQuery(grid, var, box).build_job(
            "aggregate", variable_mode="index",
            num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    if query == "histogram":
        return HistogramQuery(grid, var, bins=16).build_job(
            "plain", num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    raise ValueError(f"unknown query {query!r}")


class _RunOutcome:
    """One runner's result-or-error for a scenario."""

    def __init__(self, result, error: BaseException | None,
                 quarantine: dict[str, str]) -> None:
        self.result = result
        self.error = error
        self.quarantine = quarantine

    def counter(self, name: str) -> int:
        return self.result.counters.get(name) if self.result else 0


def _read_quarantine(path: str) -> dict[str, str]:
    """Side-file name -> contents (deterministic bytes by design)."""
    files: dict[str, str] = {}
    if os.path.isdir(path):
        for name in sorted(os.listdir(path)):
            with open(os.path.join(path, name), encoding="utf-8") as fh:
                files[name] = fh.read()
    return files


def _run_one(runner_name: str, grid, job, shuffle: ShuffleConfig,
             injector: FaultInjector | None,
             num_hosts: int = 3,
             max_host_reexecs: int = 2) -> _RunOutcome:
    kwargs: dict = {"shuffle": shuffle, "fault_injector": injector,
                    "num_hosts": num_hosts,
                    "max_host_reexecs": max_host_reexecs}
    if runner_name == "serial":
        runner = LocalJobRunner(fetch_failure_threshold=1, **kwargs)
    else:
        runner = ParallelJobRunner(
            max_workers=2, speculation=False, retry_backoff=0.01,
            fetch_failure_threshold=1, **kwargs)
    saved = os.environ.get("REPRO_QUARANTINE_DIR")
    with tempfile.TemporaryDirectory(prefix="r5-quarantine-") as qdir:
        os.environ["REPRO_QUARANTINE_DIR"] = qdir
        try:
            with runner:
                result = runner.run(job, grid)
            return _RunOutcome(result, None, _read_quarantine(qdir))
        except Exception as exc:
            return _RunOutcome(None, exc, _read_quarantine(qdir))
        finally:
            if saved is None:
                os.environ.pop("REPRO_QUARANTINE_DIR", None)
            else:
                os.environ["REPRO_QUARANTINE_DIR"] = saved


def _stable_counters(result) -> dict[str, int]:
    """Counters minus the fault-measuring ones (and zero entries)."""
    return {k: v for k, v in result.counters.as_dict().items()
            if k not in _VOLATILE and v}


def _classify(serial: _RunOutcome, parallel: _RunOutcome,
              baseline) -> str:
    """Where the scenario landed: identical / reexecuted / failed / DRIFT."""
    if (serial.error is None) != (parallel.error is None):
        return "DRIFT"
    if serial.quarantine != parallel.quarantine:
        return "DRIFT"
    if serial.error is not None:
        return "failed"
    if serial.result.output != parallel.result.output:
        return "DRIFT"
    if serial.result.counters != parallel.result.counters:
        return "DRIFT"
    if serial.result.output != baseline.output:
        return "DRIFT"
    if _stable_counters(serial.result) != _stable_counters(baseline):
        return "DRIFT"
    if (serial.counter(C.HOSTS_LOST) > 0
            or serial.counter(C.MAPS_REEXECUTED) > 0):
        return "reexecuted"
    return "identical"


def run(num_fuzz: int | None = None,
        seconds: float | None = None) -> ExperimentResult:
    """Execute the R5 host-chaos matrix; returns the scenario table."""
    side = scaled(1000, 0.048, minimum=24)
    # Three hosts spread the 3 maps as host1:{m00000} host2:{m00001,
    # m00002} (stable hash), so there is both a cheap host to crash and
    # a populated one to partition / disk-fail.
    num_map_tasks, num_reducers, num_hosts = 3, 2, 3
    grid = integer_grid((side, side), seed=11)

    if num_fuzz is None:
        num_fuzz = int(os.environ.get("REPRO_R5_FUZZ", "3"))
    if seconds is None:
        seconds = float(os.environ.get("REPRO_R5_SECONDS", "120"))
    t0 = time.monotonic()

    result = ExperimentResult(
        experiment="R5",
        title="Host failure domains: crashes, partitions, and disk "
              "failover",
        columns=["scenario", "query", "transport", "fault", "hosts_lost",
                 "host_reexecs", "failovers", "retries", "quarantine",
                 "outcome"],
    )

    def shuffle_config(transport: str) -> ShuffleConfig:
        return ShuffleConfig(
            transport=transport, fetch_retries=2, fetch_timeout=2.0,
            backoff=0.005, backoff_max=0.02,
            wire_codec="fastpred+zlib" if transport == "network" else "null",
            num_servers=num_hosts)

    # Which simulated host holds which completed maps (stable hash).
    map_ids = [f"m{i:05d}" for i in range(num_map_tasks)]
    maps_on = {h: [m for m in map_ids if host_for(m, num_hosts) == h]
               for h in (f"host{i}" for i in range(num_hosts))}
    # A host whose loss stays inside the default budget of 2 maps, and
    # one that definitely holds at least one map (for the bounded row).
    crashable = min((h for h, ms in maps_on.items() if 0 < len(ms) <= 2),
                    key=lambda h: (len(maps_on[h]), h))
    populated = max(maps_on, key=lambda h: (len(maps_on[h]), h))

    baselines = {}
    for query in _QUERIES:
        job = _build(grid, query, side, num_map_tasks, num_reducers)
        baselines[query] = LocalJobRunner().run(job, grid)

    def add_row(scenario: str, query: str, transport: str,
                fault_label: str, plan, max_host_reexecs: int = 2,
                expect=None) -> None:
        cfg = shuffle_config(transport)
        job = _build(grid, query, side, num_map_tasks, num_reducers)
        serial = _run_one("serial", grid, job, cfg, plan(),
                          num_hosts=num_hosts,
                          max_host_reexecs=max_host_reexecs)
        parallel = _run_one("parallel", grid, job, cfg, plan(),
                            num_hosts=num_hosts,
                            max_host_reexecs=max_host_reexecs)
        outcome = _classify(serial, parallel, baselines[query])
        if expect is not None and outcome != "DRIFT" and outcome != expect:
            outcome = "DRIFT"
        result.add(scenario=scenario, query=query, transport=transport,
                   fault=fault_label,
                   hosts_lost=serial.counter(C.HOSTS_LOST),
                   host_reexecs=serial.counter(C.MAPS_REEXECUTED_HOST),
                   failovers=serial.counter(C.DISK_FAILOVERS),
                   retries=serial.counter(C.SHUFFLE_RETRIES),
                   quarantine=len(serial.quarantine),
                   outcome=outcome)

    # -- clean equivalence with monitoring always on ----------------------
    for transport in _TRANSPORTS:
        query = _QUERIES[_TRANSPORTS.index(transport) % len(_QUERIES)]
        cfg = shuffle_config(transport)
        job = _build(grid, query, side, num_map_tasks, num_reducers)
        serial = _run_one("serial", grid, job, cfg, None,
                          num_hosts=num_hosts)
        parallel = _run_one("parallel", grid, job, cfg, None,
                            num_hosts=num_hosts)
        outcome = _classify(serial, parallel, baselines[query])
        # The clean path must not retry, fail over, or lose anything.
        if outcome == "identical" and (
                serial.counter(C.SHUFFLE_RETRIES)
                or serial.counter(C.HOSTS_LOST)
                or serial.counter(C.DISK_FAILOVERS)):
            outcome = "DRIFT"
        result.add(scenario="clean-monitored", query=query,
                   transport=transport, fault="none",
                   hosts_lost=serial.counter(C.HOSTS_LOST),
                   host_reexecs=serial.counter(C.MAPS_REEXECUTED_HOST),
                   failovers=serial.counter(C.DISK_FAILOVERS),
                   retries=serial.counter(C.SHUFFLE_RETRIES),
                   quarantine=len(serial.quarantine),
                   outcome=outcome)

    # -- whole-host crash at the shuffle barrier --------------------------
    for transport in _TRANSPORTS:
        add_row("host-crash", "subset-plain", transport,
                f"crash {crashable} ({len(maps_on[crashable])} maps)",
                lambda: FaultInjector().host_crash(crashable),
                expect="reexecuted")

    # -- network partition: drops heal in-attempt, host stays alive -------
    for transport in _TRANSPORTS:
        add_row("host-partition", "histogram", transport,
                f"partition {populated} (2 drops/link)",
                lambda: FaultInjector().host_partition(populated, drops=2),
                expect="identical")

    # -- disk failure: spare-volume failover + quarantine -----------------
    for transport, op in (("direct", "enospc"), ("channel", "eio"),
                          ("network", "enospc")):
        add_row("disk-fault", "subset-agg", transport,
                f"{op} on {populated}",
                lambda op=op: FaultInjector().disk_fault(populated, op=op),
                expect="identical")

    # -- compound: crash one host while the other's disk is failing -------
    other = next(h for h in maps_on if h != crashable)
    add_row("compound", "subset-plain", "network",
            f"crash {crashable} + enospc on {other}",
            lambda: (FaultInjector().host_crash(crashable)
                     .disk_fault(other, op="enospc")),
            expect="reexecuted")

    # -- bounded: a zero re-execution budget fails the job cleanly --------
    add_row("bounded", "subset-plain", "direct",
            f"crash {populated}, max_host_reexecs=0",
            lambda: FaultInjector().host_crash(populated),
            max_host_reexecs=0, expect="failed")

    # -- seeded fuzz tail --------------------------------------------------
    rng = make_rng(5000)
    ran = 0
    for seed in range(num_fuzz):
        if time.monotonic() - t0 > seconds:
            break
        query = _QUERIES[rng.integers(0, len(_QUERIES))]
        transport = _TRANSPORTS[rng.integers(0, len(_TRANSPORTS))]
        kind = _HOST_FAULTS[rng.integers(0, len(_HOST_FAULTS))]
        host = f"host{rng.integers(0, num_hosts)}"
        op = ("enospc", "eio")[rng.integers(0, 2)]
        drops = int(rng.integers(1, 3))
        if kind == "host_crash" and len(maps_on[host]) > 2:
            host = crashable  # stay inside the default budget

        def fuzz_plan(kind=kind, host=host, op=op, drops=drops):
            inj = FaultInjector()
            if kind == "host_crash":
                inj.host_crash(host)
            elif kind == "host_partition":
                inj.host_partition(host, drops=drops)
            else:
                inj.disk_fault(host, op=op)
            return inj
        detail = {"host_crash": f"crash {host}",
                  "host_partition": f"partition {host} ({drops} drops)",
                  "disk_fault": f"{op} on {host}"}[kind]
        add_row(f"fuzz-{seed}", query, transport, detail, fuzz_plan)
        ran += 1

    result.note(f"grid {side}x{side}, {num_map_tasks} maps x "
                f"{num_reducers} reducers over {num_hosts} hosts; fuzz "
                f"tail ran {ran}/{num_fuzz} seeds in "
                f"{time.monotonic() - t0:.1f}s")
    result.note("hosts_lost/host_reexecs/failovers/retries are the serial "
                "run's HOSTS_LOST / MAPS_REEXECUTED_HOST / DISK_FAILOVERS "
                "/ SHUFFLE_RETRIES; quarantine counts the disk side-files, "
                "which must be byte-identical between runners")
    result.note("outcome=identical: byte-identical output and stable "
                "counters vs the serial/direct baseline, runners agreeing "
                "on everything including the host counters")
    return result
