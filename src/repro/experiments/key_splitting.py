"""A6 -- answering §IV-B's open questions about key splitting.

The paper: "We have not yet determined how much the key count is
increased by key splitting, or whether further aggregation would be
worth the overhead."  This harness measures both:

* the key-count trajectory -- aggregate keys emitted by mappers, after
  routing splits, after reducer-side overlap splits;
* the effect of the proposed fix -- reducer-side re-aggregation
  (:mod:`repro.core.aggregation.reaggregate`) -- on key count, reduce
  group count, and correctness (outputs must be identical).
"""

from __future__ import annotations

from repro.core.aggregation.plugin import AggregateShufflePlugin
from repro.experiments.common import ExperimentResult, scaled
from repro.experiments.common import make_runner
from repro.mapreduce.metrics import C
from repro.queries.sliding_median import SlidingMedianQuery
from repro.scidata.generator import integer_grid

__all__ = ["run"]


def run(side: int | None = None, num_map_tasks: int = 8,
        num_reducers: int = 4) -> ExperimentResult:
    """Measure key-splitting inflation with and without re-aggregation."""
    if side is None:
        side = scaled(64, default_scale=1.0)
    grid = integer_grid((side, side), seed=101)
    query = SlidingMedianQuery(grid, "values", window=3)

    result = ExperimentResult(
        experiment="A6",
        title=(f"key splitting and re-aggregation, {side}x{side} sliding "
               f"median, {num_map_tasks} mappers / {num_reducers} reducers"),
        columns=["stage", "without_reagg", "with_reagg"],
    )

    runs = {}
    for reagg in [False, True]:
        job = query.build_job(
            "aggregate",
            num_map_tasks=num_map_tasks,
            num_reducers=num_reducers,
            reaggregate=reagg,
        )
        plugin: AggregateShufflePlugin = job.shuffle_plugin
        res = make_runner().run(job, grid)
        runs[reagg] = {
            "mapper_keys": res.counters[C.MAP_OUTPUT_RECORDS]
            - plugin.routing_splits,
            "after_routing": res.counters[C.MAP_OUTPUT_RECORDS],
            "after_overlap_split": plugin.reduce_records_split,
            "reduce_stream_keys": plugin.reduce_records_out,
            "reduce_groups": res.counters[C.REDUCE_INPUT_GROUPS],
            "output": {k.coords: v for k, v in res.output},
        }

    if runs[False]["output"] != runs[True]["output"]:
        raise AssertionError("re-aggregation changed query results")

    for stage in ["mapper_keys", "after_routing", "after_overlap_split",
                  "reduce_stream_keys", "reduce_groups"]:
        result.add(stage=stage,
                   without_reagg=runs[False][stage],
                   with_reagg=runs[True][stage])

    base = runs[False]
    inflation = base["after_overlap_split"] / max(1, base["mapper_keys"])
    recovered = 1.0 - (runs[True]["reduce_stream_keys"]
                       / max(1, base["after_overlap_split"]))
    result.note(f"key splitting inflates key count {inflation:.2f}x over "
                f"what mappers emitted (the paper's open question)")
    result.note(f"re-aggregation recovers {recovered:.1%} of the "
                f"split-induced keys at the reducer")
    return result
