"""R7 -- memory chaos: OOM kills, rlimit pressure, byte backpressure.

Not a paper figure: this is the robustness ladder's memory rung.
Every byte-holding stage of a task rents from a per-task
:class:`~repro.mapreduce.runtime.memory.MemoryBudget` (the map sort
buffer under ``"sort"``, in-flight shuffle fetches under ``"fetch"``,
the decoded reduce runs under ``"merge"``), and the ledger is then
attacked.  Pinned here:

* **clean equivalence under accounting** -- with a budget and a fetch
  byte window configured but no faults, queries x transports x
  pipeline on/off x runners must stay byte-identical to the unbudgeted
  serial baseline on output AND counters, with the ledger peak never
  exceeding the budget;
* **degrade-on-retry** -- an injected ``MemoryError`` (simulated
  ``raise``, threshold ``kill``, or a *genuine* allocation failure via
  ``alloc``) at any site kills the attempt; the retry runs with a
  deterministically halved sort buffer / fetch window and the output
  never changes.  ``MEMORY_OOM_EVENTS`` / ``MEMORY_DEGRADED_ATTEMPTS``
  count identically in both runners;
* **OOM-kill divergence** -- the serial runner surfaces a threshold
  kill as an in-process ``MemoryError`` while a parallel worker dies
  SIGKILL-style (``os._exit(137)`` after durably recording the OOM),
  yet both take the same ladder to the same bytes;
* **real rlimit** -- with ``worker_rlimit_bytes`` set the parallel
  workers run under a genuine ``RLIMIT_AS``; an ``alloc`` fault that
  would otherwise succeed becomes a real kernel-refused allocation and
  still degrades to the baseline bytes (Linux only);
* **backpressure or death** -- a skewed fetch plan under a sticky
  ``kill`` threshold completes only when ``max_inflight_bytes``
  holds the in-flight bytes below the trip wire; without the window
  the same job must fail identically in both runners;
* **bounded** -- a sticky ``raise`` fault outlasting
  ``max_memory_retries`` fails the job cleanly in both runners.

``REPRO_R7_FUZZ`` bounds the fuzz-tail seed count and
``REPRO_R7_SECONDS`` the wall clock.  The bench
(``benchmarks/bench_r7_memchaos.py``) asserts no row reads DRIFT.
"""

from __future__ import annotations

import os
import sys
import time

from repro.experiments.common import ExperimentResult, scaled
from repro.mapreduce.engine import LocalJobRunner
from repro.mapreduce.metrics import C
from repro.mapreduce.runtime import (
    FaultInjector,
    ParallelJobRunner,
    ShuffleConfig,
)
from repro.queries.histogram import HistogramQuery
from repro.queries.subset import BoxSubsetQuery
from repro.scidata.generator import integer_grid
from repro.scidata.slab import Slab
from repro.util.rng import make_rng

__all__ = ["run"]

#: queries the matrix and the fuzz tail draw from
_QUERIES = ("subset", "histogram")
#: shuffle transports the memory faults are exercised over
_TRANSPORTS = ("direct", "channel", "network")
#: memory-ledger sites the fuzz tail aims at
_SITES = ("sort", "fetch", "merge")
#: a sort buffer small enough that every R7 map flushes several times
_SORT_BUFFER = 2048
#: counters that legitimately differ between a faulted/budgeted run
#: and the plain serial baseline (they measure the faults / the wire /
#: the transport); the rest must match the baseline exactly
_VOLATILE = frozenset({
    C.MEMORY_OOM_EVENTS,
    C.MEMORY_DEGRADED_ATTEMPTS,
    C.SHUFFLE_FETCHES,
    C.SHUFFLE_RETRIES,
    C.SHUFFLE_FAILED_FETCHES,
    C.SHUFFLE_BYTES_TRANSFERRED,
    C.SHUFFLE_WIRE_BYTES,
    C.SHUFFLE_WIRE_BYTES_UNCOMPRESSED,
})


def _build(grid, query: str, side: int, num_map_tasks: int,
           num_reducers: int):
    """One query job over the harness grid, with the tiny sort buffer."""
    var = grid.names[0]
    overrides = dict(num_map_tasks=num_map_tasks,
                     num_reducers=num_reducers,
                     sort_buffer_bytes=_SORT_BUFFER)
    if query == "subset":
        box = Slab((1, 1), (side - 2, side - 2))
        return BoxSubsetQuery(grid, var, box).build_job("plain", **overrides)
    if query == "histogram":
        return HistogramQuery(grid, var, bins=16).build_job(
            "plain", **overrides)
    raise ValueError(f"unknown query {query!r}")


class _RunOutcome:
    """One runner's result-or-error for a scenario."""

    def __init__(self, result, error: BaseException | None) -> None:
        self.result = result
        self.error = error

    def counter(self, name: str) -> int:
        return self.result.counters.get(name) if self.result else 0

    @property
    def memory(self) -> dict:
        return (self.result.memory_stats or {}) if self.result else {}


def _run_one(runner_name: str, grid, job, shuffle: ShuffleConfig,
             injector: FaultInjector | None,
             rlimit_bytes: int | None = None) -> _RunOutcome:
    kwargs: dict = {"shuffle": shuffle, "fault_injector": injector}
    if runner_name == "serial":
        runner = LocalJobRunner(**kwargs)
    else:
        if rlimit_bytes is not None:
            kwargs["worker_rlimit_bytes"] = rlimit_bytes
        runner = ParallelJobRunner(
            max_workers=2, speculation=False, retry_backoff=0.01, **kwargs)
    try:
        with runner:
            return _RunOutcome(runner.run(job, grid), None)
    except Exception as exc:
        return _RunOutcome(None, exc)


def _stable_counters(result) -> dict[str, int]:
    """Counters minus the fault/transport-measuring ones (and zeros)."""
    return {k: v for k, v in result.counters.as_dict().items()
            if k not in _VOLATILE and v}


def _classify(serial: _RunOutcome, parallel: _RunOutcome, baseline) -> str:
    """Where the scenario landed: identical / degraded / failed / DRIFT.

    Serial and parallel must agree on *everything* -- output bytes and
    the full counter set including the MEMORY_* tallies (the degrade
    ladder is deterministic).  Against the plain serial baseline,
    output bytes must always match; the non-volatile counters must
    match too unless the run took an OOM (a degraded retry spills on
    a different cadence, which is the point of degrading).
    """
    if (serial.error is None) != (parallel.error is None):
        return "DRIFT"
    if serial.error is not None:
        return "failed"
    if serial.result.output != parallel.result.output:
        return "DRIFT"
    if serial.result.counters != parallel.result.counters:
        return "DRIFT"
    if serial.result.output != baseline.output:
        return "DRIFT"
    if serial.counter(C.MEMORY_OOM_EVENTS) > 0:
        # A degraded retry legitimately reshapes work-measuring
        # counters (a halved sort buffer spills more often), so only
        # the bytes and the runner-vs-runner identity are held here.
        return "degraded"
    if _stable_counters(serial.result) != _stable_counters(baseline):
        return "DRIFT"
    return "identical"


def _peak_within_budget(outcome: _RunOutcome) -> bool:
    """The ledger's recorded peak never exceeded the configured budget."""
    mem = outcome.memory
    budget = mem.get("budget")
    if budget is None:
        return True
    return mem.get("peak_bytes", 0) <= budget


def run(num_fuzz: int | None = None,
        seconds: float | None = None) -> ExperimentResult:
    """Execute the R7 memory-chaos matrix; returns the scenario table."""
    side = scaled(1000, 0.032, minimum=32)
    num_map_tasks, num_reducers = 4, 2
    grid = integer_grid((side, side), seed=13)

    if num_fuzz is None:
        num_fuzz = int(os.environ.get("REPRO_R7_FUZZ", "3"))
    if seconds is None:
        seconds = float(os.environ.get("REPRO_R7_SECONDS", "120"))
    t0 = time.monotonic()

    result = ExperimentResult(
        experiment="R7",
        title="Memory chaos: OOM kills, rlimit pressure, and byte-based "
              "shuffle backpressure",
        columns=["scenario", "query", "transport", "pipeline", "fault",
                 "oom_events", "degraded", "peak_bytes", "waits",
                 "outcome"],
    )

    def shuffle_config(transport: str, *, pipeline: bool = False,
                       memory_budget: int | None = 1 << 20,
                       max_inflight_bytes: int | None = 4096,
                       max_memory_retries: int = 2) -> ShuffleConfig:
        return ShuffleConfig(
            transport=transport, fetch_retries=2, fetch_timeout=2.0,
            backoff=0.005, backoff_max=0.02, pipeline=pipeline,
            wire_codec="fastpred+zlib" if transport == "network" else "null",
            memory_budget=memory_budget,
            max_inflight_bytes=max_inflight_bytes,
            max_memory_retries=max_memory_retries)

    baselines = {}
    for query in _QUERIES:
        job = _build(grid, query, side, num_map_tasks, num_reducers)
        baselines[query] = LocalJobRunner().run(job, grid)

    def add_row(scenario: str, query: str, cfg: ShuffleConfig,
                fault_label: str, plan, expect=None,
                check_peak: bool = False,
                rlimit_bytes: int | None = None) -> None:
        job = _build(grid, query, side, num_map_tasks, num_reducers)
        serial = _run_one("serial", grid, job, cfg, plan())
        parallel = _run_one("parallel", grid, job, cfg, plan(),
                            rlimit_bytes=rlimit_bytes)
        outcome = _classify(serial, parallel, baselines[query])
        if check_peak and outcome != "DRIFT" and not (
                _peak_within_budget(serial)
                and _peak_within_budget(parallel)):
            outcome = "DRIFT"
        if expect is not None and outcome != "DRIFT" and outcome != expect:
            outcome = "DRIFT"
        mem = serial.memory
        result.add(scenario=scenario, query=query, transport=cfg.transport,
                   pipeline="on" if cfg.pipeline else "off",
                   fault=fault_label,
                   oom_events=serial.counter(C.MEMORY_OOM_EVENTS),
                   degraded=serial.counter(C.MEMORY_DEGRADED_ATTEMPTS),
                   peak_bytes=mem.get("peak_bytes", 0),
                   waits=mem.get("backpressure_waits", 0),
                   outcome=outcome)

    # -- clean equivalence with the ledger and window always on -----------
    for transport in _TRANSPORTS:
        for pipeline in (False, True):
            query = _QUERIES[(_TRANSPORTS.index(transport) + pipeline)
                             % len(_QUERIES)]
            add_row("clean-budgeted", query,
                    shuffle_config(transport, pipeline=pipeline),
                    "none", lambda: None, expect="identical",
                    check_peak=True)

    # -- simulated MemoryError at each ledger site -------------------------
    for site, task in (("sort", "m00001"), ("fetch", "r00000"),
                       ("merge", "r00001")):
        add_row(f"oom-raise-{site}", "subset", shuffle_config("direct"),
                f"raise at {site} ({task})",
                lambda site=site, task=task: FaultInjector().oom(
                    task, site=site, op="raise"),
                expect="degraded")

    # -- the same faults through the pipelined reduce path -----------------
    for site, task in (("fetch", "r00000"), ("merge", "r00001")):
        add_row(f"oom-raise-{site}", "subset",
                shuffle_config("channel", pipeline=True),
                f"raise at {site} ({task}), pipelined",
                lambda site=site, task=task: FaultInjector().oom(
                    task, site=site, op="raise"),
                expect="degraded")

    # -- threshold kill: the simulated kernel OOM killer -------------------
    # The sort buffer is 2048, so attempt 0's flushes charge >= 2048 and
    # trip the 1600-byte wire; the degraded retry flushes at 1024 and
    # stays under it even though the kill stays armed (sticky).
    add_row("oom-kill-sort", "subset", shuffle_config("direct"),
            "kill above 1600 at sort (m00001), sticky",
            lambda: FaultInjector().oom(
                "m00001", site="sort", op="kill", nbytes=1600, sticky=True),
            expect="degraded")

    # -- genuine allocation failure (alloc well past any real machine) ----
    add_row("oom-alloc-sort", "histogram", shuffle_config("direct"),
            "alloc 1 PiB at sort (m00000)",
            lambda: FaultInjector().oom(
                "m00000", site="sort", op="alloc", nbytes=1 << 50),
            expect="degraded")

    # -- real RLIMIT_AS on forked workers (Linux only) ---------------------
    if sys.platform.startswith("linux"):
        # Clean soak: a generous address-space cap must change nothing.
        job = _build(grid, "histogram", side, num_map_tasks, num_reducers)
        cfg = shuffle_config("direct")
        parallel = _run_one("parallel", grid, job, cfg, None,
                            rlimit_bytes=8 << 30)
        ok = (parallel.error is None
              and parallel.result.output == baselines["histogram"].output
              and _stable_counters(parallel.result)
              == _stable_counters(baselines["histogram"]))
        result.add(scenario="rlimit-soak", query="histogram",
                   transport="direct", pipeline="off",
                   fault="RLIMIT_AS 8 GiB, no faults",
                   oom_events=parallel.counter(C.MEMORY_OOM_EVENTS),
                   degraded=parallel.counter(C.MEMORY_DEGRADED_ATTEMPTS),
                   peak_bytes=parallel.memory.get("peak_bytes", 0),
                   waits=parallel.memory.get("backpressure_waits", 0),
                   outcome="identical" if ok else "DRIFT")
        # A 6 GiB allocation fits most build hosts but can never fit
        # under a 4 GiB address-space cap: the MemoryError is the
        # kernel's, not ours, and the ladder still lands on baseline
        # bytes.  Parallel-only (the serial runner takes no rlimit).
        job = _build(grid, "histogram", side, num_map_tasks, num_reducers)
        injector = FaultInjector().oom(
            "m00000", site="sort", op="alloc", nbytes=6 << 30)
        parallel = _run_one("parallel", grid, job, cfg, injector,
                            rlimit_bytes=4 << 30)
        ok = (parallel.error is None
              and parallel.result.output == baselines["histogram"].output
              and parallel.counter(C.MEMORY_OOM_EVENTS) >= 1)
        result.add(scenario="rlimit-alloc", query="histogram",
                   transport="direct", pipeline="off",
                   fault="alloc 6 GiB under RLIMIT_AS 4 GiB",
                   oom_events=parallel.counter(C.MEMORY_OOM_EVENTS),
                   degraded=parallel.counter(C.MEMORY_DEGRADED_ATTEMPTS),
                   peak_bytes=parallel.memory.get("peak_bytes", 0),
                   waits=parallel.memory.get("backpressure_waits", 0),
                   outcome="degraded" if ok else "DRIFT")

    # -- backpressure or death: a skewed fetch plan under a trip wire ------
    # Each reducer's four segments sum past 4096 priced bytes.  With the
    # 2048-byte window, in-flight fetch charges stay below the sticky
    # 4200-byte kill threshold; without the window every segment is in
    # flight at once and the kill fires on every attempt.
    add_row("backpressure-on", "subset",
            shuffle_config("direct", max_inflight_bytes=2048),
            "fetch kill above 4200 (r00000), window 2048",
            lambda: FaultInjector().oom(
                "r00000", site="fetch", op="kill", nbytes=4200, sticky=True),
            expect="identical")
    add_row("backpressure-off", "subset",
            shuffle_config("direct", max_inflight_bytes=None),
            "fetch kill above 4200 (r00000), no window",
            lambda: FaultInjector().oom(
                "r00000", site="fetch", op="kill", nbytes=4200, sticky=True),
            expect="failed")

    # -- bounded: a sticky fault outlasting the retry budget ---------------
    add_row("bounded", "histogram",
            shuffle_config("direct", max_memory_retries=1),
            "sticky raise at sort (m00000), max_memory_retries=1",
            lambda: FaultInjector().oom(
                "m00000", site="sort", op="raise", sticky=True),
            expect="failed")

    # -- seeded fuzz tail --------------------------------------------------
    rng = make_rng(7000)
    ran = 0
    for seed in range(num_fuzz):
        if time.monotonic() - t0 > seconds:
            break
        query = _QUERIES[rng.integers(0, len(_QUERIES))]
        transport = _TRANSPORTS[rng.integers(0, len(_TRANSPORTS))]
        pipeline = bool(rng.integers(0, 2))
        site = _SITES[rng.integers(0, len(_SITES))]
        task = ("m%05d" % rng.integers(0, num_map_tasks) if site == "sort"
                else "r%05d" % rng.integers(0, num_reducers))
        add_row(f"fuzz-{seed}", query,
                shuffle_config(transport, pipeline=pipeline),
                f"raise at {site} ({task})",
                lambda site=site, task=task: FaultInjector().oom(
                    task, site=site, op="raise"),
                expect="degraded")
        ran += 1

    result.note(f"grid {side}x{side}, {num_map_tasks} maps x "
                f"{num_reducers} reducers, sort buffer {_SORT_BUFFER} B; "
                f"fuzz tail ran {ran}/{num_fuzz} seeds in "
                f"{time.monotonic() - t0:.1f}s")
    result.note("oom_events/degraded are the serial run's "
                "MEMORY_OOM_EVENTS / MEMORY_DEGRADED_ATTEMPTS (parallel "
                "must count identically); peak_bytes/waits come from "
                "JobResult.memory_stats and are telemetry, never compared")
    result.note("outcome=identical: byte-identical output and stable "
                "counters vs the unbudgeted serial baseline; "
                "outcome=degraded: same, after OOM-killed attempts were "
                "retried with halved memory knobs")
    return result
