"""E1 -- the introduction's motivation arithmetic (§I).

"Generating a field of 4-byte floats on a grid and including a variable
index as part of the key, Hadoop creates an intermediate file of
26,000,006 bytes.  Since the data is [4,000,000] bytes, this yields an
overhead of 450%.  (Using a variable name of windspeed1 instead of a
variable index yields a file size of 33,000,006 bytes and an overhead of
625%.)" -- and the abstract's key/value ratio of 6.75.

This harness serializes one per-cell record per grid cell into a real
IFile and reports measured sizes.  At ``side=100`` (the default; this
one runs at paper scale) the numbers match the paper exactly.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.mapreduce.ifile import IFileStats, IFileWriter
from repro.mapreduce.keys import CellKeySerde
from repro.scidata.slab import Slab

__all__ = ["run", "PAPER"]

#: the paper's reported values for side=100
PAPER = {
    "index": {"file_bytes": 26_000_006, "overhead_pct": 450.0},
    "name": {"file_bytes": 33_000_006, "overhead_pct": 625.0},
    "key_value_ratio": 6.75,
}


def _build_ifile(side: int, variable_mode: str) -> IFileStats:
    """Serialize every cell of a side**3 float grid as one IFile."""
    serde = CellKeySerde(ndim=3, variable_mode=variable_mode)
    var_ref: str | int = "windspeed1" if variable_mode == "name" else 0
    writer = IFileWriter(None)  # in memory; sizes are what we measure
    value = b"\x00\x00\x80\x3f"  # one float32, any bits
    slab = Slab((0, 0, 0), (side, side, side))
    # serialize in batches to keep memory flat at paper scale
    coords = slab.coords()
    batch = 1 << 16
    for off in range(0, coords.shape[0], batch):
        for kb in serde.write_batch(var_ref, coords[off:off + batch]):
            writer.append(kb, value)
    return writer.close()


def run(side: int = 100) -> ExperimentResult:
    """Regenerate the §I table for a ``side**3`` grid of float32."""
    if side < 1:
        raise ValueError(f"side must be >= 1, got {side}")
    result = ExperimentResult(
        experiment="E1",
        title=f"intermediate file sizes for a {side}^3 float grid (§I)",
        columns=["variable_as", "file_bytes", "data_bytes", "overhead_pct",
                 "key_bytes_per_record", "key_value_ratio"],
    )
    data_bytes = 4 * side ** 3
    for mode in ["index", "name"]:
        stats = _build_ifile(side, mode)
        key_per_record = stats.key_bytes // stats.records
        result.add(
            variable_as=mode,
            file_bytes=stats.materialized_bytes,
            data_bytes=data_bytes,
            overhead_pct=round(
                100.0 * (stats.materialized_bytes - data_bytes) / data_bytes, 1),
            key_bytes_per_record=key_per_record,
            key_value_ratio=round(key_per_record / 4.0, 2),
        )
    result.note(
        "paper: 26,000,006 B (450% overhead) with a variable index; "
        "33,000,006 B (625% overhead) with 'windspeed1'; key/value 6.75"
    )
    return result
