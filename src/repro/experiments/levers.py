"""A10 -- combiners versus key aggregation as data-reduction levers.

The paper's Fig 1 lists combiners (step 3) as Hadoop's built-in
intermediate-data reducer; §IV adds key aggregation.  They attack
different redundancy: a combiner removes *value* records by partial
reduction (only for algebraic functions), aggregation removes *key*
bytes by representation (any function).  The sliding mean is algebraic,
so it is the one query where both levers apply -- this harness measures
each alone and notes that for the paper's own query (the holistic
median) the combiner lever does not exist at all.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, fmt_bytes, scaled
from repro.experiments.common import make_runner
from repro.mapreduce.metrics import C
from repro.queries.sliding_mean import SlidingMeanQuery
from repro.queries.sliding_median import SlidingMedianQuery
from repro.scidata.generator import integer_grid

__all__ = ["run"]


def run(side: int | None = None, num_map_tasks: int = 4,
        num_reducers: int = 2) -> ExperimentResult:
    """Sliding mean under each lever; sliding median as the holistic foil."""
    if side is None:
        side = scaled(40, default_scale=1.0)
    grid = integer_grid((side, side), seed=99)
    mean_q = SlidingMeanQuery(grid, "values", window=3)
    median_q = SlidingMedianQuery(grid, "values", window=3)
    common = dict(num_map_tasks=num_map_tasks, num_reducers=num_reducers)

    result = ExperimentResult(
        experiment="A10",
        title=(f"combiner vs key aggregation, {side}x{side} sliding "
               f"window queries"),
        columns=["query", "lever", "materialized", "shuffle_records"],
    )

    cases = [
        ("mean (algebraic)", "none",
         mean_q.build_job("plain", use_combiner=False, **common)),
        ("mean (algebraic)", "combiner",
         mean_q.build_job("plain", use_combiner=True, **common)),
        ("mean (algebraic)", "aggregation",
         mean_q.build_job("aggregate", **common)),
        ("median (holistic)", "none",
         median_q.build_job("plain", **common)),
        ("median (holistic)", "aggregation",
         median_q.build_job("aggregate", **common)),
    ]
    outputs: dict[tuple[str, str], dict] = {}
    for query_name, lever, job in cases:
        res = make_runner().run(job, grid)
        outputs[(query_name, lever)] = {
            k.coords: v for k, v in res.output
        }
        result.add(
            query=query_name,
            lever=lever,
            materialized=fmt_bytes(res.materialized_bytes),
            shuffle_records=res.counters[C.SPILLED_RECORDS],
        )
    # all levers must preserve each query's answers
    for query_name in ["mean (algebraic)", "median (holistic)"]:
        answers = [v for (q, _), v in outputs.items() if q == query_name]
        base = answers[0]
        for other in answers[1:]:
            if set(base) != set(other):
                raise AssertionError(f"{query_name}: levers disagree on cells")
            for c in base:
                if abs(base[c] - other[c]) > 1e-9:
                    raise AssertionError(f"{query_name}: levers disagree at {c}")
    result.note("a combiner needs an algebraic function -- for the paper's "
                "holistic median it does not exist, which is why §IV matters")
    return result
