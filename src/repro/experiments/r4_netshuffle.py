"""R4 -- network shuffle: socket segment servers and wire compression.

Not a paper figure: this is R3's shuffle-robustness matrix moved onto a
real network hop.  Map outputs are served by per-worker TCP segment
servers (:mod:`repro.mapreduce.runtime.netshuffle`) and reducers fetch
them over loopback sockets, optionally compressing segment bytes *on
the wire* with any registered codec -- including the paper's §III
stride-predictor transform.  Pinned here:

* **wire compression** -- one serial run per codec over the network
  transport; ``SHUFFLE_WIRE_BYTES`` (bytes that crossed the socket)
  versus ``SHUFFLE_WIRE_BYTES_UNCOMPRESSED`` (decoded segment bytes)
  gives the measured on-the-wire reduction, and every codec's output
  must stay byte-identical to the serial/direct baseline;
* **clean equivalence** -- queries x runners over the network
  transport are byte-identical to the baseline, counters included
  (the wire counters themselves must agree between runners: the
  framing is deterministic);
* **wire faults against a live socket** -- flips, drops, truncations,
  delays, and stalls are injected *server-side* while bytes stream;
  retries heal them and the output never changes;
* **epoch escalation** -- a sticky epoch-0 fault drives map
  re-execution through the PR 5 ladder unchanged: the service drains
  the doomed map (in-flight requests get a clean STALE_EPOCH), the
  fresh epoch is re-registered, and the job completes identically;
* **server loss** -- a segment server killed mid-job surfaces as
  connection-refused transients, escalates to map re-execution, and
  the re-registration revives the server on a fresh port -- the
  "worker host lost its shuffle server" scenario.

``REPRO_R4_FUZZ`` bounds the fuzz-tail seed count and
``REPRO_R4_SECONDS`` the wall clock.  The bench
(``benchmarks/bench_r4_netshuffle.py``) asserts no row reads DRIFT and
that the stride codec measurably shrinks the wire.
"""

from __future__ import annotations

import os
import time

from repro.experiments.common import ExperimentResult, scaled
from repro.mapreduce.engine import LocalJobRunner
from repro.mapreduce.metrics import C
from repro.mapreduce.runtime import (
    FaultInjector,
    ParallelJobRunner,
    ShuffleConfig,
)
from repro.mapreduce.runtime.netshuffle import ShuffleService
from repro.queries.histogram import HistogramQuery
from repro.queries.subset import BoxSubsetQuery
from repro.scidata.generator import integer_grid
from repro.scidata.slab import Slab
from repro.util.rng import make_rng

__all__ = ["run"]

#: queries the matrix and the fuzz tail draw from
_QUERIES = ("subset-plain", "subset-agg", "histogram")
#: codecs compared on the wire (§III stride transform last)
_WIRE_CODECS = ("null", "zlib", "bz2", "fastpred+zlib")
#: wire damage ops the fuzz tail draws from
_FUZZ_OPS = ("flip", "drop", "truncate", "delay", "stall")
#: counters that legitimately differ between a faulted run and the
#: baseline (they *measure* the faults / the wire); the rest must match
_VOLATILE = frozenset({
    C.SHUFFLE_FETCHES,
    C.SHUFFLE_RETRIES,
    C.SHUFFLE_FAILED_FETCHES,
    C.SHUFFLE_BYTES_TRANSFERRED,
    C.SHUFFLE_WIRE_BYTES,
    C.SHUFFLE_WIRE_BYTES_UNCOMPRESSED,
    C.MAPS_REEXECUTED,
})


def _build(grid, query: str, side: int, num_map_tasks: int,
           num_reducers: int):
    """One query job over the harness grid."""
    var = grid.names[0]
    if query == "subset-plain":
        box = Slab((1, 1), (side - 2, side - 2))
        return BoxSubsetQuery(grid, var, box).build_job(
            "plain", num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    if query == "subset-agg":
        box = Slab((1, 1), (side - 2, side - 2))
        return BoxSubsetQuery(grid, var, box).build_job(
            "aggregate", variable_mode="index",
            num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    if query == "histogram":
        return HistogramQuery(grid, var, bins=16).build_job(
            "plain", num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    raise ValueError(f"unknown query {query!r}")


class _RunOutcome:
    """One runner's result-or-error for a scenario."""

    def __init__(self, result, error: BaseException | None) -> None:
        self.result = result
        self.error = error

    def counter(self, name: str) -> int:
        return self.result.counters.get(name) if self.result else 0


def _run_one(runner_name: str, grid, job, shuffle: ShuffleConfig,
             injector: FaultInjector | None,
             runner_cls=None) -> _RunOutcome:
    kwargs: dict = {"shuffle": shuffle, "fault_injector": injector}
    if runner_name == "serial":
        runner = (runner_cls or LocalJobRunner)(
            fetch_failure_threshold=1, **kwargs)
    else:
        runner = ParallelJobRunner(
            max_workers=2, speculation=False, retry_backoff=0.01,
            fetch_failure_threshold=1, **kwargs)
    try:
        with runner:
            return _RunOutcome(runner.run(job, grid), None)
    except Exception as exc:
        return _RunOutcome(None, exc)


def _stable_counters(result) -> dict[str, int]:
    """Counters minus the fault/wire-measuring ones (and zero entries)."""
    return {k: v for k, v in result.counters.as_dict().items()
            if k not in _VOLATILE and v}


def _classify(serial: _RunOutcome, parallel: _RunOutcome,
              baseline) -> str:
    """Where the scenario landed: identical / reexecuted / failed / DRIFT."""
    if (serial.error is None) != (parallel.error is None):
        return "DRIFT"
    if serial.error is not None:
        return "failed"
    if serial.result.output != parallel.result.output:
        return "DRIFT"
    if serial.result.counters != parallel.result.counters:
        return "DRIFT"
    if serial.result.output != baseline.output:
        return "DRIFT"
    if _stable_counters(serial.result) != _stable_counters(baseline):
        return "DRIFT"
    if serial.counter(C.MAPS_REEXECUTED) > 0:
        return "reexecuted"
    return "identical"


class _ServerLossService(ShuffleService):
    """A service that loses ``doomed_map``'s server at first address use.

    The kill fires when the runner first resolves the doomed map's
    server address -- i.e. after registration, right before reducers
    start fetching -- so every fetch against that server sees
    connection-refused until map re-execution's re-registration
    revives it.
    """

    doomed_map = "m00001"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._loss_fired = False

    def address_for(self, map_id: str) -> tuple[str, int]:
        if not self._loss_fired and map_id == self.doomed_map:
            self._loss_fired = True
            self.kill_server(self.server_index(map_id))
        return super().address_for(map_id)


class _ServerLossRunner(LocalJobRunner):
    """Serial runner whose shuffle service suffers a mid-job server kill."""

    def _make_shuffle_service(self):
        if (self.shuffle is None
                or getattr(self.shuffle, "transport", "") != "network"):
            return None
        return _ServerLossService.from_config(self.shuffle)


def run(num_fuzz: int | None = None,
        seconds: float | None = None) -> ExperimentResult:
    """Execute the R4 matrix; returns the scenario table."""
    side = scaled(1000, 0.048, minimum=24)
    num_map_tasks, num_reducers = 3, 2
    grid = integer_grid((side, side), seed=11)

    if num_fuzz is None:
        num_fuzz = int(os.environ.get("REPRO_R4_FUZZ", "3"))
    if seconds is None:
        seconds = float(os.environ.get("REPRO_R4_SECONDS", "120"))
    t0 = time.monotonic()

    result = ExperimentResult(
        experiment="R4",
        title="Network shuffle: segment servers, wire compression, and "
              "fault recovery",
        columns=["scenario", "query", "codec", "fault", "wire_bytes",
                 "raw_bytes", "saved", "retries", "reexecs", "outcome"],
    )

    #: fast-failing network config for fault scenarios
    def net_config(codec: str = "fastpred+zlib",
                   **overrides) -> ShuffleConfig:
        base = dict(transport="network", wire_codec=codec,
                    fetch_retries=2, fetch_timeout=2.0, backoff=0.005,
                    backoff_max=0.02)
        base.update(overrides)
        return ShuffleConfig(**base)

    baselines = {}
    for query in _QUERIES:
        job = _build(grid, query, side, num_map_tasks, num_reducers)
        baselines[query] = LocalJobRunner().run(job, grid)

    def wire_cells(outcome: _RunOutcome) -> dict:
        wire = outcome.counter(C.SHUFFLE_WIRE_BYTES)
        raw = outcome.counter(C.SHUFFLE_WIRE_BYTES_UNCOMPRESSED)
        saved = f"{100.0 * (1 - wire / raw):.1f}%" if raw else "-"
        return {"wire_bytes": wire, "raw_bytes": raw, "saved": saved}

    # -- wire compression: one serial network run per codec ---------------
    for codec in _WIRE_CODECS:
        job = _build(grid, "subset-plain", side, num_map_tasks,
                     num_reducers)
        outcome = _run_one("serial", grid, job, net_config(codec), None)
        ok = (outcome.error is None
              and outcome.result.output == baselines["subset-plain"].output
              and (_stable_counters(outcome.result)
                   == _stable_counters(baselines["subset-plain"])))
        result.add(scenario="wire-codec", query="subset-plain",
                   codec=codec, fault="none", **wire_cells(outcome),
                   retries=outcome.counter(C.SHUFFLE_RETRIES),
                   reexecs=outcome.counter(C.MAPS_REEXECUTED),
                   outcome="identical" if ok else "DRIFT")

    # -- clean equivalence: queries x runners over the network ------------
    for query in _QUERIES:
        job = _build(grid, query, side, num_map_tasks, num_reducers)
        shuffle = net_config()
        serial = _run_one("serial", grid, job, shuffle, None)
        parallel = _run_one("parallel", grid, job, shuffle, None)
        outcome = _classify(serial, parallel, baselines[query])
        # Clean runs must also move each segment exactly once: the fetch
        # accounting matches the direct baseline even though the bytes
        # now cross a socket.
        if outcome == "identical" and (
                serial.counter(C.SHUFFLE_FETCHES)
                != baselines[query].counters.get(C.SHUFFLE_FETCHES)
                or serial.counter(C.SHUFFLE_RETRIES)):
            outcome = "DRIFT"
        result.add(scenario="clean-network", query=query,
                   codec="fastpred+zlib", fault="none",
                   **wire_cells(serial),
                   retries=serial.counter(C.SHUFFLE_RETRIES),
                   reexecs=serial.counter(C.MAPS_REEXECUTED),
                   outcome=outcome)

    def fault_scenario(scenario: str, query: str, fault_label: str,
                       plan, config: ShuffleConfig | None = None) -> None:
        cfg = config or net_config()
        job = _build(grid, query, side, num_map_tasks, num_reducers)
        serial = _run_one("serial", grid, job, cfg, plan())
        parallel = _run_one("parallel", grid, job, cfg, plan())
        result.add(scenario=scenario, query=query, codec=cfg.wire_codec,
                   fault=fault_label, **wire_cells(serial),
                   retries=serial.counter(C.SHUFFLE_RETRIES),
                   reexecs=serial.counter(C.MAPS_REEXECUTED),
                   outcome=_classify(serial, parallel, baselines[query]))

    # -- wire faults against a live socket, retry heals -------------------
    for op in _FUZZ_OPS:
        def plan(op=op):
            inj = FaultInjector()
            inj.fetch("m00001", "r00000", op=op, attempt=0, seconds=0.1)
            return inj
        fault_scenario(f"wire-{op}", "subset-plain",
                       f"{op} m00001->r00000#0", plan)

    # -- sticky epoch-0 fault: drain, re-execute, re-register -------------
    def reexec_plan():
        inj = FaultInjector()
        inj.fetch("m00000", "r00000", op="flip", attempt=0, sticky=True,
                  epoch=0)
        return inj
    fault_scenario("reexec-map", "subset-plain",
                   "sticky flip m00000->r00000 (epoch 0)", reexec_plan)

    # -- server loss: kill one segment server mid-job (serial ladder) -----
    job = _build(grid, "subset-plain", side, num_map_tasks, num_reducers)
    loss = _run_one("serial", grid, job, net_config(), None,
                    runner_cls=_ServerLossRunner)
    loss_ok = (loss.error is None
               and loss.result.output == baselines["subset-plain"].output
               and (_stable_counters(loss.result)
                    == _stable_counters(baselines["subset-plain"]))
               and loss.counter(C.MAPS_REEXECUTED) > 0)
    result.add(scenario="server-loss", query="subset-plain",
               codec="fastpred+zlib",
               fault="kill segment server of m00001", **wire_cells(loss),
               retries=loss.counter(C.SHUFFLE_RETRIES),
               reexecs=loss.counter(C.MAPS_REEXECUTED),
               outcome="reexecuted" if loss_ok else "DRIFT")

    # -- seeded fuzz tail --------------------------------------------------
    rng = make_rng(4000)
    ran = 0
    for seed in range(num_fuzz):
        if time.monotonic() - t0 > seconds:
            break
        query = _QUERIES[rng.integers(0, len(_QUERIES))]
        op = _FUZZ_OPS[rng.integers(0, len(_FUZZ_OPS))]
        codec = _WIRE_CODECS[rng.integers(0, len(_WIRE_CODECS))]
        map_id = f"m{rng.integers(0, num_map_tasks):05d}"
        reduce_id = f"r{rng.integers(0, num_reducers):05d}"
        sticky = bool(rng.integers(0, 5) == 0)  # 20%: escalates to reexec

        def fuzz_plan(op=op, map_id=map_id, reduce_id=reduce_id,
                      sticky=sticky):
            inj = FaultInjector()
            inj.fetch(map_id, reduce_id, op=op, attempt=0,
                      sticky=sticky, seconds=0.1, epoch=0)
            return inj
        sticky_note = " sticky" if sticky else ""
        fault_scenario(f"fuzz-{seed}", query,
                       f"{op}{sticky_note} {map_id}->{reduce_id}",
                       fuzz_plan, config=net_config(codec))
        ran += 1

    result.note(f"grid {side}x{side}, {num_map_tasks} maps x "
                f"{num_reducers} reducers; fuzz tail ran {ran}/{num_fuzz} "
                f"seeds in {time.monotonic() - t0:.1f}s")
    result.note("wire_bytes = compressed bytes that crossed the socket "
                "(SHUFFLE_WIRE_BYTES); raw_bytes = decoded segment bytes "
                "(SHUFFLE_WIRE_BYTES_UNCOMPRESSED); faults are applied "
                "server-side while the bytes stream")
    result.note("outcome=identical: byte-identical output and stable "
                "counters vs the serial/direct baseline, runners agreeing "
                "on everything including the wire counters")
    return result
