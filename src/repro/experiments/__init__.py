"""Experiment harnesses: one module per paper table/figure.

Each module exposes ``run(...) -> ExperimentResult`` regenerating the
corresponding artifact (see DESIGN.md's per-experiment index); the
``benchmarks/`` suite calls these and prints paper-vs-measured tables.
All harnesses honor the ``REPRO_SCALE`` environment variable (a float;
1.0 = paper scale, default < 1 where paper scale is slow in Python).
"""

from repro.experiments.common import ExperimentResult, scaled, get_scale

__all__ = ["ExperimentResult", "scaled", "get_scale"]
