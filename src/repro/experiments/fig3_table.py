"""E3/E5 -- Fig 3's compression table and §III's stride-choice comparisons.

Fig 3 (paper, side=100 -> 12,000,000 bytes of int32 triples):

    Method            File size (bytes)   Time (seconds)
    Original          12,000,000          --
    gzip              1,630,xxx           ...
    transform+gzip    33,xxx              ...
    bzip2             512,xxx             ...
    transform+bzip    (hundreds)          ...

§III text adds: a user-specified single stride of 12 gives 1619 bytes
under bzip2 versus 701 bytes for all strides < 100 (brute force), and
the adaptive algorithm beats both at 468 bytes; brute force is ~4x
slower at max stride 100 and ~17x at max stride 1000.

The exact per-byte transform is pure Python here, so the default side is
scaled down (REPRO_SCALE=1.0 restores side=100); compression *ratios*
are size-stable, which is what the comparison needs.
"""

from __future__ import annotations

import bz2
import time
import zlib

from repro.core.stride import (
    StrideConfig,
    fast_forward_transform,
    fixed_forward_transform,
    forward_transform,
)
from repro.experiments.common import ExperimentResult, get_scale, scaled
from repro.scidata.generator import walk_grid_int32_triples

__all__ = ["run", "run_stride_choice", "PAPER"]

PAPER = {
    "original_bytes": 12_000_000,
    "single_stride_12_bz2": 1619,
    "all_strides_lt_100_bz2": 701,
    "adaptive_bz2": 468,
    "bruteforce_slowdown_100": 4.0,
    "bruteforce_slowdown_1000": 17.0,
}


def _timed(fn, *args):
    t0 = time.perf_counter()
    out = fn(*args)
    return out, time.perf_counter() - t0


def run(side: int | None = None, max_stride: int = 100) -> ExperimentResult:
    """Regenerate the Fig 3 table at ``side`` (default: scaled from 100)."""
    if side is None:
        side = scaled(100, default_scale=0.4)
    data = walk_grid_int32_triples(side)
    cfg = StrideConfig(max_stride=max_stride)

    result = ExperimentResult(
        experiment="E3",
        title=f"byte-level compression of {len(data):,} grid-walk bytes (Fig 3)",
        columns=["method", "file_bytes", "ratio_pct", "time_seconds"],
    )

    def add(method: str, blob: bytes, seconds: float) -> None:
        result.add(
            method=method,
            file_bytes=len(blob),
            ratio_pct=round(100.0 * (1.0 - len(blob) / len(data)), 4),
            time_seconds=round(seconds, 4),
        )

    result.add(method="original", file_bytes=len(data), ratio_pct=0.0,
               time_seconds=0.0)
    gz, t_gz = _timed(zlib.compress, data, 6)
    add("gzip", gz, t_gz)
    transformed, t_tr = _timed(forward_transform, data, cfg)
    tgz, t_tgz = _timed(zlib.compress, transformed, 6)
    add("transform+gzip", tgz, t_tr + t_tgz)
    bz, t_bz = _timed(bz2.compress, data, 9)
    add("bzip2", bz, t_bz)
    tbz, t_tbz = _timed(bz2.compress, transformed, 9)
    add("transform+bzip2", tbz, t_tr + t_tbz)
    fastt, t_fast = _timed(fast_forward_transform, data, max_stride)
    fgz, t_fgz = _timed(zlib.compress, fastt, 6)
    add("fastpred+gzip (ours)", fgz, t_fast + t_fgz)

    result.note(f"side={side}; paper ran side=100 (12,000,000 bytes)")
    result.note(
        "paper shape: transform+gzip beats gzip by ~50x and "
        "transform+bzip2 beats bzip2 by ~1000x on this input"
    )
    if get_scale(0.4) != 1.0:
        result.note("set REPRO_SCALE=1.0 for paper-scale input")
    return result


def run_stride_choice(side: int | None = None) -> ExperimentResult:
    """Regenerate §III's stride-choice comparison (E5)."""
    if side is None:
        side = scaled(100, default_scale=0.25)
    data = walk_grid_int32_triples(side)

    result = ExperimentResult(
        experiment="E5",
        title=f"stride detection regimes on {len(data):,} bytes (§III text)",
        columns=["regime", "bz2_bytes", "time_seconds"],
    )

    single, t_single = _timed(fixed_forward_transform, data, [12])
    result.add(regime="single stride 12 (user-specified)",
               bz2_bytes=len(bz2.compress(single, 9)),
               time_seconds=round(t_single, 4))

    brute, t_brute = _timed(
        fixed_forward_transform, data, list(range(1, 100)))
    result.add(regime="all strides < 100 (brute force)",
               bz2_bytes=len(bz2.compress(brute, 9)),
               time_seconds=round(t_brute, 4))

    adaptive, t_adaptive = _timed(
        forward_transform, data, StrideConfig(max_stride=100))
    result.add(regime="adaptive (§III-A)",
               bz2_bytes=len(bz2.compress(adaptive, 9)),
               time_seconds=round(t_adaptive, 4))

    slowdown = t_brute / t_adaptive if t_adaptive > 0 else float("inf")
    result.note(f"brute-force/adaptive slowdown at max stride 100: "
                f"{slowdown:.2f}x (paper: ~4x)")
    result.note("paper bytes: single-12=1619, brute<100=701, adaptive=468 "
                "(at side=100)")
    return result
