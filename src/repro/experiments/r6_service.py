"""R6 -- multi-tenant job service: daemon chaos, shedding, fairness.

Not a paper figure: this is the robustness ladder's service-level
rung.  The scenarios pin the contract of
:mod:`repro.mapreduce.runtime.service`:

* **zero accepted jobs lost** -- a real ``repro serve`` daemon
  subprocess accepts jobs from three tenants (one tenant's jobs carry
  poison records + a skip budget and an injected fetch fault), is
  ``SIGKILL``-ed mid-flight, and is restarted; every accepted job must
  reach DONE, with output *and* counters byte-identical to a solo
  serial run of the same spec (``LocalJobRunner`` + the same fault
  plan) -- the service adds scheduling, never semantics;
* **explicit overload shedding** -- with bounded queues, the
  per-tenant bound, the global bound, and the per-job cost cap each
  reject with their own structured payload (429/413 + retry hint),
  never a silent drop;
* **cancel smoke** -- a queued job cancels to CANCELLED through the
  REST round-trip, and an unknown id answers NOT_FOUND.

``REPRO_R6_SECONDS`` bounds the recovery wait (default 240s).  The
bench (``benchmarks/bench_r6_service.py``) asserts no row reads DRIFT.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.experiments.common import ExperimentResult
from repro.mapreduce.engine import LocalJobRunner
from repro.mapreduce.runtime.service import (
    AdmissionConfig,
    AdmissionRejected,
    JobRegistry,
    JobService,
    JobSpec,
    ServiceConfig,
    build_injector,
    build_workload,
)
from repro.mapreduce.runtime.service.http import (
    ServiceClient,
    ServiceEndpoint,
    ServiceUnavailableError,
)

__all__ = ["run"]

#: tenants the chaos phase submits under (weight/quota set via --tenants)
_TENANTS = "alice:2:2,bob:1:2,carol:1:2"


def _chaos_specs() -> list[JobSpec]:
    """The accepted-job mix: three tenants, two queries, real faults.

    carol is the faulted tenant: one job carries a poison record under
    a skip budget, the other an injected transient fetch corruption --
    both data-shaped faults the serial runner replays identically, so
    the solo baseline stays byte-comparable.
    """
    return [
        JobSpec(tenant="alice", query="histogram", shape=(14, 14, 14),
                seed=3, bins=16, num_maps=4, num_reducers=2),
        JobSpec(tenant="alice", query="sliding_mean", shape=(9, 9),
                seed=5, window=3, num_maps=3, num_reducers=2),
        JobSpec(tenant="bob", query="histogram", shape=(12, 12, 12),
                seed=11, bins=8, num_maps=4, num_reducers=2),
        JobSpec(tenant="bob", query="sliding_mean", shape=(8, 8),
                seed=13, window=3, num_maps=3, num_reducers=2),
        JobSpec(tenant="carol", query="subset", shape=(10, 10, 10),
                seed=17, num_maps=4, num_reducers=2,
                skip_budget=8, poison=(("m00001", 3),)),
        JobSpec(tenant="carol", query="histogram", shape=(11, 11, 11),
                seed=19, bins=16, num_maps=3, num_reducers=2,
                fetch_faults=(("m00001", "r00000", "flip"),)),
    ]


def _spec_label(spec: JobSpec) -> str:
    faults = []
    if spec.poison:
        faults.append(f"poison x{len(spec.poison)}")
    if spec.fetch_faults:
        faults.append(f"fetch x{len(spec.fetch_faults)}")
    shape = "x".join(str(s) for s in spec.shape)
    tail = f" [{', '.join(faults)}]" if faults else ""
    return f"{spec.query} {shape}{tail}"


def _spawn_daemon(root: str) -> subprocess.Popen:
    """Start ``repro serve`` as a real subprocess (so SIGKILL is real)."""
    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    log = open(os.path.join(root, "daemon.log"), "ab")
    try:
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--root", root,
             "--workers", "2", "--executors", "2",
             "--tenants", _TENANTS],
            env=env, stdout=log, stderr=log)
    finally:
        log.close()  # the child holds its own fd


def _wait_healthy(client: ServiceClient, timeout: float) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client.health()
            return True
        except ServiceUnavailableError:
            time.sleep(0.1)
    return False


def _wait_any_running(client: ServiceClient, timeout: float) -> bool:
    """True once some accepted job has actually started executing."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            listing = client.jobs().get("jobs", [])
        except ServiceUnavailableError:
            return False
        if any(j["state"] in ("RUNNING", "DONE") for j in listing):
            return True
        time.sleep(0.05)
    return False


def _wait_all_done(client: ServiceClient, job_ids: list[str],
                   timeout: float) -> dict[str, str]:
    """Poll until every job leaves QUEUED/RUNNING; id -> final state."""
    deadline = time.monotonic() + timeout
    states = {j: "?" for j in job_ids}
    while time.monotonic() < deadline:
        try:
            listing = client.jobs().get("jobs", [])
        except ServiceUnavailableError:
            time.sleep(0.2)
            continue
        for row in listing:
            if row["job_id"] in states:
                states[row["job_id"]] = row["state"]
        if all(s in ("DONE", "FAILED", "CANCELLED")
               for s in states.values()):
            break
        time.sleep(0.2)
    return states


def _solo_baseline(spec: JobSpec):
    """The same spec run serially, alone, with the same fault plan."""
    job, dataset = build_workload(spec)
    return LocalJobRunner(fault_injector=build_injector(spec)).run(
        job, dataset)


def _shed_service(root: str) -> tuple[JobService, ServiceEndpoint,
                                      threading.Thread]:
    """A deliberately tiny service with *no executors*: submissions
    queue durably but never drain, so queue-bound rejections are
    deterministic instead of racing the executors."""
    config = ServiceConfig(
        root=root, max_workers=2, executors=1,
        tenants={"alice": (2.0, 2), "bob": (1.0, 2)},
        admission=AdmissionConfig(max_queued=3, max_queued_per_tenant=2,
                                  max_job_seconds=600.0,
                                  max_outstanding_seconds=3600.0))
    service = JobService(config)  # start() never called: nothing executes
    endpoint = ServiceEndpoint(service)
    endpoint.publish()
    thread = threading.Thread(target=endpoint.serve_forever, daemon=True)
    thread.start()
    return service, endpoint, thread


def run(seconds: float | None = None) -> ExperimentResult:
    """Execute the R6 service-chaos matrix; returns the scenario table."""
    if seconds is None:
        seconds = float(os.environ.get("REPRO_R6_SECONDS", "240"))
    t0 = time.monotonic()

    result = ExperimentResult(
        experiment="R6",
        title="Multi-tenant job service: daemon kill+restart, admission "
              "shedding, cancellation",
        columns=["scenario", "tenant", "detail", "state", "outcome"],
    )

    # -- chaos: accept from three tenants, SIGKILL the daemon, restart ----
    root = tempfile.mkdtemp(prefix="r6-service-")
    client = ServiceClient(root)
    specs = _chaos_specs()
    accepted: list[tuple[str, JobSpec]] = []
    daemon = _spawn_daemon(root)
    kill_note = "daemon never became healthy"
    try:
        if _wait_healthy(client, timeout=60):
            for spec in specs:
                reply = client.submit(spec)
                if reply.get("error"):
                    result.add(scenario="chaos-submit", tenant=spec.tenant,
                               detail=_spec_label(spec),
                               state=reply["error"], outcome="DRIFT")
                else:
                    accepted.append((reply["job_id"], spec))
            # Let execution begin so the SIGKILL lands mid-flight.
            mid_flight = _wait_any_running(client, timeout=60)
            os.kill(daemon.pid, signal.SIGKILL)
            daemon.wait()
            kill_note = (f"SIGKILL pid {daemon.pid} "
                         f"{'mid-flight' if mid_flight else 'while queued'}, "
                         f"{len(accepted)} accepted job(s)")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    # The registry alone must reconstruct everything: restart and drain.
    states: dict[str, str] = {}
    if accepted:
        daemon = _spawn_daemon(root)
        try:
            if _wait_healthy(client, timeout=60):
                budget = max(30.0, seconds - (time.monotonic() - t0))
                states = _wait_all_done(
                    client, [j for j, _ in accepted], timeout=budget)
                try:
                    client.shutdown()
                    daemon.wait(timeout=30)
                except (ServiceUnavailableError,
                        subprocess.TimeoutExpired):
                    pass
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    registry = JobRegistry(root)
    done = 0
    for job_id, spec in accepted:
        state = states.get(job_id, "?")
        record = registry.get(job_id)
        stored = record.load_result() if record is not None else None
        if state == "DONE" and stored is not None:
            base = _solo_baseline(spec)
            output_ok = stored["output"] == base.output
            counters_ok = stored["counters"] == base.counters
            if output_ok and counters_ok:
                outcome = "identical"
                done += 1
            else:
                outcome = "DRIFT"
        else:
            outcome = "DRIFT"  # an accepted job was lost or damaged
        result.add(scenario="chaos", tenant=spec.tenant,
                   detail=f"{job_id}: {_spec_label(spec)}",
                   state=state, outcome=outcome)
    result.add(scenario="daemon-kill", tenant="-", detail=kill_note,
               state="-",
               outcome=("recovered" if accepted and done == len(accepted)
                        else "DRIFT"))

    # -- shedding: every budget rejects with its own structured error -----
    shed_root = tempfile.mkdtemp(prefix="r6-shed-")
    service, endpoint, thread = _shed_service(shed_root)
    shed_client = ServiceClient(shed_root)
    try:
        def tiny(tenant: str, seed: int) -> JobSpec:
            return JobSpec(tenant=tenant, query="histogram",
                           shape=(6, 6), seed=seed, num_maps=2,
                           num_reducers=1)

        def shed_row(scenario: str, tenant: str, reply: dict,
                     want_error: str, want_status: int,
                     want_retry: bool) -> None:
            got_retry = reply.get("retry_after") is not None
            ok = (reply.get("error") == want_error
                  and reply.get("http_status") == want_status
                  and got_retry == want_retry)
            result.add(scenario=scenario, tenant=tenant,
                       detail=f"{reply.get('error')} "
                              f"http={reply.get('http_status')} "
                              f"retry_after="
                              f"{'set' if got_retry else 'null'}",
                       state="rejected", outcome="shed" if ok else "DRIFT")

        first = shed_client.submit(tiny("alice", 1))
        shed_client.submit(tiny("alice", 2))
        # alice is at her per-tenant bound of 2:
        shed_row("shed-tenant", "alice", shed_client.submit(tiny("alice", 3)),
                 "TENANT_OVERLOADED", 429, True)
        shed_client.submit(tiny("bob", 4))
        # the global queue is at its bound of 3:
        shed_row("shed-global", "bob", shed_client.submit(tiny("bob", 5)),
                 "OVERLOADED", 429, True)

        # cancel smoke: queued -> CANCELLED through the REST round-trip
        cancelled = shed_client.cancel(first["job_id"])
        result.add(scenario="cancel", tenant="alice",
                   detail=f"{first['job_id']} cancelled while queued",
                   state=cancelled.get("state", "?"),
                   outcome=("cancelled"
                            if cancelled.get("state") == "CANCELLED"
                            else "DRIFT"))
        missing = shed_client.status("j999999")
        result.add(scenario="cancel", tenant="-",
                   detail="status of unknown job id", state="rejected",
                   outcome=("shed"
                            if missing.get("error") == "NOT_FOUND"
                            else "DRIFT"))
    finally:
        try:
            shed_client.shutdown()
        except ServiceUnavailableError:
            endpoint.server.shutdown()
        thread.join(timeout=10)

    # Per-job cost cap: a property of the job, so retrying cannot help
    # (413, retry_after null).  Checked in-process against a service
    # whose cap is unreachably small.
    cap_root = tempfile.mkdtemp(prefix="r6-cap-")
    cap_service = JobService(ServiceConfig(
        root=cap_root, max_workers=2, executors=1,
        admission=AdmissionConfig(max_job_seconds=1e-9)))
    try:
        cap_service.submit(JobSpec(tenant="alice", query="sliding_mean",
                                   shape=(32, 32, 32), num_maps=4,
                                   num_reducers=2))
        payload = {"error": "ACCEPTED"}
    except AdmissionRejected as exc:
        payload = exc.payload
    ok = (payload.get("error") == "JOB_TOO_LARGE"
          and payload.get("http_status") == 413
          and payload.get("retry_after") is None)
    result.add(scenario="shed-job-cap", tenant="alice",
               detail=f"{payload.get('error')} "
                      f"http={payload.get('http_status')} "
                      f"retry_after="
                      f"{'null' if payload.get('retry_after') is None else 'set'}",
               state="rejected", outcome="shed" if ok else "DRIFT")

    result.note(f"chaos phase: {len(accepted)} job(s) accepted across 3 "
                f"tenants ({_TENANTS}); {done} DONE and byte-identical "
                f"to their solo serial baselines after kill+restart; "
                f"total {time.monotonic() - t0:.1f}s")
    result.note("outcome=identical: the service-executed job's committed "
                "result (output AND counters) equals a LocalJobRunner run "
                "of the same spec with the same fault plan, alone")
    result.note("outcome=shed: the submission was refused with the "
                "expected structured error code, HTTP status, and "
                "retry_after convention (429 retryable, 413 not)")
    return result
