"""E6/E8 -- the cluster results (§III-E and §IV-D).

Paper setup: sliding-median query, 5-node cluster, 10 map slots, 5
reducers.  Three configurations:

* **baseline** -- per-cell keys, no intermediate compression
  (55.5 GB materialized, 183 min);
* **byte-level codec** (E6) -- per-cell keys + the §III transform codec
  (-77.8% bytes, but +106% runtime: the transform costs ~2.9x gzip);
* **key aggregation** (E8) -- aggregate keys, no codec
  (-60.7% bytes, -28.5% runtime).

Byte counts here are *measured* (the engine shuffles real files).
Runtime is *simulated* two ways:

* ``measured`` -- our Python CPU timings scheduled onto the paper's slot
  layout.  The pure-Python exact transform is orders of magnitude slower
  than the authors' native code, so this mode exaggerates E6's runtime
  regression (same sign, larger factor);
* ``native-parity`` -- CPU replaced by a native-speed model: user code
  and sort at ``FUNC_BW`` bytes/s of raw intermediate, gzip at
  ``GZIP_BW``, and the transform at ``TRANSFORM_RATIO`` x gzip (the
  paper's own measured 2.9x).  This mode reproduces the paper's runtime
  *shape* from our measured byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.common import ExperimentResult, fmt_bytes, pct, scaled
from repro.experiments.common import make_runner
from repro.mapreduce.engine import JobResult
from repro.mapreduce.metrics import TaskProfile
from repro.mapreduce.simcluster import ClusterSimulator, ClusterSpec
from repro.queries.sliding_median import SlidingMedianQuery
from repro.scidata.generator import integer_grid

__all__ = ["run", "ClusterConfig", "native_parity_profiles", "PAPER"]

PAPER = {
    "baseline_gb": 55.5,
    "bytelevel_gb": 12.3,
    "bytelevel_reduction_pct": 77.8,
    "bytelevel_runtime_delta_pct": +106.0,
    "aggregation_gb": 21.8,
    "aggregation_reduction_pct": 60.7,
    "aggregation_runtime_delta_pct": -28.5,
    "transform_vs_gzip_cpu": 2.9,
}

#: native-parity model constants (2012-era single-thread throughputs)
GZIP_BW = 60e6        # bytes/s of raw data through zlib
FUNC_BW = 150e6       # bytes/s of raw intermediate through user code + sort
TRANSFORM_RATIO = 2.9  # paper §III-E: transform costs 2.9x gzip


@dataclass(frozen=True)
class ClusterConfig:
    """One experimental configuration of the sliding-median job."""

    label: str
    mode: str            # "plain" | "aggregate"
    codec: str           # codec registry name


CONFIGS = (
    ClusterConfig("baseline (per-cell keys, no codec)", "plain", "null"),
    ClusterConfig("byte-level codec (E6, stride+zlib)", "plain", "stride+zlib"),
    ClusterConfig("key aggregation (E8)", "aggregate", "null"),
)


def native_parity_profiles(
    result: JobResult, codec: str
) -> list[TaskProfile]:
    """Re-cost measured task profiles with the native CPU model.

    Byte counts stay measured; CPU is recomputed: user code + sort at
    ``FUNC_BW`` over the task's raw intermediate bytes, codec CPU from
    ``GZIP_BW`` (and ``TRANSFORM_RATIO`` for the stride transform).
    Raw (pre-codec) bytes per task are estimated from the job-level
    raw/materialized ratio, which the engine measures exactly.
    """
    stats = result.map_output_stats
    expansion = (
        stats.raw_bytes / stats.materialized_bytes
        if stats.materialized_bytes else 1.0
    )
    is_stride = codec.startswith("stride") or codec.startswith("fastpred")
    has_codec = codec != "null"
    out: list[TaskProfile] = []
    for p in result.task_profiles:
        if p.kind == "map":
            raw = p.local_write_bytes * expansion
        else:
            raw = p.shuffle_bytes * expansion
        cpu: dict[str, float] = {"function": raw / FUNC_BW}
        if has_codec:
            gzip_cost = raw / GZIP_BW
            cpu["codec"] = gzip_cost
            if is_stride:
                cpu["transform"] = TRANSFORM_RATIO * gzip_cost
        out.append(replace(p, cpu_seconds=cpu))
    return out


def run(side: int | None = None, window: int = 3,
        bytelevel_codec: str = "stride+zlib",
        spec: ClusterSpec | None = None) -> ExperimentResult:
    """Run all three configurations and price both runtime models."""
    if side is None:
        side = scaled(100, default_scale=0.48)
    spec = spec or ClusterSpec()  # the paper's 5x2 map slots, 5 reducers
    grid = integer_grid((side, side), seed=77)
    query = SlidingMedianQuery(grid, "values", window=window)
    sim = ClusterSimulator(spec)

    result = ExperimentResult(
        experiment="E6/E8",
        title=(f"sliding median on a {side}x{side} grid, "
               f"{spec.nodes} nodes / {spec.map_slots} map slots / "
               f"{spec.reduce_slots} reducers"),
        columns=["config", "materialized", "delta_bytes_pct",
                 "sim_seconds_measured", "sim_seconds_parity",
                 "delta_runtime_parity_pct"],
    )

    baseline_bytes = None
    baseline_parity_minutes = None
    outputs: list[dict] = []
    for config in CONFIGS:
        codec = bytelevel_codec if "E6" in config.label else config.codec
        job = query.build_job(
            config.mode,
            variable_mode="name",
            codec=codec,
            num_map_tasks=spec.map_slots,
            num_reducers=spec.reduce_slots,
        )
        res = make_runner().run(job, grid)
        if len(res.output) != query.expected_output_cells():
            raise AssertionError(
                f"{config.label}: wrong output size {len(res.output)}"
            )
        measured = sim.simulate(res.task_profiles)
        parity = sim.simulate(native_parity_profiles(res, codec))
        mat = res.materialized_bytes
        if baseline_bytes is None:
            baseline_bytes = mat
            baseline_parity_minutes = parity.total_seconds
        result.add(
            config=config.label,
            materialized=fmt_bytes(mat),
            delta_bytes_pct=round(pct(mat, baseline_bytes), 1),
            sim_seconds_measured=round(measured.total_seconds, 3),
            sim_seconds_parity=round(parity.total_seconds, 4),
            delta_runtime_parity_pct=round(
                pct(parity.total_seconds, baseline_parity_minutes), 1),
        )
        outputs.append({"config": config.label, "result": res})

    result.note("paper: bytes -77.8% (E6) / -60.7% (E8); "
                "runtime +106% (E6) / -28.5% (E8)")
    result.note(f"parity model: gzip {GZIP_BW/1e6:.0f} MB/s, transform "
                f"{TRANSFORM_RATIO}x gzip (the paper's measured ratio), "
                f"user code {FUNC_BW/1e6:.0f} MB/s")
    result.note("measured-CPU mode runs the exact §III transform in pure "
                "Python, so E6's regression is exaggerated (same sign)")
    return result
