"""P3 -- pipelined shuffle: overlap map, fetch, and reduce-side merge.

Classic MapReduce puts a hard barrier between the map and reduce
phases: no reducer may start until every map has committed, so one
straggling map idles the whole reduce fleet.  The pipelined mode
removes the barrier the way MapReduce Online does: reducers are
admitted alongside the maps, fetch each producer's segments the moment
it commits (a commit-log completion-event stream replaces the barrier),
and run their merge incrementally over the runs already fetched --
while holding the *final* reduce until the last producer lands, so the
output and every counter stay byte-identical to the barrier run.

The matrix pins that identity claim from every direction:

* ``clean-*`` -- every query x {direct, network} transport, pipeline
  on: serial and parallel pipelined runs must agree with each other
  *and* with the same-transport barrier baseline on output and full
  counters;
* ``barrier-*`` -- the off switch: ``pipeline=False`` runs stay
  identical too (the flag changes wall-clock shape, never bytes);
* ``straggler-*`` -- one map hangs; starved reducers (every committed
  segment consumed, one producer missing) trigger progress-based
  speculation of exactly that map, and the run still matches the
  baseline byte-for-byte with measured fetch/merge overlap;
* ``host-crash-*`` -- a whole host dies mid-pipeline; reducers discard
  the dead host's already-fetched epoch-0 runs, re-point at the
  re-executed maps' commits, and recover with identical output (the
  fetch-accounting counters legitimately differ -- they *measure* the
  recovery -- and are excluded exactly like R3/R4 do);
* a seeded fuzz tail of randomized straggler schedules, bounded by
  ``REPRO_P3_FUZZ`` / ``REPRO_P3_SECONDS``.

``run_bench`` is the PR's headline: wall-clock of barrier vs pipelined
execution on the same job with an injected map straggler (the bench
asserts pipelined <= barrier and writes ``BENCH_P3.json`` at paper
scale).
"""

from __future__ import annotations

import os
import time

from repro.experiments.common import ExperimentResult, scaled
from repro.mapreduce.engine import LocalJobRunner
from repro.mapreduce.metrics import C
from repro.mapreduce.runtime import (
    FaultInjector,
    ParallelJobRunner,
    ShuffleConfig,
    host_for,
)
from repro.queries.histogram import HistogramQuery
from repro.queries.subset import BoxSubsetQuery
from repro.scidata.generator import integer_grid
from repro.scidata.slab import Slab
from repro.util.rng import make_rng

#: queries the matrix and the fuzz tail draw from
_QUERIES = ("subset-plain", "subset-agg", "histogram")
#: transports the pipeline must be byte-identical over
_TRANSPORTS = ("direct", "network")
#: counters that legitimately differ once a fault forces refetching:
#: a pipelined reducer may fetch a segment at epoch 0 and fetch it
#: again after the producer's re-execution bumps the epoch, so every
#: fetch-accounting counter is timing-dependent under faults (clean
#: runs fetch exactly once and must still match in full)
_VOLATILE = frozenset({
    C.SHUFFLE_FETCHES,
    C.SHUFFLE_RETRIES,
    C.SHUFFLE_FAILED_FETCHES,
    C.SHUFFLE_BYTES_TRANSFERRED,
    C.SHUFFLE_WIRE_BYTES,
    C.SHUFFLE_WIRE_BYTES_UNCOMPRESSED,
    C.MAPS_REEXECUTED,
})


def _build(grid, query: str, side: int, num_map_tasks: int,
           num_reducers: int):
    """One query job over the harness grid."""
    var = grid.names[0]
    if query == "subset-plain":
        box = Slab((1, 1), (side - 2, side - 2))
        return BoxSubsetQuery(grid, var, box).build_job(
            "plain", num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    if query == "subset-agg":
        box = Slab((1, 1), (side - 2, side - 2))
        return BoxSubsetQuery(grid, var, box).build_job(
            "aggregate", variable_mode="index",
            num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    if query == "histogram":
        return HistogramQuery(grid, var, bins=16).build_job(
            "plain", num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    raise ValueError(f"unknown query {query!r}")


class _RunOutcome:
    """One runner's result-or-error for a scenario."""

    def __init__(self, result, error: BaseException | None) -> None:
        self.result = result
        self.error = error

    def counter(self, name: str) -> int:
        return self.result.counters.get(name) if self.result else 0

    def overlap(self) -> int:
        stats = self.result.pipeline_stats if self.result else None
        return stats.get(C.PIPELINE_OVERLAP, 0) if stats else 0


def _run_one(runner_name: str, grid, job, shuffle: ShuffleConfig | None,
             injector: FaultInjector | None, *,
             speculation: bool = False,
             max_host_reexecs: int = 2) -> _RunOutcome:
    kwargs: dict = {"shuffle": shuffle, "fault_injector": injector,
                    "max_host_reexecs": max_host_reexecs}
    if runner_name == "serial":
        runner = LocalJobRunner(**kwargs)
    else:
        runner = ParallelJobRunner(
            max_workers=4, speculation=speculation,
            min_straggler_seconds=0.2, retry_backoff=0.01, **kwargs)
    try:
        with runner:
            return _RunOutcome(runner.run(job, grid), None)
    except Exception as exc:
        return _RunOutcome(None, exc)


#: counters that *account* an injected host fault (identical between
#: runners, but necessarily absent from the clean baseline)
_FAULT_ACCOUNTING = frozenset({
    C.HOSTS_LOST,
    C.MAPS_REEXECUTED_HOST,
    C.DISK_FAILOVERS,
})


def _stable_counters(result, *, vs_baseline: bool = False) -> dict[str, int]:
    """Counters minus the fault-measuring ones (and zero entries)."""
    drop = _VOLATILE | _FAULT_ACCOUNTING if vs_baseline else _VOLATILE
    return {k: v for k, v in result.counters.as_dict().items()
            if k not in drop and v}


def _classify(serial: _RunOutcome, parallel: _RunOutcome, baseline, *,
              strict: bool = True) -> str:
    """Where a scenario landed: identical / recovered / failed / DRIFT.

    The runners must agree with *each other* (in full for clean runs;
    on stable counters once a fault forces refetching, which is
    timing-dependent), and a successful run must match the barrier
    baseline's output and stable counters exactly.
    """
    if (serial.error is None) != (parallel.error is None):
        return "DRIFT"
    if serial.error is not None:
        return "failed"
    if serial.result.output != parallel.result.output:
        return "DRIFT"
    if strict:
        if serial.result.counters != parallel.result.counters:
            return "DRIFT"
    elif _stable_counters(serial.result) != _stable_counters(parallel.result):
        return "DRIFT"
    if serial.result.output != baseline.output:
        return "DRIFT"
    if (_stable_counters(serial.result, vs_baseline=True)
            != _stable_counters(baseline, vs_baseline=True)):
        return "DRIFT"
    if serial.counter(C.HOSTS_LOST) > 0:
        return "recovered"
    return "identical"


def _classify_single(outcome: _RunOutcome, baseline, *,
                     strict: bool = True) -> str:
    """One runner's scenario against the barrier baseline."""
    if outcome.error is not None:
        return "failed"
    if outcome.result.output != baseline.output:
        return "DRIFT"
    if strict and outcome.result.counters != baseline.counters:
        return "DRIFT"
    if (_stable_counters(outcome.result, vs_baseline=True)
            != _stable_counters(baseline, vs_baseline=True)):
        return "DRIFT"
    if outcome.counter(C.HOSTS_LOST) > 0:
        return "recovered"
    return "identical"


def run(num_fuzz: int | None = None,
        seconds: float | None = None) -> ExperimentResult:
    """Execute the P3 matrix; returns the scenario table."""
    side = scaled(24, 1.0, minimum=12)
    num_map_tasks, num_reducers = 3, 2
    grid = integer_grid((side, side), seed=17)

    if num_fuzz is None:
        num_fuzz = int(os.environ.get("REPRO_P3_FUZZ", "3"))
    if seconds is None:
        seconds = float(os.environ.get("REPRO_P3_SECONDS", "120"))
    t0 = time.monotonic()

    result = ExperimentResult(
        experiment="P3",
        title="Pipelined shuffle: overlap map, fetch, and reduce-side "
              "merge vs the barrier",
        columns=("scenario", "query", "transport", "pipeline", "overlap",
                 "outcome"),
    )

    # Barrier baselines, one per (query, transport): the bytes every
    # pipelined run must reproduce.
    baselines: dict[tuple[str, str], object] = {}

    def baseline(query: str, transport: str):
        key = (query, transport)
        if key not in baselines:
            job = _build(grid, query, side, num_map_tasks, num_reducers)
            cfg = ShuffleConfig(transport=transport)
            with LocalJobRunner(shuffle=cfg) as runner:
                baselines[key] = runner.run(job, grid)
        return baselines[key]

    def pipelined_cfg(transport: str) -> ShuffleConfig:
        return ShuffleConfig(transport=transport, pipeline=True,
                             starvation_threshold=2)

    # -- clean equivalence: every query x transport, pipeline on -------
    for query in _QUERIES:
        for transport in _TRANSPORTS:
            job = _build(grid, query, side, num_map_tasks, num_reducers)
            cfg = pipelined_cfg(transport)
            serial = _run_one("serial", grid, job, cfg, None)
            parallel = _run_one("parallel", grid, job, cfg, None)
            result.add(scenario="clean", query=query, transport=transport,
                       pipeline="on",
                       overlap=max(serial.overlap(), parallel.overlap()),
                       outcome=_classify(serial, parallel,
                                         baseline(query, transport)))

    # -- the off switch: pipeline=False must be the barrier ------------
    for transport in _TRANSPORTS:
        job = _build(grid, "subset-agg", side, num_map_tasks, num_reducers)
        cfg = ShuffleConfig(transport=transport, pipeline=False)
        serial = _run_one("serial", grid, job, cfg, None)
        parallel = _run_one("parallel", grid, job, cfg, None)
        result.add(scenario="barrier", query="subset-agg",
                   transport=transport, pipeline="off", overlap=0,
                   outcome=_classify(serial, parallel,
                                     baseline("subset-agg", transport)))

    # -- straggler: one map hangs; starved reducers speculate it -------
    # The hang delays the producer without damaging anything, so no
    # refetch happens and even the fetch counters must match in full.
    for transport in _TRANSPORTS:
        job = _build(grid, "histogram", side, num_map_tasks, num_reducers)
        straggler = f"m{num_map_tasks - 1:05d}"
        injector = FaultInjector().hang(straggler, seconds=1.0)
        outcome = _run_one("parallel", grid, job, pipelined_cfg(transport),
                           injector, speculation=True)
        result.add(scenario="straggler", query="histogram",
                   transport=transport, pipeline="on",
                   overlap=outcome.overlap(),
                   outcome=_classify_single(
                       outcome, baseline("histogram", transport)))

    # -- whole-host loss mid-pipeline ----------------------------------
    # Reducers have fetched the dead host's epoch-0 segments by the
    # time it dies; the epoch bump forces a discard + refetch, so only
    # the stable counters are compared (the volatile ones measure the
    # recovery itself and differ between runners and runs).
    for transport in _TRANSPORTS:
        job = _build(grid, "subset-plain", side, num_map_tasks,
                     num_reducers)
        victim = host_for("m00000", 2)
        serial = _run_one(
            "serial", grid, job, pipelined_cfg(transport),
            FaultInjector().host_crash(victim), max_host_reexecs=8)
        parallel = _run_one(
            "parallel", grid, job, pipelined_cfg(transport),
            FaultInjector().host_crash(victim), max_host_reexecs=8)
        result.add(scenario="host-crash", query="subset-plain",
                   transport=transport, pipeline="on",
                   overlap=max(serial.overlap(), parallel.overlap()),
                   outcome=_classify(serial, parallel,
                                     baseline("subset-plain", transport),
                                     strict=False))

    # -- seeded fuzz tail: randomized straggler schedules --------------
    rng = make_rng(3100)
    ran = 0
    for i in range(num_fuzz):
        if time.monotonic() - t0 > seconds:
            break
        query = _QUERIES[rng.integers(0, len(_QUERIES))]
        transport = _TRANSPORTS[rng.integers(0, len(_TRANSPORTS))]
        target = int(rng.integers(0, num_map_tasks))
        delay = 0.1 + 0.3 * float(rng.random())
        job = _build(grid, query, side, num_map_tasks, num_reducers)
        injector = FaultInjector().hang(f"m{target:05d}", seconds=delay)
        outcome = _run_one("parallel", grid, job, pipelined_cfg(transport),
                           injector, speculation=True)
        result.add(scenario=f"fuzz-{i}", query=query, transport=transport,
                   pipeline="on", overlap=outcome.overlap(),
                   outcome=_classify_single(outcome,
                                            baseline(query, transport)))
        ran += 1

    result.note(f"grid {side}x{side}, {num_map_tasks} maps x "
                f"{num_reducers} reducers; baselines are serial barrier "
                f"runs per (query, transport)")
    result.note("clean/barrier/straggler rows compare full counters; "
                "host-crash rows exclude the fetch-accounting counters "
                "(refetching after an epoch bump is timing-dependent)")
    result.note(f"fuzz tail: {ran}/{num_fuzz} randomized straggler "
                f"schedules (REPRO_P3_FUZZ / REPRO_P3_SECONDS)")
    return result


def run_bench(side: int | None = None, num_map_tasks: int = 8,
              num_reducers: int = 2, straggler_seconds: float = 3.0,
              link_delay_seconds: float = 0.3,
              repeats: int = 3) -> ExperimentResult:
    """Wall-clock headline: barrier vs pipelined on a straggler job.

    This is the scenario pipelining exists for: a shuffle whose
    transfers take real time (every map->reduce link carries an
    injected ``link_delay_seconds`` wire latency, fetched serially per
    reducer -- a congested oversubscribed network) plus one map hung
    for ``straggler_seconds``.  The barrier pays those costs end to
    end: all maps, then the hang, then every transfer, then the merge.
    The pipeline hides the transfers *inside* the map phase and the
    hang -- each segment is fetched the moment its producer commits,
    and the merge folds forward -- leaving only the straggler's own
    transfer and the residual merge after the last commit.

    Speculation is off in both modes so neither gets rescued: the
    comparison isolates the wave shape itself.  Runs alternate
    barrier/pipelined so machine-load epochs hit both modes equally;
    the best of ``repeats`` counts.  Output and counters must be
    identical across all rows -- the pipeline may only move wall-clock.
    """
    if side is None:
        side = scaled(200, default_scale=0.2, minimum=40)
    grid = integer_grid((side, side), seed=23)
    job = _build(grid, "subset-plain", side, num_map_tasks, num_reducers)
    straggler = f"m{num_map_tasks - 1:05d}"
    workers = num_map_tasks + num_reducers

    def make_injector() -> FaultInjector:
        injector = FaultInjector().hang(straggler,
                                        seconds=straggler_seconds)
        for m in range(num_map_tasks):
            for r in range(num_reducers):
                injector.fetch(f"m{m:05d}", f"r{r:05d}", op="delay",
                               seconds=link_delay_seconds)
        return injector

    result = ExperimentResult(
        experiment="P3-bench",
        title="End-to-end wall-clock with one straggling map and slow "
              "shuffle links: barrier vs pipelined",
        columns=("mode", "transport", "seconds", "overlap",
                 "first_fetch_ms", "outcome"),
    )

    with LocalJobRunner() as runner:
        reference = runner.run(job, grid)

    for transport in _TRANSPORTS:
        best: dict[str, tuple[float, object]] = {}
        for _ in range(repeats):
            for mode in ("barrier", "pipelined"):
                cfg = ShuffleConfig(transport=transport,
                                    pipeline=(mode == "pipelined"),
                                    concurrency=1)
                runner = ParallelJobRunner(
                    max_workers=workers, shuffle=cfg,
                    fault_injector=make_injector(), speculation=False,
                    retry_backoff=0.01)
                with runner:
                    t0 = time.perf_counter()
                    run_result = runner.run(job, grid)
                    elapsed = time.perf_counter() - t0
                if mode not in best or elapsed < best[mode][0]:
                    best[mode] = (elapsed, run_result)
        for mode in ("barrier", "pipelined"):
            seconds, mode_result = best[mode]
            stats = mode_result.pipeline_stats or {}
            identical = (mode_result.output == reference.output
                         and _stable_counters(mode_result)
                         == _stable_counters(reference))
            result.add(
                mode=mode, transport=transport,
                seconds=round(seconds, 3),
                overlap=stats.get(C.PIPELINE_OVERLAP, 0),
                first_fetch_ms=stats.get(C.REDUCE_FIRST_FETCH_MS),
                outcome="identical" if identical else "DRIFT")

    result.note(f"grid {side}x{side}, {num_map_tasks} maps x "
                f"{num_reducers} reducers, {workers} workers; last map "
                f"hangs {straggler_seconds}s on its first attempt; every "
                f"map->reduce link delayed {link_delay_seconds}s, fetch "
                f"concurrency 1; best of {repeats}, runs interleaved")
    return result
