"""A9 -- multi-variable streams (§III's open complication).

"If multiple variables are output, this would require determining where
one ends and another begins in the byte stream, because they may have
different stride lengths due to different shapes.  The same difficulty
arises if there are multiple contiguous blocks, even with one variable."

We build exactly that stream -- a mapper's output switching from
variable ``windspeed1`` (33-byte record pitch) to variable ``t2``
(25-byte pitch) -- and measure three regimes:

* a single metadata-advised stride for the *first* variable (wrong for
  the second half);
* metadata-advised strides for *both* variables (needs the §III
  "detailed knowledge of the file format");
* the adaptive detector, which re-learns the pitch at the boundary with
  no metadata at all -- the reason the paper prefers the automated
  approach.
"""

from __future__ import annotations

import zlib

from repro.core.stride import (
    StrideConfig,
    advise_strides,
    fixed_forward_transform,
    forward_transform,
)
from repro.experiments.common import ExperimentResult, scaled
from repro.experiments.fig2_stream import key_stream

__all__ = ["run", "two_variable_stream"]


def two_variable_stream(side: int = 10) -> tuple[bytes, int, int]:
    """Concatenated key streams of two variables with different pitches.

    Returns ``(stream, pitch_a, pitch_b)``.
    """
    from repro.mapreduce.keys import CellKeySerde
    from repro.core.stride.metadata import record_pitch

    a = key_stream(side, variable="windspeed1")
    b = key_stream(side, variable="t2")
    serde = CellKeySerde(ndim=3, variable_mode="name")
    return (a + b,
            record_pitch(serde, "windspeed1", 4),
            record_pitch(serde, "t2", 4))


def run(side: int | None = None) -> ExperimentResult:
    """Compare stride regimes on the two-variable stream."""
    if side is None:
        side = scaled(12, default_scale=1.0)
    data, pitch_a, pitch_b = two_variable_stream(side)

    from repro.mapreduce.keys import CellKeySerde

    serde = CellKeySerde(ndim=3, variable_mode="name")
    shape = (side, side, side)
    advice_a = advise_strides(serde, "windspeed1", 4, shape)
    advice_b = advise_strides(serde, "t2", 4, shape)

    result = ExperimentResult(
        experiment="A9",
        title=(f"two-variable stream ({len(data):,} bytes; pitches "
               f"{pitch_a} then {pitch_b})"),
        columns=["regime", "gzip_bytes"],
    )
    regimes = [
        ("first variable's metadata stride only",
         fixed_forward_transform(data, advice_a.candidates)),
        ("both variables' metadata strides",
         fixed_forward_transform(
             data, list(advice_a.candidates) + list(advice_b.candidates))),
        ("adaptive §III-A (no metadata)",
         forward_transform(data, StrideConfig(max_stride=100))),
    ]
    for label, transformed in regimes:
        result.add(regime=label,
                   gzip_bytes=len(zlib.compress(transformed, 6)))
    result.add(regime="no transform (gzip only)",
               gzip_bytes=len(zlib.compress(data, 6)))
    result.note(f"metadata pitches: windspeed1={pitch_a}, t2={pitch_b}")
    result.note("the adaptive detector needs no format knowledge and "
                "re-locks after the variable boundary -- §III's argument "
                "for the automated approach")
    return result
