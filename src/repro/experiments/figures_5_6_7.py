"""E9 -- the illustrative figures of §IV (Figs 5, 6, 7), regenerated.

* Fig 5: grouping cells into aggregate keys directly in n-D is ambiguous
  -- "the middle cell may be put in either group, and the optimal choice
  is not obvious."  We reproduce the ambiguity concretely: the same cell
  set admits rectangular decompositions of different sizes.
* Fig 6: numbering cells along a space-filling curve and collapsing
  contiguous numbers into ranges ("1-2, 7, 9-10, 13").
* Fig 7: overlapping ranges are split on the overlap boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import (
    ValueBlock,
    coalesce_indices,
    split_overlaps,
)
from repro.experiments.common import ExperimentResult
from repro.mapreduce.keys import RangeKey
from repro.sfc import ZOrderCurve

__all__ = ["run_fig5", "run_fig6", "run_fig7"]


def _axis_grouping(cells: set[tuple[int, int]], axis: int) -> int:
    """Number of aggregate keys when cells join groups along one axis.

    ``axis=0`` groups runs within rows; ``axis=1`` within columns.  The
    middle cell of Fig 5 'may be put in either group' -- equivalently,
    committing to one grouping axis fixes its membership, and the two
    commitments produce different key counts.
    """
    lines: dict[int, list[int]] = {}
    for c in cells:
        lines.setdefault(c[axis], []).append(c[1 - axis])
    count = 0
    for positions in lines.values():
        count += len(coalesce_indices(np.sort(np.asarray(positions))))
    return count


def run_fig5() -> ExperimentResult:
    """Show that direct n-D grouping is ambiguous (Fig 5)."""
    # An L-shaped region: a full top row of 3 plus a 2-cell left column.
    # Its corner cell may join the row group or the column group, and
    # the resulting key counts differ.
    cells = {(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)}
    result = ExperimentResult(
        experiment="E9/Fig5",
        title="ambiguity of direct n-D aggregation",
        columns=["grouping", "aggregate_keys"],
    )
    result.add(grouping="cells join row groups",
               aggregate_keys=_axis_grouping(cells, 0))
    result.add(grouping="cells join column groups",
               aggregate_keys=_axis_grouping(cells, 1))
    result.note("same cells, different grouping choices, different key "
                "counts -- the paper suspects optimal grouping is NP-hard")
    return result


def run_fig6() -> ExperimentResult:
    """Curve numbering + range collapse on a 4x4 grid (Fig 6)."""
    curve = ZOrderCurve(2, 2)
    # The paper's figure marks the cells whose curve numbers collapse to
    # "1-2, 7, 9-10, 13"; we mark the same curve positions (decoding them
    # to grid cells first, to exercise the full cell->index->range path).
    marked = curve.decode(np.array([1, 2, 7, 9, 10, 13]))
    indices = np.sort(curve.encode(marked))
    runs = coalesce_indices(indices)
    result = ExperimentResult(
        experiment="E9/Fig6",
        title="Z-order numbering and range collapse (Fig 6)",
        columns=["range_start", "range_count", "rendered"],
    )
    for start, count in runs:
        rendered = str(start) if count == 1 else f"{start}-{start + count - 1}"
        result.add(range_start=start, range_count=count, rendered=rendered)
    rendered_all = ", ".join(r["rendered"] for r in result.rows)
    result.note(f"collapsed: {rendered_all} (paper's example: "
                f"'1-2, 7, 9-10, 13')")
    return result


def run_fig7() -> ExperimentResult:
    """Overlap splitting (Fig 7) on the §IV-C mapper-halo example."""
    # Two neighbouring mappers' outputs overlap (the (-1,9)-(10,10) strip
    # of §IV-C); in curve-index space that is two ranges sharing a span.
    a = RangeKey("v", 0, 120)
    b = RangeKey("v", 100, 120)
    pairs = [
        (a, ValueBlock(a.count, np.arange(a.count))),
        (b, ValueBlock(b.count, np.arange(b.count) + 1000)),
    ]
    split = split_overlaps(pairs)
    result = ExperimentResult(
        experiment="E9/Fig7",
        title="overlapping ranges split on overlap boundaries (Fig 7)",
        columns=["piece", "start", "count"],
    )
    for i, (key, _) in enumerate(split):
        result.add(piece=i, start=key.start, count=key.count)
    equal_pairs = sum(
        1 for i in range(len(split)) for j in range(i + 1, len(split))
        if split[i][0] == split[j][0]
    )
    result.note(f"{len(pairs)} overlapping ranges became {len(split)} "
                f"pieces with {equal_pairs} byte-equal pair(s) that now "
                f"group together")
    return result
