"""A7 -- input locality on the simulated cluster (Fig 1 step 1).

The paper's data flow starts with "several Mappers read the input from
HDFS, each taking a portion."  How much of that read is node-local
depends on replication and scheduling, and it shifts the baseline that
both of the paper's techniques are measured against (a shuffle
optimization matters less when the map phase is input-bound).  This
ablation sweeps replication factor and scheduler locality awareness on
the paper's 5-node layout.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, fmt_bytes
from repro.mapreduce.simcluster import (
    ClusterSpec,
    MapTaskSpec,
    SimDFS,
    schedule_maps,
)

__all__ = ["run"]


def run(input_gb: float = 8.0, block_mib: int = 64,
        spec: ClusterSpec | None = None,
        replications: list[int] | None = None) -> ExperimentResult:
    """Sweep replication x scheduler awareness for one map wave."""
    if input_gb <= 0:
        raise ValueError(f"input_gb must be positive, got {input_gb}")
    spec = spec or ClusterSpec()
    replications = replications or [1, 2, 3]
    input_bytes = int(input_gb * (1 << 30))
    block_size = block_mib << 20

    result = ExperimentResult(
        experiment="A7",
        title=(f"input locality: {fmt_bytes(input_bytes)} over "
               f"{spec.nodes} nodes, {block_mib} MiB blocks"),
        columns=["replication", "scheduler", "map_makespan_s",
                 "data_local_pct"],
    )
    for replication in replications:
        dfs = SimDFS(nodes=spec.nodes, replication=replication,
                     block_size=block_size)
        blocks = dfs.write("query-input.nc", input_bytes)
        tasks = [
            MapTaskSpec(
                duration=b.size / spec.disk_bandwidth,  # local read time
                input_bytes=b.size,
                preferred_nodes=b.replicas,
            )
            for b in blocks
        ]
        for aware in [True, False]:
            sched = schedule_maps(spec, tasks, locality_aware=aware)
            result.add(
                replication=replication,
                scheduler="locality-aware" if aware else "blind",
                map_makespan_s=round(sched.makespan, 2),
                data_local_pct=round(100.0 * sched.locality_fraction, 1),
            )
    result.note("higher replication and locality awareness both raise the "
                "data-local fraction and cut the map phase")
    return result
