"""Ablation harnesses A1-A5 (design choices DESIGN.md calls out).

* A1 -- curve choice: Z-order vs Hilbert vs row-major clustering
  (§IV-A cites Moon et al.: Hilbert clusters better but costs more).
* A2 -- aggregation flush threshold (§IV-A: "the effect should be
  minimal").
* A3 -- alignment padding (§IV-C: reduce overlap splitting at the price
  of empty space).
* A4 -- detector knobs (§III-A's 5/6 hit rate, 256-byte cycle, run
  threshold 2).
* A5 -- exact §III transform vs our vectorized block predictor.
"""

from __future__ import annotations

import time
import zlib

from repro.core.stride import (
    StrideConfig,
    fast_forward_transform,
    forward_transform,
)
from repro.experiments.common import ExperimentResult, fmt_bytes, scaled
from repro.experiments.common import make_runner
from repro.mapreduce.metrics import C
from repro.queries.sliding_median import SlidingMedianQuery
from repro.scidata.generator import integer_grid, walk_grid_int32_triples
from repro.sfc import get_curve
from repro.sfc.stats import clustering_report
from repro.util.rng import make_rng

__all__ = [
    "run_curve_choice",
    "run_flush_threshold",
    "run_alignment",
    "run_detector_knobs",
    "run_exact_vs_fast",
]


def run_curve_choice(bits: int = 6, boxes: int = 50, seed: int = 5,
                     timing_points: int = 20000) -> ExperimentResult:
    """A1: clustering quality and encode cost per curve."""
    import math

    peano_levels = max(1, math.ceil(bits * math.log(2) / math.log(3)))
    curves = [get_curve(name, 2, bits) for name in
              ("zorder", "hilbert", "rowmajor")]
    curves.append(get_curve("peano", 2, peano_levels))
    side = curves[0].side
    rng = make_rng(seed)
    box_list = []
    for _ in range(boxes):
        w, h = (int(v) for v in rng.integers(2, max(3, side // 3), size=2))
        x = int(rng.integers(0, side - w))
        y = int(rng.integers(0, side - h))
        box_list.append(((x, y), (w, h)))
    stats = clustering_report(curves, box_list)

    pts = rng.integers(0, side, size=(timing_points, 2))
    result = ExperimentResult(
        experiment="A1",
        title=f"curve choice: clustering vs cost ({boxes} random boxes, "
              f"{side}x{side} grid)",
        columns=["curve", "mean_ranges", "max_ranges", "encode_us_per_point"],
    )
    result.note("peano spans the next 3^k >= 2^bits grid; boxes are shared")
    for curve, row in zip(curves, stats):
        t0 = time.perf_counter()
        curve.encode(pts)
        dt = time.perf_counter() - t0
        result.add(
            curve=row.curve_name,
            mean_ranges=round(row.mean_ranges, 2),
            max_ranges=row.max_ranges,
            encode_us_per_point=round(dt / timing_points * 1e6, 4),
        )
    result.note("paper (§IV-A, citing Moon et al.): Hilbert clusters "
                "better than Z-order but has more overhead")
    return result


def run_flush_threshold(side: int | None = None,
                        thresholds: list[int] | None = None) -> ExperimentResult:
    """A2: aggregation quality vs flush buffer size."""
    if side is None:
        side = scaled(48, default_scale=1.0)
    thresholds = thresholds or [256, 1024, 8192, 1 << 20]
    grid = integer_grid((side, side), seed=7)
    query = SlidingMedianQuery(grid, "values", window=3)
    result = ExperimentResult(
        experiment="A2",
        title=f"flush threshold vs aggregation quality ({side}x{side} "
              f"sliding median)",
        columns=["buffer_cells", "materialized", "map_output_records"],
    )
    for cells in thresholds:
        job = query.build_job("aggregate",
                              agg_overrides={"buffer_cells": cells})
        res = make_runner().run(job, grid)
        result.add(
            buffer_cells=cells,
            materialized=fmt_bytes(res.materialized_bytes),
            map_output_records=res.counters[C.MAP_OUTPUT_RECORDS],
        )
    result.note("paper §IV-A: flushing splits aggregation across buffer "
                "generations, 'but the effect should be minimal'")
    return result


def run_alignment(side: int | None = None,
                  alignments: list[int] | None = None) -> ExperimentResult:
    """A3: alignment padding vs overlap splitting and data size."""
    if side is None:
        side = scaled(48, default_scale=1.0)
    alignments = alignments or [1, 8, 32, 128]
    grid = integer_grid((side, side), seed=13)
    query = SlidingMedianQuery(grid, "values", window=3)
    result = ExperimentResult(
        experiment="A3",
        title=f"alignment padding ({side}x{side} sliding median, "
              f"4 mappers / 2 reducers)",
        columns=["alignment", "materialized", "reduce_key_splits"],
    )
    for align in alignments:
        job = query.build_job(
            "aggregate", num_map_tasks=4, num_reducers=2,
            agg_overrides={"alignment": align})
        res = make_runner().run(job, grid)
        result.add(
            alignment=align,
            materialized=fmt_bytes(res.materialized_bytes),
            reduce_key_splits=res.counters[C.KEY_SPLITS],
        )
    result.note("paper §IV-C: larger alignment makes overlapping keys "
                "equal (fewer splits) at the cost of empty space; 'no "
                "alignment is large enough to completely eliminate "
                "overlap' for sliding windows")
    return result


def run_detector_knobs(side: int | None = None) -> ExperimentResult:
    """A4: sensitivity of the §III-A detector to its constants."""
    if side is None:
        side = scaled(40, default_scale=0.75)
    data = walk_grid_int32_triples(side)
    variants: list[tuple[str, StrideConfig]] = [
        ("paper defaults", StrideConfig(max_stride=100)),
        ("hit rate 1/2", StrideConfig(max_stride=100, hit_rate_threshold=0.5)),
        ("hit rate 0.95", StrideConfig(max_stride=100, hit_rate_threshold=0.95)),
        ("cycle 64", StrideConfig(max_stride=100, selection_cycle=64)),
        ("cycle 1024", StrideConfig(max_stride=100, selection_cycle=1024)),
        ("run threshold 0", StrideConfig(max_stride=100, run_threshold=0)),
        ("run threshold 8", StrideConfig(max_stride=100, run_threshold=8)),
        ("max stride 20", StrideConfig(max_stride=20)),
    ]
    result = ExperimentResult(
        experiment="A4",
        title=f"detector knob sensitivity ({len(data):,} grid-walk bytes)",
        columns=["variant", "gzip_bytes", "time_seconds"],
    )
    for label, cfg in variants:
        t0 = time.perf_counter()
        transformed = forward_transform(data, cfg)
        dt = time.perf_counter() - t0
        result.add(
            variant=label,
            gzip_bytes=len(zlib.compress(transformed, 6)),
            time_seconds=round(dt, 3),
        )
    result.note("paper constants: hit rate 5/6, cycle 256 bytes, run "
                "threshold 2")
    return result


def run_exact_vs_fast(side: int | None = None) -> ExperimentResult:
    """A5: exact §III algorithm vs vectorized block predictor."""
    if side is None:
        side = scaled(50, default_scale=0.8)
    data = walk_grid_int32_triples(side)
    result = ExperimentResult(
        experiment="A5",
        title=f"exact vs vectorized transform ({len(data):,} bytes)",
        columns=["variant", "gzip_bytes", "time_seconds", "throughput_mib_s"],
    )
    for label, fn in [
        ("exact §III (per byte)", lambda d: forward_transform(
            d, StrideConfig(max_stride=100))),
        ("fastpred (vectorized)", lambda d: fast_forward_transform(d, 100)),
    ]:
        t0 = time.perf_counter()
        out = fn(data)
        dt = time.perf_counter() - t0
        result.add(
            variant=label,
            gzip_bytes=len(zlib.compress(out, 6)),
            time_seconds=round(dt, 3),
            throughput_mib_s=round(len(data) / dt / (1 << 20), 2),
        )
    result.note("the exact algorithm compresses better; the vectorized "
                "variant trades ratio for orders-of-magnitude throughput")
    return result
