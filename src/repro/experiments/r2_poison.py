"""R2 -- poison-safe pipeline: skipping mode, quarantine, salvage.

Not a paper figure: this is the record-level robustness analogue of R1.
Where R1 kills *processes*, R2 damages *data* -- poison user records
(Hadoop's SkipBadRecords scenario) and hostile bytes (bit flips,
truncations, splices) injected into map outputs and reduce inputs --
and checks the failure ladder lands every scenario on the right rung:

* clean runs with a :class:`~repro.mapreduce.job.SkipPolicy` attached
  stay **byte-identical** to the no-policy baseline (skipping engages
  only after a strict attempt fails: zero clean-path overhead);
* poison records are bisected out in skipping mode and **quarantined**
  -- the job completes and its output is exactly the baseline minus
  the poison records' contributions, with the loss surfaced in the
  ``records_skipped`` / ``quarantine_records`` counters;
* a flipped or spliced byte inside a *chunked* (per-block CRC) segment
  is **salvaged** around: only the damaged block's records are lost,
  and every lost record is accounted for in the quarantine side-file
  (none silently dropped, none duplicated);
* damage that destroys a whole segment (truncation past the footer) is
  **repaired** by re-running the producing map task -- output identical
  to baseline, nothing skipped;
* a skip budget too small for the damage **fails the job** -- skipping
  must never silently eat unbounded data loss;
* every scenario runs through both the serial
  :class:`~repro.mapreduce.engine.LocalJobRunner` and the parallel
  :class:`~repro.mapreduce.runtime.ParallelJobRunner`, and the two must
  agree byte-for-byte on output, counters, and quarantine contents.

A seeded fuzz tail draws random (query, fault, position) combinations
on top of the deterministic matrix; ``REPRO_R2_FUZZ`` bounds the seed
count and ``REPRO_R2_SECONDS`` the wall-clock (CI's fuzz-smoke job pins
a 60-second slice).  The bench (``benchmarks/bench_r2_poison.py``)
asserts the outcome column never reads DRIFT.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
import time

from repro.experiments.common import ExperimentResult, scaled
from repro.mapreduce.codecs import NullCodec
from repro.mapreduce.engine import LocalJobRunner
from repro.mapreduce.ifile import IFileReader
from repro.mapreduce.job import Job, SkipPolicy
from repro.mapreduce.metrics import C
from repro.mapreduce.runtime import FaultInjector, ParallelJobRunner
from repro.queries.histogram import HistogramQuery
from repro.queries.subset import BoxSubsetQuery
from repro.scidata.generator import integer_grid
from repro.scidata.slab import Slab
from repro.util.rng import make_rng

__all__ = ["run"]

#: queries the matrix and the fuzz tail draw from
_QUERIES = ("subset-plain", "subset-agg", "histogram")
#: block size for chunked-segment scenarios: small enough that the tiny
#: harness grids still produce multiple blocks per segment
_BLOCK_BYTES = 512


def _skip_budget() -> int:
    """The skip budget scenarios run under (``REPRO_SKIP_BUDGET``)."""
    return int(os.environ.get("REPRO_SKIP_BUDGET", "4096"))


def _build(grid, query: str, side: int, num_map_tasks: int,
           num_reducers: int, *, policy: SkipPolicy | None = None,
           block_bytes: int | None = None) -> Job:
    """One query job, optionally with a skip policy / chunked segments."""
    var = grid.names[0]
    if query == "subset-plain":
        box = Slab((1, 1), (side - 2, side - 2))
        job = BoxSubsetQuery(grid, var, box).build_job(
            "plain", num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    elif query == "subset-agg":
        box = Slab((1, 1), (side - 2, side - 2))
        job = BoxSubsetQuery(grid, var, box).build_job(
            "aggregate", variable_mode="index",
            num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    elif query == "histogram":
        job = HistogramQuery(grid, var, bins=16).build_job(
            "plain", num_map_tasks=num_map_tasks, num_reducers=num_reducers)
    else:  # pragma: no cover - guarded by _QUERIES
        raise ValueError(f"unknown query {query!r}")
    overrides: dict = {}
    if policy is not None:
        overrides["skipping"] = policy
    if block_bytes is not None:
        overrides["ifile_block_bytes"] = block_bytes
    return dataclasses.replace(job, **overrides) if overrides else job


def _read_quarantine(directory: str) -> list[tuple[bytes, bytes]]:
    """All quarantined records under ``directory``, in task-id order."""
    records: list[tuple[bytes, bytes]] = []
    if not os.path.isdir(directory):
        return records
    for name in sorted(os.listdir(directory)):
        if name.endswith("-quarantine"):
            records.extend(
                IFileReader(os.path.join(directory, name),
                            NullCodec()).read_all())
    return records


class _RunOutcome:
    """One runner's view of one scenario: result or failure, quarantine."""

    def __init__(self, result, error: BaseException | None,
                 quarantine: list[tuple[bytes, bytes]]) -> None:
        self.result = result
        self.error = error
        self.quarantine = quarantine

    @property
    def skipped(self) -> int:
        return (self.result.counters.get(C.RECORDS_SKIPPED)
                if self.result is not None else 0)

    @property
    def accounted(self) -> bool:
        """Quarantine file contents match the counters exactly --
        nothing silently dropped, nothing duplicated."""
        if self.result is None:
            return True
        return (len(self.quarantine)
                == self.result.counters.get(C.QUARANTINE_RECORDS))


def _run_one(runner_name: str, grid, job_factory, fault_factory,
             quarantine_root: str | None) -> _RunOutcome:
    """Run one scenario through one runner into a fresh quarantine dir."""
    if quarantine_root is not None:
        qdir = os.path.join(quarantine_root, runner_name)
        os.makedirs(qdir, exist_ok=True)
        cleanup = False
    else:
        qdir = tempfile.mkdtemp(prefix=f"repro-r2-{runner_name}-")
        cleanup = True
    try:
        job = job_factory(qdir)
        injector = fault_factory() if fault_factory is not None else None
        result, error = None, None
        try:
            if runner_name == "parallel":
                with ParallelJobRunner(
                        max_workers=2, max_retries=2, retry_backoff=0.01,
                        speculation=False,
                        fault_injector=injector) as runner:
                    result = runner.run(job, grid)
            else:
                with LocalJobRunner(fault_injector=injector) as runner:
                    result = runner.run(job, grid)
        except Exception as exc:
            error = exc
        return _RunOutcome(result, error, _read_quarantine(qdir))
    finally:
        if cleanup:
            shutil.rmtree(qdir, ignore_errors=True)


def _agree(serial: _RunOutcome, parallel: _RunOutcome) -> bool:
    """Serial and parallel must fail together or match byte-for-byte."""
    if (serial.error is None) != (parallel.error is None):
        return False
    if serial.error is not None:
        return True
    return (serial.result.output == parallel.result.output
            and serial.result.counters == parallel.result.counters
            and serial.quarantine == parallel.quarantine)


def _scenario(grid, job_factory, fault_factory,
              quarantine_root: str | None) -> tuple[_RunOutcome, _RunOutcome]:
    serial = _run_one("serial", grid, job_factory, fault_factory,
                      quarantine_root)
    parallel = _run_one("parallel", grid, job_factory, fault_factory,
                        quarantine_root)
    return serial, parallel


def run(num_fuzz: int | None = None, seconds: float | None = None,
        side: int | None = None, num_map_tasks: int = 4,
        num_reducers: int = 2) -> ExperimentResult:
    """Poison/corruption matrix plus a seeded fuzz tail, both runners.

    ``num_fuzz`` random scenarios (default 6, or ``REPRO_R2_FUZZ``)
    after the deterministic matrix; ``seconds`` (or
    ``REPRO_R2_SECONDS``) caps the fuzz tail's wall clock.  Quarantine
    side-files are written under ``REPRO_QUARANTINE_DIR`` when set
    (and left there for inspection), else throwaway temp dirs.
    """
    if num_fuzz is None:
        num_fuzz = int(os.environ.get("REPRO_R2_FUZZ", "6"))
    if seconds is None:
        raw = os.environ.get("REPRO_R2_SECONDS")
        seconds = float(raw) if raw is not None else None
    if side is None:
        side = max(8, scaled(12, default_scale=1.0))
    budget = _skip_budget()
    quarantine_root = os.environ.get("REPRO_QUARANTINE_DIR")

    grid = integer_grid((side, side), seed=7, low=0, high=500)
    baselines = {
        q: LocalJobRunner().run(
            _build(grid, q, side, num_map_tasks, num_reducers), grid)
        for q in _QUERIES
    }
    #: a map-input record inside the query box, owned by map task m00000
    poison_cell = side + 1

    result = ExperimentResult(
        experiment="R2",
        title=f"poison-safe pipeline, {side}^2 grid "
              f"({num_map_tasks} maps, {num_reducers} reducers), "
              f"skip_budget={budget}, both runners per scenario",
        columns=["scenario", "query", "fault", "skipped", "quarantined",
                 "q_bytes", "outcome"],
    )

    def policy_for(qdir: str, skip_budget: int = budget) -> SkipPolicy:
        return SkipPolicy(skip_budget=skip_budget, quarantine_dir=qdir)

    def add_row(scenario: str, query: str, fault: str,
                serial: _RunOutcome, parallel: _RunOutcome,
                outcome: str) -> None:
        result.add(
            scenario=scenario, query=query, fault=fault,
            skipped=serial.skipped,
            quarantined=len(serial.quarantine),
            q_bytes=(serial.result.counters.get(C.QUARANTINE_BYTES)
                     if serial.result is not None else 0),
            outcome=outcome,
        )

    def qroot(scenario: str, query: str) -> str | None:
        if quarantine_root is None:
            return None
        path = os.path.join(quarantine_root, f"{scenario}-{query}")
        os.makedirs(path, exist_ok=True)
        return path

    def classify(serial: _RunOutcome, parallel: _RunOutcome,
                 expect: str, baseline, lost: int | None) -> str:
        """The outcome label, or DRIFT when any invariant is broken."""
        if not _agree(serial, parallel):
            return "DRIFT"
        if expect == "failed":
            return "failed" if serial.error is not None else "DRIFT"
        if serial.error is not None:
            return "DRIFT"
        if not serial.accounted or not parallel.accounted:
            return "DRIFT"
        out = serial.result.output
        if expect == "identical":
            ok = (out == baseline.output and serial.skipped == 0
                  and serial.result.counters == baseline.counters)
            return "identical" if ok else "DRIFT"
        if expect == "repaired":
            ok = out == baseline.output and serial.skipped == 0
            return "repaired" if ok else "DRIFT"
        # skipped / salvaged: output shrinks by exactly the known loss
        if serial.skipped < 1:
            return "DRIFT"
        if lost is not None and len(out) != len(baseline.output) - lost:
            return "DRIFT"
        return expect

    # ------------------------------------------------- deterministic matrix

    for query in _QUERIES:
        serial, parallel = _scenario(
            grid,
            lambda qdir, q=query: _build(grid, q, side, num_map_tasks,
                                         num_reducers,
                                         policy=policy_for(qdir)),
            None, qroot("clean", query))
        add_row("clean", query, "none", serial, parallel,
                classify(serial, parallel, "identical",
                         baselines[query], None))

    for query in ("subset-plain", "subset-agg"):
        serial, parallel = _scenario(
            grid,
            lambda qdir, q=query: _build(grid, q, side, num_map_tasks,
                                         num_reducers,
                                         policy=policy_for(qdir)),
            lambda: FaultInjector().poison("m00000", record=poison_cell),
            qroot("poison-map", query))
        add_row("poison-map", query, f"poison m00000#{poison_cell}",
                serial, parallel,
                classify(serial, parallel, "skipped", baselines[query], 1))

    for query, lost in (("subset-plain", 1), ("histogram", 1)):
        serial, parallel = _scenario(
            grid,
            lambda qdir, q=query: _build(grid, q, side, num_map_tasks,
                                         num_reducers,
                                         policy=policy_for(qdir)),
            lambda: FaultInjector().poison("r00000", record=1),
            qroot("poison-reduce", query))
        add_row("poison-reduce", query, "poison r00000#1", serial, parallel,
                classify(serial, parallel, "skipped", baselines[query],
                         lost if query == "subset-plain" else None))

    for op, query in (("flip", "subset-plain"), ("splice", "subset-plain"),
                      ("flip", "subset-agg")):
        serial, parallel = _scenario(
            grid,
            lambda qdir, q=query: _build(grid, q, side, num_map_tasks,
                                         num_reducers,
                                         policy=policy_for(qdir),
                                         block_bytes=_BLOCK_BYTES),
            lambda o=op: FaultInjector().corrupt("m00001", op=o,
                                                 offset_frac=0.4),
            qroot(f"corrupt-{op}", query))
        lost = (serial.skipped if query == "subset-plain"
                and serial.skipped else None)
        add_row(f"corrupt-{op}", query, f"{op} m00001 out @0.4",
                serial, parallel,
                classify(serial, parallel, "salvaged",
                         baselines[query], lost))

    serial, parallel = _scenario(
        grid,
        lambda qdir: _build(grid, "subset-plain", side, num_map_tasks,
                            num_reducers, policy=policy_for(qdir),
                            block_bytes=_BLOCK_BYTES),
        lambda: FaultInjector().corrupt("r00000", where="reduce-input",
                                        op="flip", offset_frac=0.4),
        qroot("corrupt-reduce-in", "subset-plain"))
    lost = serial.skipped if serial.skipped else None
    add_row("corrupt-reduce-in", "subset-plain", "flip r00000 in @0.4",
            serial, parallel,
            classify(serial, parallel, "salvaged",
                     baselines["subset-plain"], lost))

    serial, parallel = _scenario(
        grid,
        lambda qdir: _build(grid, "subset-plain", side, num_map_tasks,
                            num_reducers, policy=policy_for(qdir),
                            block_bytes=_BLOCK_BYTES),
        lambda: FaultInjector().corrupt("m00001", op="truncate",
                                        offset_frac=0.5),
        qroot("corrupt-truncate", "subset-plain"))
    add_row("corrupt-truncate", "subset-plain", "truncate m00001 out @0.5",
            serial, parallel,
            classify(serial, parallel, "repaired",
                     baselines["subset-plain"], None))

    serial, parallel = _scenario(
        grid,
        lambda qdir: _build(grid, "subset-plain", side, num_map_tasks,
                            num_reducers,
                            policy=policy_for(qdir, skip_budget=1),
                            block_bytes=_BLOCK_BYTES),
        lambda: FaultInjector().corrupt("m00001", op="flip",
                                        offset_frac=0.4),
        qroot("budget", "subset-plain"))
    add_row("budget", "subset-plain", "flip, skip_budget=1",
            serial, parallel,
            classify(serial, parallel, "failed",
                     baselines["subset-plain"], None))

    serial, parallel = _scenario(
        grid,
        lambda qdir: _build(grid, "histogram", side, num_map_tasks,
                            num_reducers, policy=policy_for(qdir)),
        lambda: FaultInjector().poison("m00000", record=poison_cell),
        qroot("poison-map-unsupported", "histogram"))
    add_row("poison-map-unsupported", "histogram",
            f"poison m00000#{poison_cell} (no map_range)",
            serial, parallel,
            classify(serial, parallel, "failed",
                     baselines["histogram"], None))

    # ------------------------------------------------------------ fuzz tail

    started = time.monotonic()
    fuzz_ran = 0
    cells_per_split = (side * side) // num_map_tasks
    for seed in range(num_fuzz):
        if seconds is not None and time.monotonic() - started > seconds:
            break
        rng = make_rng(1000 + seed)
        query = _QUERIES[int(rng.integers(0, len(_QUERIES)))]
        kinds = ["poison-reduce", "corrupt"]
        if query != "histogram":
            kinds.append("poison-map")
        kind = kinds[int(rng.integers(0, len(kinds)))]
        block_bytes = None
        if kind == "poison-map":
            task = f"m{int(rng.integers(0, num_map_tasks)):05d}"
            record = int(rng.integers(0, cells_per_split))
            desc = f"poison {task}#{record}"
            fault_factory = (lambda t=task, r=record:
                             FaultInjector().poison(t, record=r))
        elif kind == "poison-reduce":
            task = f"r{int(rng.integers(0, num_reducers)):05d}"
            record = int(rng.integers(0, 8))
            desc = f"poison {task}#{record}"
            fault_factory = (lambda t=task, r=record:
                             FaultInjector().poison(t, record=r))
        else:
            block_bytes = _BLOCK_BYTES
            op = ("flip", "splice", "truncate")[int(rng.integers(0, 3))]
            where = ("map-output", "reduce-input")[int(rng.integers(0, 2))]
            if where == "map-output":
                task = f"m{int(rng.integers(0, num_map_tasks)):05d}"
            else:
                task = f"r{int(rng.integers(0, num_reducers)):05d}"
            frac = 0.15 + 0.7 * float(rng.random())
            desc = f"{op} {task} {where} @{frac:.2f}"
            fault_factory = (lambda t=task, w=where, o=op, f=frac:
                             FaultInjector().corrupt(t, where=w, op=o,
                                                     offset_frac=f))
        serial, parallel = _scenario(
            grid,
            lambda qdir, q=query, b=block_bytes: _build(
                grid, q, side, num_map_tasks, num_reducers,
                policy=policy_for(qdir), block_bytes=b),
            fault_factory, qroot(f"fuzz{seed}", query))
        agree = (_agree(serial, parallel) and serial.accounted
                 and parallel.accounted)
        if serial.error is not None:
            outcome = "agree-failed" if agree else "DRIFT"
        else:
            outcome = "agree" if agree else "DRIFT"
        add_row(f"fuzz{seed}", query, desc, serial, parallel, outcome)
        fuzz_ran += 1

    n_drift = sum(1 for v in result.column("outcome") if v == "DRIFT")
    result.note(f"{len(result.rows) - fuzz_ran} deterministic scenarios + "
                f"{fuzz_ran}/{num_fuzz} fuzz seeds; {n_drift} DRIFT rows "
                f"(must be 0); every scenario ran through both runners and "
                f"must agree on output, counters, and quarantine bytes")
    result.note("ladder: strict attempt -> repair whole-segment damage -> "
                "record-level skipping (bisect poison, salvage corrupt "
                "blocks) -> quarantine side-file, bounded by the skip "
                "budget; clean runs with a SkipPolicy attached are "
                "byte-identical to the no-policy baseline")
    if seconds is not None and fuzz_ran < num_fuzz:
        result.note(f"fuzz tail truncated by REPRO_R2_SECONDS={seconds:g} "
                    f"after {fuzz_ran} seeds")
    return result
