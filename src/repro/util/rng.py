"""Deterministic random-number helpers.

Every workload generator takes a seed so that benchmark rows are
reproducible run-to-run; all randomness flows through
:func:`make_rng` so there is exactly one convention in the codebase.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng"]

_DEFAULT_SEED = 0x5C1_44D0_0  # "SciHadoop", loosely


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded deterministically.

    ``None`` selects the project-wide default seed (NOT entropy): repeated
    calls with the same argument always produce identical streams.
    """
    return np.random.default_rng(_DEFAULT_SEED if seed is None else seed)
