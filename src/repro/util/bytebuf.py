"""Growable byte buffers and chunked readers.

Serializers in :mod:`repro.mapreduce` append into a :class:`ByteBuffer`
instead of concatenating ``bytes`` objects (quadratic); codecs and the
stride transform consume input through :class:`ChunkReader` so that
arbitrarily large intermediate files stream with constant memory, matching
the paper's requirement that all shuffle-path algorithms be streaming
(§IV-D: "the aggregation and sort/merge/split code is all based on
streaming algorithms").
"""

from __future__ import annotations

from typing import BinaryIO, Iterator

__all__ = ["ByteBuffer", "ChunkReader"]


class ByteBuffer:
    """A growable byte buffer with explicit position accounting.

    Thin convenience wrapper over :class:`bytearray` that tracks how many
    bytes have been appended, which the IFile writer uses for record
    offsets and spill thresholds.
    """

    __slots__ = ("_data",)

    def __init__(self, initial: bytes | bytearray | None = None) -> None:
        self._data = bytearray(initial or b"")

    def __len__(self) -> int:
        return len(self._data)

    def write(self, chunk: bytes | bytearray | memoryview) -> int:
        """Append ``chunk``; return number of bytes written."""
        self._data.extend(chunk)
        return len(chunk)

    def write_byte(self, b: int) -> None:
        """Append a single byte value in ``[0, 255]``."""
        self._data.append(b)

    @property
    def raw(self) -> bytearray:
        """The underlying mutable storage (no copy)."""
        return self._data

    def getvalue(self) -> bytes:
        """An immutable snapshot of the contents."""
        return bytes(self._data)

    def clear(self) -> None:
        """Discard all contents, retaining the allocation."""
        self._data.clear()

    def view(self) -> memoryview:
        """A zero-copy read-only view of the contents."""
        return memoryview(self._data).toreadonly()


class ChunkReader:
    """Iterate a binary stream (or in-memory bytes) in fixed-size chunks.

    The stride codec processes its input one chunk at a time; this adapter
    lets the same code path serve file handles and in-memory buffers.
    """

    def __init__(self, source: bytes | bytearray | memoryview | BinaryIO,
                 chunk_size: int = 1 << 16) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self._source = source
        self.chunk_size = chunk_size

    def __iter__(self) -> Iterator[bytes]:
        src = self._source
        if isinstance(src, (bytes, bytearray, memoryview)):
            data = memoryview(src)
            for off in range(0, len(data), self.chunk_size):
                yield bytes(data[off:off + self.chunk_size])
            return
        while True:
            chunk = src.read(self.chunk_size)
            if not chunk:
                return
            yield chunk
