"""Structured decode-failure hierarchy for the whole byte pipeline.

Every hand-rolled decoder in this repo -- varints, Writable serdes, key
serdes, IFile framing, the stride codec backends -- parses hostile
bytes: a truncated spill, a bit-flipped shuffle segment, a fuzzed
stream.  Before this module they leaked whatever the underlying
primitive happened to raise (``struct.error``, ``IndexError``,
``zlib.error``) or, worse, returned garbage silently.  Now they raise
one common :class:`CorruptRecordError` family that carries *where* the
decode failed (stream offset, record index, file path), which is what
lets the skipping runtime (:mod:`repro.mapreduce.runtime.skipping`)
quarantine exactly the poisoned bytes instead of failing the task.

All classes subclass :class:`ValueError`, so pre-existing callers that
caught ``ValueError`` keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "CorruptRecordError",
    "TruncatedRecordError",
    "MalformedRecordError",
    "CorruptStreamError",
]


class CorruptRecordError(ValueError):
    """A record (or stream) failed to decode from its byte form.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    offset:
        Byte offset into the stream being decoded, when known.
    record_index:
        Zero-based index of the record being decoded, when known.
    path:
        File the stream was read from, when it came from disk.
    """

    def __init__(self, message: str, *, offset: int | None = None,
                 record_index: int | None = None,
                 path: str | None = None) -> None:
        context = []
        if record_index is not None:
            context.append(f"record {record_index}")
        if offset is not None:
            context.append(f"offset {offset}")
        if path is not None:
            context.append(path)
        if context:
            message = f"{message} ({', '.join(context)})"
        super().__init__(message)
        self.offset = offset
        self.record_index = record_index
        self.path = path


class TruncatedRecordError(CorruptRecordError):
    """The stream ended mid-record: a length field points past EOF, a
    varint is cut short, or a fixed-width field has too few bytes."""


class MalformedRecordError(CorruptRecordError):
    """The bytes are structurally invalid (negative length, bad frame,
    impossible field value) rather than merely cut short."""


class CorruptStreamError(CorruptRecordError):
    """A whole compressed stream failed to decode (codec backend error
    such as ``zlib.error``), so no record boundary can be attributed."""
