"""Durable file I/O primitives: fsync-backed atomic writes.

``os.replace`` makes a write *atomic* (readers see the old file or the
new one, never a mix) but not *durable*: after a crash the filesystem
may replay the rename without the data, surfacing an empty or truncated
committed file.  Every commit point in the runtime -- IFile segments,
worker result files, job manifests -- goes through these helpers so the
rename target is valid even if the host dies mid-write:

1. write the payload to a sibling temp file,
2. ``fsync`` the temp file (data hits the platter before the rename),
3. ``os.replace`` onto the final name,
4. ``fsync`` the containing directory (the rename itself is durable).
"""

from __future__ import annotations

import os

__all__ = ["fsync_file", "fsync_dir", "atomic_write_bytes", "replace_durably"]


def fsync_file(fh) -> None:
    """Flush and fsync an open file object."""
    fh.flush()
    os.fsync(fh.fileno())


def fsync_dir(path: str) -> None:
    """fsync a directory so a rename inside it survives a crash.

    Best-effort: some filesystems refuse O_RDONLY opens of directories;
    a failure to fsync the directory never breaks the write itself.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystem
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - exotic filesystem
        pass
    finally:
        os.close(fd)


def replace_durably(tmp_path: str, final_path: str) -> None:
    """``os.replace`` plus a directory fsync of the rename target."""
    os.replace(tmp_path, final_path)
    fsync_dir(os.path.dirname(final_path) or ".")


def atomic_write_bytes(path: str, blob: bytes) -> None:
    """Durably commit ``blob`` at ``path`` (tmp + fsync + rename)."""
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fsync_file(fh)
    replace_durably(tmp, path)
