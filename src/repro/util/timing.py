"""CPU-time accounting used to cost the shuffle path.

The cluster simulator (§2 of DESIGN.md) turns measured per-task CPU
seconds and byte counts into a simulated wall clock.  Two small pieces:

* :class:`Stopwatch` -- measure a code region with ``time.perf_counter``.
* :class:`CostClock` -- accumulate named cost categories (``map``,
  ``codec``, ``sort`` ...) so a task can report where its CPU went; this is
  how we reproduce the paper's observation that the stride transform costs
  roughly 2.9x gzip and therefore *increases* total runtime (§III-E)
  despite shrinking the data.
* :class:`Deadline` / :func:`wait_until` -- monotonic-clock deadline
  arithmetic and condition polling for the runtime's wait loops, so
  "wait for X or time out" is written once instead of as ad-hoc
  ``time.sleep`` loops that drift under CI load.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["Stopwatch", "CostClock", "Deadline", "wait_until"]


class Stopwatch:
    """Accumulating stopwatch over ``time.perf_counter``."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def start(self) -> "Stopwatch":
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    @contextmanager
    def running(self) -> Iterator["Stopwatch"]:
        self.start()
        try:
            yield self
        finally:
            self.stop()


class CostClock:
    """Accumulate CPU seconds per named category.

    >>> clock = CostClock()
    >>> with clock.measure("codec"):
    ...     pass
    >>> clock.total() >= 0.0
    True
    """

    def __init__(self) -> None:
        self._costs: dict[str, float] = defaultdict(float)

    @contextmanager
    def measure(self, category: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self._costs[category] += time.perf_counter() - start

    def add(self, category: str, seconds: float) -> None:
        """Directly charge ``seconds`` to ``category``."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self._costs[category] += seconds

    def get(self, category: str) -> float:
        return self._costs.get(category, 0.0)

    def total(self) -> float:
        return sum(self._costs.values())

    def as_dict(self) -> dict[str, float]:
        return dict(self._costs)

    def merge(self, other: "CostClock") -> None:
        """Fold another clock's categories into this one."""
        for category, seconds in other._costs.items():
            self._costs[category] += seconds


class Deadline:
    """A wall-clock budget anchored to ``time.monotonic``.

    ``Deadline(None)`` never expires, so callers can thread an optional
    timeout through without branching on ``None`` at every check.
    """

    def __init__(self, seconds: float | None) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError(f"deadline must be >= 0, got {seconds}")
        self.seconds = seconds
        self._expires = (None if seconds is None
                         else time.monotonic() + seconds)

    def remaining(self) -> float | None:
        """Seconds left (>= 0.0), or ``None`` for a boundless deadline."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - time.monotonic())

    def expired(self) -> bool:
        return self._expires is not None and time.monotonic() >= self._expires

    def sleep(self, seconds: float) -> None:
        """Sleep ``seconds``, but never past the deadline."""
        remaining = self.remaining()
        wait = seconds if remaining is None else min(seconds, remaining)
        if wait > 0:
            time.sleep(wait)


def wait_until(predicate: Callable[[], bool], timeout: float | None,
               interval: float = 0.01) -> bool:
    """Poll ``predicate`` until it holds or ``timeout`` elapses.

    Returns the predicate's final value, so callers distinguish "became
    true" from "gave up".  The predicate is always evaluated at least
    once, and once more right at expiry -- a condition that becomes true
    during the final sleep is not missed.
    """
    deadline = Deadline(timeout)
    while True:
        if predicate():
            return True
        if deadline.expired():
            return predicate()
        deadline.sleep(interval)
