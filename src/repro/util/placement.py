"""The one stable placement hash for the simulated cluster.

Task homing (:func:`repro.mapreduce.runtime.hosts.host_for`) and
segment-server spreading (``ShuffleService.server_index``) must agree on
where an id lands: host *k* and segment server *k* are one failure
domain precisely because both sides bucket with the same function.
Keeping the hash here -- instead of two inlined ``crc32(id) % n``
expressions -- makes that agreement structural: there is nothing left
to silently diverge.

The hash must be **stable across processes and Python versions**
(``hash()`` is salted per process), cheap, and uniform enough to spread
a handful of ids over a handful of buckets; CRC32 of the UTF-8 id is
all of that.
"""

from __future__ import annotations

import zlib

__all__ = ["placement_index"]


def placement_index(key: str, num_buckets: int) -> int:
    """Bucket for ``key`` among ``num_buckets`` placement targets.

    The single source of truth for both task->host homing and
    map->segment-server spreading; with equal bucket counts the two
    placements coincide by construction.
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
    return zlib.crc32(key.encode("utf-8")) % num_buckets
