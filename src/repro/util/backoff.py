"""Capped exponential backoff with deterministic jitter.

One shared helper for every retry loop in the runtime (the scheduler's
task retries and the shuffle fetcher's per-segment retries), so the two
cannot drift apart in policy.  Two properties matter:

* **Capped** -- ``base * 2**(failures-1)`` grows without bound; a task
  that fails a handful of times must not sleep for minutes.  The delay
  saturates at ``cap``.
* **Deterministic jitter** -- naive exponential backoff synchronizes
  retries (every failed fetch of a wave retries at the same instant,
  re-creating the contention that failed them).  Real systems add
  random jitter; randomness would break the byte-identical-reruns
  guarantee the equivalence tests pin down, so the jitter here is a
  *hash* of a caller-supplied key: uniformly spread across retriers,
  identical across reruns.
"""

from __future__ import annotations

import zlib

__all__ = ["backoff_delay"]

#: jitter multiplies the capped delay by a factor in [JITTER_FLOOR, 1.0]
JITTER_FLOOR = 0.5


def backoff_delay(base: float, failures: int, cap: float,
                  key: str = "") -> float:
    """Delay in seconds before retry number ``failures`` (1-based).

    ``base * 2**(failures-1)``, saturated at ``cap``, then scaled by a
    deterministic jitter factor in ``[0.5, 1.0]`` derived from hashing
    ``(key, failures)``.  ``base <= 0`` or ``failures <= 0`` yields 0.0
    (retry immediately); ``cap`` must be >= 0.
    """
    if base < 0:
        raise ValueError(f"base must be >= 0, got {base}")
    if cap < 0:
        raise ValueError(f"cap must be >= 0, got {cap}")
    if base == 0 or failures <= 0:
        return 0.0
    # min() before the jitter so the cap is a true upper bound; the
    # exponent is clamped so huge failure counts cannot overflow floats.
    raw = base * (2.0 ** min(failures - 1, 62))
    capped = min(raw, cap)
    seed = zlib.crc32(f"{key}:{failures}".encode("utf-8"))
    factor = JITTER_FLOOR + (1.0 - JITTER_FLOOR) * (seed / 0xFFFFFFFF)
    return capped * factor
