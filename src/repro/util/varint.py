"""Hadoop ``WritableUtils`` compatible variable-length integers.

Hadoop's intermediate file format (IFile) frames every record with two
varints: the key length and the value length.  The encoding is the one
implemented by ``org.apache.hadoop.io.WritableUtils.writeVInt``:

* values in ``[-112, 127]`` are stored in a single byte;
* otherwise the first byte encodes the sign and the number of trailing
  bytes, followed by the magnitude big-endian.

The paper's byte counts (e.g. the 26,000,006-byte intermediate file in the
introduction) arise from this exact framing, so we reproduce it faithfully
rather than using a simpler LEB128 scheme.
"""

from __future__ import annotations

from repro.util.errors import TruncatedRecordError

__all__ = ["write_vlong", "write_vint", "read_vlong", "read_vint", "vint_size"]


def write_vlong(value: int, out: bytearray) -> int:
    """Append the varint encoding of ``value`` to ``out``.

    Returns the number of bytes written.  Accepts any signed 64-bit value.
    """
    if -112 <= value <= 127:
        out.append(value & 0xFF)
        return 1
    length = -112
    if value < 0:
        value = ~value  # take one's complement, matching Hadoop
        length = -120
    tmp = value
    while tmp != 0:
        tmp >>= 8
        length -= 1
    out.append(length & 0xFF)
    nbytes = -(length + 120) if length < -120 else -(length + 112)
    for idx in range(nbytes - 1, -1, -1):
        out.append((value >> (8 * idx)) & 0xFF)
    return 1 + nbytes


def write_vint(value: int, out: bytearray) -> int:
    """Append a varint-encoded 32-bit signed integer.  Alias of vlong."""
    return write_vlong(value, out)


def _decode_first(first: int) -> tuple[bool, int]:
    """Return ``(negative, trailing_byte_count)`` for a leading varint byte."""
    if first >= 0x80:
        first -= 0x100  # interpret as signed byte
    if first >= -112:
        return False, 0
    if first >= -120:
        return False, -(first + 112)
    return True, -(first + 120)


def read_vlong(buf: bytes | bytearray | memoryview, offset: int = 0) -> tuple[int, int]:
    """Decode a varint starting at ``offset``.

    Returns ``(value, next_offset)``.  Raises
    :class:`~repro.util.errors.TruncatedRecordError` (a ``ValueError``)
    carrying the failing offset if the buffer is truncated mid-varint.
    """
    if offset >= len(buf):
        raise TruncatedRecordError("varint read past end of buffer",
                                   offset=offset)
    first = buf[offset]
    negative, nbytes = _decode_first(first)
    if nbytes == 0:
        value = first if first < 0x80 else first - 0x100
        return value, offset + 1
    end = offset + 1 + nbytes
    if end > len(buf):
        raise TruncatedRecordError("truncated varint", offset=offset)
    value = 0
    for i in range(offset + 1, end):
        value = (value << 8) | buf[i]
    if negative:
        value = ~value
    return value, end


def read_vint(buf: bytes | bytearray | memoryview, offset: int = 0) -> tuple[int, int]:
    """Decode a varint-encoded 32-bit signed integer.  Alias of vlong."""
    return read_vlong(buf, offset)


def vint_size(value: int) -> int:
    """Number of bytes :func:`write_vlong` would emit for ``value``."""
    if -112 <= value <= 127:
        return 1
    if value < 0:
        value = ~value
    nbytes = 0
    while value != 0:
        value >>= 8
        nbytes += 1
    return 1 + nbytes
