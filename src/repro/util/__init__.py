"""Low-level utilities shared by every subsystem.

This package hosts the byte-level plumbing that the rest of the
reproduction builds on:

* :mod:`repro.util.varint` -- Hadoop ``WritableUtils``-compatible
  variable-length integer encoding (the framing used by the IFile
  intermediate format).
* :mod:`repro.util.bytebuf` -- growable byte buffers and chunked stream
  adapters used by serializers and codecs.
* :mod:`repro.util.timing` -- lightweight CPU accounting used to attribute
  codec/transform cost in the cluster simulator.
* :mod:`repro.util.rng` -- deterministic random-number helpers so every
  experiment is reproducible bit-for-bit.
"""

from repro.util.varint import (
    read_vint,
    read_vlong,
    vint_size,
    write_vint,
    write_vlong,
)
from repro.util.bytebuf import ByteBuffer, ChunkReader
from repro.util.timing import CostClock, Stopwatch
from repro.util.rng import make_rng

__all__ = [
    "read_vint",
    "read_vlong",
    "vint_size",
    "write_vint",
    "write_vlong",
    "ByteBuffer",
    "ChunkReader",
    "CostClock",
    "Stopwatch",
    "make_rng",
]
