"""Writable-style serializers.

Hadoop assumption (b) in §II-B: "Keys are serialized (converted to byte
representation) immediately when output from a Mapper."  Our engine keeps
that behaviour -- every emitted record is serialized to bytes on the spot
-- so the intermediate byte counts match Hadoop's record-at-a-time model.

Serialized integers use *order-preserving big-endian* (sign bit flipped)
so that sorting raw key bytes equals sorting semantically; Hadoop achieves
the same with per-type raw comparators.  Sizes match Hadoop's Writables
(int32 = 4 bytes, Text = vint length + UTF-8 bytes), which is what the
paper's byte arithmetic depends on.

Fixed-width serdes additionally support a *columnar* contract used by the
engine's batched record pipeline: :meth:`Serde.pack_batch` serializes a
whole value column into one contiguous blob and :meth:`Serde.read_batch` /
:meth:`Serde.read_column` decode a run of values in one numpy pass.  Both
are byte-for-byte (and object-for-object) equivalent to looping the scalar
:meth:`Serde.write` / :meth:`Serde.read` -- the engine's A/B equivalence
suite pins that down.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from repro.util.errors import MalformedRecordError, TruncatedRecordError
from repro.util.varint import read_vlong, write_vlong

__all__ = [
    "Serde",
    "Int32Serde",
    "Int64Serde",
    "Float32Serde",
    "Float64Serde",
    "TextSerde",
    "BytesSerde",
    "ValueBlockSerde",
]

_I32 = struct.Struct(">I")
_I64 = struct.Struct(">Q")
_F32 = struct.Struct(">f")
_F64 = struct.Struct(">d")


def _unpack_fixed(st: struct.Struct, buf: memoryview | bytes, offset: int) -> Any:
    """Unpack one fixed-width field; structured error on short buffers.

    ``struct.unpack_from`` raises a raw ``struct.error`` when the buffer
    ends mid-field -- surface it as
    :class:`~repro.util.errors.TruncatedRecordError` with the offset so
    hostile bytes fail the same way everywhere.
    """
    try:
        return st.unpack_from(buf, offset)[0]
    except struct.error as exc:
        raise TruncatedRecordError(
            f"truncated {st.size}-byte field", offset=offset
        ) from exc


class Serde(ABC):
    """Bidirectional object <-> bytes converter for one record field."""

    @abstractmethod
    def write(self, obj: Any, out: bytearray) -> None:
        """Append the serialized form of ``obj`` to ``out``."""

    @abstractmethod
    def read(self, buf: memoryview | bytes, offset: int) -> tuple[Any, int]:
        """Decode one object at ``offset``; return ``(obj, next_offset)``."""

    def to_bytes(self, obj: Any) -> bytes:
        out = bytearray()
        self.write(obj, out)
        return bytes(out)

    def from_bytes(self, data: bytes | memoryview) -> Any:
        obj, end = self.read(data, 0)
        if end != len(data):
            raise MalformedRecordError(
                f"{end - len(data)} trailing bytes after decode", offset=end
            )
        return obj

    # -- columnar (batched) contract ---------------------------------------
    #
    # The defaults below fall back to the scalar methods, so every serde
    # supports the batched calls; fixed-width serdes override them with
    # single-numpy-pass implementations.  All overrides MUST produce the
    # same bytes / Python objects as the scalar loop.

    def pack_batch(self, values: Any) -> bytes:
        """Serialize a column of ``n`` objects into one contiguous blob.

        ``values`` is a sequence (or array) of objects; for multi-field
        serdes a 2-D ``(n, nfields)`` array is accepted, one row per
        object.
        """
        out = bytearray()
        for v in values:
            self.write(v, out)
        return bytes(out)

    def read_column(self, buf: bytes | bytearray | memoryview, count: int) -> list:
        """Decode ``count`` consecutive objects packed in ``buf``."""
        out = []
        offset = 0
        for index in range(count):
            try:
                obj, offset = self.read(buf, offset)
            except MalformedRecordError:
                raise
            except TruncatedRecordError as exc:
                raise TruncatedRecordError(
                    "truncated packed column",
                    offset=exc.offset if exc.offset is not None else offset,
                    record_index=index,
                ) from exc
            out.append(obj)
        if offset != len(buf):
            raise MalformedRecordError(
                f"{len(buf) - offset} trailing bytes after decode",
                offset=offset,
            )
        return out

    def read_batch(self, blobs: Sequence[bytes]) -> list:
        """Decode one object from each blob (a reduce group's values)."""
        size = getattr(self, "SIZE", None)
        if size is not None and blobs:
            cat = b"".join(blobs)
            if len(cat) == size * len(blobs):
                return self.read_column(cat, len(blobs))
        return [self.from_bytes(b) for b in blobs]


def _check_column(buf: Any, count: int, size: int) -> None:
    """Reject a packed column whose byte length does not match ``count``."""
    nbytes = memoryview(buf).nbytes
    if nbytes != count * size:
        raise MalformedRecordError(
            f"packed column is {nbytes} bytes, expected {count}x{size}"
        )


def _int_column(values: Any, width: int) -> np.ndarray:
    """Validated int64 column for an order-preserving intN pack."""
    arr = np.asarray(values)
    if arr.dtype.kind not in "iufb" or arr.ndim != 1:
        raise TypeError(
            f"expected a 1-D numeric column, got {arr.dtype} shape {arr.shape}"
        )
    arr = arr.astype(np.int64)  # int(obj) semantics: floats truncate to zero
    half = 1 << (8 * width - 1)
    if arr.size and (arr.min() < -half or arr.max() >= half):
        raise ValueError(f"int{8 * width} out of range")
    return arr


def _float_column(values: Any) -> np.ndarray:
    arr = np.asarray(values)
    if arr.dtype.kind not in "iufb" or arr.ndim != 1:
        raise TypeError(
            f"expected a 1-D numeric column, got {arr.dtype} shape {arr.shape}"
        )
    return arr


class Int32Serde(Serde):
    """Order-preserving big-endian signed 32-bit integer (4 bytes)."""

    SIZE = 4

    def write(self, obj: Any, out: bytearray) -> None:
        value = int(obj)
        if not -(1 << 31) <= value < (1 << 31):
            raise ValueError(f"int32 out of range: {value}")
        out.extend(_I32.pack((value + (1 << 31)) & 0xFFFFFFFF))

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[int, int]:
        raw = _unpack_fixed(_I32, buf, offset)
        return raw - (1 << 31), offset + 4

    def pack_batch(self, values: Any) -> bytes:
        arr = _int_column(values, 4)
        return (((arr + (1 << 31)) & 0xFFFFFFFF).astype(">u4")).tobytes()

    def read_column(self, buf, count: int) -> list:
        _check_column(buf, count, self.SIZE)
        raw = np.frombuffer(buf, dtype=">u4", count=count)
        return (raw.astype(np.int64) - (1 << 31)).tolist()


class Int64Serde(Serde):
    """Order-preserving big-endian signed 64-bit integer (8 bytes)."""

    SIZE = 8

    def write(self, obj: Any, out: bytearray) -> None:
        value = int(obj)
        if not -(1 << 63) <= value < (1 << 63):
            raise ValueError(f"int64 out of range: {value}")
        out.extend(_I64.pack((value + (1 << 63)) & 0xFFFFFFFFFFFFFFFF))

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[int, int]:
        raw = _unpack_fixed(_I64, buf, offset)
        return raw - (1 << 63), offset + 8

    def pack_batch(self, values: Any) -> bytes:
        arr = _int_column(values, 8)
        # uint64 arithmetic wraps correctly for the 64-bit sign-bit bias
        return (arr.astype(np.uint64) + np.uint64(1 << 63)).astype(">u8").tobytes()

    def read_column(self, buf, count: int) -> list:
        _check_column(buf, count, self.SIZE)
        raw = np.frombuffer(buf, dtype=">u8", count=count).astype(np.uint64)
        return (raw ^ np.uint64(1 << 63)).view(np.int64).tolist()


class Float32Serde(Serde):
    """IEEE-754 single precision, big-endian (4 bytes, Hadoop FloatWritable)."""

    SIZE = 4

    def write(self, obj: Any, out: bytearray) -> None:
        out.extend(_F32.pack(float(obj)))

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[float, int]:
        return _unpack_fixed(_F32, buf, offset), offset + 4

    def pack_batch(self, values: Any) -> bytes:
        return _float_column(values).astype(">f4").tobytes()

    def read_column(self, buf, count: int) -> list:
        _check_column(buf, count, self.SIZE)
        return np.frombuffer(buf, dtype=">f4", count=count).astype(np.float64).tolist()


class Float64Serde(Serde):
    """IEEE-754 double precision, big-endian (8 bytes, DoubleWritable)."""

    SIZE = 8

    def write(self, obj: Any, out: bytearray) -> None:
        out.extend(_F64.pack(float(obj)))

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[float, int]:
        return _unpack_fixed(_F64, buf, offset), offset + 8

    def pack_batch(self, values: Any) -> bytes:
        return _float_column(values).astype(">f8").tobytes()

    def read_column(self, buf, count: int) -> list:
        _check_column(buf, count, self.SIZE)
        return np.frombuffer(buf, dtype=">f8", count=count).tolist()


class TextSerde(Serde):
    """Hadoop ``Text``: vint byte length followed by UTF-8 bytes.

    ``"windspeed1"`` serializes to 11 bytes (1 length byte + 10 chars),
    which is one term in the paper's 27-byte key (§I, key/value = 6.75).
    """

    def write(self, obj: Any, out: bytearray) -> None:
        data = str(obj).encode("utf-8")
        write_vlong(len(data), out)
        out.extend(data)

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[str, int]:
        length, offset = read_vlong(buf, offset)
        if length < 0:
            raise MalformedRecordError(f"bad Text length {length}",
                                       offset=offset)
        if offset + length > len(buf):
            raise TruncatedRecordError(f"bad Text length {length}",
                                       offset=offset)
        try:
            text = bytes(buf[offset:offset + length]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MalformedRecordError(f"invalid UTF-8 in Text: {exc}",
                                       offset=offset) from exc
        return text, offset + length


class BytesSerde(Serde):
    """Length-prefixed raw bytes (Hadoop BytesWritable, vint length).

    Decoding is zero-copy when handed a :class:`memoryview`: the returned
    payload is a sub-view of the input buffer (read-only views of ``bytes``
    hash and compare like ``bytes``, so callers can use them
    interchangeably).  ``bytes`` input still returns ``bytes`` -- slicing
    an immutable buffer is the only way to get an independent object.
    """

    def write(self, obj: Any, out: bytearray) -> None:
        data = bytes(obj)
        write_vlong(len(data), out)
        out.extend(data)

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[bytes, int]:
        length, offset = read_vlong(buf, offset)
        if length < 0:
            raise MalformedRecordError(f"bad bytes length {length}",
                                       offset=offset)
        if offset + length > len(buf):
            raise TruncatedRecordError(f"bad bytes length {length}",
                                       offset=offset)
        if isinstance(buf, memoryview):
            return buf[offset:offset + length], offset + length
        return bytes(buf[offset:offset + length]), offset + length


class ValueBlockSerde(Serde):
    """A packed array of same-typed values (the aggregate-key payload).

    Key aggregation (§IV) relies on "values stored in order": one aggregate
    key carries a dense block of values for consecutive curve indices.  The
    wire form is a vint count followed by the raw little-endian array --
    count * itemsize bytes, zero per-value overhead, which is where most
    of Fig 8's savings come from.
    """

    def __init__(self, dtype: np.dtype | str) -> None:
        self.dtype = np.dtype(dtype).newbyteorder("<")
        if self.dtype.itemsize == 0:
            raise ValueError(f"dtype {dtype!r} has zero itemsize")

    def write(self, obj: Any, out: bytearray) -> None:
        arr = np.ascontiguousarray(obj, dtype=self.dtype)
        if arr.ndim != 1:
            raise ValueError(f"value block must be 1-D, got shape {arr.shape}")
        write_vlong(arr.shape[0], out)
        out.extend(arr.tobytes())

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[np.ndarray, int]:
        count, offset = read_vlong(buf, offset)
        if count < 0:
            raise MalformedRecordError(f"bad block count {count}",
                                       offset=offset)
        nbytes = count * self.dtype.itemsize
        if offset + nbytes > len(buf):
            raise TruncatedRecordError("truncated value block", offset=offset)
        # Zero-copy: the array is a view over the caller's buffer (bytes
        # or memoryview), not a slice copy.
        arr = np.frombuffer(buf, dtype=self.dtype, count=count, offset=offset)
        return arr, offset + nbytes
