"""Writable-style serializers.

Hadoop assumption (b) in §II-B: "Keys are serialized (converted to byte
representation) immediately when output from a Mapper."  Our engine keeps
that behaviour -- every emitted record is serialized to bytes on the spot
-- so the intermediate byte counts match Hadoop's record-at-a-time model.

Serialized integers use *order-preserving big-endian* (sign bit flipped)
so that sorting raw key bytes equals sorting semantically; Hadoop achieves
the same with per-type raw comparators.  Sizes match Hadoop's Writables
(int32 = 4 bytes, Text = vint length + UTF-8 bytes), which is what the
paper's byte arithmetic depends on.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.util.varint import read_vlong, write_vlong

__all__ = [
    "Serde",
    "Int32Serde",
    "Int64Serde",
    "Float32Serde",
    "Float64Serde",
    "TextSerde",
    "BytesSerde",
    "ValueBlockSerde",
]

_I32 = struct.Struct(">I")
_I64 = struct.Struct(">Q")
_F32 = struct.Struct(">f")
_F64 = struct.Struct(">d")


class Serde(ABC):
    """Bidirectional object <-> bytes converter for one record field."""

    @abstractmethod
    def write(self, obj: Any, out: bytearray) -> None:
        """Append the serialized form of ``obj`` to ``out``."""

    @abstractmethod
    def read(self, buf: memoryview | bytes, offset: int) -> tuple[Any, int]:
        """Decode one object at ``offset``; return ``(obj, next_offset)``."""

    def to_bytes(self, obj: Any) -> bytes:
        out = bytearray()
        self.write(obj, out)
        return bytes(out)

    def from_bytes(self, data: bytes | memoryview) -> Any:
        obj, end = self.read(data, 0)
        if end != len(data):
            raise ValueError(f"{end - len(data)} trailing bytes after decode")
        return obj


class Int32Serde(Serde):
    """Order-preserving big-endian signed 32-bit integer (4 bytes)."""

    SIZE = 4

    def write(self, obj: Any, out: bytearray) -> None:
        value = int(obj)
        if not -(1 << 31) <= value < (1 << 31):
            raise ValueError(f"int32 out of range: {value}")
        out.extend(_I32.pack((value + (1 << 31)) & 0xFFFFFFFF))

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[int, int]:
        raw = _I32.unpack_from(buf, offset)[0]
        return raw - (1 << 31), offset + 4


class Int64Serde(Serde):
    """Order-preserving big-endian signed 64-bit integer (8 bytes)."""

    SIZE = 8

    def write(self, obj: Any, out: bytearray) -> None:
        value = int(obj)
        if not -(1 << 63) <= value < (1 << 63):
            raise ValueError(f"int64 out of range: {value}")
        out.extend(_I64.pack((value + (1 << 63)) & 0xFFFFFFFFFFFFFFFF))

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[int, int]:
        raw = _I64.unpack_from(buf, offset)[0]
        return raw - (1 << 63), offset + 8


class Float32Serde(Serde):
    """IEEE-754 single precision, big-endian (4 bytes, Hadoop FloatWritable)."""

    SIZE = 4

    def write(self, obj: Any, out: bytearray) -> None:
        out.extend(_F32.pack(float(obj)))

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[float, int]:
        return _F32.unpack_from(buf, offset)[0], offset + 4


class Float64Serde(Serde):
    """IEEE-754 double precision, big-endian (8 bytes, DoubleWritable)."""

    SIZE = 8

    def write(self, obj: Any, out: bytearray) -> None:
        out.extend(_F64.pack(float(obj)))

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[float, int]:
        return _F64.unpack_from(buf, offset)[0], offset + 8


class TextSerde(Serde):
    """Hadoop ``Text``: vint byte length followed by UTF-8 bytes.

    ``"windspeed1"`` serializes to 11 bytes (1 length byte + 10 chars),
    which is one term in the paper's 27-byte key (§I, key/value = 6.75).
    """

    def write(self, obj: Any, out: bytearray) -> None:
        data = str(obj).encode("utf-8")
        write_vlong(len(data), out)
        out.extend(data)

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[str, int]:
        length, offset = read_vlong(buf, offset)
        if length < 0 or offset + length > len(buf):
            raise ValueError(f"bad Text length {length}")
        return bytes(buf[offset:offset + length]).decode("utf-8"), offset + length


class BytesSerde(Serde):
    """Length-prefixed raw bytes (Hadoop BytesWritable, vint length)."""

    def write(self, obj: Any, out: bytearray) -> None:
        data = bytes(obj)
        write_vlong(len(data), out)
        out.extend(data)

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[bytes, int]:
        length, offset = read_vlong(buf, offset)
        if length < 0 or offset + length > len(buf):
            raise ValueError(f"bad bytes length {length}")
        return bytes(buf[offset:offset + length]), offset + length


class ValueBlockSerde(Serde):
    """A packed array of same-typed values (the aggregate-key payload).

    Key aggregation (§IV) relies on "values stored in order": one aggregate
    key carries a dense block of values for consecutive curve indices.  The
    wire form is a vint count followed by the raw little-endian array --
    count * itemsize bytes, zero per-value overhead, which is where most
    of Fig 8's savings come from.
    """

    def __init__(self, dtype: np.dtype | str) -> None:
        self.dtype = np.dtype(dtype).newbyteorder("<")
        if self.dtype.itemsize == 0:
            raise ValueError(f"dtype {dtype!r} has zero itemsize")

    def write(self, obj: Any, out: bytearray) -> None:
        arr = np.ascontiguousarray(obj, dtype=self.dtype)
        if arr.ndim != 1:
            raise ValueError(f"value block must be 1-D, got shape {arr.shape}")
        write_vlong(arr.shape[0], out)
        out.extend(arr.tobytes())

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[np.ndarray, int]:
        count, offset = read_vlong(buf, offset)
        if count < 0:
            raise ValueError(f"bad block count {count}")
        nbytes = count * self.dtype.itemsize
        if offset + nbytes > len(buf):
            raise ValueError("truncated value block")
        arr = np.frombuffer(bytes(buf[offset:offset + nbytes]), dtype=self.dtype)
        return arr, offset + nbytes
