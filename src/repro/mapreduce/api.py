"""User-facing Mapper / Combiner / Reducer APIs.

Mirrors Hadoop's programming model (§II-A): a Map function from input
records to intermediate key/value pairs, an optional Combiner that
partially reduces map output, and a Reduce function from a key plus all
its values to output pairs.  Contexts own serialization -- keys are
converted to bytes the moment they are emitted, reproducing Hadoop
assumption (b) of §II-B.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from repro.mapreduce.keys import CellKeySerde
from repro.mapreduce.metrics import C, Counters
from repro.mapreduce.serde import Serde
from repro.scidata.splits import InputSplit

__all__ = ["Mapper", "Reducer", "Combiner", "MapContext", "ReduceContext"]


class MapContext:
    """Hands mapper output to the engine's spill buffer, serialized.

    The engine supplies ``sink`` -- a callable taking
    ``(key_bytes, value_bytes)`` -- plus the job's serdes.  The vectorized
    :meth:`emit_cells` path exists because a sliding-window mapper emits
    millions of cell keys; serializing them one Python call at a time
    would dominate runtime (see the HPC guide rule: vectorize hot loops).
    """

    def __init__(self, key_serde: Serde, value_serde: Serde, sink,
                 counters: Counters, batch_sink=None) -> None:
        self.key_serde = key_serde
        self.value_serde = value_serde
        self._sink = sink
        #: engine-supplied columnar sink taking ``(keys, values)`` uint8
        #: matrices; ``None`` when the job runs the scalar path (then the
        #: batched emits below decay to per-record ``sink`` calls)
        self._batch_sink = batch_sink
        self.counters = counters

    def emit(self, key: Any, value: Any) -> None:
        """Serialize and emit one intermediate pair."""
        kout = bytearray()
        self.key_serde.write(key, kout)
        vout = bytearray()
        self.value_serde.write(value, vout)
        self._sink(bytes(kout), bytes(vout))
        self.counters.incr(C.MAP_OUTPUT_RECORDS)

    def emit_serialized(self, key_bytes: bytes, value_bytes: bytes) -> None:
        """Emit an already-serialized pair (used by the aggregation library)."""
        self._sink(key_bytes, value_bytes)
        self.counters.incr(C.MAP_OUTPUT_RECORDS)

    def emit_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Emit many already-serialized fixed-width pairs at once.

        ``keys`` is an ``(n, key_size)`` uint8 matrix, ``values`` an
        ``(n, value_size)`` uint8 matrix -- the columnar record form
        (obtained e.g. from ``CellKeySerde.pack_batch_keys`` and
        ``Serde.pack_batch``).  On a columnar job the whole batch is
        handed to the engine without creating per-record objects; on a
        scalar job it decays to one ``sink`` call per record.
        """
        keys = np.asarray(keys, dtype=np.uint8)
        values = np.asarray(values, dtype=np.uint8)
        if keys.ndim != 2 or values.ndim != 2:
            raise ValueError("emit_batch takes (n, width) uint8 matrices")
        n = keys.shape[0]
        if n != values.shape[0]:
            raise ValueError(f"{n} keys vs {values.shape[0]} values")
        if n == 0:
            return
        if self._batch_sink is not None:
            self._batch_sink(keys, values)
        else:
            kw, vw = keys.shape[1], values.shape[1]
            kflat = np.ascontiguousarray(keys).tobytes()
            vflat = np.ascontiguousarray(values).tobytes()
            sink = self._sink
            for i in range(n):
                sink(kflat[i * kw:(i + 1) * kw], vflat[i * vw:(i + 1) * vw])
        self.counters.incr(C.MAP_OUTPUT_RECORDS, n)

    def emit_cells(
        self,
        variable: str | int,
        coords: np.ndarray,
        values: np.ndarray,
        slots: np.ndarray | int = 0,
    ) -> None:
        """Vectorized emit of many per-cell pairs for one variable.

        Requires the job's key serde to be a :class:`CellKeySerde` and a
        fixed-width value serde (``SIZE`` attribute).  ``values`` may be
        1-D (one scalar per cell, packed by dtype) or 2-D ``(n, nfields)``
        (one row per cell, packed by the value serde's ``pack_batch`` --
        for multi-field values such as running sum/count pairs).
        """
        if not isinstance(self.key_serde, CellKeySerde):
            raise TypeError("emit_cells requires a CellKeySerde key type")
        size = getattr(self.value_serde, "SIZE", None)
        if size is None:
            raise TypeError("emit_cells requires a fixed-width value serde")
        coords = np.asarray(coords)
        values = np.asarray(values)
        if values.ndim <= 1:
            values = values.ravel()
            if coords.shape[0] != values.shape[0]:
                raise ValueError(
                    f"{coords.shape[0]} coords vs {values.shape[0]} values"
                )
            value_blob = self._pack_values(values)
        else:
            if coords.shape[0] != values.shape[0]:
                raise ValueError(
                    f"{coords.shape[0]} coords vs {values.shape[0]} values"
                )
            value_blob = self.value_serde.pack_batch(values)
        n = coords.shape[0]
        if len(value_blob) != n * size:
            raise ValueError(
                f"value column is {len(value_blob)} bytes, expected {n}x{size}"
            )
        if self._batch_sink is not None:
            kmat, _ = self.key_serde.pack_batch_keys(variable, coords, slots)
            vmat = np.frombuffer(value_blob, dtype=np.uint8).reshape(n, size)
            self._batch_sink(kmat, vmat)
        else:
            keys = self.key_serde.write_batch(variable, coords, slots)
            sink = self._sink
            for i, kb in enumerate(keys):
                sink(kb, value_blob[i * size:(i + 1) * size])
        self.counters.incr(C.MAP_OUTPUT_RECORDS, n)

    def _pack_values(self, values: np.ndarray) -> bytes:
        """Serialize a homogeneous value column in one numpy pass."""
        # Fixed-width serdes are big-endian packers; replicate vectorized.
        kind = values.dtype.kind
        if kind in "iu":
            # order-preserving int packing (sign-bit flip); uint64
            # arithmetic wraps correctly for the 64-bit bias
            width = getattr(self.value_serde, "SIZE")
            bias = np.uint64(1 << (8 * width - 1))
            mask = np.uint64((1 << (8 * width)) - 1)
            biased = (values.astype(np.int64).astype(np.uint64) + bias) & mask
            packed = biased.astype(f">u{width}")
            return packed.tobytes()
        if kind == "f":
            width = getattr(self.value_serde, "SIZE")
            return values.astype(f">f{width}").tobytes()
        raise TypeError(f"unsupported value dtype {values.dtype}")


class ReduceContext:
    """Collects reducer output (and exposes counters)."""

    def __init__(self, counters: Counters) -> None:
        self.counters = counters
        self.output: list[tuple[Any, Any]] = []

    def emit(self, key: Any, value: Any) -> None:
        self.output.append((key, value))
        self.counters.incr(C.REDUCE_OUTPUT_RECORDS)


class Mapper(ABC):
    """Map half of the job.  One instance per map task."""

    #: set True on a subclass to receive ``self.dataset`` (the whole
    #: input dataset) before :meth:`setup` -- used by multi-variable
    #: mappers that must read slabs of variables other than the split's
    wants_dataset: bool = False

    def setup(self, split: InputSplit) -> None:
        """Called once before :meth:`map`; override for per-task state."""

    @abstractmethod
    def map(self, split: InputSplit, values: np.ndarray, ctx: MapContext) -> None:
        """Process one input split.

        ``values`` is the slab of input data for ``split`` (shape
        ``split.slab.shape``); emit intermediate pairs through ``ctx``.
        """

    def map_range(self, split: InputSplit, values: np.ndarray,
                  ctx: MapContext, start: int, stop: int) -> None:
        """Process input records ``[start, stop)`` of the split only.

        Records are flat (row-major) cell indices into the split's slab.
        Calling this over a partition of ``[0, values.size)`` in order
        must emit exactly what one :meth:`map` call would.  Skipping
        mode (Hadoop SkipBadRecords) requires it to bisect around poison
        records; mappers that don't override it are not skippable and
        fail the task as before.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support record-range mapping")

    def cleanup(self, ctx: MapContext) -> None:
        """Called once after :meth:`map` (flush buffered state here)."""


class Reducer(ABC):
    """Reduce half of the job.  One instance per reduce task."""

    @abstractmethod
    def reduce(self, key: Any, values: Sequence[Any], ctx: ReduceContext) -> None:
        """Process one key group (all values for one intermediate key)."""


class Combiner(ABC):
    """Optional map-side partial reduce, applied per sorted spill run."""

    @abstractmethod
    def combine(self, key: Any, values: Sequence[Any]) -> Sequence[Any]:
        """Fold ``values`` for ``key``; return the surviving values."""
