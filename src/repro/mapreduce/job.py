"""Job configuration.

One :class:`Job` describes everything the engine needs: the user code
(mapper/reducer/combiner factories), the intermediate types, the codec
(§III plugs in here), the partitioner, spill/merge tuning, and an
optional *shuffle plugin* -- the hook through which key aggregation
(§IV) teaches the shuffle to split aggregate keys.  The plugin hook is
our stand-in for the paper's "one set of changes inside Hadoop ...
which allows aggregate keys to be split during the routing and sorting
phases" (§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.mapreduce.api import Combiner, Mapper, Reducer
from repro.mapreduce.partition import HashPartitioner, Partitioner
from repro.mapreduce.serde import Serde

__all__ = ["Job", "ShufflePlugin", "SkipPolicy"]

Record = tuple[bytes, bytes]


@dataclass(frozen=True)
class SkipPolicy:
    """Record-level skipping configuration (Hadoop SkipBadRecords).

    When set on a job, an attempt that fails inside user code or record
    decode is re-run in skipping mode: the runtime bisects the input
    record range to isolate the poison records, writes them to a
    quarantine side-file, and processes the clean remainder.  The clean
    path is untouched -- skipping only engages after a failure.
    """

    #: hard cap on records quarantined per task; exceeding it fails the
    #: task (a fault that poisons everything should not "succeed")
    skip_budget: int = 1024
    #: directory for quarantine side-files (None = the task's workdir)
    quarantine_dir: str | None = None

    def __post_init__(self) -> None:
        if self.skip_budget < 1:
            raise ValueError(
                f"skip_budget must be >= 1, got {self.skip_budget}")


class ShufflePlugin(Protocol):
    """Engine hook for key types that are not atomic (§II-B assumption c).

    ``route`` replaces the partitioner call: it may split one record into
    several, each bound for one reducer.  ``prepare_reduce`` runs on a
    reducer's fully merged record list before grouping: the aggregate
    implementation splits overlapping ranges there (Fig 7).
    """

    def route(self, key_bytes: bytes, value_bytes: bytes,
              num_reducers: int) -> list[tuple[int, bytes, bytes]]: ...

    def prepare_reduce(self, records: list[Record]) -> list[Record]: ...


@dataclass
class Job:
    """Configuration for one MapReduce job."""

    name: str
    mapper: Callable[[], Mapper]
    reducer: Callable[[], Reducer]
    key_serde: Serde
    value_serde: Serde
    num_reducers: int = 1
    num_map_tasks: int = 1
    combiner: Callable[[], Combiner] | None = None
    #: codec registry name (see repro.mapreduce.codecs / core.stride.codec)
    codec: str = "null"
    codec_options: dict = field(default_factory=dict)
    partitioner: Callable[[int], Partitioner] = HashPartitioner
    #: serialized bytes buffered per map task before spilling (io.sort.mb)
    sort_buffer_bytes: int = 64 << 20
    #: maximum runs merged per pass (io.sort.factor)
    merge_factor: int = 10
    #: non-atomic key support (key aggregation installs itself here)
    shuffle_plugin: ShufflePlugin | None = None
    #: batched/columnar record pipeline (emit_batch -> columnar spill ->
    #: vectorized sort/merge).  Byte-identical to the scalar path --
    #: counters, spill files and reducer output do not change -- so this
    #: flag exists for A/B benchmarking and the equivalence suite, not
    #: for correctness.
    columnar: bool = True
    #: restrict input splits to these dataset variables (None = all);
    #: single-variable queries over multi-variable datasets need this
    input_variables: tuple[str, ...] | None = None
    #: when both are set, reducer output is also written to real IFile
    #: part files (Fig 1 step 7) so output bytes are measured exactly
    output_key_serde: Serde | None = None
    output_value_serde: Serde | None = None
    #: record-level skipping mode (None = a poison record fails the task
    #: after retries, exactly as before)
    skipping: SkipPolicy | None = None
    #: chunk final map-output segments into independently checksummed
    #: blocks of about this many raw bytes (None = plain whole-segment
    #: CRC).  Lets a reducer salvage all but the damaged block.
    ifile_block_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.num_reducers < 1:
            raise ValueError(f"num_reducers must be >= 1, got {self.num_reducers}")
        if self.num_map_tasks < 1:
            raise ValueError(f"num_map_tasks must be >= 1, got {self.num_map_tasks}")
        if self.sort_buffer_bytes < 1024:
            raise ValueError("sort_buffer_bytes unreasonably small (< 1 KiB)")
        if self.merge_factor < 2:
            raise ValueError(f"merge_factor must be >= 2, got {self.merge_factor}")
        if self.ifile_block_bytes is not None and self.ifile_block_bytes < 256:
            raise ValueError(
                f"ifile_block_bytes must be >= 256, got {self.ifile_block_bytes}")
