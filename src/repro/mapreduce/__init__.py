"""A from-scratch Hadoop-like MapReduce engine (the paper's substrate).

The paper's measurements are properties of Hadoop's *data path*: how
intermediate key/value pairs are serialized (one independent record at a
time, §II-B), framed on disk (IFile, with per-record overhead), compressed
(pluggable codecs, §III), partitioned, shuffled, and merge-sorted.  This
package reimplements that data path faithfully enough that byte counts --
the paper's primary metric -- are *measured*, not modeled:

* :mod:`~repro.mapreduce.serde` / :mod:`~repro.mapreduce.keys` -- the
  Writable-style type system, including the per-cell key layout whose
  size the paper's intro quantifies;
* :mod:`~repro.mapreduce.ifile` -- Hadoop-IFile-compatible framing;
* :mod:`~repro.mapreduce.codecs` -- the pluggable compression hook the
  paper's §III codec slots into;
* :mod:`~repro.mapreduce.api`, :mod:`~repro.mapreduce.job`,
  :mod:`~repro.mapreduce.engine` -- mapper/reducer APIs and a local job
  runner with real spills, combiners, external merge sort and counters;
* :mod:`~repro.mapreduce.runtime` -- the multiprocess task runtime
  (scheduler, retries, speculative execution, fault injection) whose
  :class:`ParallelJobRunner` is a drop-in for the local runner with
  byte-identical counters;
* :mod:`~repro.mapreduce.simcluster` -- the discrete-event cluster
  simulator that turns measured task profiles into wall-clock estimates.
"""

from repro.mapreduce.keys import CellKey, CellKeySerde, RangeKey, RangeKeySerde
from repro.mapreduce.serde import (
    BytesSerde,
    Float32Serde,
    Float64Serde,
    Int32Serde,
    Int64Serde,
    Serde,
    TextSerde,
    ValueBlockSerde,
)
from repro.mapreduce.codecs import Codec, available_codecs, get_codec, register_codec
from repro.mapreduce.api import Combiner, MapContext, Mapper, ReduceContext, Reducer
from repro.mapreduce.job import Job
from repro.mapreduce.engine import JobResult, LocalJobRunner
from repro.mapreduce.metrics import Counters, TaskProfile
from repro.mapreduce.runtime import (
    FaultInjector,
    ParallelJobRunner,
    RuntimeTrace,
    TaskScheduler,
)

__all__ = [
    "CellKey",
    "CellKeySerde",
    "RangeKey",
    "RangeKeySerde",
    "Serde",
    "Int32Serde",
    "Int64Serde",
    "Float32Serde",
    "Float64Serde",
    "TextSerde",
    "BytesSerde",
    "ValueBlockSerde",
    "Codec",
    "get_codec",
    "register_codec",
    "available_codecs",
    "Mapper",
    "Reducer",
    "Combiner",
    "MapContext",
    "ReduceContext",
    "Job",
    "LocalJobRunner",
    "ParallelJobRunner",
    "JobResult",
    "Counters",
    "TaskProfile",
    "FaultInjector",
    "RuntimeTrace",
    "TaskScheduler",
]
