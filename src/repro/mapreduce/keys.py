"""Intermediate key types: per-cell keys and aggregate range keys.

``CellKey`` is the naive representation the paper's introduction costs
out: every grid cell's key carries the variable (name or index), one int32
per dimension, and an int32 result-slot word.  With the variable name
``windspeed1`` and 3 dimensions that is 11 + 12 + 4 = 27 bytes against a
4-byte value -- the paper's 6.75 key/value ratio -- and with a variable
*index* it is 4 + 12 + 4 = 20 bytes, giving the paper's 26,000,006-byte
intermediate file for 10^6 cells once IFile framing is added.

``RangeKey`` is the aggregate representation of §IV: a contiguous run of
space-filling-curve indices ``[start, start+count)`` for one variable.
Its value is a packed :class:`~repro.mapreduce.serde.ValueBlockSerde`
array with one value per covered cell, "stored in order".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mapreduce.serde import Int32Serde, Int64Serde, Serde, TextSerde
from repro.util.errors import CorruptRecordError, MalformedRecordError

__all__ = ["CellKey", "CellKeySerde", "RangeKey", "RangeKeySerde"]

_INT32 = Int32Serde()
_INT64 = Int64Serde()
_TEXT = TextSerde()


@dataclass(frozen=True, order=True)
class CellKey:
    """One grid cell of one variable.

    ``variable`` is a name (``str``) or index (``int``) depending on the
    job's key mode; ``slot`` is SciHadoop's result-slot word (partial
    results of the same cell with different slots are not grouped).
    """

    variable: str | int
    coords: tuple[int, ...]
    slot: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "coords", tuple(int(c) for c in self.coords))
        if not self.coords:
            raise ValueError("cell key needs at least one coordinate")


@dataclass(frozen=True, order=True)
class RangeKey:
    """A contiguous curve-index run ``[start, start+count)`` of a variable."""

    variable: str | int
    start: int
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"range count must be positive, got {self.count}")
        if self.start < 0:
            raise ValueError(f"range start must be >= 0, got {self.start}")

    @property
    def end(self) -> int:
        """Exclusive end index."""
        return self.start + self.count

    def overlaps(self, other: "RangeKey") -> bool:
        return (
            self.variable == other.variable
            and self.start < other.end
            and other.start < self.end
        )


def _variable_serde(mode: str) -> Serde:
    if mode == "name":
        return _TEXT
    if mode == "index":
        return _INT32
    raise ValueError(f"variable mode must be 'name' or 'index', got {mode!r}")


class CellKeySerde(Serde):
    """Serializer for :class:`CellKey`.

    Parameters
    ----------
    ndim:
        Number of coordinate words.
    variable_mode:
        ``"name"`` (Hadoop ``Text``) or ``"index"`` (int32).  The paper's
        intro measures both: 33,000,006 vs 26,000,006 bytes for 10^6 cells.
    coord_width:
        Bytes per coordinate: 4 (int32, the §I layout) or 8 (int64, the
        LongWritable layout whose 35-byte keys produce the 47-byte
        SequenceFile record pitch highlighted in Fig 2).
    include_slot:
        Whether keys carry the int32 result-slot word.  The shuffle-path
        layouts of §I include it; the Fig 2 SequenceFile keys do not.
    """

    def __init__(self, ndim: int, variable_mode: str = "name",
                 coord_width: int = 4, include_slot: bool = True) -> None:
        if ndim < 1:
            raise ValueError(f"ndim must be >= 1, got {ndim}")
        if coord_width not in (4, 8):
            raise ValueError(f"coord_width must be 4 or 8, got {coord_width}")
        self.ndim = ndim
        self.variable_mode = variable_mode
        self.coord_width = coord_width
        self.include_slot = include_slot
        self._var_serde = _variable_serde(variable_mode)
        self._coord_serde = _INT32 if coord_width == 4 else _INT64

    def write(self, obj: CellKey, out: bytearray) -> None:
        if len(obj.coords) != self.ndim:
            raise ValueError(
                f"key has {len(obj.coords)} coords, serde expects {self.ndim}"
            )
        self._var_serde.write(obj.variable, out)
        for c in obj.coords:
            self._coord_serde.write(c, out)
        if self.include_slot:
            _INT32.write(obj.slot, out)

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[CellKey, int]:
        start = offset
        variable, offset = self._var_serde.read(buf, offset)
        coords = []
        for _ in range(self.ndim):
            c, offset = self._coord_serde.read(buf, offset)
            coords.append(c)
        slot = 0
        if self.include_slot:
            slot, offset = _INT32.read(buf, offset)
        try:
            key = CellKey(variable, tuple(coords), slot)
        except CorruptRecordError:
            raise
        except ValueError as exc:
            raise MalformedRecordError(f"invalid cell key: {exc}",
                                       offset=start) from exc
        return key, offset

    # -- vectorized bulk path -------------------------------------------------

    def key_size(self, variable: str | int) -> int:
        """Serialized size of a key for ``variable`` (fixed given the mode)."""
        probe = bytearray()
        self._var_serde.write(variable, probe)
        slot = 4 if self.include_slot else 0
        return len(probe) + self.coord_width * self.ndim + slot

    def pack_batch_keys(
        self,
        variable: str | int,
        coords: np.ndarray,
        slots: np.ndarray | int = 0,
    ) -> tuple[np.ndarray, int]:
        """Serialize many keys of one variable into one uint8 matrix.

        Returns ``(matrix, key_size)`` where ``matrix`` is ``(n, key_size)``
        uint8 (variable prefix broadcast, order-preserving big-endian
        coordinate words) -- the columnar form the batched spill path
        consumes without materializing per-record ``bytes`` objects.
        """
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != self.ndim:
            raise ValueError(f"expected (n, {self.ndim}) coords, got {coords.shape}")
        n = coords.shape[0]
        cw = self.coord_width
        half = 1 << (8 * cw - 1)
        if n and (coords.min() < -half or coords.max() >= half):
            raise ValueError(f"coordinates exceed int{8 * cw} range")
        prefix = bytearray()
        self._var_serde.write(variable, prefix)
        plen = len(prefix)
        slot_bytes = 4 if self.include_slot else 0
        rec = plen + cw * self.ndim + slot_bytes
        mat = np.empty((n, rec), dtype=np.uint8)
        if plen:
            mat[:, :plen] = np.frombuffer(bytes(prefix), dtype=np.uint8)
        # order-preserving big-endian: flip the sign bit then pack >uN
        if cw == 4:
            body = ((coords + half) & 0xFFFFFFFF).astype(">u4")
        else:
            body = (coords.astype(np.uint64) + np.uint64(half)).astype(">u8")
        mat[:, plen:plen + cw * self.ndim] = (
            body.view(np.uint8).reshape(n, cw * self.ndim)
        )
        if self.include_slot:
            slot_col = np.broadcast_to(
                np.asarray(slots, dtype=np.int64), (n,)
            )
            slot_be = ((slot_col + (1 << 31)) & 0xFFFFFFFF).astype(">u4")
            mat[:, plen + cw * self.ndim:] = slot_be.view(np.uint8).reshape(n, 4)
        return mat, rec

    def write_batch(
        self,
        variable: str | int,
        coords: np.ndarray,
        slots: np.ndarray | int = 0,
    ) -> list[bytes]:
        """Serialize many keys of one variable into per-record ``bytes``.

        Convenience wrapper over :meth:`pack_batch_keys` for callers that
        need individual key blobs; the engine's columnar fast path uses
        the matrix form directly.
        """
        mat, rec = self.pack_batch_keys(variable, coords, slots)
        n = mat.shape[0]
        flat = mat.tobytes()
        return [flat[i * rec:(i + 1) * rec] for i in range(n)]


class RangeKeySerde(Serde):
    """Serializer for :class:`RangeKey`.

    Layout: variable (Text or int32), order-preserving int64 ``start``,
    int32 ``count``.  Because every field is order-preserving, sorting the
    raw bytes sorts by ``(variable, start, count)`` -- which is exactly
    the order the reducer-side overlap splitter (§IV-B, Fig 7) needs.
    """

    def __init__(self, variable_mode: str = "name") -> None:
        self.variable_mode = variable_mode
        self._var_serde = _variable_serde(variable_mode)

    def write(self, obj: RangeKey, out: bytearray) -> None:
        self._var_serde.write(obj.variable, out)
        _INT64.write(obj.start, out)
        _INT32.write(obj.count, out)

    def read(self, buf: memoryview | bytes, offset: int) -> tuple[RangeKey, int]:
        begin = offset
        variable, offset = self._var_serde.read(buf, offset)
        start, offset = _INT64.read(buf, offset)
        count, offset = _INT32.read(buf, offset)
        try:
            key = RangeKey(variable, start, count)
        except CorruptRecordError:
            raise
        except ValueError as exc:
            raise MalformedRecordError(f"invalid range key: {exc}",
                                       offset=begin) from exc
        return key, offset

    def key_size(self, variable: str | int) -> int:
        probe = bytearray()
        self._var_serde.write(variable, probe)
        return len(probe) + 12

    # -- vectorized bulk path -------------------------------------------------

    def pack_batch_keys(
        self,
        variable: str | int,
        starts: np.ndarray,
        counts: np.ndarray,
    ) -> tuple[np.ndarray, int]:
        """Serialize many range keys of one variable into a uint8 matrix.

        Returns ``(matrix, key_size)``; rows are byte-identical to
        :meth:`write` of ``RangeKey(variable, start, count)``.
        """
        starts = np.asarray(starts, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if starts.ndim != 1 or starts.shape != counts.shape:
            raise ValueError(
                f"starts/counts must be matching 1-D arrays, got "
                f"{starts.shape} vs {counts.shape}"
            )
        n = starts.shape[0]
        if n and starts.min() < 0:
            raise ValueError("range start must be >= 0")
        if n and (counts.min() <= 0 or counts.max() >= (1 << 31)):
            raise ValueError("range count must be in [1, 2**31)")
        prefix = bytearray()
        self._var_serde.write(variable, prefix)
        plen = len(prefix)
        rec = plen + 12
        mat = np.empty((n, rec), dtype=np.uint8)
        if plen:
            mat[:, :plen] = np.frombuffer(bytes(prefix), dtype=np.uint8)
        start_be = (starts.astype(np.uint64) + np.uint64(1 << 63)).astype(">u8")
        mat[:, plen:plen + 8] = start_be.view(np.uint8).reshape(n, 8)
        count_be = ((counts + (1 << 31)) & 0xFFFFFFFF).astype(">u4")
        mat[:, plen + 8:] = count_be.view(np.uint8).reshape(n, 4)
        return mat, rec

    def write_batch(
        self,
        variable: str | int,
        starts: np.ndarray,
        counts: np.ndarray,
    ) -> list[bytes]:
        """Per-record ``bytes`` convenience wrapper over :meth:`pack_batch_keys`."""
        mat, rec = self.pack_batch_keys(variable, starts, counts)
        flat = mat.tobytes()
        return [flat[i * rec:(i + 1) * rec] for i in range(mat.shape[0])]
