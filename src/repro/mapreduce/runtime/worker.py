"""What runs inside one task worker process.

The worker executes exactly the same top-level task functions as the
serial runner (:func:`repro.mapreduce.engine.run_map_task` /
:func:`~repro.mapreduce.engine.run_reduce_task`) inside its own attempt
directory, then hands the pickled result back to the scheduler through
a file on shared disk.  The result file is committed durably
(tmp + fsync + rename), so the scheduler observes either a complete
result or none at all -- a worker killed mid-task simply leaves no
result, which is the retry signal; :func:`load_result` additionally
treats a torn or truncated pickle as "no result" rather than crashing
the scheduler.

While the task runs, a daemon **heartbeat thread** touches
``<attempt_dir>/_heartbeat`` every ``heartbeat_interval`` seconds.  The
scheduler uses the file's mtime to detect a worker that is *alive but
wedged* (e.g. stopped by the kernel, or stuck in uninterruptible I/O):
``is_alive()`` still says yes, but the heartbeat goes stale and the
attempt is killed and retried.

Faults from a :class:`~repro.mapreduce.runtime.fault.FaultInjector` are
applied *only* here, in the child process, so an injected ``kill`` can
never take down the scheduler.
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import time
import traceback
from typing import Any

from repro.mapreduce.engine import run_map_task, run_reduce_task
from repro.mapreduce.ifile import IFileCorruptError
from repro.mapreduce.runtime.fault import Fault, corrupt_file, poisoned_job
from repro.mapreduce.runtime.hosts import provision_failover_workdir
from repro.mapreduce.runtime.pipeline import (
    PipelinePlan,
    drain_refs,
    run_reduce_task_pipelined,
)
from repro.mapreduce.runtime.shuffle import FetchFailedError, SegmentRef
from repro.mapreduce.runtime.skipping import (
    is_skip_eligible,
    run_map_task_skipping,
    run_reduce_task_skipping,
)
from repro.util.fsio import fsync_file, replace_durably

__all__ = ["worker_entry", "load_result", "HEARTBEAT_NAME"]

#: heartbeat filename inside an attempt directory
HEARTBEAT_NAME = "_heartbeat"


def _apply_rlimit(rlimit_bytes: int | None) -> None:
    """Cap this worker's address space with a *real* ``RLIMIT_AS``.

    Opt-in (``REPRO_WORKER_RLIMIT_BYTES``), POSIX-only; anywhere the
    ``resource`` module is missing or the kernel refuses, the cap is
    silently skipped -- the simulated budget still governs.
    """
    if not rlimit_bytes:
        return
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    try:
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        limit = int(rlimit_bytes)
        if hard != resource.RLIM_INFINITY:
            limit = min(limit, hard)
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ValueError, OSError):  # pragma: no cover - kernel said no
        pass


def _arm_budget(task_id: str, attempt: int, shuffle: Any,
                fault: Fault | None, result_path: str) -> Any:
    """Build this attempt's memory ledger, with any oom fault armed.

    Mirrors the serial runner's ``_memory_setup``: a budget exists when
    the job configured ``memory_budget`` *or* an oom fault targets this
    attempt -- the clean, unbudgeted path stays allocation-free.  The
    one divergence is the ``kill`` op: a worker has a process to kill,
    so the callback durably writes an oom-tagged error result and dies
    with ``os._exit(137)`` -- the SIGKILL exit the kernel OOM killer
    would produce, except the scheduler gets a deterministic signal
    instead of a missing result file.
    """
    capacity = getattr(shuffle, "memory_budget", None) \
        if shuffle is not None else None
    oom = fault is not None and fault.mode == "oom"
    if capacity is None and not oom:
        return None
    from repro.mapreduce.runtime.memory import MemoryBudget
    budget = MemoryBudget(capacity, name=f"{task_id}.{attempt}")
    if oom:
        site = fault.where
        if fault.op == "raise":
            budget.fail_next(site)
        elif fault.op == "alloc":
            budget.alloc_next(site, fault.record)
        elif fault.op == "kill":
            def _killed(nbytes: int) -> None:
                _write_result(result_path, {
                    "status": "error",
                    "error_type": "MemoryError",
                    "message": (f"simulated oom kill: {site} charged "
                                f"{nbytes} bytes over threshold"),
                    "traceback": "",
                    "corrupt_path": None,
                    "skip_eligible": False,
                    "failed_map": None,
                    "oom": True,
                })
                os._exit(137)
            budget.kill_above(fault.record, _killed, site=site)
    return budget


def _start_heartbeat(attempt_dir: str, interval: float) -> None:
    """Touch the attempt's heartbeat file on a cadence, forever.

    Runs as a daemon thread so it dies with the process; any OSError
    (e.g. the scheduler already deleted the attempt directory while
    killing us) silently ends the beat -- a missing heartbeat is the
    *signal*, never an error.
    """
    path = os.path.join(attempt_dir, HEARTBEAT_NAME)

    def beat() -> None:
        while True:
            try:
                with open(path, "a"):
                    os.utime(path)
            except OSError:
                return
            time.sleep(interval)

    threading.Thread(target=beat, daemon=True, name="heartbeat").start()


def _write_result(result_path: str, result: dict[str, Any]) -> None:
    tmp = f"{result_path}.tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fsync_file(fh)
    replace_durably(tmp, result_path)


def load_result(result_path: str) -> dict[str, Any] | None:
    """Read a worker's result file; ``None`` if absent or torn.

    A torn pickle cannot appear through the durable-commit path, but a
    hostile filesystem (or a pre-durability manifest left on disk) may
    still surface one; treating it as "no result" turns it into an
    ordinary retry instead of a scheduler crash.
    """
    if not os.path.exists(result_path):
        return None
    try:
        with open(result_path, "rb") as fh:
            return pickle.load(fh)
    except (EOFError, pickle.UnpicklingError, ValueError):
        return None


def worker_entry(
    task_id: str,
    kind: str,
    attempt: int,
    attempt_dir: str,
    result_path: str,
    job: Any,
    dataset: Any,
    payload: Any,
    fault: Fault | None,
    heartbeat_interval: float = 0.25,
    skip_mode: bool = False,
    shuffle: Any = None,
    fetch_faults: Any = None,
    host: str | None = None,
    disk_fault: Fault | None = None,
    rlimit_bytes: int | None = None,
) -> None:
    """Process target: run one task attempt and persist its result.

    ``payload`` is the task input: an ``InputSplit`` for map tasks, a
    ``(partition, segments)`` pair for reduce tasks.  With ``skip_mode``
    the task body runs in record-level skipping mode (the scheduler sets
    it after a skip-eligible failure of a previous attempt).  ``shuffle``
    is the job's :class:`~repro.mapreduce.runtime.shuffle.ShuffleConfig`
    and ``fetch_faults`` the reduce task's slice of the injector's fetch
    plan, both forwarded to the reduce task body.

    ``host`` is the simulated host this attempt was placed on, and
    ``disk_fault`` a planned ``disk_fault`` against that host: the task
    body then runs in a spare workdir (the attempt directory keeps its
    heartbeat and result file -- only spills and segments fail over).
    """
    _start_heartbeat(attempt_dir, heartbeat_interval)
    _apply_rlimit(rlimit_bytes)
    budget = _arm_budget(task_id, attempt, shuffle, fault, result_path)
    try:
        workdir = attempt_dir
        disk_failover = False
        if disk_fault is not None:
            workdir = provision_failover_workdir(
                attempt_dir, task_id, host or "", disk_fault)
            disk_failover = True
        if fault is not None:
            if fault.mode == "kill":
                # Abrupt death: no result file, no cleanup, no goodbye.
                os._exit(fault.exit_code)
            if fault.mode == "crash":
                raise RuntimeError(
                    f"injected crash in {task_id} attempt {attempt}")
            if fault.mode == "hang":
                time.sleep(fault.seconds)
            if fault.mode == "stall":
                # Freeze every thread (heartbeat included): the process
                # stays alive but its heartbeat goes stale -- the case
                # only the scheduler's staleness check can catch.
                os.kill(os.getpid(), signal.SIGSTOP)
            if fault.mode == "poison":
                job = poisoned_job(job, fault, kind)

        if kind == "map":
            if skip_mode:
                value: Any = run_map_task_skipping(
                    job, payload, dataset, workdir)
            else:
                value = run_map_task(job, payload, dataset, workdir,
                                     memory=budget)
            if fault is not None and fault.mode == "corrupt" \
                    and fault.where == "map-output":
                # The task *believes* it succeeded; the damage is only
                # discoverable by a reducer's checksum verification.
                target = (fault.segment if fault.segment in value.segments
                          else min(value.segments))
                path, _ = value.segments[target]
                corrupt_file(path, fault.offset_frac, fault.op)
        elif kind == "reduce":
            part, segments = payload
            pipelined = isinstance(segments, PipelinePlan)
            corrupt_input = (fault is not None and fault.mode == "corrupt"
                             and fault.where == "reduce-input")
            if pipelined and not skip_mode and not corrupt_input:
                value = run_reduce_task_pipelined(
                    job, part, segments, workdir,
                    shuffle=shuffle, fetch_faults=fetch_faults,
                    memory=budget)
            else:
                if pipelined:
                    # Skipping mode and corrupt-input targeting need the
                    # full segment list up front; wait for every
                    # producer to commit (barrier semantics for this one
                    # attempt, byte-identical by definition).
                    segments = drain_refs(segments, part)
                if corrupt_input and segments:
                    index = fault.segment if fault.segment is not None else 0
                    target = segments[index % len(segments)]
                    corrupt_file(target.path
                                 if isinstance(target, SegmentRef)
                                 else target[0],
                                 fault.offset_frac, fault.op)
                if skip_mode:
                    value = run_reduce_task_skipping(
                        job, part, segments, workdir,
                        shuffle=shuffle, fetch_faults=fetch_faults)
                else:
                    value = run_reduce_task(job, part, segments, workdir,
                                            shuffle=shuffle,
                                            fetch_faults=fetch_faults,
                                            memory=budget)
        else:
            raise ValueError(f"unknown task kind {kind!r}")
        result = {"status": "ok", "value": value,
                  "disk_failover": disk_failover,
                  "memory": budget.stats() if budget is not None else None}
    except BaseException as exc:
        skippable = (isinstance(exc, Exception)
                     and getattr(job, "skipping", None) is not None
                     and is_skip_eligible(exc))
        result = {
            "status": "error",
            "error_type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
            # mutually exclusive with skip_eligible: block-local damage
            # under a skip policy is skipping's to salvage, not repair's
            "corrupt_path": (exc.path if isinstance(exc, IFileCorruptError)
                             and not skippable else None),
            "skip_eligible": skippable,
            # an exhausted fetch names its producing map task so the
            # scheduler can charge the link and escalate to re-execution
            "failed_map": (exc.map_id if isinstance(exc, FetchFailedError)
                           else None),
            # an out-of-memory death is the scheduler's cue to requeue
            # with deterministically halved memory knobs, not to burn a
            # regular failure budget
            "oom": isinstance(exc, MemoryError),
        }
    try:
        _write_result(result_path, result)
    except BaseException as exc:  # e.g. unpicklable user output
        _write_result(result_path, {
            "status": "error",
            "error_type": type(exc).__name__,
            "message": f"failed to serialize task result: {exc}",
            "traceback": traceback.format_exc(),
            "corrupt_path": None,
            "skip_eligible": False,
        })
