"""Fitted per-phase cost model: predict wall-clock, auto-pick knobs.

The cluster simulator (:mod:`~repro.mapreduce.simcluster.model`) prices
*measured* task profiles onto a described cluster -- it answers "what
did this run cost", not "what would a differently-shaped run cost".
This module closes that loop with a small analytical model:

1. **Fit** -- per-task durations from a finished run (priced by the
   simulator, the offline oracle) are regressed onto byte-level
   features: a map costs ``a1*input + a2*local_io + a3`` seconds, a
   reduce ``b1*shuffle + b2*(local_io+output) + b3``.  Least squares
   over the run's task population; with too few tasks the coefficients
   fall back to the cluster spec's own bandwidths (which is exactly
   what the oracle charges per byte).
2. **Predict** -- scaling laws re-derive the feature bytes for a
   *hypothetical* knob setting (reducer count, wave width, sort buffer,
   IFile block size) from the run's workload totals: spill count from
   the sort buffer, reduce merge passes from
   :func:`~repro.mapreduce.sort.plan_merge_passes`, per-block framing
   overhead from the block size; makespans come from the same
   list-scheduler the simulator uses.
3. **Autotune** -- an exhaustive grid over the knob space, keeping the
   defaults unless the best candidate predicts a material (>5%)
   improvement -- autotuned knobs must never lose to defaults.

``repro tune`` drives this end to end (fit on a sample run, validate
against the simulator, print the recommendation); runners can call
:func:`autotune_from_result` directly as the programmatic hook.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.mapreduce.metrics import C, TaskProfile
from repro.mapreduce.simcluster.model import (
    ClusterSimulator,
    ClusterSpec,
    _schedule,
)
from repro.mapreduce.sort import plan_merge_passes

__all__ = [
    "CostModel",
    "PhasePrediction",
    "TunedKnobs",
    "WorkloadSummary",
    "autotune_from_result",
    "estimate_peak_memory",
]

#: per-block framing overhead an IFile charges (length prefix + CRC)
_BLOCK_OVERHEAD_BYTES = 16
#: fraction a candidate must beat the defaults by before autotune
#: recommends it (prediction error must never make tuning a regression)
_IMPROVEMENT_FLOOR = 0.05


@dataclass(frozen=True)
class WorkloadSummary:
    """Byte-level totals of one measured run: what the scaling laws
    re-shape under hypothetical knobs."""

    num_maps: int
    num_reducers: int
    #: total map input bytes
    input_bytes: int
    #: uncompressed serialized map output (drives spill counts)
    raw_map_output_bytes: int
    #: materialized (post-codec) map output == total shuffle payload
    shuffle_bytes: int
    #: total reduce output bytes
    output_bytes: int
    #: knobs the measured run used
    sort_buffer_bytes: int
    merge_factor: int
    ifile_block_bytes: int | None = None

    @classmethod
    def from_result(cls, result, job) -> "WorkloadSummary":
        """Summarize a finished :class:`~repro.mapreduce.engine.
        JobResult` under the job that produced it."""
        counters = result.counters
        profiles = result.task_profiles
        return cls(
            num_maps=result.num_map_tasks,
            num_reducers=result.num_reduce_tasks,
            input_bytes=sum(p.input_bytes for p in profiles
                            if p.kind == "map"),
            raw_map_output_bytes=counters.get(C.MAP_OUTPUT_BYTES),
            shuffle_bytes=counters.get(C.MAP_OUTPUT_MATERIALIZED_BYTES),
            output_bytes=sum(p.output_bytes for p in profiles
                             if p.kind == "reduce"),
            sort_buffer_bytes=job.sort_buffer_bytes,
            merge_factor=job.merge_factor,
            ifile_block_bytes=job.ifile_block_bytes,
        )


@dataclass(frozen=True)
class PhasePrediction:
    """Predicted wall-clock of one knob setting, phase by phase."""

    map_seconds: float
    reduce_seconds: float
    #: per-task durations backing the makespans
    map_task_seconds: float = 0.0
    reduce_task_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.map_seconds + self.reduce_seconds


@dataclass(frozen=True)
class TunedKnobs:
    """Autotune's recommendation (defaults when nothing beats them)."""

    num_reducers: int
    wave_size: int
    sort_buffer_bytes: int
    ifile_block_bytes: int | None
    predicted_seconds: float
    default_seconds: float

    @property
    def tuned(self) -> bool:
        """Did autotune pick anything other than the defaults?"""
        return self.predicted_seconds < self.default_seconds


def _lstsq(rows: list[list[float]], y: list[float]) -> list[float]:
    """Non-negative least-squares coefficients.

    Negative per-byte costs are always overfitting artifacts (no byte
    is free to move), and non-negativity keeps every prediction
    monotone in its feature bytes -- the property the knob grid search
    relies on.  With only 3 features, exact NNLS is an enumeration of
    the 8 possible supports: the best all-nonnegative unconstrained
    fit over a support is the constrained optimum.  (Naive clamping of
    a signed fit would instead shift the whole phase sum.)
    """
    import numpy as np

    a = np.asarray(rows, dtype=float)
    b = np.asarray(y, dtype=float)
    ncol = a.shape[1]
    best_resid, best = float(np.dot(b, b)), [0.0] * ncol
    for mask in range(1, 1 << ncol):
        cols = [j for j in range(ncol) if mask >> j & 1]
        coef, *_ = np.linalg.lstsq(a[:, cols], b, rcond=None)
        if any(c < 0 for c in coef):
            continue
        resid = b - a[:, cols] @ coef
        resid = float(np.dot(resid, resid))
        if resid < best_resid:
            best_resid = resid
            best = [0.0] * ncol
            for j, c in zip(cols, coef):
                best[j] = float(c)
    return best


class CostModel:
    """Per-phase analytical model fitted from one measured run."""

    def __init__(self, spec: ClusterSpec, workload: WorkloadSummary,
                 map_coef: tuple[float, float, float],
                 reduce_coef: tuple[float, float, float]) -> None:
        self.spec = spec
        self.workload = workload
        self.map_coef = map_coef
        self.reduce_coef = reduce_coef

    # ------------------------------------------------------------------ fit

    @staticmethod
    def _features(profile: TaskProfile) -> list[float]:
        if profile.kind == "map":
            return [float(profile.input_bytes),
                    float(profile.local_write_bytes
                          + profile.local_read_bytes), 1.0]
        return [float(profile.shuffle_bytes),
                float(profile.local_write_bytes + profile.local_read_bytes
                      + profile.output_bytes), 1.0]

    @classmethod
    def fit(cls, profiles: list[TaskProfile], workload: WorkloadSummary,
            spec: ClusterSpec | None = None) -> "CostModel":
        """Regress oracle task durations onto byte features.

        The oracle is the cluster simulator itself: fitting against it
        (rather than wall-clock noise from a loaded dev machine) makes
        the model deterministic and lets the validation error band be
        asserted in tests.  Fewer than 3 tasks of a kind cannot pin 3
        coefficients; those fall back to the spec's per-byte charges
        plus the population's mean CPU -- the oracle's own formula.
        """
        spec = spec or ClusterSpec()
        sim = ClusterSimulator(spec)
        coefs: dict[str, tuple[float, float, float]] = {}
        for kind in ("map", "reduce"):
            pop = [p for p in profiles if p.kind == kind]
            if len(pop) >= 3:
                rows = [cls._features(p) for p in pop]
                y = [sim.map_task_duration(p) if kind == "map"
                     else sim.reduce_task_duration(p) for p in pop]
                a, b, c = _lstsq(rows, y)
            else:
                # Oracle formula directly: bytes over bandwidths plus
                # mean scaled CPU (exact when CPU is uniform).
                mean_cpu = (sum(p.total_cpu for p in pop) / len(pop)
                            / spec.cpu_scale) if pop else 0.0
                per_disk = 1.0 / spec.disk_bandwidth
                if kind == "map":
                    a, b, c = per_disk, per_disk, mean_cpu
                else:
                    a = per_disk + 1.0 / spec.network_bandwidth
                    b, c = per_disk, mean_cpu
            coefs[kind] = (a, b, c)
        return cls(spec, workload, coefs["map"], coefs["reduce"])

    # -------------------------------------------------------------- predict

    def _shuffle_total(self, ifile_block_bytes: int | None) -> float:
        """Total shuffle payload under a hypothetical block size.

        Only the *relative* framing overhead matters for ranking
        candidates: every block carries a fixed-size frame, so smaller
        blocks inflate the materialized bytes by ``overhead/block``.
        """
        w = self.workload
        if ifile_block_bytes is None or ifile_block_bytes <= 0:
            return float(w.shuffle_bytes)
        blocks = math.ceil(max(w.shuffle_bytes, 1) / ifile_block_bytes)
        base_blocks = (math.ceil(max(w.shuffle_bytes, 1)
                                 / w.ifile_block_bytes)
                       if w.ifile_block_bytes else 0)
        delta = (blocks - base_blocks) * _BLOCK_OVERHEAD_BYTES
        return float(max(w.shuffle_bytes + delta, 1))

    def predict(self, *, num_reducers: int | None = None,
                wave_size: int | None = None,
                sort_buffer_bytes: int | None = None,
                ifile_block_bytes: int | None = None) -> PhasePrediction:
        """Wall-clock under hypothetical knobs (defaults = as measured)."""
        w = self.workload
        reducers = (w.num_reducers if num_reducers is None
                    else num_reducers)
        sort_buffer = (w.sort_buffer_bytes if sort_buffer_bytes is None
                       else sort_buffer_bytes)
        if reducers < 1:
            raise ValueError(f"num_reducers must be >= 1, got {reducers}")
        if sort_buffer < 1:
            raise ValueError(
                f"sort_buffer_bytes must be >= 1, got {sort_buffer}")

        shuffle_total = self._shuffle_total(ifile_block_bytes)
        input_per_map = w.input_bytes / w.num_maps
        raw_per_map = w.raw_map_output_bytes / w.num_maps
        shuffle_per_map = shuffle_total / w.num_maps

        # Map-side local I/O: the final segments are always written
        # once; with more than one spill the runs are also written out
        # and read back for the spill merge.
        spills = max(1, math.ceil(raw_per_map / sort_buffer))
        map_io = shuffle_per_map if spills == 1 else 3.0 * shuffle_per_map
        a1, a2, a3 = self.map_coef
        map_d = a1 * input_per_map + a2 * map_io + a3

        # Reduce-side: each reducer merges one run per map; runs beyond
        # the merge factor pay on-disk merge passes (read + write).
        shuffle_per_reduce = shuffle_total / reducers
        run_bytes = shuffle_per_reduce / w.num_maps
        passes = plan_merge_passes(w.num_maps, w.merge_factor)
        merge_io = 2.0 * sum(take * run_bytes for take in passes)
        reduce_io = merge_io + w.output_bytes / reducers
        b1, b2, b3 = self.reduce_coef
        reduce_d = b1 * shuffle_per_reduce + b2 * reduce_io + b3

        map_slots = min(self.spec.map_slots if wave_size is None
                        else wave_size, self.spec.map_slots)
        if map_slots < 1:
            raise ValueError(f"wave_size must be >= 1, got {map_slots}")
        return PhasePrediction(
            map_seconds=_schedule([map_d] * w.num_maps, map_slots),
            reduce_seconds=_schedule([reduce_d] * reducers,
                                     self.spec.reduce_slots),
            map_task_seconds=map_d,
            reduce_task_seconds=reduce_d,
        )

    # ------------------------------------------------------------- validate

    def validate(self, profiles: list[TaskProfile]) -> dict[str, float]:
        """Prediction error against the simulator on a profile set.

        The model's contract is *phase* times (the scheduler shapes
        waves, not individual tasks), so the headline
        ``mean_abs_pct_error`` averages the absolute per-phase errors.
        Per-task error is reported separately as a diagnostic: task CPU
        varies in ways no byte feature can carry, so it is expected to
        be much looser than the phase aggregate.
        """
        sim = ClusterSimulator(self.spec)
        task_errors: list[float] = []
        phase: dict[str, list[float]] = {"map": [0.0, 0.0],
                                         "reduce": [0.0, 0.0]}
        for p in profiles:
            oracle = (sim.map_task_duration(p) if p.kind == "map"
                      else sim.reduce_task_duration(p))
            coef = self.map_coef if p.kind == "map" else self.reduce_coef
            feats = self._features(p)
            predicted = sum(c * f for c, f in zip(coef, feats))
            phase[p.kind][0] += predicted
            phase[p.kind][1] += oracle
            if oracle > 0:
                task_errors.append(abs(predicted - oracle) / oracle)
        out: dict[str, float] = {}
        phase_errors: list[float] = []
        for kind, (pred, oracle) in phase.items():
            err = 100.0 * (pred - oracle) / oracle if oracle else 0.0
            out[f"{kind}_pct_error"] = err
            if oracle:
                phase_errors.append(abs(err))
        out["mean_abs_pct_error"] = (
            sum(phase_errors) / len(phase_errors) if phase_errors else 0.0)
        out["task_mean_abs_pct_error"] = (
            100.0 * sum(task_errors) / len(task_errors)
            if task_errors else 0.0)
        return out

    # ------------------------------------------------------------- autotune

    def autotune(self) -> TunedKnobs:
        """Exhaustive grid search; defaults win unless beaten by >5%.

        The floor absorbs model error: a candidate predicted marginally
        faster than the defaults is statistically a tie, and shipping a
        tie as a recommendation risks a real-world regression.
        """
        w = self.workload
        default = self.predict()
        slots = self.spec.reduce_slots
        reducer_grid = sorted({w.num_reducers, 1, max(1, slots // 2),
                               slots, 2 * slots})
        buffer_grid = sorted({w.sort_buffer_bytes}
                             | {1 << p for p in range(16, 27, 2)})
        block_grid = [w.ifile_block_bytes, None, 1 << 20]
        wave_grid = sorted({self.spec.map_slots,
                            min(w.num_maps, self.spec.map_slots)})

        best = (default.total_seconds, None)
        for reducers in reducer_grid:
            for sort_buffer in buffer_grid:
                for block in block_grid:
                    for wave in wave_grid:
                        p = self.predict(
                            num_reducers=reducers, wave_size=wave,
                            sort_buffer_bytes=sort_buffer,
                            ifile_block_bytes=block)
                        if p.total_seconds < best[0]:
                            best = (p.total_seconds,
                                    (reducers, wave, sort_buffer, block))
        if (best[1] is None or best[0] >
                default.total_seconds * (1.0 - _IMPROVEMENT_FLOOR)):
            return TunedKnobs(
                num_reducers=w.num_reducers,
                wave_size=self.spec.map_slots,
                sort_buffer_bytes=w.sort_buffer_bytes,
                ifile_block_bytes=w.ifile_block_bytes,
                predicted_seconds=default.total_seconds,
                default_seconds=default.total_seconds)
        reducers, wave, sort_buffer, block = best[1]
        return TunedKnobs(
            num_reducers=reducers, wave_size=wave,
            sort_buffer_bytes=sort_buffer, ifile_block_bytes=block,
            predicted_seconds=best[0],
            default_seconds=default.total_seconds)


def estimate_peak_memory(workload: WorkloadSummary, *,
                         num_workers: int,
                         max_inflight_bytes: int | None = None) -> int:
    """Priced peak resident bytes of one job: the cost model's memory
    term, consumed by the service's admission controller.

    An upper bound from the same byte-level ledger sites the runtime
    charges:

    * a **map** worker holds at most one sort buffer (``flush`` rents
      exactly the buffered bytes, bounded by ``sort_buffer_bytes``);
    * a **reduce** worker holds its in-flight fetch window (priced
      materialized bytes; the whole per-reduce shuffle share when no
      window bounds it) plus the decoded runs of the merge (raw
      key+value bytes, approximated by the per-reduce share of the raw
      map output).

    Every worker slot is priced at the *worse* of the two roles -- the
    admission controller cannot know the map/reduce mix of the moment,
    and overcommit is the failure mode being priced out.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    w = workload
    map_peak = w.sort_buffer_bytes
    shuffle_per_reduce = math.ceil(w.shuffle_bytes / max(1, w.num_reducers))
    window = (min(max_inflight_bytes, shuffle_per_reduce)
              if max_inflight_bytes is not None else shuffle_per_reduce)
    decoded_per_reduce = math.ceil(w.raw_map_output_bytes
                                   / max(1, w.num_reducers))
    reduce_peak = window + decoded_per_reduce
    return num_workers * max(map_peak, reduce_peak, 1)


def autotune_from_result(result, job,
                         spec: ClusterSpec | None = None) -> TunedKnobs:
    """The programmatic autotune hook: fit on a finished run and
    recommend knobs for the next one.  Callers apply a returned knob
    only when the corresponding flag was omitted -- explicit flags
    always win."""
    workload = WorkloadSummary.from_result(result, job)
    model = CostModel.fit(result.task_profiles, workload, spec)
    return model.autotune()
