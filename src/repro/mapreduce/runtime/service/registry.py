"""Crash-safe job registry: the daemon's durable source of truth.

Every accepted job owns one directory under ``<root>/jobs/``:

* ``spec.json`` -- the CRC-enveloped :class:`~repro.mapreduce.runtime.
  service.workloads.JobSpec`.  Written atomically *before* the
  submitter hears "accepted"; its presence **is** acceptance, so a
  daemon SIGKILLed one instruction after replying has already promised
  nothing it cannot keep.
* ``state.json`` -- the CRC-enveloped current state
  (``QUEUED``/``RUNNING``/``DONE``/``FAILED``/``CANCELLED`` plus a
  detail string), re-committed atomically per transition.
* ``events.jsonl`` -- an append-only event log, one CRC-enveloped JSON
  line per event.  Appends are not atomic (that is the point: cheap),
  so readers verify each line's CRC and stop at the first torn tail --
  a half-appended line after a crash costs that one event, never the
  log.
* ``recovery/`` -- the runner's checkpoint manifest directory
  (:mod:`~repro.mapreduce.runtime.recovery`); this is what lets a
  RUNNING job resume mid-flight after a daemon crash.
* ``result.pkl`` -- the durable output + counters, CRC-enveloped and
  committed **before** the DONE transition: observing DONE implies the
  result is readable.

The same envelope discipline as the runner's manifest (store
``crc32(body)`` beside the body; a mismatch means "damaged", distinct
from "absent") -- reused rather than re-invented so one set of
corruption tests covers both layers.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import threading
import time
import zlib
from typing import Any

from repro.mapreduce.runtime.service.workloads import JobSpec
from repro.util.fsio import atomic_write_bytes, fsync_file

__all__ = ["JOB_STATES", "JobRecord", "JobRegistry"]

JOB_STATES = ("QUEUED", "RUNNING", "DONE", "FAILED", "CANCELLED")

#: states the recovery scan must pick back up after a daemon crash
RESUMABLE_STATES = ("QUEUED", "RUNNING")

SPEC_NAME = "spec.json"
STATE_NAME = "state.json"
EVENTS_NAME = "events.jsonl"
RESULT_NAME = "result.pkl"
RECOVERY_DIRNAME = "recovery"

#: result envelope: magic + crc32 + length, then the pickle body
_RESULT_HEADER = struct.Struct(">4sII")
_RESULT_MAGIC = b"RJR1"


def _envelope(obj: Any) -> bytes:
    body = json.dumps(obj, sort_keys=True).encode("utf-8")
    return json.dumps({"crc": zlib.crc32(body),
                       "body": body.decode("utf-8")}).encode("utf-8")


def _open_envelope(raw: bytes) -> Any | None:
    """Decode one CRC envelope; ``None`` for torn or damaged bytes."""
    try:
        outer = json.loads(raw.decode("utf-8"))
        body = str(outer["body"]).encode("utf-8")
        if zlib.crc32(body) != int(outer["crc"]):
            return None
        return json.loads(body.decode("utf-8"))
    except (KeyError, TypeError, ValueError, UnicodeDecodeError):
        return None


class JobRecord:
    """Handle on one job's durable directory."""

    def __init__(self, job_id: str, directory: str) -> None:
        self.job_id = job_id
        self.dir = directory
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ paths

    @property
    def recovery_dir(self) -> str:
        return os.path.join(self.dir, RECOVERY_DIRNAME)

    @property
    def result_path(self) -> str:
        return os.path.join(self.dir, RESULT_NAME)

    # ------------------------------------------------------------------- spec

    def save_spec(self, spec: JobSpec) -> None:
        atomic_write_bytes(os.path.join(self.dir, SPEC_NAME),
                           _envelope(spec.to_json()))

    def load_spec(self) -> JobSpec | None:
        """The accepted spec; ``None`` if absent or damaged."""
        try:
            with open(os.path.join(self.dir, SPEC_NAME), "rb") as fh:
                raw = fh.read()
        except OSError:
            return None
        obj = _open_envelope(raw)
        if obj is None:
            return None
        try:
            return JobSpec.from_json(obj)
        except ValueError:
            return None

    # ------------------------------------------------------------------ state

    def set_state(self, state: str, detail: str = "") -> None:
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        with self._lock:
            atomic_write_bytes(
                os.path.join(self.dir, STATE_NAME),
                _envelope({"state": state, "detail": detail,
                           "updated": time.time()}))
        self.append_event("state", f"{state}: {detail}" if detail else state)

    def state(self) -> tuple[str, str]:
        """Current ``(state, detail)``; a missing or damaged state file
        reads as QUEUED (the spec alone is a valid accepted job)."""
        try:
            with open(os.path.join(self.dir, STATE_NAME), "rb") as fh:
                raw = fh.read()
        except OSError:
            return "QUEUED", ""
        obj = _open_envelope(raw)
        if not isinstance(obj, dict) or obj.get("state") not in JOB_STATES:
            return "QUEUED", "state file damaged; treated as queued"
        return str(obj["state"]), str(obj.get("detail", ""))

    # ----------------------------------------------------------------- events

    def append_event(self, kind: str, detail: str = "") -> None:
        """Append one CRC-enveloped event line (fsynced, not atomic)."""
        body = json.dumps({"ts": time.time(), "kind": kind,
                           "detail": detail}, sort_keys=True)
        line = json.dumps({"crc": zlib.crc32(body.encode("utf-8")),
                           "body": body}) + "\n"
        with self._lock:
            with open(os.path.join(self.dir, EVENTS_NAME), "a",
                      encoding="utf-8") as fh:
                fh.write(line)
                fsync_file(fh)

    def events(self) -> list[dict[str, Any]]:
        """Every intact event, in append order.

        Reading stops at the first torn line: a crash mid-append can
        only damage the tail, so everything before it is trustworthy
        and everything after it cannot exist.
        """
        out: list[dict[str, Any]] = []
        try:
            with open(os.path.join(self.dir, EVENTS_NAME), "r",
                      encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return out
        for line in lines:
            obj = _open_envelope(line.strip().encode("utf-8"))
            if not isinstance(obj, dict):
                break
            out.append(obj)
        return out

    def events_since(self, offset: int = 0) -> tuple[list[dict[str, Any]],
                                                     int]:
        """Intact events at/after byte ``offset``, plus the next offset.

        Built for ``repro events --follow``: a torn tail -- a line the
        daemon is mid-append on, or one damaged by a crash -- is *not*
        consumed.  The returned offset stays just before it, so the
        next poll rereads the line once it is complete; a permanently
        damaged line simply pins the tail (everything before it was
        already delivered).
        """
        out: list[dict[str, Any]] = []
        try:
            with open(os.path.join(self.dir, EVENTS_NAME), "rb") as fh:
                fh.seek(offset)
                while True:
                    pos = fh.tell()
                    line = fh.readline()
                    if not line or not line.endswith(b"\n"):
                        return out, pos
                    obj = _open_envelope(line.strip())
                    if not isinstance(obj, dict):
                        return out, pos
                    out.append(obj)
        except OSError:
            return out, offset

    # ----------------------------------------------------------------- result

    def save_result(self, output: Any, counters: Any) -> None:
        """Durably commit the job's deliverable before DONE is claimed."""
        body = pickle.dumps({"output": output, "counters": counters})
        blob = _RESULT_HEADER.pack(_RESULT_MAGIC, zlib.crc32(body),
                                   len(body)) + body
        atomic_write_bytes(self.result_path, blob)

    def load_result(self) -> dict[str, Any] | None:
        """The committed result; ``None`` if absent or damaged."""
        try:
            with open(self.result_path, "rb") as fh:
                raw = fh.read()
        except OSError:
            return None
        if len(raw) < _RESULT_HEADER.size:
            return None
        magic, crc, length = _RESULT_HEADER.unpack_from(raw)
        body = raw[_RESULT_HEADER.size:]
        if magic != _RESULT_MAGIC or len(body) != length \
                or zlib.crc32(body) != crc:
            return None
        try:
            return pickle.loads(body)
        except Exception:
            return None

    def summary(self) -> dict[str, Any]:
        """One status row for the CLI / REST listing."""
        state, detail = self.state()
        spec = self.load_spec()
        return {
            "job_id": self.job_id,
            "tenant": spec.tenant if spec is not None else "?",
            "query": spec.query if spec is not None else "?",
            "state": state,
            "detail": detail,
            "events": len(self.events()),
            "has_result": self.load_result() is not None,
        }


class JobRegistry:
    """Allocate, persist, and recover job records under one root."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.jobs_dir = os.path.join(root, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._next = self._scan_next_id()

    def _scan_next_id(self) -> int:
        highest = -1
        for name in os.listdir(self.jobs_dir):
            if name.startswith("j") and name[1:].isdigit():
                highest = max(highest, int(name[1:]))
        return highest + 1

    # --------------------------------------------------------------- creation

    def create(self, spec: JobSpec) -> JobRecord:
        """Durably accept one submission.

        The spec commit is the acceptance point: once ``spec.json``
        exists the job survives any daemon crash.  The id allocation
        uses a directory-create as the lock-free uniqueness check, so
        two submitter threads can never share an id.
        """
        with self._lock:
            while True:
                job_id = f"j{self._next:06d}"
                self._next += 1
                directory = os.path.join(self.jobs_dir, job_id)
                try:
                    os.makedirs(directory)
                except FileExistsError:  # pragma: no cover - stale dir
                    continue
                break
        record = JobRecord(job_id, directory)
        record.save_spec(spec)
        record.set_state("QUEUED", "accepted")
        return record

    # --------------------------------------------------------------- recovery

    def get(self, job_id: str) -> JobRecord | None:
        directory = os.path.join(self.jobs_dir, job_id)
        if not os.path.isdir(directory):
            return None
        return JobRecord(job_id, directory)

    def load_all(self) -> list[JobRecord]:
        """Every accepted job (a readable spec), in id order.

        A directory without an intact spec is a submission the daemon
        died inside *before* acceptance -- the submitter never heard
        yes, so it is skipped, not resurrected.
        """
        out = []
        for name in sorted(os.listdir(self.jobs_dir)):
            record = self.get(name)
            if record is not None and record.load_spec() is not None:
                out.append(record)
        return out

    def resumable(self) -> list[JobRecord]:
        """Jobs a restarting daemon must pick back up (QUEUED/RUNNING)."""
        return [r for r in self.load_all()
                if r.state()[0] in RESUMABLE_STATES]
