"""Weighted deficit round-robin over per-tenant job queues.

Classic DRR (Shreedhar & Varghese) adapted from packets to jobs: each
tenant owns a FIFO queue; a round visits tenants in stable order,
grows each non-empty tenant's *deficit* by ``weight * quantum``, and
dispatches that tenant's head job if its predicted cost fits the
accumulated deficit.  Costs come from the admission-time prediction,
so an expensive job simply takes its tenant several rounds of credit
-- during which the other tenants dispatch -- instead of a turnstile
count that lets one tenant's huge jobs dominate the pool.

Properties the tests pin down:

* **Work conservation** -- ``pop`` never returns ``None`` while any
  job is queued (a tenant's deficit keeps growing until its head job
  fits, and an idle queue's deficit resets to zero, so credit cannot
  be hoarded).
* **Weighted shares** -- over a long dispatch sequence with saturated
  queues, tenant dispatch *cost* converges on the weight ratio.
* **FIFO within a tenant** -- jobs of one tenant never reorder.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["DeficitScheduler"]


class DeficitScheduler:
    """Thread-safe weighted-DRR queue of ``(job_id, cost)`` entries."""

    def __init__(self, quantum_seconds: float = 5.0) -> None:
        if quantum_seconds <= 0:
            raise ValueError(
                f"quantum_seconds must be > 0, got {quantum_seconds}")
        self.quantum = quantum_seconds
        self._lock = threading.Lock()
        self._queues: dict[str, deque[tuple[str, float]]] = {}
        self._weights: dict[str, float] = {}
        self._deficit: dict[str, float] = {}
        #: stable round-robin order; rotation index survives pushes
        self._order: list[str] = []
        self._cursor = 0
        #: has the tenant at the cursor been granted this visit's quantum?
        self._credited = False

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        with self._lock:
            self._weights[tenant] = float(weight)

    # ------------------------------------------------------------------ queue

    def push(self, tenant: str, job_id: str, cost_seconds: float) -> None:
        with self._lock:
            if tenant not in self._queues:
                self._queues[tenant] = deque()
                self._deficit.setdefault(tenant, 0.0)
                self._order.append(tenant)
            self._queues[tenant].append((job_id, max(0.0, cost_seconds)))

    def pop(self) -> str | None:
        """Dispatch the next job id under weighted DRR; ``None`` if idle.

        The cursor *stays* on a tenant while its accumulated deficit
        still covers its head job -- that is what makes weights matter
        when jobs are cheaper than the quantum (a weight-3 tenant
        serves ~3 jobs per visit to a weight-1 tenant's 1).  The visit
        quantum is granted once per arrival (``_credited``), and the
        cursor only advances when the head job no longer fits.

        Bounded: every arrival at a non-empty tenant adds ``weight *
        quantum`` toward its head job, so a finite head cost is reached
        in finitely many rounds -- and the loop short-circuits the
        moment any head job fits.
        """
        with self._lock:
            if not any(self._queues.values()):
                return None
            while True:
                for _ in range(len(self._order)):
                    tenant = self._order[self._cursor % len(self._order)]
                    queue = self._queues.get(tenant)
                    if not queue:
                        # Idle tenants must not bank credit for later
                        # bursts (DRR's anti-hoarding rule).
                        self._deficit[tenant] = 0.0
                        self._advance()
                        continue
                    if not self._credited:
                        weight = self._weights.get(tenant, 1.0)
                        self._deficit[tenant] += weight * self.quantum
                        self._credited = True
                    job_id, cost = queue[0]
                    if self._deficit[tenant] >= cost:
                        queue.popleft()
                        self._deficit[tenant] -= cost
                        if not queue:
                            self._deficit[tenant] = 0.0
                            self._advance()
                        return job_id
                    self._advance()

    def _advance(self) -> None:
        """Move the cursor to the next tenant; its visit starts fresh."""
        self._cursor += 1
        self._credited = False

    def remove(self, job_id: str) -> bool:
        """Drop a queued job (cancellation); ``False`` if not queued."""
        with self._lock:
            for queue in self._queues.values():
                for entry in queue:
                    if entry[0] == job_id:
                        queue.remove(entry)
                        return True
        return False

    # ---------------------------------------------------------------- queries

    def queued_total(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def queued_for(self, tenant: str) -> int:
        with self._lock:
            queue = self._queues.get(tenant)
            return len(queue) if queue else 0
