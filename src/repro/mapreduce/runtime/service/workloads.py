"""Declarative job specs: what a tenant submits, and how the daemon
rebuilds the exact same work after a crash.

A submission cannot carry live Python objects (mappers close over
state, datasets hold arrays) -- and must not, because the daemon may
die and restart between accept and execute.  So a submission is a
:class:`JobSpec`: the *name* of a workload from a small deterministic
catalog plus its shape parameters (grid shape, seed, task counts,
optional fault plan).  ``build_workload`` maps a spec to the same
``(job, dataset)`` pair on every call in every process -- which is
what makes daemon-crash recovery byte-exact, and what lets the R6
harness compare a service-executed job against a solo serial run of
the *same spec*.

``estimate_workload`` derives the byte-level
:class:`~repro.mapreduce.runtime.costmodel.WorkloadSummary` a spec
implies, analytically -- admission control must price a job *before*
running it, from nothing but the spec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.mapreduce.job import SkipPolicy
from repro.mapreduce.runtime.costmodel import WorkloadSummary
from repro.mapreduce.runtime.fault import FaultInjector

__all__ = ["JobSpec", "build_workload", "build_injector",
           "estimate_workload"]

#: workload names the catalog can rebuild deterministically
CATALOG = ("histogram", "sliding_mean", "subset")


@dataclass(frozen=True)
class JobSpec:
    """One tenant submission: everything needed to rebuild the job.

    ``poison`` entries are ``(task_id, record)`` pairs injected as
    record-poison faults (paired with ``skip_budget`` for record
    skipping); ``fetch_faults`` entries are ``(map_id, reduce_id, op)``
    triples corrupting shuffle fetches.  Both shapes match the serial
    runner's fault support, so a faulted service job still has a
    byte-comparable solo baseline.
    """

    tenant: str
    query: str                       # catalog name
    shape: tuple[int, ...] = (12, 12, 12)
    seed: int = 7
    bins: int = 16                   # histogram only
    window: int = 3                  # sliding_mean only
    num_maps: int = 4
    num_reducers: int = 2
    #: per-task memory ledger capacity (bytes); overruns take the
    #: degrade-on-retry ladder instead of killing the job
    memory_budget: int | None = None
    #: reduce-side fetch byte window (bytes of in-flight shuffle data)
    max_inflight_bytes: int | None = None
    skip_budget: int | None = None
    poison: tuple[tuple[str, int], ...] = field(default_factory=tuple)
    fetch_faults: tuple[tuple[str, str, str], ...] = field(
        default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.tenant or "/" in self.tenant or "." in self.tenant:
            raise ValueError(f"bad tenant name {self.tenant!r}")
        if self.query not in CATALOG:
            raise ValueError(
                f"unknown workload {self.query!r}; catalog: {CATALOG}")
        if not self.shape or any(int(s) < 1 for s in self.shape):
            raise ValueError(f"shape must be positive, got {self.shape}")
        if self.num_maps < 1 or self.num_reducers < 1:
            raise ValueError("num_maps and num_reducers must be >= 1")
        if self.bins < 1:
            raise ValueError(f"bins must be >= 1, got {self.bins}")
        if self.memory_budget is not None and self.memory_budget < 256:
            raise ValueError(
                f"memory_budget must be >= 256 (one IFile block), "
                f"got {self.memory_budget}")
        if self.max_inflight_bytes is not None \
                and self.max_inflight_bytes < 1:
            raise ValueError(
                f"max_inflight_bytes must be >= 1, "
                f"got {self.max_inflight_bytes}")
        if self.query == "subset" and any(int(s) < 3 for s in self.shape):
            raise ValueError(
                f"subset selects the interior box, so every extent must "
                f"be >= 3; got {self.shape}")
        if self.poison and self.skip_budget is not None \
                and self.query != "subset":
            # Skipping bisects via Mapper.map_range, which only the
            # subset mappers implement; accepting a job whose skip
            # policy can never engage would be a lie.
            raise ValueError(
                f"record skipping requires a range-mappable query "
                f"('subset'), not {self.query!r}")

    # ------------------------------------------------------------- transport

    def to_json(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "query": self.query,
            "shape": list(self.shape),
            "seed": self.seed,
            "bins": self.bins,
            "window": self.window,
            "num_maps": self.num_maps,
            "num_reducers": self.num_reducers,
            "memory_budget": self.memory_budget,
            "max_inflight_bytes": self.max_inflight_bytes,
            "skip_budget": self.skip_budget,
            "poison": [list(p) for p in self.poison],
            "fetch_faults": [list(f) for f in self.fetch_faults],
        }

    @classmethod
    def from_json(cls, obj: dict[str, Any]) -> "JobSpec":
        try:
            return cls(
                tenant=str(obj["tenant"]),
                query=str(obj["query"]),
                shape=tuple(int(s) for s in obj.get("shape", (12, 12, 12))),
                seed=int(obj.get("seed", 7)),
                bins=int(obj.get("bins", 16)),
                window=int(obj.get("window", 3)),
                num_maps=int(obj.get("num_maps", 4)),
                num_reducers=int(obj.get("num_reducers", 2)),
                memory_budget=(None if obj.get("memory_budget") is None
                               else int(obj["memory_budget"])),
                max_inflight_bytes=(
                    None if obj.get("max_inflight_bytes") is None
                    else int(obj["max_inflight_bytes"])),
                skip_budget=(None if obj.get("skip_budget") is None
                             else int(obj["skip_budget"])),
                poison=tuple((str(t), int(r))
                             for t, r in obj.get("poison", [])),
                fetch_faults=tuple(
                    (str(m), str(r), str(op))
                    for m, r, op in obj.get("fetch_faults", [])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad job spec: {exc!r}") from None

    @property
    def cells(self) -> int:
        return math.prod(int(s) for s in self.shape)


def build_workload(spec: JobSpec) -> tuple[Any, Any]:
    """``(job, dataset)`` for a spec -- deterministic across processes.

    Every field that shapes the data or the task functions comes from
    the spec, so rebuilding after a daemon crash reproduces the same
    job fingerprint and the same output bytes.
    """
    from repro.scidata.generator import integer_grid

    dataset = integer_grid(spec.shape, name="values", seed=spec.seed)
    overrides: dict[str, Any] = dict(num_map_tasks=spec.num_maps,
                                     num_reducers=spec.num_reducers)
    if spec.skip_budget is not None:
        overrides["skipping"] = SkipPolicy(skip_budget=spec.skip_budget)
    if spec.query == "histogram":
        from repro.queries.histogram import HistogramQuery

        query = HistogramQuery(dataset, "values", bins=spec.bins)
        job = query.build_job("plain", **overrides)
    elif spec.query == "subset":
        from repro.queries.subset import BoxSubsetQuery
        from repro.scidata.slab import Slab

        # The interior box: fully determined by the shape, so the spec
        # needs no extra geometry fields.
        box = Slab(tuple(1 for _ in spec.shape),
                   tuple(int(s) - 2 for s in spec.shape))
        query = BoxSubsetQuery(dataset, "values", box)
        job = query.build_job("plain", **overrides)
    else:  # sliding_mean (catalog-validated in __post_init__)
        from repro.queries.sliding_mean import SlidingMeanQuery

        query = SlidingMeanQuery(dataset, "values", window=spec.window)
        job = query.build_job("plain", **overrides)
    return job, dataset


def build_injector(spec: JobSpec) -> FaultInjector | None:
    """The spec's fault plan as a :class:`FaultInjector` (or ``None``).

    Only data-shaped faults (record poison, fetch corruption) are
    exposed: they are exactly the faults the serial runner also
    understands, keeping every service job solo-comparable.
    """
    if not spec.poison and not spec.fetch_faults:
        return None
    injector = FaultInjector()
    for task_id, record in spec.poison:
        injector.poison(task_id, record)
    for map_id, reduce_id, op in spec.fetch_faults:
        injector.fetch(map_id, reduce_id, op=op)
    return injector


def estimate_workload(spec: JobSpec) -> WorkloadSummary:
    """Analytic byte totals for admission pricing.

    Deliberately coarse -- admission compares predicted seconds against
    configured budgets, so only the scaling with spec size must be
    right, not the constant.  Formulas follow each query's emission
    pattern: a histogram map emits at most ``bins`` 12-byte pairs; a
    sliding mean emits ``window**ndim`` pairs per cell.
    """
    cells = spec.cells
    input_bytes = cells * 4  # int32 grid
    if spec.query == "histogram":
        pair = 4 + 8  # Int32 key + Int64 count
        raw = min(cells, spec.bins * spec.num_maps) * pair
        output = spec.bins * pair
    elif spec.query == "subset":
        pair = 8 + 4  # CellKey (~8B packed) + int32 value
        box = math.prod(int(s) - 2 for s in spec.shape)
        raw = max(box, 1) * pair
        output = raw
    else:
        ndim = len(spec.shape)
        pair = 8 + 12  # CellKey (~8B packed) + (sum, count) pair
        raw = cells * (spec.window ** ndim) * pair
        output = cells * pair
    raw = max(raw, 1)
    return WorkloadSummary(
        num_maps=spec.num_maps,
        num_reducers=spec.num_reducers,
        input_bytes=max(input_bytes, 1),
        raw_map_output_bytes=raw,
        shuffle_bytes=raw,  # combiner savings ignored: price the worst case
        output_bytes=max(output, 1),
        sort_buffer_bytes=1 << 20,
        merge_factor=10,
        ifile_block_bytes=None,
    )
