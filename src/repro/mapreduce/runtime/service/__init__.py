"""Multi-tenant job service: a crash-safe daemon over the runtime.

One long-lived process (``repro serve``) owns the machine's worker
slots (:class:`~repro.mapreduce.runtime.pool.WorkerPool`), accepts job
submissions from many tenants over a local REST endpoint, prices each
submission with the fitted cost model before admitting it, schedules
admitted jobs with weighted deficit round-robin fair sharing, and
executes them on the shared pool with per-tenant concurrent-task
quotas.  Every accepted job is durably registered (CRC-enveloped spec,
state, and event records) *before* the submitter hears "accepted", so
a SIGKILLed daemon restarts with zero accepted jobs lost: queued jobs
re-queue, running jobs resume from their recovery manifests, and the
resumed outputs and counters are byte-identical to an uninterrupted
run (the R6 chaos soak pins this down).

Overload is explicit, never silent: a full queue, an over-budget job,
or an over-committed cluster rejects the submission with a structured
429/413-style error the client can act on.
"""

from repro.mapreduce.runtime.service.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejected,
)
from repro.mapreduce.runtime.service.daemon import JobService, ServiceConfig
from repro.mapreduce.runtime.service.fairshare import DeficitScheduler
from repro.mapreduce.runtime.service.registry import (
    JOB_STATES,
    JobRecord,
    JobRegistry,
)
from repro.mapreduce.runtime.service.workloads import (
    JobSpec,
    build_injector,
    build_workload,
    estimate_workload,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRejected",
    "DeficitScheduler",
    "JOB_STATES",
    "JobRecord",
    "JobRegistry",
    "JobService",
    "JobSpec",
    "ServiceConfig",
    "build_injector",
    "build_workload",
    "estimate_workload",
]
