"""Admission control: overload is a structured *no*, never a silent drop.

Every submission is priced before it is accepted: the spec's analytic
:class:`~repro.mapreduce.runtime.costmodel.WorkloadSummary` runs
through the fitted :class:`~repro.mapreduce.runtime.costmodel.
CostModel` (refitted from the most recent completed job's task
profiles; the spec-bandwidth fallback prices the very first job, so
admission never needs a warm-up pass).  The controller then enforces
four budgets, cheapest check first:

* **global queue bound** -- total queued jobs across tenants;
* **per-tenant queue bound** -- one tenant cannot own the whole queue;
* **per-job cost cap** -- a single job predicted to exceed the cap is
  rejected outright (413-style: resubmitting it unchanged can never
  succeed, so ``retry_after`` is null);
* **outstanding-cost cap** -- the predicted seconds of everything
  admitted-but-unfinished; beyond it the cluster is over-committed and
  new work is shed (429-style, with a ``retry_after`` hint derived
  from the backlog).

A rejection raises :class:`AdmissionRejected` carrying a JSON-ready
payload (code, HTTP status, message, retry hint); the REST layer
returns it verbatim.  Acceptance charges the ledger; completion (or
cancellation) credits it back.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

__all__ = ["AdmissionConfig", "AdmissionController", "AdmissionRejected"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Budgets the controller enforces (service-config supplied)."""

    max_queued: int = 16
    max_queued_per_tenant: int = 8
    #: predicted seconds above which a single job is unservable
    max_job_seconds: float = 600.0
    #: predicted seconds of admitted-but-unfinished work
    max_outstanding_seconds: float = 3600.0
    #: priced peak bytes of admitted-but-unfinished work; ``None``
    #: disables the memory budget (pre-memory-model behavior)
    max_outstanding_memory_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.max_queued < 1 or self.max_queued_per_tenant < 1:
            raise ValueError("queue bounds must be >= 1")
        if self.max_job_seconds <= 0 or self.max_outstanding_seconds <= 0:
            raise ValueError("cost caps must be > 0")
        if self.max_outstanding_memory_bytes is not None \
                and self.max_outstanding_memory_bytes < 1:
            raise ValueError("memory cap must be >= 1 or None")


class AdmissionRejected(RuntimeError):
    """A submission the service explicitly refused.

    ``payload`` is the structured error the REST layer serializes:
    ``code`` names the budget that fired, ``http_status`` follows the
    429/413/400 convention, ``retry_after`` is seconds (or ``None``
    when retrying the same submission cannot help).
    """

    def __init__(self, code: str, http_status: int, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.payload: dict[str, Any] = {
            "error": code,
            "http_status": http_status,
            "message": message,
            "retry_after": retry_after,
        }

    @property
    def http_status(self) -> int:
        return int(self.payload["http_status"])


class AdmissionController:
    """Bounded-queue, cost-capped gate in front of the fair scheduler."""

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        #: predicted seconds per admitted-but-unfinished job
        self._outstanding: dict[str, float] = {}
        #: priced peak bytes per admitted-but-unfinished job
        self._outstanding_memory: dict[str, int] = {}

    # ------------------------------------------------------------------ gate

    def admit(self, tenant: str, predicted_seconds: float,
              queued_total: int, queued_tenant: int,
              predicted_memory_bytes: int = 0) -> None:
        """Raise :class:`AdmissionRejected` unless every budget holds.

        ``queued_total``/``queued_tenant`` are the scheduler's current
        queue depths; the cost ledger is the controller's own.  Order
        matters: queue bounds are load shedding (retryable), the
        per-job cap is a property of the job itself (not retryable).
        """
        cfg = self.config
        if predicted_seconds > cfg.max_job_seconds:
            raise AdmissionRejected(
                "JOB_TOO_LARGE", 413,
                f"job predicted at {predicted_seconds:.1f}s exceeds the "
                f"per-job cap of {cfg.max_job_seconds:.1f}s; shrink the "
                f"workload or raise REPRO_SERVICE_MAX_JOB_SECONDS",
                retry_after=None)
        if queued_total >= cfg.max_queued:
            raise AdmissionRejected(
                "OVERLOADED", 429,
                f"queue full ({queued_total}/{cfg.max_queued} jobs)",
                retry_after=self._retry_hint())
        if queued_tenant >= cfg.max_queued_per_tenant:
            raise AdmissionRejected(
                "TENANT_OVERLOADED", 429,
                f"tenant {tenant!r} queue full "
                f"({queued_tenant}/{cfg.max_queued_per_tenant} jobs)",
                retry_after=self._retry_hint())
        with self._lock:
            outstanding = sum(self._outstanding.values())
            if outstanding + predicted_seconds > cfg.max_outstanding_seconds:
                raise AdmissionRejected(
                    "OVERCOMMITTED", 429,
                    f"admitting {predicted_seconds:.1f}s would take "
                    f"outstanding predicted work to "
                    f"{outstanding + predicted_seconds:.1f}s "
                    f"(cap {cfg.max_outstanding_seconds:.1f}s)",
                    retry_after=self._retry_hint_locked())
            cap = cfg.max_outstanding_memory_bytes
            if cap is not None:
                mem = sum(self._outstanding_memory.values())
                if mem + predicted_memory_bytes > cap:
                    raise AdmissionRejected(
                        "OVERCOMMITTED_MEMORY", 429,
                        f"admitting a job priced at "
                        f"{predicted_memory_bytes} peak bytes would take "
                        f"outstanding priced memory to "
                        f"{mem + predicted_memory_bytes} bytes "
                        f"(cap {cap}); the machine is memory-bound, not "
                        f"slot-bound",
                        retry_after=self._retry_hint_locked())

    # ---------------------------------------------------------------- ledger

    def charge(self, job_id: str, predicted_seconds: float,
               predicted_memory_bytes: int = 0) -> None:
        with self._lock:
            self._outstanding[job_id] = max(0.0, predicted_seconds)
            if predicted_memory_bytes > 0:
                self._outstanding_memory[job_id] = predicted_memory_bytes

    def credit(self, job_id: str) -> None:
        """Finished, failed, or cancelled: its cost no longer counts."""
        with self._lock:
            self._outstanding.pop(job_id, None)
            self._outstanding_memory.pop(job_id, None)

    def outstanding_seconds(self) -> float:
        with self._lock:
            return sum(self._outstanding.values())

    def outstanding_memory_bytes(self) -> int:
        with self._lock:
            return sum(self._outstanding_memory.values())

    # ----------------------------------------------------------------- hints

    def _retry_hint(self) -> float:
        with self._lock:
            return self._retry_hint_locked()

    def _retry_hint_locked(self) -> float:
        """Crude but honest: if the backlog drained perfectly, when
        would capacity plausibly open?  Floored so clients never
        hot-retry a loaded service."""
        outstanding = sum(self._outstanding.values())
        jobs = max(1, len(self._outstanding))
        return max(1.0, outstanding / jobs / 2.0)
