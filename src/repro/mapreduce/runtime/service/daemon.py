"""The job daemon: warm pool, fair scheduler, crash-safe execution.

:class:`JobService` ties the service layers together around the one
ownership inversion this package exists for: the **service** owns the
:class:`~repro.mapreduce.runtime.pool.WorkerPool` (slots stay warm
across jobs; per-tenant quotas cap concurrent tasks), and every
:class:`~repro.mapreduce.runtime.runner.ParallelJobRunner` it starts
*borrows* capacity from it.

Lifecycle of one submission::

    submit(spec) -> price (cost model) -> admit (budgets) ->
    registry.create (durable accept) -> DRR queue ->
    executor thread -> RUNNING -> runner (shared pool, per-job
    recovery manifest) -> result.pkl committed -> DONE

Crash safety is delegated downward on purpose: acceptance durability
is the registry's spec commit, execution durability is the runner's
recovery manifest, result durability is the CRC-enveloped result file
committed *before* the DONE transition.  The daemon itself keeps no
state worth saving -- ``recover()`` rebuilds the queue and the cost
ledger from the registry alone, which is why ``kill -9`` on the
daemon loses nothing.

Cost-model pricing starts from the spec-bandwidth fallback (no
profiles) and is refitted from the most recent completed job's task
profiles, so admission predictions sharpen as the service runs.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Any

from repro.mapreduce.metrics import TaskProfile
from repro.mapreduce.runtime.costmodel import CostModel, estimate_peak_memory
from repro.mapreduce.runtime.pool import WorkerPool
from repro.mapreduce.runtime.scheduler import JobCancelledError
from repro.mapreduce.runtime.service.admission import (
    AdmissionConfig,
    AdmissionController,
)
from repro.mapreduce.runtime.service.fairshare import DeficitScheduler
from repro.mapreduce.runtime.service.registry import JobRecord, JobRegistry
from repro.mapreduce.runtime.service.workloads import (
    JobSpec,
    build_injector,
    build_workload,
    estimate_workload,
)

__all__ = ["ServiceConfig", "JobService"]


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = int(raw)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = float(raw)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def _parse_tenants(raw: str) -> dict[str, tuple[float, int, int | None]]:
    """``name:weight:quota[:membytes],...`` -> {name: (weight, quota, mem)}.

    The fourth field caps the tenant's outstanding *priced* job memory
    (bytes); omitted means the tenant is bounded only by the global
    memory cap (if any).
    """
    out: dict[str, tuple[float, int, int | None]] = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) not in (3, 4):
            raise ValueError(
                f"tenant entry {part!r} is not name:weight:quota[:membytes]")
        name, weight, quota = fields[:3]
        mem = int(fields[3]) if len(fields) == 4 else None
        out[name] = (float(weight), int(quota), mem)
    return out


@dataclass
class ServiceConfig:
    """Everything the daemon needs, resolvable from REPRO_SERVICE_*."""

    root: str
    max_workers: int | None = None
    #: concurrently *executing* jobs (each borrows pool slots)
    executors: int = 2
    #: tenant -> (DRR weight, concurrent-task quota, memory quota|None)
    tenants: dict[str, tuple[float, int, int | None]] = field(
        default_factory=dict)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    quantum_seconds: float = 5.0
    #: extra ParallelJobRunner keywords applied to every job
    runner_kwargs: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_env(cls, root: str) -> "ServiceConfig":
        """Resolve the documented REPRO_SERVICE_* knobs (README table)."""
        admission = AdmissionConfig(
            max_queued=_env_int("REPRO_SERVICE_MAX_QUEUE", 16),
            max_queued_per_tenant=_env_int(
                "REPRO_SERVICE_TENANT_QUEUE", 8),
            max_job_seconds=_env_float(
                "REPRO_SERVICE_MAX_JOB_SECONDS", 600.0),
            max_outstanding_seconds=_env_float(
                "REPRO_SERVICE_MAX_OUTSTANDING_SECONDS", 3600.0),
            max_outstanding_memory_bytes=(
                _env_int("REPRO_SERVICE_MAX_MEMORY", 0, minimum=1)
                if os.environ.get("REPRO_SERVICE_MAX_MEMORY") else None),
        )
        raw_workers = os.environ.get("REPRO_SERVICE_WORKERS")
        return cls(
            root=root,
            max_workers=int(raw_workers) if raw_workers else None,
            executors=_env_int("REPRO_SERVICE_EXECUTORS", 2),
            tenants=_parse_tenants(
                os.environ.get("REPRO_SERVICE_TENANTS", "")),
            admission=admission,
            quantum_seconds=_env_float("REPRO_SERVICE_QUANTUM", 5.0),
        )


class JobService:
    """The daemon's engine; the REST layer is a thin shim over this."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        os.makedirs(config.root, exist_ok=True)
        self.registry = JobRegistry(config.root)
        self.pool = WorkerPool(max_workers=config.max_workers)
        self.admission = AdmissionController(config.admission)
        self.scheduler = DeficitScheduler(
            quantum_seconds=config.quantum_seconds)
        for tenant, (weight, quota, mem) in config.tenants.items():
            self.scheduler.set_weight(tenant, weight)
            self.pool.set_quota(tenant, quota)
            if mem is not None:
                self.pool.set_memory_quota(tenant, mem)
        self._cond = threading.Condition()
        #: job_id -> (priced peak bytes, tenant) for the pool ledger
        self._job_memory: dict[str, tuple[int, str]] = {}
        self._memory_lock = threading.Lock()
        self._stopping = False
        self._threads: list[threading.Thread] = []
        #: per-job cooperative cancellation
        self._cancel: dict[str, threading.Event] = {}
        self._cancel_lock = threading.Lock()
        #: most recent completed job's profiles, for cost-model refits
        self._fit_profiles: list[TaskProfile] = []
        self._fit_lock = threading.Lock()

    # -------------------------------------------------------------- lifecycle

    def start(self) -> int:
        """Recover the durable backlog, then start the executor pool.

        Returns the number of jobs recovered from a previous daemon.
        """
        recovered = self.recover()
        for i in range(max(1, self.config.executors)):
            thread = threading.Thread(target=self._executor_loop,
                                      name=f"job-executor-{i}", daemon=True)
            thread.start()
            self._threads.append(thread)
        return recovered

    def recover(self) -> int:
        """Re-enqueue every accepted-but-unfinished job from disk.

        QUEUED jobs simply re-queue; RUNNING jobs (the daemon died
        mid-flight) re-queue with their recovery manifests intact, so
        the runner adopts completed tasks instead of redoing them.
        Re-pricing from the spec rebuilds the admission ledger the
        crash erased.
        """
        recovered = 0
        for record in self.registry.resumable():
            spec = record.load_spec()
            if spec is None:  # pragma: no cover - load_all filtered these
                continue
            state, _ = record.state()
            predicted = self.price(spec)
            mem = self.price_memory(spec)
            self.admission.charge(record.job_id, predicted,
                                  predicted_memory_bytes=mem)
            # Forced: a durably accepted job must never be re-rejected
            # by its own tenant quota on restart.
            self.pool.memory.charge(mem, site="jobs", owner=spec.tenant,
                                    force=True)
            with self._memory_lock:
                self._job_memory[record.job_id] = (mem, spec.tenant)
            if state == "RUNNING":
                record.append_event(
                    "recovered", "daemon restarted mid-run; job re-queued "
                    "to resume from its manifest")
                record.set_state("QUEUED", "re-queued after daemon restart")
            self.scheduler.push(spec.tenant, record.job_id, predicted)
            recovered += 1
        if recovered:
            with self._cond:
                self._cond.notify_all()
        return recovered

    def shutdown(self) -> None:
        """Graceful stop: interrupt running jobs, keep them resumable.

        Running jobs get their cancel events set and raise
        :class:`JobCancelledError`; because the stop flag is up they
        are left in RUNNING state -- the next daemon start resumes
        them from their manifests rather than treating them as
        user-cancelled.
        """
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        with self._cancel_lock:
            for event in self._cancel.values():
                event.set()
        for thread in self._threads:
            thread.join(timeout=30)

    @property
    def stopping(self) -> bool:
        return self._stopping

    # ------------------------------------------------------------ operations

    def price(self, spec: JobSpec) -> float:
        """Predicted wall-clock seconds for a spec, pre-execution."""
        with self._fit_lock:
            profiles = list(self._fit_profiles)
        model = CostModel.fit(profiles, estimate_workload(spec))
        return model.predict().total_seconds

    def price_memory(self, spec: JobSpec) -> int:
        """Predicted peak resident bytes for a spec, pre-execution."""
        return estimate_peak_memory(
            estimate_workload(spec),
            num_workers=self.pool.max_workers,
            max_inflight_bytes=spec.max_inflight_bytes)

    def submit(self, spec: JobSpec) -> dict[str, Any]:
        """Price, admit, durably accept, and enqueue one submission.

        Raises :class:`~repro.mapreduce.runtime.service.admission.
        AdmissionRejected` with a structured payload on overload; a
        non-exceptional return means the job is accepted durably.
        """
        if self._stopping:
            from repro.mapreduce.runtime.service.admission import (
                AdmissionRejected,
            )
            raise AdmissionRejected("SHUTTING_DOWN", 503,
                                    "service is shutting down",
                                    retry_after=5.0)
        predicted = self.price(spec)
        mem = self.price_memory(spec)
        self.admission.admit(
            spec.tenant, predicted,
            queued_total=self.scheduler.queued_total(),
            queued_tenant=self.scheduler.queued_for(spec.tenant),
            predicted_memory_bytes=mem)
        # Tenant memory quota: charged before the durable accept so a
        # rejection leaves no registry record behind.
        if not self.pool.memory.try_charge(mem, site="jobs",
                                           owner=spec.tenant):
            from repro.mapreduce.runtime.service.admission import (
                AdmissionRejected,
            )
            raise AdmissionRejected(
                "OVERCOMMITTED_MEMORY", 429,
                f"tenant {spec.tenant!r} memory quota cannot absorb a job "
                f"priced at {mem} peak bytes "
                f"({self.pool.memory.owner_used(spec.tenant)} outstanding)",
                retry_after=5.0)
        try:
            record = self.registry.create(spec)
        except BaseException:
            self.pool.memory.release(mem, site="jobs", owner=spec.tenant)
            raise
        with self._memory_lock:
            self._job_memory[record.job_id] = (mem, spec.tenant)
        self.admission.charge(record.job_id, predicted,
                              predicted_memory_bytes=mem)
        self.scheduler.push(spec.tenant, record.job_id, predicted)
        with self._cond:
            self._cond.notify()
        return {"job_id": record.job_id, "state": "QUEUED",
                "predicted_seconds": predicted,
                "predicted_memory_bytes": mem}

    def status(self, job_id: str) -> dict[str, Any] | None:
        record = self.registry.get(job_id)
        return record.summary() if record is not None else None

    def jobs(self) -> list[dict[str, Any]]:
        return [r.summary() for r in self.registry.load_all()]

    def cancel(self, job_id: str) -> dict[str, Any] | None:
        """Cancel a queued or running job; no-op for finished ones."""
        record = self.registry.get(job_id)
        if record is None:
            return None
        state, _ = record.state()
        if state == "QUEUED" and self.scheduler.remove(job_id):
            record.set_state("CANCELLED", "cancelled while queued")
            self._credit(job_id)
        elif state in ("QUEUED", "RUNNING"):
            # Queued-but-claimed (an executor popped it) or running:
            # the executor observes the event and finalizes the state.
            self._cancel_event(job_id).set()
        return record.summary()

    def stats(self) -> dict[str, Any]:
        return {
            "pool": self.pool.stats(),
            "queued": self.scheduler.queued_total(),
            "outstanding_seconds": self.admission.outstanding_seconds(),
            "outstanding_memory_bytes":
                self.admission.outstanding_memory_bytes(),
            "memory_cap_bytes":
                self.config.admission.max_outstanding_memory_bytes,
            "stopping": self._stopping,
        }

    # -------------------------------------------------------------- execution

    def _credit(self, job_id: str) -> None:
        """Return a finished job's cost *and* priced memory."""
        self.admission.credit(job_id)
        with self._memory_lock:
            entry = self._job_memory.pop(job_id, None)
        if entry is not None:
            mem, tenant = entry
            self.pool.memory.release(mem, site="jobs", owner=tenant)

    def _cancel_event(self, job_id: str) -> threading.Event:
        with self._cancel_lock:
            return self._cancel.setdefault(job_id, threading.Event())

    def _executor_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopping:
                    job_id = self.scheduler.pop()
                    if job_id is not None:
                        break
                    self._cond.wait(timeout=0.5)
                else:
                    return
            record = self.registry.get(job_id)
            if record is not None:
                self._execute(record)

    def _execute(self, record: JobRecord) -> None:
        from repro.mapreduce.runtime.runner import ParallelJobRunner

        job_id = record.job_id
        spec = record.load_spec()
        cancel_event = self._cancel_event(job_id)
        if spec is None:  # pragma: no cover - accepted jobs have specs
            record.set_state("FAILED", "spec unreadable at execution time")
            self._credit(job_id)
            return
        if cancel_event.is_set():
            record.set_state("CANCELLED", "cancelled before start")
            self._credit(job_id)
            return
        record.set_state("RUNNING", f"executing for tenant {spec.tenant}")
        runner_kwargs = dict(self.config.runner_kwargs)
        if spec.memory_budget is not None or spec.max_inflight_bytes is not None:
            # Per-spec memory knobs override the service-wide shuffle
            # config (or a default one) for this job only.
            from repro.mapreduce.runtime.shuffle import ShuffleConfig

            base = runner_kwargs.get("shuffle") or ShuffleConfig()
            overrides: dict[str, Any] = {}
            if spec.memory_budget is not None:
                overrides["memory_budget"] = spec.memory_budget
            if spec.max_inflight_bytes is not None:
                overrides["max_inflight_bytes"] = spec.max_inflight_bytes
            runner_kwargs["shuffle"] = dc_replace(base, **overrides)
        try:
            job, dataset = build_workload(spec)
            runner = ParallelJobRunner(
                workdir=os.path.join(record.dir, "work"),
                recovery_dir=record.recovery_dir,
                resume=True,
                pool=self.pool,
                tenant=spec.tenant,
                cancel_event=cancel_event,
                fault_injector=build_injector(spec),
                **runner_kwargs,
            )
            result = runner.run(job, dataset)
        except JobCancelledError:
            if self._stopping:
                # Shutdown interrupt: stay RUNNING so the next daemon
                # start resumes from the manifest.
                record.append_event(
                    "interrupted",
                    "daemon shutdown; resumable from manifest")
            else:
                record.set_state("CANCELLED", "cancelled while running")
                self._credit(job_id)
            return
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            # One tenant's failure must never take the daemon down.
            record.set_state("FAILED", f"{type(exc).__name__}: {exc}")
            self._credit(job_id)
            return
        # Result durability precedes the DONE claim.
        record.save_result(result.output, result.counters)
        record.set_state("DONE",
                         f"{len(result.output)} output record(s)")
        self._credit(job_id)
        with self._fit_lock:
            self._fit_profiles = list(result.task_profiles)
        with self._cancel_lock:
            self._cancel.pop(job_id, None)
