"""Local REST endpoint + client for the job daemon.

Stdlib-only (``http.server`` / ``urllib``), bound to 127.0.0.1 on an
ephemeral port: this is a *local* service endpoint (the CLI talking to
the daemon on the same machine), not a network server.  The bound
address is published atomically to ``<root>/service.json`` together
with the daemon pid, which is how ``repro submit/status/cancel`` find
the daemon -- and how they detect a dead one (connection refused →
"daemon not running; stale service.json").

Routes::

    POST /jobs            submit a JobSpec           -> 200 | 4xx/5xx
    GET  /jobs            list all jobs
    GET  /jobs/<id>       one job's status
    GET  /jobs/<id>/events?since=N   intact events from byte offset N
    POST /jobs/<id>/cancel
    GET  /health          pool + queue + ledger stats
    POST /shutdown        graceful stop (running jobs stay resumable)

Admission rejections surface as their own HTTP status (429/413/503)
with the structured JSON payload in the body -- the "explicit
overload shedding" half of the service contract.
"""

from __future__ import annotations

import json
import os
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.mapreduce.runtime.service.admission import AdmissionRejected
from repro.mapreduce.runtime.service.daemon import JobService
from repro.mapreduce.runtime.service.workloads import JobSpec
from repro.util.fsio import atomic_write_bytes

__all__ = ["ServiceEndpoint", "ServiceClient", "ServiceUnavailableError",
           "SERVICE_FILE"]

SERVICE_FILE = "service.json"


class ServiceUnavailableError(RuntimeError):
    """No live daemon behind the advertised address."""


class _Handler(BaseHTTPRequestHandler):
    service: JobService  # injected by ServiceEndpoint

    # ------------------------------------------------------------------ plumb

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
        pass  # the registry's event log is the audit trail, not stderr

    def _reply(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b"{}"
        return json.loads(raw.decode("utf-8"))

    # ----------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler convention
        path, _, query = self.path.partition("?")
        parts = [p for p in path.split("/") if p]
        if parts == ["health"]:
            self._reply(200, self.service.stats())
        elif parts == ["jobs"]:
            self._reply(200, {"jobs": self.service.jobs()})
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            record = self.service.registry.get(parts[1])
            if record is None:
                self._reply(404, {"error": "NOT_FOUND",
                                  "message": f"no job {parts[1]}"})
                return
            since = 0
            for pair in query.split("&"):
                key, _, value = pair.partition("=")
                if key == "since" and value.isdigit():
                    since = int(value)
            events, offset = record.events_since(since)
            state, _ = record.state()
            self._reply(200, {"events": events, "offset": offset,
                              "state": state})
        elif len(parts) == 2 and parts[0] == "jobs":
            summary = self.service.status(parts[1])
            if summary is None:
                self._reply(404, {"error": "NOT_FOUND",
                                  "message": f"no job {parts[1]}"})
            else:
                self._reply(200, summary)
        else:
            self._reply(404, {"error": "NOT_FOUND",
                              "message": f"no route {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler convention
        parts = [p for p in self.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                try:
                    spec = JobSpec.from_json(self._read_json())
                except (ValueError, json.JSONDecodeError) as exc:
                    self._reply(400, {"error": "BAD_REQUEST",
                                      "http_status": 400,
                                      "message": str(exc),
                                      "retry_after": None})
                    return
                self._reply(200, self.service.submit(spec))
            elif len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "cancel":
                summary = self.service.cancel(parts[1])
                if summary is None:
                    self._reply(404, {"error": "NOT_FOUND",
                                      "message": f"no job {parts[1]}"})
                else:
                    self._reply(200, summary)
            elif parts == ["shutdown"]:
                self._reply(200, {"state": "stopping"})
                # Stop after the reply is on the wire; the server loop
                # is shut down from a helper thread to avoid deadlock
                # (shutdown() joins the serve_forever thread's poll).
                threading.Thread(target=self.server.initiate_shutdown,
                                 daemon=True).start()
            else:
                self._reply(404, {"error": "NOT_FOUND",
                                  "message": f"no route {self.path}"})
        except AdmissionRejected as exc:
            self._reply(exc.http_status, exc.payload)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    service: JobService
    on_shutdown: Any = None

    def initiate_shutdown(self) -> None:
        if self.on_shutdown is not None:
            self.on_shutdown()
        self.shutdown()


class ServiceEndpoint:
    """Bind, publish, and serve the daemon's REST address."""

    def __init__(self, service: JobService) -> None:
        self.service = service
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self.server = _Server(("127.0.0.1", 0), handler)
        self.server.service = service
        self.server.on_shutdown = service.shutdown
        self.address = self.server.server_address[:2]

    def publish(self) -> str:
        """Atomically advertise ``{host, port, pid}`` in the root."""
        path = os.path.join(self.service.config.root, SERVICE_FILE)
        atomic_write_bytes(path, json.dumps({
            "host": self.address[0],
            "port": self.address[1],
            "pid": os.getpid(),
        }).encode("utf-8"))
        return path

    def serve_forever(self) -> None:
        """Block until a ``/shutdown`` request (or KeyboardInterrupt)."""
        try:
            self.server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:
            self.service.shutdown()
        finally:
            self.server.server_close()


class ServiceClient:
    """CLI-side client resolving the daemon through ``service.json``."""

    def __init__(self, root: str, timeout: float = 10.0) -> None:
        self.root = root
        self.timeout = timeout

    def _base_url(self) -> str:
        path = os.path.join(self.root, SERVICE_FILE)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                info = json.load(fh)
            host, port = info["host"], int(info["port"])
        except (OSError, KeyError, TypeError, ValueError) as exc:
            raise ServiceUnavailableError(
                f"no daemon advertised under {self.root!r} "
                f"(missing or damaged {SERVICE_FILE}): {exc}") from None
        return f"http://{host}:{port}"

    def request(self, method: str, route: str,
                payload: dict[str, Any] | None = None) -> dict[str, Any]:
        """One JSON round-trip; 4xx/5xx bodies are returned, not raised
        (a structured rejection is an *answer*, not a transport error).
        """
        url = self._base_url() + route
        data = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        req = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                return json.loads(exc.read().decode("utf-8"))
            except (ValueError, OSError):
                return {"error": "HTTP_ERROR", "http_status": exc.code,
                        "message": str(exc)}
        except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
            raise ServiceUnavailableError(
                f"daemon unreachable at {url}: {exc} "
                f"(crashed daemon? restart with `repro serve` to recover "
                f"its jobs)") from None

    # ------------------------------------------------------------ operations

    def submit(self, spec: JobSpec) -> dict[str, Any]:
        return self.request("POST", "/jobs", spec.to_json())

    def status(self, job_id: str) -> dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}")

    def jobs(self) -> dict[str, Any]:
        return self.request("GET", "/jobs")

    def events(self, job_id: str, since: int = 0) -> dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}/events?since={since}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self.request("POST", f"/jobs/{job_id}/cancel")

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/health")

    def shutdown(self) -> dict[str, Any]:
        return self.request("POST", "/shutdown")
