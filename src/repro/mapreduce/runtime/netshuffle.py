"""Network shuffle: per-worker TCP segment servers + fetch client.

The ROADMAP's first open item: the paper compresses the *map->reduce*
hop, so the stride key codec must be measurable as bytes on an actual
wire, not just as materialized disk bytes.  This module provides both
ends of that wire:

* :class:`ShuffleService` -- owns a small fleet of :class:`SegmentServer`
  threads (one per simulated worker host), a registry of committed map
  outputs (``map_id -> epoch + segment paths``), and a CRC cache so the
  verbatim path can serve a segment zero-copy (``socket.sendfile``)
  without re-reading it.  Map re-execution drains gracefully: the
  scheduler marks the map *draining*, requests carrying the old epoch
  are rejected with a ``stale epoch`` error (a transient failure, so
  the PR 5 escalation ladder -- retry, requeue, re-execute -- works
  unchanged over the network), and the fresh registration flips the
  entry to the new epoch.  Dead servers are re-spawned on registration,
  which is what lets a killed server heal through the same ladder.

* :class:`NetworkTransport` -- the client side, plugged into
  :class:`~repro.mapreduce.runtime.shuffle.ShuffleFetcher` by
  ``make_transport``.  Maintains a per-address connection pool (sockets
  are returned after a fully-consumed response and reused), enforces
  the fetcher's per-attempt deadline as socket timeouts, verifies every
  frame CRC plus a whole-segment CRC32, and accounts
  ``SHUFFLE_WIRE_BYTES`` (compressed payload actually transmitted) and
  ``SHUFFLE_WIRE_BYTES_UNCOMPRESSED`` through the fetcher's locked
  counter sink.

Wire protocol (all integers big-endian):

* request: ``b"RSH1" | u32 len | JSON`` with ``map_id``, ``path``,
  ``epoch``, ``reduce_id``, ``attempt``, ``codec``, ``chunk``;
* response: one status byte.  Non-OK: ``u32 len | utf-8 message``.
  OK: ``u32 len | JSON header`` (``codec`` actually negotiated,
  ``length``/``crc`` of the raw segment, ``framed`` flag, and --
  framed only -- ``wire_length``, the compressed byte count), then
  - verbatim (``framed`` false): exactly ``length`` raw bytes
    (``sendfile`` on the server); or
  - framed: the segment compressed *whole* (the §III stride transform
    needs the full key stream; compressing per chunk silently degrades
    it to its generic backend), cut into transport chunks of
    ``u32 chunk_len | u32 crc32(chunk) | chunk``, terminated by an
    all-zero frame head.  The client reassembles, checks
    ``wire_length``, then decodes once.

Codec negotiation: the client *requests* a wire codec; a server that
does not know it answers with ``codec: "null"`` in the header and the
client decodes whatever the header names -- an unknown codec degrades
to verbatim service instead of failing the job.

Fault injection happens server-side (the planned ``fetch`` faults ride
into the service as a full :meth:`~repro.mapreduce.runtime.fault.
FaultInjector.fetch_plan`): ``delay`` sleeps before the response,
``stall`` hangs then closes without one, ``drop`` dies mid-stream,
``truncate`` ends early but claims completion (only the length/CRC
check notices), ``flip`` damages one frame after its CRC was computed.
All five surface client-side as ``TransientFetchError`` -- exactly the
channel transport's failure surface, so counters and escalation stay
byte-identical across transports.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import struct
import threading
import time
import zlib
from typing import Callable, Mapping, Sequence

from repro.mapreduce.codecs import get_codec
from repro.mapreduce.metrics import C
from repro.mapreduce.runtime.fault import Fault
from repro.mapreduce.runtime.memory import MemoryBudget
from repro.mapreduce.runtime.shuffle import (
    SegmentRef,
    ShuffleConfig,
    TransientFetchError,
    select_fetch_fault,
)
from repro.util.backoff import backoff_delay
from repro.util.errors import CorruptRecordError
from repro.util.placement import placement_index
from repro.util.timing import Deadline

__all__ = ["ShuffleService", "SegmentServer", "NetworkTransport"]

#: how many times a server retries binding its port before giving up
_BIND_ATTEMPTS = 8
_BIND_BACKOFF = 0.02
_BIND_BACKOFF_MAX = 0.25

REQUEST_MAGIC = b"RSH1"
#: response status codes
OK, STALE_EPOCH, UNKNOWN_SEGMENT, MISSING_FILE, BAD_REQUEST = range(5)
#: largest request / header JSON the server or client will accept
_MAX_META = 64 * 1024
#: server-side idle timeout on a pooled connection between requests
_IDLE_TIMEOUT = 30.0
_U32 = struct.Struct(">I")
_FRAME_HEAD = struct.Struct(">II")


# ------------------------------------------------------------- socket I/O


def _op_timeout(deadline: Deadline) -> float | None:
    """Socket timeout for the next operation under ``deadline``."""
    remaining = deadline.remaining()
    if remaining is None:
        return None
    if remaining <= 0:
        raise TransientFetchError("fetch deadline expired")
    return remaining


def _recv_exact(sock: socket.socket, n: int, deadline: Deadline,
                what: str = "response") -> bytes:
    """Read exactly ``n`` bytes or raise :class:`TransientFetchError`."""
    buf = bytearray()
    while len(buf) < n:
        sock.settimeout(_op_timeout(deadline))
        try:
            chunk = sock.recv(min(1 << 16, n - len(buf)))
        except socket.timeout:
            raise TransientFetchError(
                f"fetch deadline expired reading {what} "
                f"({len(buf)}/{n} bytes)", bytes_received=len(buf)) from None
        if not chunk:
            raise TransientFetchError(
                f"connection closed reading {what} ({len(buf)}/{n} bytes)",
                bytes_received=len(buf))
        buf.extend(chunk)
    return bytes(buf)


def _send_all(sock: socket.socket, data: bytes, deadline: Deadline) -> None:
    sock.settimeout(_op_timeout(deadline))
    try:
        sock.sendall(data)
    except socket.timeout:
        raise TransientFetchError("fetch deadline expired sending "
                                  "request") from None


# ---------------------------------------------------------------- service


class _MapEntry:
    """Registry state for one map task's committed segments."""

    __slots__ = ("epoch", "paths", "draining")

    def __init__(self, epoch: int, paths: frozenset[str]) -> None:
        self.epoch = epoch
        self.paths = paths
        #: re-execution in progress: every request is epoch-stale until
        #: the replacement registers (graceful drain)
        self.draining = False


class ShuffleService:
    """A fleet of segment servers plus the registry they serve from.

    One service runs inside the scheduling process per job; map outputs
    are spread across ``num_servers`` servers by a stable hash of the
    map id, modelling per-worker segment servers on one host.  All
    servers share the registry, the CRC cache, and the (server-side)
    fetch-fault plan.
    """

    def __init__(self, num_servers: int = 2, port_base: int | None = None,
                 host: str = "127.0.0.1", server_concurrency: int = 8,
                 wire_codec: str = "null", chunk_bytes: int = 64 * 1024,
                 faults: Mapping[str, Sequence[Fault]] | None = None,
                 trace=None) -> None:
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        self.host = host
        self.port_base = port_base
        self.num_servers = num_servers
        self.server_concurrency = server_concurrency
        self.wire_codec = wire_codec
        self.chunk_bytes = chunk_bytes
        self.faults = dict(faults) if faults else {}
        self.trace = trace
        #: unbounded accounting ledger for server-side transients (the
        #: whole-segment compress working set); servers charge it with
        #: ``force=True`` so serving never blocks on accounting, and
        #: its peak makes server memory visible next to the tasks'
        self.memory = MemoryBudget(None, name="netshuffle")
        self._lock = threading.Lock()
        self._registry: dict[str, _MapEntry] = {}
        #: path -> (size, mtime_ns, crc32) -- revalidated by stat on
        #: every request, so damage-at-rest is served as-is (and caught
        #: by the reader's decode, taking the repair rung) while
        #: in-flight damage is caught by a CRC the file never had
        self._crc_cache: dict[str, tuple[int, int, int]] = {}
        self.servers: list[SegmentServer] = []
        self._started = False

    @classmethod
    def from_config(cls, config: ShuffleConfig,
                    faults: Mapping[str, Sequence[Fault]] | None = None,
                    trace=None) -> "ShuffleService":
        return cls(num_servers=config.num_servers,
                   port_base=config.port_base,
                   server_concurrency=config.server_concurrency,
                   wire_codec=config.wire_codec,
                   chunk_bytes=config.chunk_bytes,
                   faults=faults, trace=trace)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "ShuffleService":
        if self._started:
            return self
        for index in range(self.num_servers):
            self.servers.append(self._spawn(index))
        self._started = True
        return self

    def _spawn(self, index: int) -> "SegmentServer":
        port = 0 if self.port_base is None else self.port_base + index
        server = SegmentServer(self, self.host, port,
                               self.server_concurrency)
        server.start()
        return server

    def stop(self) -> None:
        for server in self.servers:
            server.stop()
        self.servers = []
        self._started = False

    def __enter__(self) -> "ShuffleService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------- registry

    def server_index(self, map_id: str) -> int:
        """Which server hosts ``map_id``'s segments.

        Same :func:`~repro.util.placement.placement_index` hash as task
        homing (``hosts.host_for``): host k and server k are one failure
        domain, structurally.
        """
        return placement_index(map_id, self.num_servers)

    def address_for(self, map_id: str) -> tuple[str, int]:
        """Current ``(host, port)`` serving ``map_id``'s segments."""
        if not self._started:
            raise RuntimeError("shuffle service is not running")
        return self.servers[self.server_index(map_id)].address

    def register_map_output(self, map_id: str, paths: Sequence[str],
                            epoch: int = 0) -> None:
        """Publish (or re-publish) one map task's committed segments.

        Primes the CRC cache for each path and re-spawns any dead
        server, so a registration after map re-execution both ends the
        drain and heals a killed server.
        """
        self._revive_dead_servers()
        for path in paths:
            self._segment_crc(path)
        with self._lock:
            self._registry[map_id] = _MapEntry(epoch, frozenset(paths))

    def invalidate(self, map_id: str) -> None:
        """Begin draining ``map_id``: every request is now epoch-stale.

        Called when map re-execution starts, *before* the old segment
        files are deleted -- in-flight fetches get a clean transient
        rejection instead of racing file deletion.
        """
        with self._lock:
            entry = self._registry.get(map_id)
            if entry is not None:
                entry.draining = True

    def _lookup(self, map_id: str) -> _MapEntry | None:
        with self._lock:
            return self._registry.get(map_id)

    def _revive_dead_servers(self) -> None:
        if not self._started:
            return
        for index, server in enumerate(self.servers):
            if not server.alive:
                self.servers[index] = self._spawn(index)

    def kill_server(self, index: int) -> None:
        """Abruptly stop one server (test/experiment hook).

        Live connections die and new ones are refused until a
        registration re-spawns the server -- the "worker host lost its
        shuffle server" scenario the escalation ladder must absorb.
        """
        self.servers[index].stop()

    def partition_server(self, index: int, seconds: float) -> None:
        """Blackhole one server for ``seconds`` (host_partition hook).

        The listener keeps accepting -- the host is *alive* -- but every
        connection is hung up before a byte is read, so clients see
        transient connection loss and their retry ladder (not map
        re-execution) is what heals the partition.
        """
        self.servers[index].refuse_until = time.monotonic() + seconds

    # ------------------------------------------------------------ integrity

    def _segment_crc(self, path: str) -> tuple[int, int]:
        """``(size, crc32)`` of the file at ``path``, stat-validated.

        The cache key is ``(size, mtime_ns)``: an unchanged committed
        segment is never re-read (the verbatim path stays zero-copy),
        while a rewritten file -- repair, or injected damage at rest --
        is re-read so the served CRC always describes the bytes sent.
        """
        st = os.stat(path)
        key = (st.st_size, st.st_mtime_ns)
        with self._lock:
            cached = self._crc_cache.get(path)
            if cached is not None and cached[:2] == key:
                return st.st_size, cached[2]
        with open(path, "rb") as fh:
            crc = zlib.crc32(fh.read())
        with self._lock:
            self._crc_cache[path] = (st.st_size, st.st_mtime_ns, crc)
        return st.st_size, crc

    def _record(self, map_id: str, attempt: int, event: str,
                detail: str) -> None:
        if self.trace is not None:
            self.trace.record(map_id, attempt, "map", event, detail)


class SegmentServer:
    """One TCP segment server: accept loop + bounded request handlers.

    Concurrency is bounded by a semaphore acquired *before* a handler
    thread is spawned: past ``concurrency`` in-flight requests the
    accept loop itself blocks, new connections queue in the listen
    backlog, and TCP flow control pushes back on clients -- server-side
    backpressure without dropping anything.
    """

    def __init__(self, service: ShuffleService, host: str, port: int,
                 concurrency: int) -> None:
        self.service = service
        self._sock = self._bind(host, port)
        self.address: tuple[str, int] = self._sock.getsockname()[:2]
        self._sem = threading.BoundedSemaphore(concurrency)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: monotonic deadline until which every connection is refused
        #: (host_partition injection: the listener answers, then hangs
        #: up before reading the request -- a blackholed switch port)
        self.refuse_until = 0.0

    @staticmethod
    def _bind(host: str, port: int) -> socket.socket:
        """Bind the listening socket, retrying ``EADDRINUSE``.

        A revived server re-binding a fixed ``port_base`` port can race
        its predecessor's close (the old listener lingers briefly even
        with ``SO_REUSEADDR``); failing the whole shuffle service over
        that transient is wrong, so retry with capped backoff and only
        re-raise once the budget is spent.
        """
        last: OSError | None = None
        for attempt in range(_BIND_ATTEMPTS):
            if attempt > 0:
                time.sleep(backoff_delay(
                    _BIND_BACKOFF, attempt, _BIND_BACKOFF_MAX,
                    key=f"bind:{host}:{port}"))
            try:
                return socket.create_server((host, port), backlog=64)
            except OSError as exc:
                if exc.errno != errno.EADDRINUSE:
                    raise
                last = exc
        raise OSError(
            errno.EADDRINUSE,
            f"port {port} still in use after {_BIND_ATTEMPTS} bind "
            f"attempts: {last}")

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"segsrv-{self.address[1]}")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        # shutdown() wakes a thread blocked in accept(); close() alone
        # leaves it blocked forever on Linux.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # never connected / already closed
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listening socket closed: shutdown
            self._sem.acquire()
            threading.Thread(target=self._handle, args=(conn,),
                             daemon=True).start()

    # ------------------------------------------------------------ handling

    def _handle(self, conn: socket.socket) -> None:
        try:
            if time.monotonic() < self.refuse_until:
                return  # partitioned: hang up without reading anything
            conn.settimeout(_IDLE_TIMEOUT)
            while not self._stop.is_set():
                request = self._read_request(conn)
                if request is None:
                    return
                if not self._serve(conn, request):
                    return
        except (OSError, ValueError):
            pass  # client went away or spoke garbage: drop the connection
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._sem.release()

    @staticmethod
    def _read_n(conn: socket.socket, n: int) -> bytes | None:
        """Server-side exact read; ``None`` on clean EOF at a boundary."""
        buf = bytearray()
        while len(buf) < n:
            chunk = conn.recv(n - len(buf))
            if not chunk:
                if buf:
                    raise OSError("connection closed mid-request")
                return None
            buf.extend(chunk)
        return bytes(buf)

    def _read_request(self, conn: socket.socket) -> dict | None:
        magic = self._read_n(conn, len(REQUEST_MAGIC))
        if magic is None:
            return None
        if magic != REQUEST_MAGIC:
            self._error(conn, BAD_REQUEST, "bad request magic")
            raise OSError("bad magic")
        head = self._read_n(conn, _U32.size)
        if head is None:
            raise OSError("connection closed mid-request")
        (length,) = _U32.unpack(head)
        if length > _MAX_META:
            self._error(conn, BAD_REQUEST, "oversized request")
            raise OSError("oversized request")
        body = self._read_n(conn, length)
        if body is None:
            raise OSError("connection closed mid-request")
        return json.loads(body)

    @staticmethod
    def _error(conn: socket.socket, status: int, message: str) -> None:
        data = message.encode("utf-8")
        conn.sendall(bytes([status]) + _U32.pack(len(data)) + data)

    def _serve(self, conn: socket.socket, request: dict) -> bool:
        """Serve one request; ``False`` means the connection must die
        (abrupt-close faults and mid-stream errors)."""
        service = self.service
        map_id = request.get("map_id", "")
        path = request.get("path", "")
        epoch = int(request.get("epoch", 0))
        reduce_id = request.get("reduce_id", "")
        attempt = int(request.get("attempt", 0))

        entry = service._lookup(map_id)
        if entry is None:
            self._error(conn, UNKNOWN_SEGMENT,
                        f"unknown map {map_id!r}")
            return True
        if entry.draining or entry.epoch != epoch:
            service._record(map_id, attempt, "wire_stale",
                            f"epoch {epoch} -> {reduce_id}")
            self._error(conn, STALE_EPOCH,
                        f"stale epoch {epoch} for {map_id} "
                        f"(serving epoch {entry.epoch}"
                        f"{', draining' if entry.draining else ''})")
            return True
        if path not in entry.paths:
            self._error(conn, UNKNOWN_SEGMENT,
                        f"unregistered segment {path!r}")
            return True

        fault = select_fetch_fault(
            service.faults.get(f"{map_id}->{reduce_id}", ()),
            attempt, epoch)
        if fault is not None and fault.op == "delay":
            time.sleep(fault.seconds)
        if fault is not None and fault.op == "stall":
            # Hang, then die without a response: the client's fetch
            # deadline (or the eventual EOF) turns this transient.
            time.sleep(fault.seconds)
            return False

        try:
            length, crc = service._segment_crc(path)
        except OSError as exc:
            self._error(conn, MISSING_FILE, f"segment missing: {exc}")
            return True

        codec_name = request.get("codec", "null")
        try:
            codec = get_codec(codec_name)
        except KeyError:
            # Negotiation: fall back to verbatim service and say so in
            # the header rather than failing the fetch.
            codec_name, codec = "null", None
        # Faults that damage content need the framed path even for the
        # null codec (verbatim has no frames to flip or under-count).
        framed = codec_name != "null" or (
            fault is not None and fault.op in ("truncate", "flip"))

        comp = b""
        rented = 0
        if framed:
            # Compress the segment *whole*: the stride transform needs
            # the full key stream to detect its pattern.  The raw copy
            # is rented from the service ledger only for the compress
            # call; the compressed copy stays charged until sent.
            try:
                with open(path, "rb") as fh:
                    blob = fh.read()
            except OSError as exc:
                self._error(conn, MISSING_FILE, f"segment missing: {exc}")
                return True
            service.memory.charge(len(blob), site="compress", force=True)
            try:
                comp = get_codec(codec_name).compress(blob)
            finally:
                service.memory.release(len(blob), site="compress")
            del blob
            rented = len(comp)
            service.memory.charge(rented, site="compress", force=True)
        header = json.dumps({
            "codec": codec_name, "length": length, "crc": crc,
            "framed": framed, "wire_length": len(comp),
        }).encode("utf-8")
        try:
            conn.sendall(bytes([OK]) + _U32.pack(len(header)) + header)
            if framed:
                ok = self._send_framed(conn, comp,
                                       int(request.get("chunk", 0))
                                       or service.chunk_bytes, fault)
            else:
                ok = self._send_verbatim(conn, path, length, fault)
        except OSError:
            return False
        finally:
            if rented:
                service.memory.release(rented, site="compress")
        if ok:
            service._record(map_id, attempt, "wire_served",
                            f"{os.path.basename(path)} -> {reduce_id}"
                            f" ({'framed' if framed else 'verbatim'})")
        return ok

    def _send_verbatim(self, conn: socket.socket, path: str, length: int,
                       fault: Fault | None) -> bool:
        """Zero-copy raw segment body (``sendfile``), faults aside."""
        with open(path, "rb") as fh:
            if fault is not None and fault.op == "drop":
                # Die after a prefix: explicit mid-transfer loss.
                keep = int(length * fault.offset_frac)
                conn.sendall(fh.read(keep))
                return False
            conn.sendfile(fh)
        return True

    def _send_framed(self, conn: socket.socket, comp: bytes,
                     chunk_bytes: int, fault: Fault | None) -> bool:
        """The compressed segment body as CRC-framed transport chunks."""
        chunk_bytes = max(256, chunk_bytes)
        frames = [comp[i:i + chunk_bytes]
                  for i in range(0, len(comp), chunk_bytes)]
        deliver = len(frames)
        if fault is not None and fault.op in ("drop", "truncate"):
            deliver = max(0, min(len(frames) - 1,
                                 int(len(frames) * fault.offset_frac)))
        flip_at = (len(frames) // 2
                   if fault is not None and fault.op == "flip" else None)

        for i, chunk in enumerate(frames):
            if i >= deliver and fault is not None:
                if fault.op == "drop":
                    return False  # abrupt close mid-stream
                break  # truncate: short stream that claims completion
            fcrc = zlib.crc32(chunk)
            if flip_at == i and chunk:
                wire = bytearray(chunk)
                wire[len(wire) // 2] ^= 0xFF
                chunk = bytes(wire)
            conn.sendall(_FRAME_HEAD.pack(len(chunk), fcrc) + chunk)
        conn.sendall(_FRAME_HEAD.pack(0, 0))
        return True


# ----------------------------------------------------------------- client


class NetworkTransport:
    """Fetch segments from :class:`SegmentServer` sockets.

    One instance serves one reduce task's :class:`~repro.mapreduce.
    runtime.shuffle.ShuffleFetcher`; ``fetch`` runs on the fetcher's
    worker threads, so the connection pool is locked.  All wire damage
    -- refused connections, timeouts, short reads, frame CRC or segment
    CRC mismatches, codec failures -- surfaces as
    :class:`TransientFetchError`; an explicit *unknown segment* or
    *missing file* answer raises :class:`FileNotFoundError`, the
    fetcher's immediate-escalation rung (no retry of this epoch can
    succeed).
    """

    def __init__(self, config: ShuffleConfig,
                 counter_sink: Callable[..., None] | None = None,
                 reduce_id: str = "",
                 memory: MemoryBudget | None = None) -> None:
        self.config = config
        self.reduce_id = reduce_id
        self._memory = memory
        self._sink = counter_sink or (lambda name, amount=1: None)
        self._pool: dict[tuple[str, int], list[socket.socket]] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------- pooling

    def _checkout(self, address: tuple[str, int],
                  deadline: Deadline) -> socket.socket:
        with self._lock:
            idle = self._pool.get(address)
            if idle:
                return idle.pop()
        try:
            return socket.create_connection(
                address, timeout=_op_timeout(deadline))
        except OSError as exc:
            raise TransientFetchError(
                f"cannot connect to segment server {address}: {exc}"
            ) from exc

    def _checkin(self, address: tuple[str, int],
                 sock: socket.socket) -> None:
        """Return a healthy connection to the pool -- or close it.

        Two leak paths guarded here: a fetch thread finishing *after*
        ``close()`` ran (the fetcher closes the transport in a
        ``finally`` while pool.map results are still draining) would
        park its socket in a pool nobody will ever close again, and
        repeated wire faults churn connections faster than reuse drains
        them, growing the per-address pool without bound.  Past either
        limit the socket is closed instead of pooled.
        """
        with self._lock:
            if not self._closed:
                idle = self._pool.setdefault(address, [])
                if len(idle) < self.config.concurrency:
                    idle.append(sock)
                    return
        try:
            sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def pool_size(self) -> int:
        """Idle pooled connections across every address (test hook)."""
        with self._lock:
            return sum(len(idle) for idle in self._pool.values())

    def close(self) -> None:
        """Close every pooled connection (fetcher calls this after
        ``fetch_all``; idempotent).  Later check-ins close their socket
        instead of re-populating the pool."""
        with self._lock:
            self._closed = True
            pools, self._pool = self._pool, {}
        for idle in pools.values():
            for sock in idle:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - already closed
                    pass

    # -------------------------------------------------------------- fetch

    def fetch(self, ref: SegmentRef, attempt: int,
              deadline: Deadline) -> bytes:
        if ref.address is None:
            raise TransientFetchError(
                f"segment {ref.map_id} carries no server address "
                f"(network transport needs service-built refs)")
        address = (ref.address[0], int(ref.address[1]))
        sock = self._checkout(address, deadline)
        try:
            blob = self._request(sock, ref, attempt, deadline)
        except Exception:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
            raise
        self._checkin(address, sock)
        return blob

    def _request(self, sock: socket.socket, ref: SegmentRef, attempt: int,
                 deadline: Deadline) -> bytes:
        payload = json.dumps({
            "map_id": ref.map_id,
            "path": ref.path,
            "epoch": ref.epoch,
            "reduce_id": self.reduce_id,
            "attempt": attempt,
            "codec": self.config.wire_codec,
            "chunk": self.config.chunk_bytes,
        }).encode("utf-8")
        try:
            _send_all(sock, REQUEST_MAGIC + _U32.pack(len(payload)) + payload,
                      deadline)
            status = _recv_exact(sock, 1, deadline, "status")[0]
            if status != OK:
                (mlen,) = _U32.unpack(_recv_exact(sock, _U32.size, deadline,
                                                  "error length"))
                message = _recv_exact(sock, min(mlen, _MAX_META), deadline,
                                      "error message").decode(
                                          "utf-8", "replace")
                if status in (UNKNOWN_SEGMENT, MISSING_FILE):
                    raise FileNotFoundError(
                        f"server reports segment gone: {message}")
                raise TransientFetchError(f"server rejected fetch: {message}")
            (hlen,) = _U32.unpack(_recv_exact(sock, _U32.size, deadline,
                                              "header length"))
            if hlen > _MAX_META:
                raise TransientFetchError(f"oversized response header "
                                          f"({hlen} bytes)")
            header = json.loads(_recv_exact(sock, hlen, deadline, "header"))
            if header["framed"]:
                blob = self._read_framed(sock, header, deadline)
            else:
                blob = self._read_verbatim(sock, header, deadline)
        except FileNotFoundError:
            raise  # server's explicit "segment gone": escalate, no retry
        except OSError as exc:
            raise TransientFetchError(f"socket error mid-fetch: {exc}"
                                      ) from exc
        except ValueError as exc:  # garbled JSON header on the wire
            raise TransientFetchError(f"undecodable response header: {exc}"
                                      ) from exc
        if (len(blob) != header["length"]
                or zlib.crc32(blob) != header["crc"]):
            raise TransientFetchError(
                f"transfer digest mismatch: got {len(blob)} bytes "
                f"(crc {zlib.crc32(blob):08x}), server digested "
                f"{header['length']} (crc {header['crc']:08x})",
                bytes_received=len(blob))
        return blob

    def _read_verbatim(self, sock: socket.socket, header: dict,
                       deadline: Deadline) -> bytes:
        length = int(header["length"])
        blob = _recv_exact(sock, length, deadline, "verbatim segment")
        self._sink(C.SHUFFLE_WIRE_BYTES, length)
        self._sink(C.SHUFFLE_WIRE_BYTES_UNCOMPRESSED, length)
        return blob

    def _read_framed(self, sock: socket.socket, header: dict,
                     deadline: Deadline) -> bytes:
        codec = get_codec(header["codec"])
        wire_length = int(header["wire_length"])
        parts: list[bytes] = []
        received = 0
        while True:
            chunk_len, fcrc = _FRAME_HEAD.unpack(
                _recv_exact(sock, _FRAME_HEAD.size, deadline, "frame head"))
            if chunk_len == 0:
                break
            chunk = _recv_exact(sock, chunk_len, deadline, "frame payload")
            self._sink(C.SHUFFLE_WIRE_BYTES, chunk_len)
            if zlib.crc32(chunk) != fcrc:
                raise TransientFetchError(
                    f"frame {len(parts)} checksum mismatch in flight",
                    bytes_received=received)
            received += chunk_len
            parts.append(chunk)
        comp = b"".join(parts)
        if len(comp) != wire_length:
            # Truncate faults end the stream early but claim completion;
            # only this count (and the digest check upstream) notices.
            raise TransientFetchError(
                f"framed stream ended at {len(comp)}/{wire_length} "
                f"compressed bytes", bytes_received=received)
        # The decompressed blob is already priced at the fetcher's
        # "fetch" site; the compressed copy alive across decompress is
        # the transport's own transient, rented under "wire" (forced:
        # in-flight totals are timing-dependent and must never raise).
        if self._memory is not None:
            self._memory.charge(wire_length, site="wire", force=True)
        try:
            raw = codec.decompress(comp)
        except CorruptRecordError as exc:
            raise TransientFetchError(
                f"wire codec failed to decode segment: {exc}",
                bytes_received=received) from exc
        finally:
            if self._memory is not None:
                self._memory.release(wire_length, site="wire")
        self._sink(C.SHUFFLE_WIRE_BYTES_UNCOMPRESSED, len(raw))
        return raw
